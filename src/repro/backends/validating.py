"""Validating backend wrapper: per-iteration invariant checking.

Wraps any backend and, after every iteration block, verifies the engine's
core invariants:

* all five variable families are finite (a prox returning NaN/inf is the
  most common user bug — it silently poisons every later iterate);
* the z array is a convex combination of incoming messages per slot
  (``min m ≤ z ≤ max m`` for positive ρ), the defining property of the
  z-update;
* the identity ``n = z∘map − u`` holds exactly after a full sweep.

Use it while developing new proximal operators; it costs one pass over the
state per ``run`` call.  Violations raise :class:`InvariantViolation` naming
the failing family and the first offending index.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend
from repro.core.state import ADMMState
from repro.graph.factor_graph import FactorGraph
from repro.utils.timing import KernelTimers


class InvariantViolation(RuntimeError):
    """An engine invariant failed after an iteration block."""


class ValidatingBackend(Backend):
    """Wrap ``inner`` and verify state invariants after each run call."""

    name = "validating"

    def __init__(self, inner: Backend, check_bounds: bool = True) -> None:
        self.inner = inner
        self.check_bounds = check_bounds
        self.name = f"validating({inner.name})"

    def prepare(self, graph: FactorGraph) -> None:
        self.inner.prepare(graph)

    def close(self) -> None:
        self.inner.close()

    def run(
        self,
        graph: FactorGraph,
        state: ADMMState,
        iterations: int,
        timers: KernelTimers | None = None,
    ) -> None:
        self.inner.run(graph, state, iterations, timers)
        if iterations > 0:
            self.validate(graph, state)

    # ------------------------------------------------------------------ #
    def validate(self, graph: FactorGraph, state: ADMMState) -> None:
        """Raise :class:`InvariantViolation` if any invariant fails."""
        for fam in ("x", "m", "u", "n", "z"):
            arr = getattr(state, fam)
            bad = ~np.isfinite(arr)
            if bad.any():
                idx = int(np.flatnonzero(bad)[0])
                raise InvariantViolation(
                    f"non-finite value in state.{fam} at flat index {idx} "
                    f"(value {arr[idx]!r}) after iteration {state.iteration}; "
                    "check the proximal operators of the factors touching it"
                )
        # n = z∘map − u must hold exactly after a completed sweep.
        if graph.edge_size:
            n_expected = state.z[graph.flat_edge_to_z] - state.u
            err = np.max(np.abs(state.n - n_expected))
            if err > 1e-9:
                raise InvariantViolation(
                    f"n-update identity violated: max |n - (z∘map - u)| = {err:.3e}"
                )
        if self.check_bounds and graph.edge_size:
            self._check_z_bounds(graph, state)

    def _check_z_bounds(self, graph: FactorGraph, state: ADMMState) -> None:
        """z must lie within [min, max] of its incoming messages per slot."""
        S = graph.scatter_matrix
        big = np.float64(1e300)
        # Segment min/max via two scatter passes (cheap: one CSR matvec each
        # would not give min/max, so iterate rows through minimum.at).
        zmin = np.full(graph.z_size, big)
        zmax = np.full(graph.z_size, -big)
        np.minimum.at(zmin, graph.flat_edge_to_z, state.m)
        np.maximum.at(zmax, graph.flat_edge_to_z, state.m)
        touched = zmax >= zmin
        tol = 1e-9 * (1.0 + np.abs(state.z))
        low_bad = touched & (state.z < zmin - tol)
        high_bad = touched & (state.z > zmax + tol)
        if low_bad.any() or high_bad.any():
            idx = int(np.flatnonzero(low_bad | high_bad)[0])
            raise InvariantViolation(
                f"z-update not a convex combination at z slot {idx}: "
                f"z={state.z[idx]:.6g} outside [{zmin[idx]:.6g}, {zmax[idx]:.6g}]"
            )
