"""Randomized (asynchronous-style) backend — paper future-work item 1.

Wraps :mod:`repro.core.async_admm` as a :class:`Backend` so the standard
:class:`~repro.core.solver.ADMMSolver` driver (residual checks, schedules,
history) runs the randomized-block ADMM unchanged: each sweep fires only a
random fraction of the factors, modeling an asynchronous system where slow
workers miss rounds.
"""

from __future__ import annotations

import time

from repro.backends.base import Backend
from repro.core.async_admm import AsyncSweepPlan, FleetSweepPlan, run_iteration_async
from repro.core.state import ADMMState
from repro.graph.factor_graph import FactorGraph
from repro.utils.timing import KernelTimers


class RandomizedBackend(Backend):
    """Randomized-block sweeps at a fixed firing fraction."""

    name = "randomized"

    def __init__(self, fraction: float = 0.5, seed: int | None = None) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = float(fraction)
        self.seed = seed
        self._plan: AsyncSweepPlan | None = None
        self._graph: FactorGraph | None = None

    def prepare(self, graph: FactorGraph) -> None:
        if self._graph is not graph:
            self._graph = graph
            self._plan = AsyncSweepPlan(graph, self.fraction, self.seed)

    def run(
        self,
        graph: FactorGraph,
        state: ADMMState,
        iterations: int,
        timers: KernelTimers | None = None,
    ) -> None:
        if iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {iterations}")
        self.prepare(graph)
        assert self._plan is not None
        if timers is None:
            for _ in range(iterations):
                run_iteration_async(graph, state, self._plan.draw())
            return
        # The five phases are fused inside run_iteration_async; attribute
        # the whole sweep to the x timer (dominant phase) for accounting.
        for _ in range(iterations):
            t0 = time.perf_counter()
            run_iteration_async(graph, state, self._plan.draw())
            timers["x"].elapsed += time.perf_counter() - t0
            timers["x"].calls += 1


class FleetRandomizedBackend(RandomizedBackend):
    """Randomized-block sweeps over a batched fleet, per-instance streams.

    Backend form of :class:`repro.core.async_admm.FleetSweepPlan`: plug into
    :class:`repro.core.batched.BatchedSolver` and every instance of the
    fleet follows exactly the randomized trajectory a solo
    :class:`RandomizedBackend` with seed ``seed + instance_offset + i``
    would produce on that instance alone.  ``instance_offset`` makes shard
    backends (covering global instances ``[lo, hi)``) draw the unsharded
    fleet's streams.  The sweep loop is inherited; only the plan (fleet
    masks instead of whole-graph masks) differs.
    """

    name = "fleet_randomized"

    def __init__(
        self,
        batch,
        fraction: float = 0.5,
        seed: int | None = None,
        instance_offset: int = 0,
    ) -> None:
        super().__init__(fraction=fraction, seed=seed)
        self.batch = batch
        self.instance_offset = int(instance_offset)

    def rebind(self, batch) -> None:
        """Re-bind to a resized batch (the elastic add/remove path).

        The per-instance streams restart from their seeds for the new
        fleet layout — sweep history is not replayed across a resize.
        """
        self.batch = batch
        self._plan = None
        self._graph = None

    def prepare(self, graph: FactorGraph) -> None:
        if graph is not self.batch.graph:
            raise ValueError(
                "FleetRandomizedBackend is bound to its batch's graph; "
                "got a different graph (after an elastic resize, call "
                "rebind(new_batch) — BatchedSolver's elastic methods do)"
            )
        if self._plan is None:
            self._plan = FleetSweepPlan(
                self.batch, self.fraction, self.seed, self.instance_offset
            )
            self._graph = graph
