"""Persistent-worker backend — the paper's second OpenMP approach.

"We create a parallel section in which each thread processes all updates
across multiple iterations (this approach requires barriers to synchronize
threads between update types)."  Here each worker thread owns a fixed
contiguous range of every element kind, loops over all iterations
internally, and meets the other workers at a :class:`threading.Barrier`
between kernels — a direct transcription of the paper's Figure 4
(bottom), ``AssignThreads`` included (via ``contiguous_chunks``).

The paper found this approach slower than the five-parallel-for-loops one in
all three problems; the ablation bench checks the same ordering here.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.backends.base import Backend
from repro.core import updates
from repro.core.state import ADMMState
from repro.graph.factor_graph import FactorGraph
from repro.graph.partition import contiguous_chunks
from repro.utils.timing import KernelTimers

#: Kernel phases in execution order (x handled separately per group).
_EDGE_PHASES = ("m", "u", "n")


class PersistentWorkerBackend(Backend):
    """One parallel region for the whole run, explicit barriers (OpenMP #2)."""

    name = "persistent"

    def __init__(self, num_workers: int = 2) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = int(num_workers)

    def run(
        self,
        graph: FactorGraph,
        state: ADMMState,
        iterations: int,
        timers: KernelTimers | None = None,
    ) -> None:
        if iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {iterations}")
        if iterations == 0:
            return
        k = self.num_workers
        slot_chunks = contiguous_chunks(graph.edge_size, k)
        z_chunks = contiguous_chunks(graph.z_size, k)
        z_subs = [graph.scatter_matrix[z0:z1] for z0, z1 in z_chunks]
        group_chunks = [contiguous_chunks(g.size, k) for g in graph.groups]
        scratch = np.empty(graph.edge_size)
        barrier = threading.Barrier(k)
        errors: list[BaseException] = []
        phase_times = {kname: 0.0 for kname in ("x", "m", "z", "u", "n")}

        def worker(w: int) -> None:
            s0, s1 = slot_chunks[w]
            z0, z1 = z_chunks[w]
            z_sub = z_subs[w]
            try:
                for _ in range(iterations):
                    t = time.perf_counter() if w == 0 else 0.0
                    # x-update: each worker takes its row range of each group.
                    for gi, g in enumerate(graph.groups):
                        r0, r1 = group_chunks[gi][w]
                        updates.x_update_group_range(graph, state, g, r0, r1)
                    barrier.wait()
                    if w == 0:
                        phase_times["x"] += time.perf_counter() - t
                        t = time.perf_counter()
                    updates.m_update_range(graph, state, s0, s1)
                    barrier.wait()
                    if w == 0:
                        phase_times["m"] += time.perf_counter() - t
                        t = time.perf_counter()
                    updates.weighted_m_range(graph, state, scratch, s0, s1)
                    barrier.wait()
                    if z1 > z0:
                        num = z_sub @ scratch
                        den = state.rho_den[z0:z1]
                        np.divide(num, den, out=state.z[z0:z1], where=den > 0.0)
                    barrier.wait()
                    if w == 0:
                        phase_times["z"] += time.perf_counter() - t
                        t = time.perf_counter()
                    updates.u_update_range(graph, state, s0, s1)
                    barrier.wait()
                    if w == 0:
                        phase_times["u"] += time.perf_counter() - t
                        t = time.perf_counter()
                    updates.n_update_range(graph, state, s0, s1)
                    barrier.wait()
                    if w == 0:
                        phase_times["n"] += time.perf_counter() - t
            except BaseException as exc:  # surface to the caller
                errors.append(exc)
                barrier.abort()

        threads = [
            threading.Thread(target=worker, args=(w,), name=f"paradmm-pw{w}")
            for w in range(k)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]
        state.iteration += iterations
        if timers is not None:
            for kname, secs in phase_times.items():
                timers[kname].elapsed += secs
                timers[kname].calls += iterations
