"""Threaded chunked backend — the paper's first OpenMP approach.

"At each iteration we run, in sequence, five parallel for-loops … each
parallel for-loop updates all variables of the same kind."  Here each
parallel for-loop is the vectorized kernel split into contiguous chunks, one
chunk per worker thread, with an implicit barrier (wait-for-all) after every
kernel.  NumPy releases the GIL inside array operations, so chunks of
sufficient size execute concurrently.

The z-update runs in two barrier-separated stages (scratch ``ρ ⊙ m`` then
CSR row-block mat-vecs); the row blocks can be split either by equal slot
counts (``balance="slots"``) or by equal incident-edge counts
(``balance="edges"`` — the conclusion's rebalancing scheduler, which guards
against one high-degree variable serializing the kernel).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, wait

import numpy as np

from repro.backends.base import Backend
from repro.core import updates
from repro.core.state import ADMMState
from repro.graph.factor_graph import FactorGraph
from repro.graph.partition import contiguous_chunks
from repro.utils.timing import KernelTimers

#: Groups smaller than this run inline — thread dispatch would dominate.
MIN_PARALLEL_ROWS = 64
MIN_PARALLEL_SLOTS = 2048


def edge_balanced_boundaries(graph: FactorGraph, k: int) -> list[tuple[int, int]]:
    """Split z slots into ``k`` ranges with near-equal incident-edge counts.

    Boundaries are chosen on the cumulative scatter-matrix row sizes (one row
    per z slot), so a range's work is proportional to the messages it
    averages rather than to how many slots it covers.
    """
    nnz = np.diff(graph.scatter_matrix.indptr)
    total = int(nnz.sum())
    if total == 0 or k <= 1:
        return [(0, graph.z_size)] + [(graph.z_size, graph.z_size)] * (k - 1)
    cum = np.concatenate([[0], np.cumsum(nnz)])
    targets = [round(total * i / k) for i in range(1, k)]
    cuts = [int(np.searchsorted(cum, t)) for t in targets]
    bounds = [0, *cuts, graph.z_size]
    return [(bounds[i], bounds[i + 1]) for i in range(k)]


class ThreadedBackend(Backend):
    """Five barrier-separated parallel for-loops per iteration (OpenMP #1)."""

    name = "threaded"

    def __init__(self, num_workers: int = 2, balance: str = "slots") -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if balance not in ("slots", "edges"):
            raise ValueError(f"balance must be 'slots' or 'edges', got {balance!r}")
        self.num_workers = int(num_workers)
        self.balance = balance
        self._pool: ThreadPoolExecutor | None = None
        self._graph: FactorGraph | None = None
        self._slot_chunks: list[tuple[int, int]] = []
        self._z_chunks: list[tuple[int, int]] = []
        self._z_submatrices: list = []
        self._scratch: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    def prepare(self, graph: FactorGraph) -> None:
        if self._graph is graph:
            return
        self._graph = graph
        self._slot_chunks = contiguous_chunks(graph.edge_size, self.num_workers)
        if self.balance == "edges":
            self._z_chunks = edge_balanced_boundaries(graph, self.num_workers)
        else:
            self._z_chunks = contiguous_chunks(graph.z_size, self.num_workers)
        # Pre-slice the scatter matrix so iterations pay no slicing cost.
        self._z_submatrices = [
            graph.scatter_matrix[z0:z1] for z0, z1 in self._z_chunks
        ]
        self._scratch = np.empty(graph.edge_size)
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_workers, thread_name_prefix="paradmm"
            )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._graph = None

    # ------------------------------------------------------------------ #
    def _parallel(self, tasks) -> None:
        """Submit tasks and barrier-wait; surface the first exception."""
        assert self._pool is not None
        futures = [self._pool.submit(t) for t in tasks]
        done, _ = wait(futures)
        for f in done:
            exc = f.exception()
            if exc is not None:
                raise exc

    def _x_phase(self, graph: FactorGraph, state: ADMMState) -> None:
        for g in graph.groups:
            if g.size < MIN_PARALLEL_ROWS or self.num_workers == 1:
                updates.x_update_group(graph, state, g)
                continue
            chunks = contiguous_chunks(g.size, self.num_workers)
            self._parallel(
                [
                    (lambda r0=r0, r1=r1, g=g: updates.x_update_group_range(
                        graph, state, g, r0, r1
                    ))
                    for r0, r1 in chunks
                ]
            )

    def _edge_phase(self, fn, graph: FactorGraph, state: ADMMState) -> None:
        if graph.edge_size < MIN_PARALLEL_SLOTS or self.num_workers == 1:
            fn(graph, state, 0, graph.edge_size)
            return
        self._parallel(
            [
                (lambda s0=s0, s1=s1: fn(graph, state, s0, s1))
                for s0, s1 in self._slot_chunks
            ]
        )

    def _z_phase(self, graph: FactorGraph, state: ADMMState) -> None:
        scratch = self._scratch
        assert scratch is not None
        if graph.edge_size < MIN_PARALLEL_SLOTS or self.num_workers == 1:
            np.multiply(state.rho_slots, state.m, out=scratch)
            updates.z_update(graph, state)
            return
        # Stage 1: scratch = rho ⊙ m, chunked.
        self._parallel(
            [
                (lambda s0=s0, s1=s1: updates.weighted_m_range(
                    graph, state, scratch, s0, s1
                ))
                for s0, s1 in self._slot_chunks
            ]
        )

        # Stage 2: z row-blocks via pre-sliced CSR submatrices.
        def z_block(i: int) -> None:
            z0, z1 = self._z_chunks[i]
            if z0 >= z1:
                return
            num = self._z_submatrices[i] @ scratch
            den = state.rho_den[z0:z1]
            np.divide(num, den, out=state.z[z0:z1], where=den > 0.0)

        self._parallel([(lambda i=i: z_block(i)) for i in range(self.num_workers)])

    # ------------------------------------------------------------------ #
    def run(
        self,
        graph: FactorGraph,
        state: ADMMState,
        iterations: int,
        timers: KernelTimers | None = None,
    ) -> None:
        if iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {iterations}")
        self.prepare(graph)
        for _ in range(iterations):
            if timers is None:
                self._x_phase(graph, state)
                self._edge_phase(updates.m_update_range, graph, state)
                self._z_phase(graph, state)
                self._edge_phase(updates.u_update_range, graph, state)
                self._edge_phase(updates.n_update_range, graph, state)
            else:
                with timers["x"]:
                    self._x_phase(graph, state)
                with timers["m"]:
                    self._edge_phase(updates.m_update_range, graph, state)
                with timers["z"]:
                    self._z_phase(graph, state)
                with timers["u"]:
                    self._edge_phase(updates.u_update_range, graph, state)
                with timers["n"]:
                    self._edge_phase(updates.n_update_range, graph, state)
            state.iteration += 1
