"""Shared-memory multiprocess backend — multicore scaling of the baseline.

Partitions each of the five per-element loops across OS processes (true
cores, no GIL), with the iterate living in shared memory and a
:class:`multiprocessing.Barrier` between kernels — the closest Python analog
of the paper's OpenMP runs of the serial C code on a shared-memory
multi-processor machine.

Workers are forked once per graph (inheriting the graph and prox objects —
the analog of the one-time ``copyGraphFromCPUtoGPU``); each ``run()`` call
copies the iterate into shared memory, broadcasts a run command, waits for
completion, and copies the iterate back.
"""

from __future__ import annotations

import multiprocessing as mp
import time

import numpy as np

from repro.backends.base import Backend
from repro.core import updates
from repro.core.state import ADMMState
from repro.graph.factor_graph import FactorGraph
from repro.graph.partition import contiguous_chunks
from repro.utils.timing import KernelTimers

_PHASES = ("x", "m", "z", "u", "n")


class _SharedState:
    """Duck-typed stand-in for :class:`ADMMState` over shared buffers."""

    __slots__ = ("x", "m", "u", "n", "z", "rho", "alpha")

    def __init__(self, x, m, u, n, z, rho, alpha):
        self.x, self.m, self.u, self.n, self.z = x, m, u, n, z
        self.rho, self.alpha = rho, alpha


def _as_np(raw) -> np.ndarray:
    return np.frombuffer(raw, dtype=np.float64)


def state_sizes(graph: FactorGraph) -> list[int]:
    """The seven shared-mirror array lengths of ``graph``.

    Order is the canonical shared-memory mirror order ``x, m, u, n, z,
    rho, alpha`` — the one :func:`shared_state_buffers` allocates and the
    push/pull helpers in :mod:`repro.core.sharded` spell out.
    """
    return [
        graph.edge_size,  # x
        graph.edge_size,  # m
        graph.edge_size,  # u
        graph.edge_size,  # n
        graph.z_size,  # z
        graph.num_edges,  # rho
        graph.num_edges,  # alpha
    ]


def shared_state_buffers(ctx, graph: FactorGraph):
    """Allocate one shared-memory block per iterate family of ``graph``.

    Returns ``(raws, views, sizes)`` for the seven arrays
    ``x, m, u, n, z, rho, alpha`` (in that order) — the mirror every
    shared-memory worker scheme uses (:class:`ProcessBackend` here, the
    shard workers of :class:`repro.core.sharded.ShardedBatchedSolver`).
    """
    sizes = state_sizes(graph)
    raws = [ctx.RawArray("d", max(s, 1)) for s in sizes]
    views = [_as_np(r)[:s] for r, s in zip(raws, sizes)]
    return raws, views, sizes


def shared_capacity_buffers(ctx, capacities):
    """Allocate capacity-bound shared blocks, one per mirror array.

    ``capacities`` are maximum lengths in :func:`state_sizes` order; the
    owner cuts views down to the currently bound graph's true sizes (a
    prefix of each block).  This is the roster-slack scheme of
    :class:`repro.core.rebalance.RebalancingShardedSolver`: a worker whose
    roster grows or shrinks within its capacities keeps its buffers — only
    the view lengths change — so steals and elastic resizes never
    reallocate or reattach shared memory.
    """
    return [ctx.RawArray("d", max(int(c), 1)) for c in capacities]


def _worker_main(w, graph, raws, ranges, barrier, cmd_q, done_q):
    """Worker loop: execute run commands over this worker's element ranges."""
    state = _SharedState(*[_as_np(r) for r in raws])
    (f0, f1), (e0, e1), (v0, v1) = ranges
    while True:
        cmd = cmd_q.get()
        if cmd[0] == "stop":
            return
        iterations = cmd[1]
        phase_times = dict.fromkeys(_PHASES, 0.0)
        for _ in range(iterations):
            t = time.perf_counter()
            for a in range(f0, f1):
                updates.x_update_factor(graph, state, a)
            barrier.wait()
            phase_times["x"] += time.perf_counter() - t
            t = time.perf_counter()
            for e in range(e0, e1):
                updates.m_update_edge(graph, state, e)
            barrier.wait()
            phase_times["m"] += time.perf_counter() - t
            t = time.perf_counter()
            for b in range(v0, v1):
                updates.z_update_var(graph, state, b)
            barrier.wait()
            phase_times["z"] += time.perf_counter() - t
            t = time.perf_counter()
            for e in range(e0, e1):
                updates.u_update_edge(graph, state, e)
            barrier.wait()
            phase_times["u"] += time.perf_counter() - t
            t = time.perf_counter()
            for e in range(e0, e1):
                updates.n_update_edge(graph, state, e)
            barrier.wait()
            phase_times["n"] += time.perf_counter() - t
        done_q.put((w, phase_times))


class ProcessBackend(Backend):
    """Per-element loops partitioned over forked processes (shared memory)."""

    name = "process"

    def __init__(self, num_workers: int = 2) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = int(num_workers)
        self._graph: FactorGraph | None = None
        self._procs: list[mp.Process] = []
        self._cmd_qs: list = []
        self._done_q = None
        self._raws: list = []
        self._views: list[np.ndarray] = []

    # ------------------------------------------------------------------ #
    def prepare(self, graph: FactorGraph) -> None:
        if self._graph is graph:
            return
        self.close()
        ctx = mp.get_context("fork")
        self._raws, self._views, _ = shared_state_buffers(ctx, graph)
        barrier = ctx.Barrier(self.num_workers)
        self._done_q = ctx.Queue()
        self._cmd_qs = [ctx.Queue() for _ in range(self.num_workers)]
        f_chunks = contiguous_chunks(graph.num_factors, self.num_workers)
        e_chunks = contiguous_chunks(graph.num_edges, self.num_workers)
        v_chunks = contiguous_chunks(graph.num_vars, self.num_workers)
        self._procs = []
        for w in range(self.num_workers):
            ranges = (f_chunks[w], e_chunks[w], v_chunks[w])
            p = ctx.Process(
                target=_worker_main,
                args=(
                    w,
                    graph,
                    self._raws,
                    ranges,
                    barrier,
                    self._cmd_qs[w],
                    self._done_q,
                ),
                daemon=True,
            )
            p.start()
            self._procs.append(p)
        self._graph = graph

    def close(self) -> None:
        for q in self._cmd_qs:
            try:
                q.put(("stop",))
            except Exception:
                pass
        for p in self._procs:
            p.join(timeout=5)
            if p.is_alive():
                p.terminate()
        self._procs = []
        self._cmd_qs = []
        self._done_q = None
        self._graph = None
        self._raws = []
        self._views = []

    # ------------------------------------------------------------------ #
    def run(
        self,
        graph: FactorGraph,
        state: ADMMState,
        iterations: int,
        timers: KernelTimers | None = None,
    ) -> None:
        if iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {iterations}")
        if iterations == 0:
            return
        self.prepare(graph)
        xv, mv, uv, nv, zv, rv, av = self._views
        xv[:] = state.x
        mv[:] = state.m
        uv[:] = state.u
        nv[:] = state.n
        zv[:] = state.z
        rv[:] = state.rho
        av[:] = state.alpha
        for q in self._cmd_qs:
            q.put(("run", iterations))
        worker_times: dict[int, dict[str, float]] = {}
        for _ in range(self.num_workers):
            w, phase_times = self._done_q.get()
            worker_times[w] = phase_times
        state.x[:] = xv
        state.m[:] = mv
        state.u[:] = uv
        state.n[:] = nv
        state.z[:] = zv
        state.iteration += iterations
        if timers is not None:
            # Barrier semantics: per phase, the wall time is the max across
            # workers (every worker waits for the slowest).
            for kname in _PHASES:
                timers[kname].elapsed += max(
                    wt[kname] for wt in worker_times.values()
                )
                timers[kname].calls += iterations
