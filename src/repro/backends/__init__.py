"""Execution backends: serial, vectorized, threaded, persistent, process."""

from repro.backends.base import Backend
from repro.backends.serial import SerialBackend
from repro.backends.vectorized import ThreeWeightBackend, VectorizedBackend
from repro.backends.threaded import ThreadedBackend, edge_balanced_boundaries
from repro.backends.persistent import PersistentWorkerBackend
from repro.backends.process import ProcessBackend
from repro.backends.randomized import FleetRandomizedBackend, RandomizedBackend
from repro.backends.validating import InvariantViolation, ValidatingBackend

__all__ = [
    "Backend",
    "SerialBackend",
    "VectorizedBackend",
    "ThreeWeightBackend",
    "ThreadedBackend",
    "edge_balanced_boundaries",
    "PersistentWorkerBackend",
    "ProcessBackend",
    "RandomizedBackend",
    "FleetRandomizedBackend",
    "InvariantViolation",
    "ValidatingBackend",
]
