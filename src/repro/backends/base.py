"""Backend protocol: how the five kernels are scheduled onto hardware.

A backend owns the *inner* loop — given a graph and a state, advance the
iterate by N Algorithm-2 sweeps.  All backends execute the identical math
from :mod:`repro.core.updates`; they differ only in scheduling:

================  ====================================================
SerialBackend     one Python loop per kernel, one element at a time —
                  the paper's single-core C baseline role
VectorizedBackend one batched NumPy op per kernel — the GPU analog
ThreadedBackend   chunked batched ops on a persistent thread pool —
                  the paper's first OpenMP approach (five parallel
                  for-loops, implicit barrier after each)
PersistentWorkerBackend
                  long-lived workers with explicit barriers between
                  kernels — the paper's second OpenMP approach
ProcessBackend    per-element loops partitioned over processes with
                  shared-memory state — multicore scaling of the
                  serial baseline
================  ====================================================
"""

from __future__ import annotations

import abc

from repro.core.state import ADMMState
from repro.graph.factor_graph import FactorGraph
from repro.utils.timing import KernelTimers


class Backend(abc.ABC):
    """Executes Algorithm-2 iterations on a factor graph."""

    name: str = "backend"

    def prepare(self, graph: FactorGraph) -> None:
        """One-time precomputation for a graph (chunk plans, pools, …).

        Called by :class:`repro.core.solver.ADMMSolver` at construction; safe
        to call repeatedly (re-prepares when the graph changes).
        """

    @abc.abstractmethod
    def run(
        self,
        graph: FactorGraph,
        state: ADMMState,
        iterations: int,
        timers: KernelTimers | None = None,
    ) -> None:
        """Advance ``state`` by ``iterations`` full sweeps (in place).

        ``timers``, when given, accumulates per-kernel wall time (the
        source of the paper's per-update time fractions).
        """

    def close(self) -> None:
        """Release pools/processes (default: nothing)."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"{type(self).__name__}()"
