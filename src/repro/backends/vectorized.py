"""Vectorized NumPy backend — the fine-grained data-parallel engine.

Each of the five kernels becomes one batched array operation over *all*
elements of its kind: the x-update is one ``prox_batch`` call per factor
group (one matrix row per factor — the analog of one CUDA thread per
factor), m/u/n are single fused array expressions over the flat edge
arrays, and the z-update is two sparse mat-vecs.  This is the reproduction's
stand-in for the paper's GPU execution: identical math, identical
memory-layout concerns (contiguous-slice vs. gathered groups), with the SIMT
hardware replaced by SIMD-over-arrays.
"""

from __future__ import annotations

from repro.backends.base import Backend
from repro.core import updates
from repro.core.state import ADMMState
from repro.core.three_weight import run_iteration_twa
from repro.graph.factor_graph import FactorGraph
from repro.utils.timing import KernelTimers


class VectorizedBackend(Backend):
    """One batched NumPy operation per kernel (the GPU-analog engine)."""

    name = "vectorized"

    def run(
        self,
        graph: FactorGraph,
        state: ADMMState,
        iterations: int,
        timers: KernelTimers | None = None,
    ) -> None:
        if iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {iterations}")
        if timers is None:
            for _ in range(iterations):
                updates.run_iteration(graph, state)
            return
        for _ in range(iterations):
            with timers["x"]:
                updates.x_update(graph, state)
            with timers["m"]:
                updates.m_update(graph, state)
            with timers["z"]:
                updates.z_update(graph, state)
            with timers["u"]:
                updates.u_update(graph, state)
            with timers["n"]:
                updates.n_update(graph, state)
            state.iteration += 1


class ThreeWeightBackend(Backend):
    """Vectorized engine running the three-weight algorithm of [9].

    Same scheduling as :class:`VectorizedBackend`; the z/u updates use the
    per-edge certainty weights emitted by each operator's
    ``outgoing_weights`` hook (see :mod:`repro.core.three_weight`).
    """

    name = "three_weight"

    def run(
        self,
        graph: FactorGraph,
        state: ADMMState,
        iterations: int,
        timers: KernelTimers | None = None,
    ) -> None:
        if iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {iterations}")
        if timers is None:
            for _ in range(iterations):
                run_iteration_twa(graph, state)
            return
        import numpy as np

        from repro.core.three_weight import (
            u_update_weighted,
            x_update_with_weights,
            z_update_weighted,
        )

        for _ in range(iterations):
            with timers["x"]:
                x_update_with_weights(graph, state)
            with timers["m"]:
                np.add(state.x, state.u, out=state.m)
            with timers["z"]:
                z_update_weighted(graph, state)
            with timers["u"]:
                u_update_weighted(graph, state)
            with timers["n"]:
                np.subtract(state.z[graph.flat_edge_to_z], state.u, out=state.n)
            state.iteration += 1
