"""Vectorized NumPy backend — the fine-grained data-parallel engine.

Each of the five kernels becomes one batched array operation over *all*
elements of its kind: the x-update is one ``prox_batch`` call per factor
group (one matrix row per factor — the analog of one CUDA thread per
factor), m/u/n are single fused array expressions over the flat edge
arrays, and the z-update is two sparse mat-vecs.  This is the reproduction's
stand-in for the paper's GPU execution: identical math, identical
memory-layout concerns (contiguous-slice vs. gathered groups), with the SIMT
hardware replaced by SIMD-over-arrays.
"""

from __future__ import annotations

from repro.backends.base import Backend
from repro.core import updates
from repro.core.state import ADMMState
from repro.core.three_weight import run_iteration_twa
from repro.graph.factor_graph import FactorGraph
from repro.utils.timing import KernelTimers


class VectorizedBackend(Backend):
    """One batched NumPy operation per kernel (the GPU-analog engine)."""

    name = "vectorized"

    def run(
        self,
        graph: FactorGraph,
        state: ADMMState,
        iterations: int,
        timers: KernelTimers | None = None,
    ) -> None:
        if iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {iterations}")
        if timers is None:
            for _ in range(iterations):
                updates.run_iteration(graph, state)
            return
        for _ in range(iterations):
            updates.run_iteration_timed(graph, state, timers)


class ThreeWeightBackend(Backend):
    """Vectorized engine running the three-weight algorithm of [9].

    Same scheduling as :class:`VectorizedBackend`; the z/u updates use the
    per-edge certainty weights emitted by each operator's
    ``outgoing_weights`` hook (see :mod:`repro.core.three_weight`).
    """

    name = "three_weight"

    def run(
        self,
        graph: FactorGraph,
        state: ADMMState,
        iterations: int,
        timers: KernelTimers | None = None,
    ) -> None:
        if iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {iterations}")
        for _ in range(iterations):
            run_iteration_twa(graph, state, timers)
