"""Serial per-element backend — the single-core baseline.

Executes the five kernels as plain Python loops over graph elements, calling
the single-factor ``prox`` path.  This backend plays the role of the paper's
"serial, optimized C-version of the ADMM": one sequential instruction stream
handling one graph element at a time.  All reported speedups of the other
backends are measured against it, exactly as the paper reports speedup over
its serial C implementation.
"""

from __future__ import annotations

from repro.backends.base import Backend
from repro.core import updates
from repro.core.state import ADMMState
from repro.graph.factor_graph import FactorGraph
from repro.utils.timing import KernelTimers


class SerialBackend(Backend):
    """One Python loop per kernel, one element per loop step."""

    name = "serial"

    def run(
        self,
        graph: FactorGraph,
        state: ADMMState,
        iterations: int,
        timers: KernelTimers | None = None,
    ) -> None:
        if iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {iterations}")
        if timers is None:
            for _ in range(iterations):
                updates.run_iteration_serial(graph, state)
            return
        for _ in range(iterations):
            with timers["x"]:
                for a in range(graph.num_factors):
                    updates.x_update_factor(graph, state, a)
            with timers["m"]:
                for e in range(graph.num_edges):
                    updates.m_update_edge(graph, state, e)
            with timers["z"]:
                for b in range(graph.num_vars):
                    updates.z_update_var(graph, state, b)
            with timers["u"]:
                for e in range(graph.num_edges):
                    updates.u_update_edge(graph, state, e)
            with timers["n"]:
                for e in range(graph.num_edges):
                    updates.n_update_edge(graph, state, e)
            state.iteration += 1
