"""Soft-margin SVM training (paper §V-C + Appendix C).

Every data point carries its own plane copy ``(wᵢ, bᵢ)`` and slack ``ξᵢ``;
copies are chained equal, so the consensus plane emerges from the z-update.
"This makes the distribution of the number of edges-per-node in the
factor-graph more equilibrated" — each plane node has degree ≤ 4 regardless
of N.

Factor families (one per data point): norm ``(1/2N)||wᵢ||²``, slack
``λξᵢ + ind(ξᵢ ≥ 0)``, margin ``yᵢ(wᵢᵀxᵢ + bᵢ) ≥ 1 − ξᵢ``, and a chain of
N−1 plane-equality factors.  Edge count ``6N − 2`` — linear in N, as the
paper notes.

:func:`make_blobs` draws the paper's synthetic workload ("N random data
points from two Gaussian distributions with mean a certain distance apart");
:func:`solve_svm_reference` computes the exact primal optimum of the same QP
with SLSQP for cross-validation on small instances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.optimize as sopt

from repro.core.solver import ADMMSolver
from repro.core.stopping import MaxIterations
from repro.graph.builder import GraphBuilder
from repro.graph.factor_graph import FactorGraph
from repro.prox.standard import ConsensusEqualProx
from repro.prox.svm import SVMMarginProx, SVMNormProx, SVMSlackProx
from repro.utils.rng import default_rng
from repro.utils.validation import check_positive


def make_blobs(
    n_points: int,
    dim: int = 2,
    separation: float = 3.0,
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Two Gaussians ``separation`` apart along the all-ones direction.

    Returns (X (N, d), y (N,) in {−1, +1}), balanced up to rounding.
    """
    if n_points < 2:
        raise ValueError(f"n_points must be >= 2, got {n_points}")
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    rng = default_rng(seed)
    n_pos = n_points // 2
    n_neg = n_points - n_pos
    offset = (separation / 2.0) * np.ones(dim) / np.sqrt(dim)
    X = np.vstack(
        [
            rng.normal(size=(n_pos, dim)) + offset,
            rng.normal(size=(n_neg, dim)) - offset,
        ]
    )
    y = np.concatenate([np.ones(n_pos), -np.ones(n_neg)])
    perm = rng.permutation(n_points)
    return X[perm], y[perm]


@dataclass
class SVMProblem:
    """One soft-margin SVM training instance."""

    X: np.ndarray
    y: np.ndarray
    lam: float = 1.0
    ring: bool = False  # close the equality chain into a ring

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.float64)
        if self.X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {self.X.shape}")
        if self.y.shape != (self.X.shape[0],):
            raise ValueError(
                f"y must have shape ({self.X.shape[0]},), got {self.y.shape}"
            )
        if not np.all(np.isin(self.y, (-1.0, 1.0))):
            raise ValueError("labels must be in {-1, +1}")
        check_positive(self.lam, "lam")

    @property
    def n_points(self) -> int:
        return int(self.X.shape[0])

    @property
    def dim(self) -> int:
        return int(self.X.shape[1])

    @property
    def expected_edges(self) -> int:
        n = self.n_points
        chain = 2 * (n if self.ring else n - 1)
        return n + n + 2 * n + chain

    # ------------------------------------------------------------------ #
    def build_graph(self) -> FactorGraph:
        """Assemble the Figure-12 factor graph."""
        n, d = self.n_points, self.dim
        b = GraphBuilder()
        planes = [b.add_variable(d + 1, name=f"plane{i}") for i in range(n)]
        slacks = [b.add_variable(1, name=f"xi{i}") for i in range(n)]
        norm = SVMNormProx(d, kappa=1.0 / n)
        slack = SVMSlackProx(self.lam)
        margin = SVMMarginProx(d)
        equal = ConsensusEqualProx(k=2, dim=d + 1)
        for i in range(n):
            b.add_factor(norm, [planes[i]])
        for i in range(n):
            b.add_factor(slack, [slacks[i]])
        for i in range(n):
            b.add_factor(
                margin, [planes[i], slacks[i]], params={"x": self.X[i], "y": self.y[i]}
            )
        last = n if self.ring else n - 1
        for i in range(last):
            b.add_factor(equal, [planes[i], planes[(i + 1) % n]])
        return b.build()

    def extract(self, z: np.ndarray) -> tuple[np.ndarray, float, np.ndarray]:
        """Consensus (w, b) — mean over plane copies — and the slacks."""
        n, d = self.n_points, self.dim
        planes = z[: n * (d + 1)].reshape(n, d + 1)
        w = planes[:, :d].mean(axis=0)
        b = float(planes[:, d].mean())
        slacks = z[n * (d + 1) :].copy()
        return w, b, slacks

    # ------------------------------------------------------------------ #
    def objective(self, w: np.ndarray, b: float) -> float:
        """Primal objective ½||w||² + λ Σ max(0, 1 − y(wᵀx + b))."""
        margins = self.y * (self.X @ w + b)
        hinge = np.maximum(0.0, 1.0 - margins)
        return float(0.5 * np.dot(w, w) + self.lam * hinge.sum())

    def accuracy(self, w: np.ndarray, b: float) -> float:
        """Training accuracy of the separating plane."""
        pred = np.sign(self.X @ w + b)
        pred[pred == 0] = 1.0
        return float(np.mean(pred == self.y))


def build_batch(problems: "Sequence[SVMProblem]") -> "GraphBatch":
    """Stack a fleet of same-shaped SVM training instances into one graph.

    All instances must share ``n_points``, ``dim``, ``lam`` and ``ring``
    (those live in the shared operators / topology); the per-point data
    ``(x_i, y_i)`` varies per instance through the margin-factor parameters.
    The fleet trains ``B`` classifiers — e.g. per-user models — in one
    vectorized sweep.
    """
    from repro.graph.batch import replicate_graph

    if not problems:
        raise ValueError("build_batch needs at least one SVMProblem")
    first = problems[0]
    n = first.n_points
    for j, p in enumerate(problems[1:], start=1):
        if (
            p.n_points != n
            or p.dim != first.dim
            or p.lam != first.lam
            or p.ring != first.ring
        ):
            raise ValueError(
                f"problem {j} has (n_points, dim, lam, ring)="
                f"({p.n_points}, {p.dim}, {p.lam}, {p.ring}); expected "
                f"({n}, {first.dim}, {first.lam}, {first.ring})"
            )
    template = first.build_graph()
    # build_graph order: norm 0..n-1, slack n..2n-1, margin 2n..3n-1, chain.
    overrides = [
        {2 * n + i: {"x": p.X[i], "y": p.y[i]} for i in range(n)}
        for p in problems
    ]
    return replicate_graph(template, len(problems), params_per_instance=overrides)


def solve_svm_reference(problem: SVMProblem) -> tuple[np.ndarray, float, float]:
    """Exact primal QP optimum via SLSQP (small instances only).

    Variables (w, b, ξ); minimize ½||w||² + λΣξ subject to the margin and
    non-negativity constraints.  Returns (w, b, objective).
    """
    n, d = problem.n_points, problem.dim
    X, y, lam = problem.X, problem.y, problem.lam

    def fun(v):
        w = v[:d]
        return 0.5 * float(w @ w) + lam * float(v[d + 1 :].sum())

    def jac(v):
        g = np.zeros_like(v)
        g[:d] = v[:d]
        g[d + 1 :] = lam
        return g

    cons = [
        {
            "type": "ineq",
            "fun": lambda v: y * (X @ v[:d] + v[d]) - 1.0 + v[d + 1 :],
        },
        {"type": "ineq", "fun": lambda v: v[d + 1 :]},
    ]
    v0 = np.zeros(d + 1 + n)
    v0[d + 1 :] = 1.0
    res = sopt.minimize(
        fun, v0, jac=jac, constraints=cons, method="SLSQP",
        options={"maxiter": 500, "ftol": 1e-10},
    )
    w, b = res.x[:d], float(res.x[d])
    return w, b, problem.objective(w, b)


def solve_svm(
    problem: SVMProblem,
    iterations: int = 2000,
    rho: float = 1.0,
    alpha: float = 1.0,
    backend=None,
) -> dict:
    """End-to-end helper: build, solve, evaluate one SVM instance."""
    graph = problem.build_graph()
    solver = ADMMSolver(graph, backend=backend, rho=rho, alpha=alpha)
    result = solver.solve(
        max_iterations=iterations,
        stopping=MaxIterations(iterations),
        check_every=max(iterations // 10, 1),
        init="zeros",
    )
    solver.close()
    w, b, slacks = problem.extract(result.z)
    return {
        "problem": problem,
        "graph": graph,
        "result": result,
        "w": w,
        "b": b,
        "slacks": slacks,
        "objective": problem.objective(w, b),
        "accuracy": problem.accuracy(w, b),
    }
