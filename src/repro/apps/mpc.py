"""Model Predictive Control over a linear system (paper §V-B + Appendix B).

Finite-horizon LQR-style problem (paper Figure 9) for the discrete-time
system ``q(t+1) − q(t) = A q(t) + B u(t)``:

    minimize   Σ_{t=0..K} q(t)ᵀQ q(t) + u(t)ᵀR u(t)   (Q_f on the last step)
    subject to the dynamics for t = 0..K−1 and q(0) = q₀.

Factor graph: one ``(q, u)`` node per time step; a stage-cost factor per
node, a dynamics factor per consecutive node pair, one initial-state factor.
Element counts grow linearly in K (``|E| = 3K + 2``), matching the paper's
"the number of elements in the factor-graph grows linearly with K".

The paper's test system is an inverted pendulum "linearized (around
equilibrium) and sampled (every 40 ms)" with ``A ∈ R⁴ˣ⁴``, ``B ∈ R⁴ˣ¹``;
:func:`inverted_pendulum` reproduces that setup (cart-pole, forward-Euler).

:func:`solve_mpc_exact` computes the exact KKT solution of the same QP with
one sparse solve — the ground truth the ADMM iterates are tested against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.core.batched import BatchedSolver
from repro.core.solver import ADMMSolver
from repro.core.stopping import MaxIterations
from repro.graph.batch import GraphBatch, replicate_graph
from repro.graph.builder import GraphBuilder
from repro.graph.factor_graph import FactorGraph
from repro.prox.mpc import MPCCostProx, make_dynamics_prox, make_initial_state_prox


def inverted_pendulum(dt: float = 0.04) -> tuple[np.ndarray, np.ndarray]:
    """Linearized cart-pole sampled at ``dt`` (paper: 40 ms).

    States ``q = (cart pos, cart vel, pole angle, pole rate)``, input = cart
    force.  Returns the paper-convention pair (A, B) such that
    ``q(t+1) − q(t) = A q(t) + B u(t)`` (forward Euler: A = dt·A_c).
    """
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    M, m, length, g = 1.0, 0.1, 0.5, 9.81
    a22 = -m * g / M
    a42 = (M + m) * g / (M * length)
    A_c = np.array(
        [
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, a22, 0.0],
            [0.0, 0.0, 0.0, 1.0],
            [0.0, 0.0, a42, 0.0],
        ]
    )
    B_c = np.array([[0.0], [1.0 / M], [0.0], [-1.0 / (M * length)]])
    return dt * A_c, dt * B_c


@dataclass
class MPCProblem:
    """One finite-horizon MPC instance."""

    A: np.ndarray
    B: np.ndarray
    q0: np.ndarray
    horizon: int
    q_diag: np.ndarray | None = None  # diag(Q), defaults to ones
    r_diag: np.ndarray | None = None  # diag(R), defaults to ones
    qf_diag: np.ndarray | None = None  # diag(Q_f), defaults to q_diag

    def __post_init__(self) -> None:
        self.A = np.asarray(self.A, dtype=np.float64)
        self.B = np.asarray(self.B, dtype=np.float64)
        self.q0 = np.asarray(self.q0, dtype=np.float64)
        if self.horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {self.horizon}")
        dq = self.A.shape[0]
        if self.A.shape != (dq, dq):
            raise ValueError(f"A must be square, got {self.A.shape}")
        if self.B.ndim != 2 or self.B.shape[0] != dq:
            raise ValueError(f"B must be (dq, du), got {self.B.shape}")
        if self.q0.shape != (dq,):
            raise ValueError(f"q0 must be ({dq},), got {self.q0.shape}")
        self.q_diag = (
            np.ones(dq) if self.q_diag is None else np.asarray(self.q_diag, float)
        )
        self.r_diag = (
            np.ones(self.du)
            if self.r_diag is None
            else np.asarray(self.r_diag, float)
        )
        self.qf_diag = (
            self.q_diag.copy()
            if self.qf_diag is None
            else np.asarray(self.qf_diag, float)
        )
        if np.any(self.q_diag < 0) or np.any(self.r_diag < 0) or np.any(self.qf_diag < 0):
            raise ValueError("cost diagonals must be non-negative")

    @property
    def dq(self) -> int:
        return int(self.A.shape[0])

    @property
    def du(self) -> int:
        return int(self.B.shape[1])

    @property
    def expected_edges(self) -> int:
        # cost: K+1 single-edge factors; dynamics: K two-edge; init: 1.
        return (self.horizon + 1) + 2 * self.horizon + 1

    # ------------------------------------------------------------------ #
    def build_graph(self) -> FactorGraph:
        """Assemble the Figure-9 factor graph."""
        K, dq, du = self.horizon, self.dq, self.du
        b = GraphBuilder()
        nodes = [b.add_variable(dq + du, name=f"t{t}") for t in range(K + 1)]
        cost = MPCCostProx(dq, du)
        dyn = make_dynamics_prox(self.A, self.B)
        init = make_initial_state_prox(dq, du)
        for t in range(K + 1):
            qd = self.qf_diag if t == K else self.q_diag
            b.add_factor(cost, [nodes[t]], params={"qdiag": qd, "rdiag": self.r_diag})
        for t in range(K):
            b.add_factor(dyn, [nodes[t], nodes[t + 1]])
        b.add_factor(init, [nodes[0]], params={"c": self.q0})
        return b.build()

    def extract(self, z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split flat z into trajectories (states (K+1, dq), inputs (K+1, du))."""
        K, dq, du = self.horizon, self.dq, self.du
        traj = z.reshape(K + 1, dq + du)
        return traj[:, :dq].copy(), traj[:, dq:].copy()

    # ------------------------------------------------------------------ #
    def objective(self, states: np.ndarray, inputs: np.ndarray) -> float:
        """Σ qᵀQq + uᵀRu with Q_f on the final state."""
        K = self.horizon
        val = 0.0
        for t in range(K + 1):
            qd = self.qf_diag if t == K else self.q_diag
            val += float(np.dot(qd * states[t], states[t]))
            val += float(np.dot(self.r_diag * inputs[t], inputs[t]))
        return val

    def dynamics_violation(self, states: np.ndarray, inputs: np.ndarray) -> float:
        """Worst violation of the dynamics and initial-state constraints."""
        K = self.horizon
        worst = float(np.max(np.abs(states[0] - self.q0)))
        for t in range(K):
            res = states[t + 1] - states[t] - self.A @ states[t] - self.B @ inputs[t]
            worst = max(worst, float(np.max(np.abs(res))))
        return worst


def solve_mpc_exact(problem: MPCProblem) -> tuple[np.ndarray, np.ndarray, float]:
    """Exact QP solution via the sparse KKT system (ground truth).

    Decision vector y stacks (q(t), u(t)) per step; solve

        [2H  Eᵀ] [y]   [0]
        [E    0] [ν] = [d]

    with H = blkdiag(Q…Q_f, R…R) and E the dynamics + initial constraints.
    Returns (states, inputs, objective).
    """
    K, dq, du = problem.horizon, problem.dq, problem.du
    nvar = (K + 1) * (dq + du)
    hdiag = np.empty(nvar)
    for t in range(K + 1):
        o = t * (dq + du)
        hdiag[o : o + dq] = problem.qf_diag if t == K else problem.q_diag
        hdiag[o + dq : o + dq + du] = problem.r_diag
    H = sp.diags(2.0 * hdiag)
    rows, cols, vals, rhs = [], [], [], []
    r = 0
    # dynamics: q(t+1) − (I+A)q(t) − B u(t) = 0
    IA = np.eye(dq) + problem.A
    for t in range(K):
        o, o2 = t * (dq + du), (t + 1) * (dq + du)
        for i in range(dq):
            for j in range(dq):
                rows.append(r + i), cols.append(o + j), vals.append(-IA[i, j])
            for j in range(du):
                rows.append(r + i), cols.append(o + dq + j), vals.append(
                    -problem.B[i, j]
                )
            rows.append(r + i), cols.append(o2 + i), vals.append(1.0)
        rhs.extend([0.0] * dq)
        r += dq
    # initial state
    for i in range(dq):
        rows.append(r + i), cols.append(i), vals.append(1.0)
        rhs.append(float(problem.q0[i]))
    r += dq
    E = sp.coo_matrix((vals, (rows, cols)), shape=(r, nvar)).tocsr()
    KKT = sp.bmat([[H, E.T], [E, None]], format="csc")
    sol = spla.spsolve(KKT, np.concatenate([np.zeros(nvar), np.asarray(rhs)]))
    y = sol[:nvar]
    traj = y.reshape(K + 1, dq + du)
    states, inputs = traj[:, :dq].copy(), traj[:, dq:].copy()
    return states, inputs, problem.objective(states, inputs)


def default_problem(horizon: int, q0: np.ndarray | None = None) -> MPCProblem:
    """Paper-style pendulum instance with diagonal unit costs."""
    A, B = inverted_pendulum()
    if q0 is None:
        q0 = np.array([0.1, 0.0, 0.05, 0.0])
    return MPCProblem(A=A, B=B, q0=np.asarray(q0, dtype=np.float64), horizon=horizon)


def build_batch(problems: Sequence[MPCProblem]) -> GraphBatch:
    """Stack a fleet of MPC instances into one block-diagonal graph.

    All instances must share the dynamics ``(A, B)``, the horizon, and the
    state/input dimensions — the dynamics constraint matrix lives on the
    shared proximal operator, so only *parameters* may vary per instance:
    the initial state ``q0`` and the cost diagonals flow in through
    ``params_per_instance``.  This is the fleet-control pattern: one plant
    model, one device per instance, one vectorized sweep for all.
    """
    if not problems:
        raise ValueError("build_batch needs at least one MPCProblem")
    first = problems[0]
    K = first.horizon
    for j, p in enumerate(problems[1:], start=1):
        if p.horizon != K or p.dq != first.dq or p.du != first.du:
            raise ValueError(
                f"problem {j} has horizon/dims "
                f"({p.horizon}, {p.dq}, {p.du}); expected "
                f"({K}, {first.dq}, {first.du})"
            )
        if not (np.allclose(p.A, first.A) and np.allclose(p.B, first.B)):
            raise ValueError(
                f"problem {j} has different dynamics (A, B); a batch shares "
                "one plant model — per-instance variation goes through q0 "
                "and the cost diagonals"
            )
    template = first.build_graph()
    # build_graph order: cost factors 0..K, dynamics K+1..2K, initial 2K+1.
    init_factor = 2 * K + 1
    overrides = []
    for p in problems:
        per_factor: dict[int, dict[str, np.ndarray]] = {}
        for t in range(K + 1):
            qd = p.qf_diag if t == K else p.q_diag
            per_factor[t] = {"qdiag": qd, "rdiag": p.r_diag}
        per_factor[init_factor] = {"c": p.q0}
        overrides.append(per_factor)
    return replicate_graph(template, len(problems), params_per_instance=overrides)


def solve_mpc_batch(
    problems: Sequence[MPCProblem],
    iterations: int = 2000,
    rho: float = 10.0,
    alpha: float = 1.0,
    backend=None,
) -> list[dict]:
    """Fleet analog of :func:`solve_mpc`: one dict per instance.

    Runs the full fixed iteration budget (``eps = 0``), matching
    :func:`solve_mpc`'s ``MaxIterations`` protocol, so each instance's
    trajectory equals its solo solve bit-for-bit.
    """
    batch = build_batch(problems)
    solver = BatchedSolver(batch, backend=backend, rho=rho, alpha=alpha)
    try:
        results = solver.solve_batch(
            max_iterations=iterations,
            eps_abs=0.0,
            eps_rel=0.0,
            check_every=max(iterations // 10, 1),
            init="zeros",
        )
    finally:
        solver.close()
    out = []
    for problem, result in zip(problems, results):
        states, inputs = problem.extract(result.z)
        out.append(
            {
                "problem": problem,
                "result": result,
                "states": states,
                "inputs": inputs,
                "objective": problem.objective(states, inputs),
                "dynamics_violation": problem.dynamics_violation(states, inputs),
            }
        )
    return out


def solve_mpc(
    problem: MPCProblem,
    iterations: int = 2000,
    rho: float = 10.0,
    alpha: float = 1.0,
    backend=None,
) -> dict:
    """End-to-end helper: build, solve, validate one MPC instance."""
    graph = problem.build_graph()
    solver = ADMMSolver(graph, backend=backend, rho=rho, alpha=alpha)
    result = solver.solve(
        max_iterations=iterations,
        stopping=MaxIterations(iterations),
        check_every=max(iterations // 10, 1),
        init="zeros",
    )
    solver.close()
    states, inputs = problem.extract(result.z)
    return {
        "problem": problem,
        "graph": graph,
        "result": result,
        "states": states,
        "inputs": inputs,
        "objective": problem.objective(states, inputs),
        "dynamics_violation": problem.dynamics_violation(states, inputs),
    }
