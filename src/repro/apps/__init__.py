"""Paper applications: circle packing, MPC, soft-margin SVM, consensus Lasso."""

from repro.apps.packing import (
    ConvexRegion,
    PackingProblem,
    solve_packing,
    square_region,
    triangle_region,
)
from repro.apps.packing import build_batch as build_packing_batch
from repro.apps.mpc import (
    MPCProblem,
    default_problem,
    inverted_pendulum,
    solve_mpc,
    solve_mpc_batch,
    solve_mpc_exact,
)
from repro.apps.mpc import build_batch as build_mpc_batch
from repro.apps.svm import (
    SVMProblem,
    make_blobs,
    solve_svm,
    solve_svm_reference,
)
from repro.apps.svm import build_batch as build_svm_batch
from repro.apps.lasso import (
    LassoProblem,
    make_lasso_data,
    solve_lasso,
    solve_lasso_fista,
)
from repro.apps.lasso import build_batch as build_lasso_batch

__all__ = [
    "ConvexRegion",
    "PackingProblem",
    "solve_packing",
    "square_region",
    "triangle_region",
    "MPCProblem",
    "default_problem",
    "inverted_pendulum",
    "solve_mpc",
    "solve_mpc_batch",
    "solve_mpc_exact",
    "build_lasso_batch",
    "build_mpc_batch",
    "build_packing_batch",
    "build_svm_batch",
    "SVMProblem",
    "make_blobs",
    "solve_svm",
    "solve_svm_reference",
    "LassoProblem",
    "make_lasso_data",
    "solve_lasso",
    "solve_lasso_fista",
]
