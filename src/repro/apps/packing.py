"""Circle packing in a convex region (paper §V-A + Appendix A).

"Given N non-overlaying disks with center cᵢ and radius rᵢ inside a triangle
T, what is the largest area they can cover?"  An NP-hard, non-convex problem
the ADMM solves heuristically (and, per [9], [24], very well in practice).

Factor-graph decomposition (paper Figure 6):

* variable nodes — N centers (dim 2) and N radii (dim 1);
* ``N(N−1)/2`` pair factors enforcing no collision (4 edges each);
* ``N·S`` wall factors keeping each disk inside each of S half-planes
  (2 edges each);
* ``N`` radius-reward factors maximizing each radius (1 edge each).

Element-count identities (paper §V-A, asserted in tests):
``|E| = 2N² − N + 2NS``, ``|V| = 2N``, ``|F| = N(N−1)/2 + N + NS``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.solver import ADMMSolver
from repro.core.state import ADMMState
from repro.core.stopping import MaxIterations
from repro.graph.builder import GraphBuilder
from repro.graph.factor_graph import FactorGraph
from repro.prox.packing import PairNoCollisionProx, RadiusRewardProx, WallProx
from repro.utils.rng import default_rng


@dataclass(frozen=True)
class ConvexRegion:
    """Intersection of half-planes ``Qₛᵀ(p − Vₛ) ≥ 0`` (inward normals)."""

    normals: np.ndarray  # (S, 2), unit inward normals Q_s
    points: np.ndarray  # (S, 2), a point V_s on each wall
    area: float
    name: str = "region"

    @property
    def num_walls(self) -> int:
        return int(self.normals.shape[0])

    def contains(self, p: np.ndarray, margin: float = 0.0):
        """True where points ``p`` ((n, 2) or (2,)) are ≥ margin inside every wall."""
        p = np.asarray(p, dtype=np.float64)
        single = p.ndim == 1
        pts = np.atleast_2d(p)
        g = np.einsum(
            "sk,nsk->ns", self.normals, pts[:, None, :] - self.points[None, :, :]
        )
        inside = np.all(g >= margin - 1e-12, axis=1)
        return bool(inside[0]) if single else inside

    def wall_violation(self, centers: np.ndarray, radii: np.ndarray) -> float:
        """Worst violation of ``Qᵀ(c − V) ≥ r`` over all disks and walls."""
        g = np.einsum(
            "sk,nsk->ns",
            self.normals,
            centers[:, None, :] - self.points[None, :, :],
        )
        return float(np.maximum(radii[:, None] - g, 0.0).max(initial=0.0))


def triangle_region(vertices: np.ndarray | None = None) -> ConvexRegion:
    """Region bounded by a triangle (default: unit equilateral).

    Normals are oriented inward (towards the centroid).
    """
    if vertices is None:
        vertices = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, np.sqrt(3.0) / 2.0]])
    vertices = np.asarray(vertices, dtype=np.float64)
    if vertices.shape != (3, 2):
        raise ValueError(f"vertices must be (3, 2), got {vertices.shape}")
    centroid = vertices.mean(axis=0)
    normals, points = [], []
    for i in range(3):
        a, b = vertices[i], vertices[(i + 1) % 3]
        edge = b - a
        n = np.array([-edge[1], edge[0]])
        n = n / np.linalg.norm(n)
        if np.dot(n, centroid - a) < 0:
            n = -n
        normals.append(n)
        points.append(a)
    e1 = vertices[1] - vertices[0]
    e2 = vertices[2] - vertices[0]
    area = 0.5 * abs(e1[0] * e2[1] - e1[1] * e2[0])
    return ConvexRegion(
        normals=np.asarray(normals),
        points=np.asarray(points),
        area=float(area),
        name="triangle",
    )


def square_region(side: float = 1.0) -> ConvexRegion:
    """Axis-aligned square [0, side]² (4 walls) — a packing variant."""
    if side <= 0:
        raise ValueError(f"side must be positive, got {side}")
    normals = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
    points = np.array(
        [[0.0, 0.0], [side, 0.0], [0.0, 0.0], [0.0, side]]
    )
    return ConvexRegion(
        normals=normals, points=points, area=float(side * side), name="square"
    )


@dataclass
class PackingProblem:
    """N-disk packing instance over a convex region."""

    n_disks: int
    region: ConvexRegion = field(default_factory=triangle_region)
    kappa: float = 1.0  # radius-reward curvature (paper: 1)

    def __post_init__(self) -> None:
        if self.n_disks < 1:
            raise ValueError(f"n_disks must be >= 1, got {self.n_disks}")

    # Expected element counts (paper §V-A formulas).
    @property
    def expected_edges(self) -> int:
        n, s = self.n_disks, self.region.num_walls
        return 2 * n * n - n + 2 * n * s

    @property
    def expected_vars(self) -> int:
        return 2 * self.n_disks

    @property
    def expected_factors(self) -> int:
        n, s = self.n_disks, self.region.num_walls
        return n * (n - 1) // 2 + n + n * s

    # ------------------------------------------------------------------ #
    def build_graph(self) -> FactorGraph:
        """Assemble the Figure-6 factor graph (families added contiguously)."""
        n = self.n_disks
        b = GraphBuilder()
        centers = [b.add_variable(2, name=f"c{i}") for i in range(n)]
        radii = [b.add_variable(1, name=f"r{i}") for i in range(n)]
        pair = PairNoCollisionProx()
        wall = WallProx()
        reward = RadiusRewardProx(kappa=self.kappa)
        for i in range(n):
            for j in range(i + 1, n):
                b.add_factor(pair, [centers[i], radii[i], centers[j], radii[j]])
        for i in range(n):
            for s in range(self.region.num_walls):
                b.add_factor(
                    wall,
                    [centers[i], radii[i]],
                    params={
                        "Q": self.region.normals[s],
                        "V": self.region.points[s],
                    },
                )
        for i in range(n):
            b.add_factor(reward, [radii[i]])
        return b.build()

    def initial_state(
        self,
        graph: FactorGraph,
        rho: float = 3.0,
        alpha: float = 1.0,
        seed: int | None = None,
        radius_scale: float = 0.25,
    ) -> ADMMState:
        """Random feasible-ish start: centers in the region, small radii."""
        rng = default_rng(seed)
        n = self.n_disks
        lo = self.region.points.min(axis=0)
        hi = self.region.points.max(axis=0)
        centers = np.empty((n, 2))
        count = 0
        while count < n:
            cand = rng.uniform(lo, hi, size=(n, 2))
            ok = self.region.contains(cand)
            take = min(int(ok.sum()), n - count)
            centers[count : count + take] = cand[ok][:take]
            count += take
        # Small initial radii ~ area-fair share.
        r0 = radius_scale * np.sqrt(self.region.area / max(n, 1) / np.pi)
        radii = rng.uniform(0.5 * r0, r0, size=n)
        z = np.concatenate([centers.reshape(-1), radii])
        state = ADMMState(graph, rho=rho, alpha=alpha)
        state.init_from_z(z)
        return state

    # ------------------------------------------------------------------ #
    def extract(self, graph: FactorGraph, z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split flat z into (centers (N,2), radii (N,))."""
        n = self.n_disks
        centers = z[: 2 * n].reshape(n, 2)
        radii = z[2 * n : 3 * n]
        return centers, radii

    def coverage(self, radii: np.ndarray) -> float:
        """Covered-area fraction Σ πr² / area(region)."""
        return float(np.pi * np.sum(np.asarray(radii) ** 2) / self.region.area)

    def overlap_violation(self, centers: np.ndarray, radii: np.ndarray) -> float:
        """Worst pairwise overlap ``max(rᵢ + rⱼ − ||cᵢ − cⱼ||, 0)``."""
        n = self.n_disks
        if n < 2:
            return 0.0
        diff = centers[:, None, :] - centers[None, :, :]
        dist = np.linalg.norm(diff, axis=-1)
        rsum = radii[:, None] + radii[None, :]
        viol = rsum - dist
        viol[np.arange(n), np.arange(n)] = -np.inf
        return float(max(0.0, viol.max()))

    def validate(
        self, centers: np.ndarray, radii: np.ndarray, tol: float = 1e-3
    ) -> dict[str, float | bool]:
        """Solution report: coverage, violations, feasibility flag."""
        overlap = self.overlap_violation(centers, radii)
        wall = self.region.wall_violation(centers, radii)
        min_r = float(np.min(radii)) if radii.size else 0.0
        return {
            "coverage": self.coverage(radii),
            "overlap_violation": overlap,
            "wall_violation": wall,
            "min_radius": min_r,
            "feasible": bool(overlap <= tol and wall <= tol and min_r >= -tol),
        }


def build_batch(problems: "Sequence[PackingProblem]") -> "GraphBatch":
    """Stack a fleet of same-shaped packing instances into one graph.

    All instances must share ``n_disks``, ``kappa``, and the wall count
    (those fix the topology and the shared operators); the region geometry
    — wall normals and anchor points — varies per instance through the
    wall-factor parameters.  The fleet packs ``B`` regions in one
    vectorized sweep.
    """
    from repro.graph.batch import replicate_graph

    if not problems:
        raise ValueError("build_batch needs at least one PackingProblem")
    first = problems[0]
    n, s = first.n_disks, first.region.num_walls
    for j, p in enumerate(problems[1:], start=1):
        if (
            p.n_disks != n
            or p.kappa != first.kappa
            or p.region.num_walls != s
        ):
            raise ValueError(
                f"problem {j} has (n_disks, kappa, num_walls)="
                f"({p.n_disks}, {p.kappa}, {p.region.num_walls}); expected "
                f"({n}, {first.kappa}, {s})"
            )
    template = first.build_graph()
    # build_graph order: pair 0..n(n-1)/2-1, wall next n*s, reward last n.
    wall0 = n * (n - 1) // 2
    overrides = []
    for p in problems:
        per_factor: dict[int, dict[str, np.ndarray]] = {}
        for i in range(n):
            for w in range(s):
                per_factor[wall0 + i * s + w] = {
                    "Q": p.region.normals[w],
                    "V": p.region.points[w],
                }
        overrides.append(per_factor)
    return replicate_graph(template, len(problems), params_per_instance=overrides)


def solve_packing(
    n_disks: int,
    iterations: int = 2000,
    rho: float = 3.0,
    alpha: float = 1.0,
    seed: int | None = None,
    region: ConvexRegion | None = None,
    backend=None,
) -> dict:
    """End-to-end helper: build, solve, validate one packing instance."""
    problem = PackingProblem(
        n_disks, region=region if region is not None else triangle_region()
    )
    graph = problem.build_graph()
    solver = ADMMSolver(graph, backend=backend, rho=rho, alpha=alpha)
    solver.state = problem.initial_state(graph, rho=rho, alpha=alpha, seed=seed)
    solver.backend.prepare(graph)
    result = solver.solve(
        max_iterations=iterations,
        stopping=MaxIterations(iterations),
        check_every=max(iterations // 10, 1),
        init="keep",
    )
    solver.close()
    centers, radii = problem.extract(graph, result.z)
    report = problem.validate(centers, radii)
    return {
        "problem": problem,
        "graph": graph,
        "result": result,
        "centers": centers,
        "radii": radii,
        **report,
    }
