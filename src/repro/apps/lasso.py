"""Consensus Lasso (the paper's §I motivating decomposition, after [1]).

    minimize  ½ Σᵢ ||Aᵢ w − yᵢ||²  +  λ ||w||₁

split over P row blocks.  The factor graph is a star: one shared variable
node ``w``; one data-fidelity factor per block and one ℓ₁ factor, all
touching ``w``.  The z-update performs the consensus averaging that [1]
implements by hand — here it falls out of the message-passing ADMM.

:func:`solve_lasso_fista` is an independent proximal-gradient reference used
to validate solution quality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.solver import ADMMSolver
from repro.graph.builder import GraphBuilder
from repro.graph.factor_graph import FactorGraph
from repro.prox.lasso import DataFidelityProx
from repro.prox.standard import L1Prox
from repro.utils.rng import default_rng
from repro.utils.validation import check_positive


def make_lasso_data(
    n_samples: int,
    dim: int,
    sparsity: int = 5,
    noise: float = 0.01,
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random design + sparse ground truth.  Returns (A, y, w_true)."""
    if sparsity > dim:
        raise ValueError(f"sparsity {sparsity} exceeds dim {dim}")
    rng = default_rng(seed)
    A = rng.normal(size=(n_samples, dim)) / np.sqrt(n_samples)
    w_true = np.zeros(dim)
    support = rng.choice(dim, size=sparsity, replace=False)
    w_true[support] = rng.normal(scale=3.0, size=sparsity)
    y = A @ w_true + noise * rng.normal(size=n_samples)
    return A, y, w_true


@dataclass
class LassoProblem:
    """One block-decomposed Lasso instance."""

    A: np.ndarray
    y: np.ndarray
    lam: float
    n_blocks: int = 4

    def __post_init__(self) -> None:
        self.A = np.asarray(self.A, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.float64)
        check_positive(self.lam, "lam")
        if self.A.ndim != 2:
            raise ValueError(f"A must be 2-D, got shape {self.A.shape}")
        if self.y.shape != (self.A.shape[0],):
            raise ValueError(
                f"y must have shape ({self.A.shape[0]},), got {self.y.shape}"
            )
        if not 1 <= self.n_blocks <= self.A.shape[0]:
            raise ValueError(
                f"n_blocks must be in [1, {self.A.shape[0]}], got {self.n_blocks}"
            )

    @property
    def dim(self) -> int:
        return int(self.A.shape[1])

    def blocks(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Split (A, y) into ``n_blocks`` near-equal row blocks."""
        idx = np.array_split(np.arange(self.A.shape[0]), self.n_blocks)
        return [(self.A[i], self.y[i]) for i in idx]

    def build_graph(self) -> FactorGraph:
        """Star graph: shared w node, one factor per block plus the ℓ₁."""
        b = GraphBuilder()
        w = b.add_variable(self.dim, name="w")
        fid = DataFidelityProx(self.dim)
        blocks = self.blocks()
        # Groups need uniform parameter shapes; blocks from array_split may
        # differ by one row, so pad the smaller ones with zero rows (a zero
        # row contributes nothing to ||A w − y||²).
        max_rows = max(a.shape[0] for a, _ in blocks)
        for a_blk, y_blk in blocks:
            pad = max_rows - a_blk.shape[0]
            if pad:
                a_blk = np.vstack([a_blk, np.zeros((pad, self.dim))])
                y_blk = np.concatenate([y_blk, np.zeros(pad)])
            b.add_factor(fid, [w], params={"A": a_blk, "y": y_blk})
        b.add_factor(L1Prox(lam=self.lam), [w])
        return b.build()

    def objective(self, w: np.ndarray) -> float:
        r = self.A @ w - self.y
        return float(0.5 * np.dot(r, r) + self.lam * np.abs(w).sum())


def build_batch(problems: "Sequence[LassoProblem]") -> "GraphBatch":
    """Stack a fleet of same-shaped Lasso instances into one graph.

    All instances must share ``A.shape``, ``n_blocks``, and ``lam`` (the
    ℓ₁ weight lives on the shared operator); the per-block data ``(Aᵢ,
    yᵢ)`` varies per instance through the data-fidelity factor parameters.
    The fleet fits ``B`` regressions — e.g. per-sensor models — in one
    vectorized sweep.
    """
    from repro.graph.batch import replicate_graph

    if not problems:
        raise ValueError("build_batch needs at least one LassoProblem")
    first = problems[0]
    for j, p in enumerate(problems[1:], start=1):
        if (
            p.A.shape != first.A.shape
            or p.n_blocks != first.n_blocks
            or p.lam != first.lam
        ):
            raise ValueError(
                f"problem {j} has (A.shape, n_blocks, lam)="
                f"({p.A.shape}, {p.n_blocks}, {p.lam}); expected "
                f"({first.A.shape}, {first.n_blocks}, {first.lam})"
            )
    template = first.build_graph()
    # build_graph order: data-fidelity 0..n_blocks-1, then the ℓ₁ factor.
    overrides = []
    for p in problems:
        blocks = p.blocks()
        max_rows = max(a.shape[0] for a, _ in blocks)
        per_factor: dict[int, dict[str, np.ndarray]] = {}
        for fid_idx, (a_blk, y_blk) in enumerate(blocks):
            pad = max_rows - a_blk.shape[0]
            if pad:
                a_blk = np.vstack([a_blk, np.zeros((pad, p.dim))])
                y_blk = np.concatenate([y_blk, np.zeros(pad)])
            per_factor[fid_idx] = {"A": a_blk, "y": y_blk}
        overrides.append(per_factor)
    return replicate_graph(template, len(problems), params_per_instance=overrides)


def solve_lasso_fista(
    A: np.ndarray,
    y: np.ndarray,
    lam: float,
    iterations: int = 5000,
    tol: float = 1e-12,
) -> np.ndarray:
    """FISTA reference solver for ½||Aw − y||² + λ||w||₁."""
    A = np.asarray(A, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    L = float(np.linalg.norm(A, 2) ** 2)
    if L == 0:
        return np.zeros(A.shape[1])
    w = np.zeros(A.shape[1])
    v = w.copy()
    t = 1.0
    for _ in range(iterations):
        grad = A.T @ (A @ v - y)
        w_new = v - grad / L
        w_new = np.sign(w_new) * np.maximum(np.abs(w_new) - lam / L, 0.0)
        t_new = (1.0 + np.sqrt(1.0 + 4.0 * t * t)) / 2.0
        v = w_new + ((t - 1.0) / t_new) * (w_new - w)
        if np.max(np.abs(w_new - w)) < tol:
            w = w_new
            break
        w, t = w_new, t_new
    return w


def solve_lasso(
    problem: LassoProblem,
    iterations: int = 3000,
    rho: float = 1.0,
    alpha: float = 1.0,
    backend=None,
) -> dict:
    """End-to-end helper: build, solve, evaluate one Lasso instance."""
    graph = problem.build_graph()
    solver = ADMMSolver(graph, backend=backend, rho=rho, alpha=alpha)
    result = solver.solve(
        max_iterations=iterations,
        eps_abs=1e-9,
        eps_rel=1e-8,
        check_every=25,
        init="zeros",
    )
    solver.close()
    w = result.variable(0)
    return {
        "problem": problem,
        "graph": graph,
        "result": result,
        "w": w,
        "objective": problem.objective(w),
    }
