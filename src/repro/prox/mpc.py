"""Proximal operators for Model Predictive Control (paper Appendix B).

The MPC formulation (paper Figure 9) over a horizon ``K``:

    minimize   Σ_t q(t)ᵀ Q q(t) + u(t)ᵀ R u(t)   (+ terminal qᵀ Q_f q)
    subject to q(t+1) − q(t) = A q(t) + B u(t)   for all t
               q(0) = q₀

One variable node per time step holding the stacked state-input pair
``(q(t), u(t))`` of dimension ``dq + du``.  Three factor families:

* :class:`MPCCostProx` — the separable quadratic stage cost on one node;
  closed form ``x = ρ n / (2 diag + ρ)`` (elementwise; the factor 2 comes
  from the paper's unnormalized ``qᵀQq`` convention).
* dynamics factors — indicator of ``q(t+1) = (I+A) q(t) + B u(t)``, built by
  :func:`make_dynamics_prox` as a weighted affine projection with the shared
  constraint matrix ``M = [I+A, B, −I, 0]`` over the two adjacent nodes.
* initial-state factor — indicator of ``q(0) = q₀`` on node 0, built by
  :func:`make_initial_state_prox` (``u(0)`` is unconstrained).

Both constraint families reuse :class:`repro.prox.standard.AffineConstraintProx`,
whose uniform-ρ fast path is a single precomputed projector matmul per batch
— the closed form the paper's appendix alludes to ("this can also be solved
in closed form").
"""

from __future__ import annotations

import numpy as np

from repro.prox.base import ProxOperator
from repro.prox.registry import register_prox
from repro.prox.standard import AffineConstraintProx


@register_prox
class MPCCostProx(ProxOperator):
    """Stage cost ``qᵀ diag(Qd) q + uᵀ diag(Rd) u`` on one ``(q, u)`` node.

    Parameters (per factor): ``qdiag`` (dq,), ``rdiag`` (du,).  The node has
    a single incident edge, so ``rho`` is (B, 1).  Closed form, elementwise:

        x_q = ρ n_q / (2 Qd + ρ),    x_u = ρ n_u / (2 Rd + ρ)
    """

    name = "mpc_cost"

    def __init__(self, dq: int, du: int) -> None:
        self.dq, self.du = int(dq), int(du)
        if self.dq < 1 or self.du < 1:
            raise ValueError(f"dq and du must be >= 1, got {dq}, {du}")
        self.signature = (self.dq + self.du,)
        super().__init__()

    def prox_batch(self, n, rho, params):
        n = np.asarray(n, dtype=np.float64)
        rho = np.asarray(rho, dtype=np.float64)  # (B, 1)
        diag = np.concatenate([params["qdiag"], params["rdiag"]], axis=1)  # (B, L)
        return rho * n / (2.0 * diag + rho)

    def evaluate(self, x, params):
        diag = np.concatenate([np.ravel(params["qdiag"]), np.ravel(params["rdiag"])])
        return float(np.dot(diag * x, x))


def make_dynamics_prox(A: np.ndarray, B: np.ndarray) -> AffineConstraintProx:
    """Build the dynamics-constraint operator for ``q⁺ = (I+A) q + B u``.

    Scope: two adjacent ``(q, u)`` nodes, dims ``(dq+du, dq+du)``.  The
    constraint matrix over the stacked vector ``(q_t, u_t, q_{t+1}, u_{t+1})``
    is ``M = [I+A, B, −I, 0]`` (``u_{t+1}`` is untouched by this factor's
    constraint but lives on the shared node, hence the zero block).
    """
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError(f"A must be square, got shape {A.shape}")
    if B.ndim != 2 or B.shape[0] != A.shape[0]:
        raise ValueError(f"B must be (dq, du) with dq={A.shape[0]}, got {B.shape}")
    dq, du = A.shape[0], B.shape[1]
    M = np.hstack(
        [np.eye(dq) + A, B, -np.eye(dq), np.zeros((dq, du))]
    )
    prox = AffineConstraintProx(M, dims=(dq + du, dq + du))
    prox.name = "mpc_dynamics"
    return prox


def make_initial_state_prox(dq: int, du: int) -> AffineConstraintProx:
    """Build the ``q(0) = q₀`` operator on node 0 (pass ``q₀`` as param "c").

    Projection with ``C = [I, 0]``: pins the state slots to ``q₀`` exactly
    and leaves the input slots at their incoming message.
    """
    C = np.hstack([np.eye(dq), np.zeros((dq, du))])
    prox = AffineConstraintProx(C, dims=(dq + du,))
    prox.name = "mpc_initial_state"
    return prox
