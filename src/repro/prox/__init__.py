"""Proximal-operator library: protocol, registry, and all shipped operators."""

from repro.prox.base import ProxOperator, expand_rho, slot_offsets
from repro.prox.registry import (
    get_prox_class,
    iter_registered,
    make_prox,
    register_prox,
    registered_prox_names,
)
from repro.prox.standard import (
    AffineConstraintProx,
    BoxProx,
    ConsensusEqualProx,
    DiagQuadProx,
    FixedValueProx,
    HalfspaceProx,
    L1Prox,
    L2BallProx,
    LinearProx,
    NonNegativeProx,
    QuadraticProx,
    ZeroProx,
)
from repro.prox.packing import PairNoCollisionProx, RadiusRewardProx, WallProx
from repro.prox.mpc import MPCCostProx, make_dynamics_prox, make_initial_state_prox
from repro.prox.svm import SVMMarginProx, SVMNormProx, SVMSlackProx
from repro.prox.lasso import DataFidelityProx
from repro.prox.extras import EntropyProx, HuberProx, LogisticProx, SimplexProx

__all__ = [
    "ProxOperator",
    "expand_rho",
    "slot_offsets",
    "get_prox_class",
    "iter_registered",
    "make_prox",
    "register_prox",
    "registered_prox_names",
    "AffineConstraintProx",
    "BoxProx",
    "ConsensusEqualProx",
    "DiagQuadProx",
    "FixedValueProx",
    "HalfspaceProx",
    "L1Prox",
    "L2BallProx",
    "LinearProx",
    "NonNegativeProx",
    "QuadraticProx",
    "ZeroProx",
    "PairNoCollisionProx",
    "RadiusRewardProx",
    "WallProx",
    "MPCCostProx",
    "make_dynamics_prox",
    "make_initial_state_prox",
    "SVMMarginProx",
    "SVMNormProx",
    "SVMSlackProx",
    "DataFidelityProx",
    "EntropyProx",
    "HuberProx",
    "LogisticProx",
    "SimplexProx",
]
