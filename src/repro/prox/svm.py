"""Proximal operators for soft-margin SVM training (paper Appendix C).

Formulation (paper Figure 12) over ``N`` data points ``(xᵢ, yᵢ)``,
``yᵢ ∈ {−1, +1}``: every point gets its own copy of the separating plane
``(wᵢ, bᵢ)`` plus a slack ``ξᵢ``; copies are chained equal.

    minimize   Σᵢ  (1/2N) ||wᵢ||² + λ ξᵢ
    subject to (wᵢ, bᵢ) = (wᵢ₊₁, bᵢ₊₁)                   ∀i
               yᵢ (wᵢᵀ xᵢ + bᵢ) ≥ 1 − ξᵢ,   ξᵢ ≥ 0       ∀i

Variable nodes: ``planeᵢ = (wᵢ, bᵢ)`` of dim d+1, ``slackᵢ`` of dim 1.
Operator families (one factor per data point each):

* :class:`SVMNormProx` — ``(κ/2)||w||²`` with κ = 1/N on the w slots of a
  plane node (b unpenalized): ``x_w = ρ n_w/(ρ+κ)``, ``x_b = n_b``.
* :class:`SVMSlackProx` — ``λξ + ind(ξ ≥ 0)``, the "semi-lasso":
  ``ξ = max(0, n − λ/ρ)``  (Appendix C.1, as printed).
* :class:`SVMMarginProx` — indicator of ``y(wᵀx + b) ≥ 1 − ξ`` over
  ``(plane, slack)``; weighted projection in closed form.
* plane-chaining equality — :class:`repro.prox.standard.ConsensusEqualProx`
  (Appendix C.4, as printed).

Note on the paper's Appendix C.3
--------------------------------
The printed margin solution places the positive-part clamp on
``α = (y(n₁ᵀx + n₂) + n₃ − 1)/denom`` and then *subtracts* the correction.
As printed, a violated input (``y(n₁ᵀx+n₂)+n₃ < 1``) yields α = 0 — no
correction — while a feasible input gets pushed; the signs are flipped, and
the ``b`` update drops a factor of ``y``.  The correct KKT solution (full
derivation in the class docstring) is ``μ = max(0, 1 − y(n₁ᵀx+n₂) − n₃)/
denom`` with corrections *added*: ``w = n₁ + (μ/ρ₁) y x``,
``b = n₂ + (μ/ρ₂) y``, ``ξ = n₃ + μ/ρ₃``.  We implement the corrected form
(property tests verify feasibility and prox optimality).
"""

from __future__ import annotations

import numpy as np

from repro.prox.base import ProxOperator
from repro.prox.registry import register_prox
from repro.utils.validation import check_positive


@register_prox
class SVMNormProx(ProxOperator):
    """``(κ/2)||w||²`` on a ``(w, b)`` plane node (b unpenalized).

    Closed form: shrink the w slots by ``ρ/(ρ+κ)``, pass b through.
    """

    name = "svm_norm"

    def __init__(self, dim: int, kappa: float) -> None:
        self.dim = int(dim)
        self.kappa = check_positive(kappa, "kappa")
        self.signature = (self.dim + 1,)
        super().__init__()

    def prox_batch(self, n, rho, params):
        n = np.asarray(n, dtype=np.float64)
        rho = np.asarray(rho, dtype=np.float64)  # (B, 1) — single edge
        out = np.array(n, copy=True)
        out[:, : self.dim] = rho * n[:, : self.dim] / (rho + self.kappa)
        return out

    def evaluate(self, x, params):
        return float(0.5 * self.kappa * np.dot(x[: self.dim], x[: self.dim]))


@register_prox
class SVMSlackProx(ProxOperator):
    """``λ ξ + ind(ξ ≥ 0)`` — the semi-lasso shift ``ξ = (n − λ/ρ)⁺``."""

    name = "svm_slack"
    signature = (1,)

    def __init__(self, lam: float) -> None:
        self.lam = check_positive(lam, "lam")
        super().__init__()

    def prox_batch(self, n, rho, params):
        n = np.asarray(n, dtype=np.float64)
        rho = np.asarray(rho, dtype=np.float64)
        return np.maximum(0.0, n - self.lam / rho)

    def evaluate(self, x, params):
        xi = float(x[0])
        return self.lam * xi if xi >= -1e-9 else float("inf")


@register_prox
class SVMMarginProx(ProxOperator):
    """Indicator of ``y (wᵀx + b) ≥ 1 − ξ`` over ``((w, b), ξ)``.

    Derivation.  Minimize ``ρ₁/2||w−n₁||² + ρ₂/2(b−n₂)² + ρ₃/2(ξ−n₃)²``
    subject to ``g(w,b,ξ) = y(wᵀx+b) − 1 + ξ ≥ 0``.  Stationarity of the
    Lagrangian with multiplier μ ≥ 0:

        w = n₁ + (μ/ρ₁) y x,   b = n₂ + (μ/ρ₂) y,   ξ = n₃ + μ/ρ₃

    and the active constraint (using y² = 1) yields

        μ = max(0, 1 − y(n₁ᵀx + n₂) − n₃) / (||x||²/ρ₁ + 1/ρ₂ + 1/ρ₃).

    With the plane stored as one node, ρ₁ = ρ₂ = ρ_plane and ρ₃ = ρ_slack.
    Parameters (per factor): ``x`` (d,), ``y`` scalar.
    """

    name = "svm_margin"

    def __init__(self, dim: int) -> None:
        self.dim = int(dim)
        self.signature = (self.dim + 1, 1)
        super().__init__()

    def prox_batch(self, n, rho, params):
        d = self.dim
        n = np.asarray(n, dtype=np.float64)
        nw, nb, nxi = n[:, :d], n[:, d], n[:, d + 1]
        rho = np.asarray(rho, dtype=np.float64)
        rho_p, rho_s = rho[:, 0], rho[:, 1]
        x = np.asarray(params["x"], dtype=np.float64)  # (B, d)
        y = np.ravel(np.asarray(params["y"], dtype=np.float64))  # (B,)
        margin = y * (np.einsum("bd,bd->b", nw, x) + nb)
        viol = 1.0 - margin - nxi
        denom = (
            np.einsum("bd,bd->b", x, x) / rho_p + 1.0 / rho_p + 1.0 / rho_s
        )
        mu = np.maximum(0.0, viol) / denom
        out = np.empty_like(n)
        out[:, :d] = nw + (mu * y / rho_p)[:, None] * x
        out[:, d] = nb + mu * y / rho_p
        out[:, d + 1] = nxi + mu / rho_s
        return out

    def evaluate(self, x, params):
        d = self.dim
        xv = np.asarray(params["x"], dtype=np.float64)
        y = float(np.ravel(params["y"])[0])
        g = y * (float(x[:d] @ xv) + float(x[d])) - 1.0 + float(x[d + 1])
        return 0.0 if g >= -1e-7 else float("inf")
