"""Proximal operators for the circle-packing problem (paper Appendix A).

The packing problem: maximize the covered area of ``N`` non-overlapping disks
(centers ``cᵢ ∈ R²``, radii ``rᵢ``) inside a convex region cut out by ``S``
half-planes.  Three operator families:

* :class:`PairNoCollisionProx` — indicator of ``||c₁ − c₂|| ≥ r₁ + r₂``
  (one factor per disk pair; scope ``(c₁, r₁, c₂, r₂)``, dims (2,1,2,1)).
* :class:`WallProx` — indicator of ``Qᵀ(c − V) ≥ r`` keeping a disk inside
  one half-plane (scope ``(c, r)``, dims (2,1)).
* :class:`RadiusRewardProx` — the non-convex reward ``−½ r²`` pushing each
  radius to grow (scope ``(r,)``, dims (1,)).

Note on the paper's Appendix A
------------------------------
The printed pair-collision solution reads ``(c₁, r₁) = (n₁c, n₁r) + (D/2)
ρ₂/(ρ₁+ρ₂) · (−n̂, 1)``, i.e. radii *grow* while centers separate.  Plugging
it back into the constraint gives ``||c₁−c₂|| − (r₁+r₂) = −D < 0``: the
output would still collide, so the printed ``+1`` radius sign is a typo.  The
KKT solution (derived in the class docstring) is ``(−n̂, −1)``: centers move
apart *and* radii shrink, each by ``(D/2)·ρ_other/(ρ₁+ρ₂)``, which lands
exactly on the constraint boundary.  We implement the corrected form; the
wall operator and radius reward match the paper as printed.
"""

from __future__ import annotations

import numpy as np

from repro.prox.base import ProxOperator
from repro.prox.registry import register_prox


@register_prox
class PairNoCollisionProx(ProxOperator):
    """Projection onto ``{||c₁ − c₂|| ≥ r₁ + r₂}`` (weighted, closed form).

    Derivation.  Let ``S = ||n₁c − n₂c||``, ``D = max(0, n₁r + n₂r − S)``
    and ``n̂ = (n₂c − n₁c)/S``.  For ``D = 0`` the input is feasible and is
    returned unchanged.  Otherwise minimize
    ``ρ₁/2 ||(c₁,r₁) − n₁||² + ρ₂/2 ||(c₂,r₂) − n₂||²`` subject to the
    constraint, which is active at the optimum.  Restricting to the line
    through the two centers (optimal by symmetry), with ``tᵢ`` the outward
    center displacement and ``sᵢ`` the radius change, stationarity gives
    ``tᵢ = −sᵢ = λ/ρᵢ`` and the active constraint gives
    ``λ = D ρ₁ρ₂ / (2(ρ₁+ρ₂))``, i.e.

        (c₁, r₁) = (n₁c, n₁r) + (D/2) ρ₂/(ρ₁+ρ₂) (−n̂, −1)
        (c₂, r₂) = (n₂c, n₂r) + (D/2) ρ₁/(ρ₁+ρ₂) (+n̂, −1)

    ρ convention: ρ₁ is the weight of disk 1's edges (center and radius
    edges assumed equal, as in the paper), ρ₂ of disk 2's.

    The coincident-center case ``S = 0`` has no unique direction; we use a
    fixed deterministic unit vector so backends agree bit-for-bit.
    """

    name = "packing_pair"
    signature = (2, 1, 2, 1)
    convex = False  # the set ||c1 - c2|| >= r1 + r2 is non-convex

    def prox_batch(self, n, rho, params):
        n = np.asarray(n, dtype=np.float64)
        c1, r1, c2, r2 = n[:, 0:2], n[:, 2], n[:, 3:5], n[:, 5]
        rho = np.asarray(rho, dtype=np.float64)
        rho1, rho2 = rho[:, 0], rho[:, 2]  # center-edge weights of each disk
        diff = c2 - c1
        S = np.linalg.norm(diff, axis=1)
        D = np.maximum(0.0, r1 + r2 - S)
        # Deterministic direction for coincident centers.
        safe = S > 1e-12
        nhat = np.empty_like(diff)
        nhat[safe] = diff[safe] / S[safe, None]
        nhat[~safe] = np.array([1.0, 0.0])
        w1 = rho2 / (rho1 + rho2)
        w2 = rho1 / (rho1 + rho2)
        half_d = 0.5 * D
        out = np.array(n, copy=True)
        out[:, 0:2] = c1 - (half_d * w1)[:, None] * nhat
        out[:, 2] = r1 - half_d * w1
        out[:, 3:5] = c2 + (half_d * w2)[:, None] * nhat
        out[:, 5] = r2 - half_d * w2
        return out

    def evaluate(self, x, params):
        c1, r1, c2, r2 = x[0:2], x[2], x[3:5], x[5]
        gap = np.linalg.norm(c1 - c2) - (r1 + r2)
        return 0.0 if gap >= -1e-7 else float("inf")

    def outgoing_weights(self, x, n, rho, params):
        """Three-weight hook: an *inactive* collision constraint abstains.

        When the incoming disks don't overlap the projection is the
        identity — the factor has no opinion and (per [9]) emits weight 0,
        letting active constraints and the radius reward drive the average.
        """
        n = np.asarray(n, dtype=np.float64)
        S = np.linalg.norm(n[:, 3:5] - n[:, 0:2], axis=1)
        active = (n[:, 2] + n[:, 5] - S) > 0.0
        w = np.asarray(rho, dtype=np.float64).copy()
        w[~active] = 0.0
        return w


@register_prox
class WallProx(ProxOperator):
    """Projection onto ``{Qᵀ(c − V) ≥ r}`` — keep a disk inside a half-plane.

    ``Q`` (unit inward normal) and ``V`` (a point on the wall) are per-factor
    parameters.  Weighted KKT solution (reduces to the paper's equal-ρ form
    ``(c, r) = (n_c, n_r) + E(−Q, 1)`` with ``E = min(0, ½(Qᵀ(n_c−V)−n_r))``):

        g = Qᵀ(n_c − V) − n_r          (≥ 0 means feasible)
        λ = max(0, −g) / (1/ρ_c + 1/ρ_r)
        c = n_c + (λ/ρ_c) Q,   r = n_r − λ/ρ_r
    """

    name = "packing_wall"
    signature = (2, 1)

    def prox_batch(self, n, rho, params):
        n = np.asarray(n, dtype=np.float64)
        c, r = n[:, 0:2], n[:, 2]
        rho = np.asarray(rho, dtype=np.float64)
        rho_c, rho_r = rho[:, 0], rho[:, 1]
        Q = np.asarray(params["Q"], dtype=np.float64)  # (B, 2)
        V = np.asarray(params["V"], dtype=np.float64)  # (B, 2)
        g = np.einsum("bi,bi->b", Q, c - V) - r
        lam = np.maximum(0.0, -g) / (1.0 / rho_c + 1.0 / rho_r)
        out = np.array(n, copy=True)
        out[:, 0:2] = c + (lam / rho_c)[:, None] * Q
        out[:, 2] = r - lam / rho_r
        return out

    def evaluate(self, x, params):
        Q = np.asarray(params["Q"], dtype=np.float64)
        V = np.asarray(params["V"], dtype=np.float64)
        g = float(Q @ (x[0:2] - V) - x[2])
        return 0.0 if g >= -1e-7 else float("inf")

    def outgoing_weights(self, x, n, rho, params):
        """Three-weight hook: an inactive wall constraint abstains (see [9])."""
        n = np.asarray(n, dtype=np.float64)
        Q = np.asarray(params["Q"], dtype=np.float64)
        V = np.asarray(params["V"], dtype=np.float64)
        g = np.einsum("bi,bi->b", Q, n[:, 0:2] - V) - n[:, 2]
        w = np.asarray(rho, dtype=np.float64).copy()
        w[g >= 0.0] = 0.0
        return w


@register_prox
class RadiusRewardProx(ProxOperator):
    """Non-convex reward ``h(r) = −(κ/2) r² + ind(r ≥ 0)`` growing disks.

    Closed form ``r = max(0, ρ n / (ρ − κ))``; requires ``ρ > κ`` for the
    subproblem to be bounded (the paper's form is the κ = 1 case,
    ``ρ n/(ρ − 1)``).

    The explicit ``r ≥ 0`` constraint is a necessary robustification of the
    paper's formula: without it, the amplifying map ``ρn/(ρ−κ)`` blows
    *negative* radii up too, and a negative radius satisfies every collision
    and wall constraint trivially — the iteration can then diverge to
    ``r → −∞`` from unlucky initializations (observed in testing).  With
    the clamp, ``n < 0`` projects to the boundary ``r = 0``, which is the
    exact prox of the constrained reward.
    """

    name = "packing_radius"
    signature = (1,)
    convex = False

    def __init__(self, kappa: float = 1.0) -> None:
        self.kappa = float(kappa)
        if self.kappa <= 0:
            raise ValueError(f"kappa must be positive, got {kappa}")
        super().__init__()

    def prox_batch(self, n, rho, params):
        rho = np.asarray(rho, dtype=np.float64)
        if np.any(rho <= self.kappa):
            raise ValueError(
                f"packing_radius prox unbounded: need rho > kappa={self.kappa} "
                f"(got min rho={rho.min():g}); increase rho"
            )
        out = np.asarray(n, dtype=np.float64) * (rho / (rho - self.kappa))
        return np.maximum(out, 0.0)

    def evaluate(self, x, params):
        if x[0] < -1e-9:
            return float("inf")
        return float(-0.5 * self.kappa * x[0] ** 2)
