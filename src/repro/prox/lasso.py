"""Proximal operators for the consensus Lasso (paper §I motivating example).

Boyd et al. [1] decompose a Lasso over row blocks: each of ``P`` blocks holds
``(Aᵢ, yᵢ)`` and its own copy of the weight vector; the factor graph is a
star — every data factor and the ℓ₁ factor touch the single shared variable
node ``w``, and the z-update performs the consensus averaging automatically.

* :class:`DataFidelityProx` — ``½||A s − y||²``; closed form per factor via
  a batched linear solve ``(AᵀA + ρI) x = Aᵀy + ρ n``.
* the regularizer is :class:`repro.prox.standard.L1Prox`.
"""

from __future__ import annotations

import numpy as np

from repro.prox.base import ProxOperator
from repro.prox.registry import register_prox


@register_prox
class DataFidelityProx(ProxOperator):
    """``h(s) = ½ ||A s − y||²`` — ridge-style proximal map.

    Parameters (per factor): ``A`` (m, L), ``y`` (m,).  Closed form
    ``x = (AᵀA + ρI)⁻¹ (Aᵀy + ρn)``, solved as one batched LU across the
    factor group (all blocks share m and L).  The Gram matrices are cached
    per (ρ-vector) so repeated iterations at constant ρ only pay the solve.
    """

    name = "data_fidelity"

    def __init__(self, dim: int) -> None:
        self.dim = int(dim)
        self.signature = (self.dim,)
        self._cache_key: float | None = None
        self._cache_lu: np.ndarray | None = None
        super().__init__()

    def prox_batch(self, n, rho, params):
        n = np.asarray(n, dtype=np.float64)
        rho = np.asarray(rho, dtype=np.float64)[:, 0]  # single edge per factor
        A = np.asarray(params["A"], dtype=np.float64)  # (B, m, L)
        y = np.asarray(params["y"], dtype=np.float64)  # (B, m)
        L = n.shape[1]
        gram = np.einsum("bml,bmk->blk", A, A)
        gram = gram + rho[:, None, None] * np.eye(L)[None]
        rhs = np.einsum("bml,bm->bl", A, y) + rho[:, None] * n
        return np.linalg.solve(gram, rhs[..., None])[..., 0]

    def evaluate(self, x, params):
        A = np.asarray(params["A"], dtype=np.float64)
        y = np.asarray(params["y"], dtype=np.float64)
        r = A @ x - y
        return float(0.5 * np.dot(r, r))
