"""Name-based registry of proximal operators.

Lets applications and config-driven experiments look operators up by the
stable string name (``"l1"``, ``"packing_pair"``, …) instead of importing
classes, and gives the test suite a single authoritative enumeration of every
operator the library ships.
"""

from __future__ import annotations

from typing import Iterator, Type

_REGISTRY: dict[str, type] = {}


def register_prox(cls: type) -> type:
    """Class decorator: register ``cls`` under its ``name`` attribute."""
    name = getattr(cls, "name", "") or cls.__name__
    if name in _REGISTRY and _REGISTRY[name] is not cls:
        raise ValueError(
            f"proximal operator name {name!r} already registered "
            f"by {_REGISTRY[name].__module__}.{_REGISTRY[name].__qualname__}"
        )
    _REGISTRY[name] = cls
    return cls


def get_prox_class(name: str) -> type:
    """Look a registered operator class up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown proximal operator {name!r}; known: {known}") from None


def make_prox(name: str, *args, **kwargs):
    """Instantiate a registered operator by name."""
    return get_prox_class(name)(*args, **kwargs)


def registered_prox_names() -> list[str]:
    """Sorted names of every registered operator."""
    return sorted(_REGISTRY)


def iter_registered() -> Iterator[tuple[str, type]]:
    """Iterate (name, class) pairs in sorted-name order."""
    for name in registered_prox_names():
        yield name, _REGISTRY[name]
