"""Additional proximal operators beyond the paper's three applications.

The paper stresses that parADMM POs may contain "code that is substantially
more complex than is typical in GPU-accelerated libraries".  These operators
demonstrate that range: piecewise closed forms (Huber), sort-based
projections (simplex), special functions (entropy via Lambert W), and an
iterative Newton solve *inside* the kernel (logistic) — all still batched.
"""

from __future__ import annotations

import numpy as np
import scipy.special as ssp

from repro.prox.base import ProxOperator, expand_rho
from repro.prox.registry import register_prox
from repro.utils.validation import check_positive


@register_prox
class HuberProx(ProxOperator):
    """``h(s) = Σ huber_δ(s_k)`` — robust penalty, piecewise closed form.

    Per slot: quadratic region ``x = ρn/(1+ρ)`` while ``|n| ≤ δ(1+ρ)/ρ``,
    else the linear region ``x = n − sign(n) δ/ρ``.
    """

    name = "huber"

    def __init__(self, delta: float = 1.0) -> None:
        self.delta = check_positive(delta, "delta")
        super().__init__()

    def prox_batch(self, n, rho, params):
        n = np.asarray(n, dtype=np.float64)
        rho = np.asarray(rho, dtype=np.float64)
        if rho.shape[-1] != n.shape[-1]:
            reps = n.shape[1] // rho.shape[1]
            rho = np.repeat(rho, reps, axis=1)
        quad = np.abs(n) <= self.delta * (1.0 + rho) / rho
        x_quad = rho * n / (1.0 + rho)
        x_lin = n - np.sign(n) * self.delta / rho
        return np.where(quad, x_quad, x_lin)

    def evaluate(self, x, params):
        a = np.abs(x)
        quad = a <= self.delta
        vals = np.where(quad, 0.5 * x * x, self.delta * a - 0.5 * self.delta**2)
        return float(vals.sum())


@register_prox
class SimplexProx(ProxOperator):
    """Indicator of the probability simplex ``{s ≥ 0, Σ s = 1}``.

    Batched sort-based Euclidean projection (Held–Wolfe–Crowder); ρ drops
    out (indicator functions ignore the penalty weight under uniform ρ).
    """

    name = "simplex"

    def prox_batch(self, n, rho, params):
        n = np.asarray(n, dtype=np.float64)
        B, L = n.shape
        srt = np.sort(n, axis=1)[:, ::-1]
        csum = np.cumsum(srt, axis=1) - 1.0
        ks = np.arange(1, L + 1)
        cond = srt - csum / ks > 0
        k = cond.sum(axis=1)  # number of active coordinates (>= 1)
        tau = csum[np.arange(B), k - 1] / k
        return np.maximum(n - tau[:, None], 0.0)

    def evaluate(self, x, params):
        ok = np.all(x >= -1e-9) and abs(float(x.sum()) - 1.0) < 1e-6
        return 0.0 if ok else float("inf")


@register_prox
class EntropyProx(ProxOperator):
    """Negative entropy ``h(s) = Σ s_k log s_k`` (domain s > 0).

    Stationarity ``log x + 1 + ρ(x − n) = 0`` solves in closed form with
    the Lambert W function: ``x = W(ρ e^{ρn − 1}) / ρ``.
    """

    name = "entropy"

    def prox_batch(self, n, rho, params):
        n = np.asarray(n, dtype=np.float64)
        rho = np.asarray(rho, dtype=np.float64)
        if rho.shape[-1] != n.shape[-1]:
            reps = n.shape[1] // rho.shape[1]
            rho = np.repeat(rho, reps, axis=1)
        # Stable form: W(exp(a)) with a = rho*n - 1 + log(rho).
        a = rho * n - 1.0 + np.log(rho)
        w = np.real(ssp.lambertw(np.exp(np.minimum(a, 700.0))))
        # For very large a, W(e^a) ≈ a - log(a); avoid the overflowed branch.
        big = a > 690.0
        if np.any(big):
            w = np.where(big, a - np.log(np.maximum(a, 2.0)), w)
        return w / rho

    def evaluate(self, x, params):
        if np.any(x <= 0):
            return float("inf")
        return float(np.sum(x * np.log(x)))


@register_prox
class LogisticProx(ProxOperator):
    """Softplus penalty ``h(s) = Σ log(1 + e^{s_k})`` — Newton inside the PO.

    No closed form exists; the batched prox runs a damped Newton iteration
    to machine precision (the "complex serial code per PO" regime the paper
    highlights).  Converges in < 20 iterations for any input (h' ∈ (0, 1),
    h'' ∈ (0, ¼], so the prox objective is ρ-strongly convex and smooth).
    """

    name = "logistic"
    #: Newton sweep cap (reached only in pathological float ranges).
    max_newton = 50

    def prox_batch(self, n, rho, params):
        n = np.asarray(n, dtype=np.float64)
        rho = np.asarray(rho, dtype=np.float64)
        if rho.shape[-1] != n.shape[-1]:
            reps = n.shape[1] // rho.shape[1]
            rho = np.repeat(rho, reps, axis=1)
        x = np.array(n, copy=True)  # good initial guess: prox ≈ identity - h'/ρ
        for _ in range(self.max_newton):
            sig = ssp.expit(x)
            grad = sig + rho * (x - n)
            hess = sig * (1.0 - sig) + rho
            step = grad / hess
            x -= step
            if float(np.max(np.abs(step))) < 1e-14:
                break
        return x

    def evaluate(self, x, params):
        return float(np.logaddexp(0.0, x).sum())
