"""Generic proximal operators: the standard library of building blocks.

All closed-form maps are implemented in batched form (the CUDA-kernel analog)
and inherit the single-factor path from the base class.  Shapes follow
:mod:`repro.prox.base`: ``n`` is (B, L), ``rho`` is (B, n_edges).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.prox.base import ProxOperator, expand_rho, slot_offsets
from repro.prox.registry import register_prox
from repro.utils.validation import check_positive


@register_prox
class ZeroProx(ProxOperator):
    """``h ≡ 0`` — the identity proximal map (useful as a no-op factor)."""

    name = "zero"

    def prox_batch(self, n, rho, params):
        return np.array(n, dtype=np.float64, copy=True)

    def evaluate(self, x, params):
        return 0.0

    def outgoing_weights(self, x, n, rho, params):
        # A zero factor has no opinion: weight 0 in the three-weight scheme.
        return np.zeros_like(np.asarray(rho, dtype=np.float64))


@register_prox
class LinearProx(ProxOperator):
    """``h(s) = c·s`` — shift map ``x = n − c/ρ``.

    Parameter ``c`` has shape (L,) per factor.  Each variable's slots use
    that variable's edge ρ.
    """

    name = "linear"

    def __init__(self, dims: tuple[int, ...]) -> None:
        self.dims = tuple(int(d) for d in dims)
        self.signature = self.dims
        super().__init__()

    def prox_batch(self, n, rho, params):
        rho_slots = expand_rho(rho, self.dims)
        return n - params["c"] / rho_slots

    def evaluate(self, x, params):
        return float(np.dot(params["c"], x))


@register_prox
class DiagQuadProx(ProxOperator):
    """``h(s) = ½ Σ q_k s_k² + c·s`` — diagonal quadratic.

    ``q`` (L,) must be ≥ 0 elementwise for convexity (not enforced: the
    engine supports non-convex h, e.g. packing's radius reward uses q < 0).
    Closed form: ``x = (ρ n − c) / (q + ρ)``.
    """

    name = "diag_quad"
    convex = True

    def __init__(self, dims: tuple[int, ...]) -> None:
        self.dims = tuple(int(d) for d in dims)
        self.signature = self.dims
        super().__init__()

    def prox_batch(self, n, rho, params):
        rho_slots = expand_rho(rho, self.dims)
        q = params["q"]
        c = params.get("c", 0.0)
        denom = q + rho_slots
        if np.any(denom <= 0):
            raise ValueError(
                "diag_quad prox undefined: q + rho must be positive "
                "(non-convex curvature exceeds the penalty weight)"
            )
        return (rho_slots * n - c) / denom

    def evaluate(self, x, params):
        q = params["q"]
        c = params.get("c", np.zeros_like(x))
        return float(0.5 * np.dot(q * x, x) + np.dot(np.broadcast_to(c, x.shape), x))


@register_prox
class QuadraticProx(ProxOperator):
    """``h(s) = ½ sᵀ P s + c·s`` — full quadratic with PSD ``P``.

    Closed form: solve ``(P + ρI) x = ρ n − c``.  ``P`` is per-factor
    (B, L, L); a batched LU solve handles the group in one call.  Requires a
    single scalar ρ per factor (validated), matching the classical ADMM.
    """

    name = "quadratic"

    def __init__(self, dims: tuple[int, ...]) -> None:
        self.dims = tuple(int(d) for d in dims)
        self.signature = self.dims
        super().__init__()

    def prox_batch(self, n, rho, params):
        rho = np.asarray(rho, dtype=np.float64)
        if not np.allclose(rho, rho[:, :1]):
            raise ValueError(
                "quadratic prox requires equal rho on all edges of a factor"
            )
        r = rho[:, 0]
        P = params["P"]
        c = params.get("c", np.zeros_like(n))
        L = n.shape[1]
        A = P + r[:, None, None] * np.eye(L)[None, :, :]
        rhs = r[:, None] * n - c
        return np.linalg.solve(A, rhs[..., None])[..., 0]

    def evaluate(self, x, params):
        P = params["P"]
        c = params.get("c", np.zeros_like(x))
        return float(0.5 * x @ P @ x + np.dot(np.broadcast_to(c, x.shape), x))


@register_prox
class BoxProx(ProxOperator):
    """Indicator of the box ``lo ≤ s ≤ hi`` — clipping projection."""

    name = "box"

    def prox_batch(self, n, rho, params):
        return np.clip(n, params["lo"], params["hi"])

    def evaluate(self, x, params):
        ok = np.all(x >= params["lo"] - 1e-9) and np.all(x <= params["hi"] + 1e-9)
        return 0.0 if ok else float("inf")

    def outgoing_weights(self, x, n, rho, params):
        # Projection onto a box pins coordinates at the bound: messages for
        # clipped slots are "certain" in the three-weight sense only when the
        # whole edge is clipped; we use the standard conservative choice of
        # keeping rho (clipping is not a full determination of the value).
        return np.asarray(rho, dtype=np.float64).copy()


@register_prox
class NonNegativeProx(ProxOperator):
    """Indicator of the non-negative orthant — ``x = max(n, 0)``."""

    name = "nonnegative"

    def prox_batch(self, n, rho, params):
        return np.maximum(n, 0.0)

    def evaluate(self, x, params):
        return 0.0 if np.all(x >= -1e-9) else float("inf")


@register_prox
class L1Prox(ProxOperator):
    """``h(s) = λ ||s||₁`` — soft-thresholding ``x = sign(n)(|n| − λ/ρ)⁺``.

    ``lam`` may be a scalar constructor argument or a per-factor parameter
    array (key ``"lam"``), in which case the parameter wins.
    """

    name = "l1"

    def __init__(self, lam: float = 1.0) -> None:
        self.lam = check_positive(lam, "lam")
        super().__init__()

    def prox_batch(self, n, rho, params):
        lam = params.get("lam", self.lam)
        lam = np.asarray(lam, dtype=np.float64)
        if lam.ndim == 1:  # per-factor scalar -> broadcast over slots
            lam = lam[:, None]
        rho_slots = expand_rho(rho, (n.shape[1],)) if rho.shape[-1] == 1 else None
        if rho_slots is None:
            # General case: rho given per edge; expand by repeating — the
            # graph layer guarantees rho.shape[-1] == n_edges.  For a single
            # 1-D variable per factor this is just rho itself.
            reps = n.shape[1] // rho.shape[1]
            rho_slots = np.repeat(rho, reps, axis=1)
        thresh = lam / rho_slots
        return np.sign(n) * np.maximum(np.abs(n) - thresh, 0.0)

    def evaluate(self, x, params):
        lam = float(np.ravel(params.get("lam", self.lam))[0])
        return lam * float(np.abs(x).sum())


@register_prox
class L2BallProx(ProxOperator):
    """Indicator of the ball ``||s|| ≤ r`` — radial projection."""

    name = "l2_ball"

    def __init__(self, radius: float = 1.0) -> None:
        self.radius = check_positive(radius, "radius")
        super().__init__()

    def prox_batch(self, n, rho, params):
        r = np.asarray(params.get("radius", self.radius), dtype=np.float64)
        norms = np.linalg.norm(n, axis=1, keepdims=True)
        scale = np.minimum(1.0, np.divide(r if r.ndim else float(r), np.maximum(norms, 1e-300)))
        if scale.ndim == 1:
            scale = scale[:, None]
        return n * scale

    def evaluate(self, x, params):
        r = float(np.ravel(params.get("radius", self.radius))[0])
        return 0.0 if np.linalg.norm(x) <= r + 1e-9 else float("inf")


@register_prox
class AffineConstraintProx(ProxOperator):
    """Indicator of ``{s : A s = c}`` — weighted projection onto an affine set.

    With per-edge weights ρ (expanded to slots as W), the prox is

        x = n − W⁻¹ Aᵀ (A W⁻¹ Aᵀ)⁻¹ (A n − c).

    ``A`` is an instance-level constant (shared by every factor in the
    group — the common case: one physics/constraint template stamped across
    the graph); ``c`` is a per-factor parameter (key ``"c"``, default 0).
    """

    name = "affine"

    def __init__(self, A: np.ndarray, dims: tuple[int, ...]) -> None:
        self.A = np.asarray(A, dtype=np.float64)
        if self.A.ndim != 2:
            raise ValueError("A must be a 2-D matrix")
        self.dims = tuple(int(d) for d in dims)
        if self.A.shape[1] != sum(self.dims):
            raise ValueError(
                f"A has {self.A.shape[1]} columns but dims {self.dims} "
                f"imply {sum(self.dims)} slots"
            )
        self.signature = self.dims
        # Fast path (uniform rho): projector P = I − Aᵀ(AAᵀ)⁻¹A and the
        # particular-solution map A⁺ = Aᵀ(AAᵀ)⁻¹, both precomputed.
        AAt = self.A @ self.A.T
        self._pinv = self.A.T @ np.linalg.inv(AAt)
        self._projector = np.eye(self.A.shape[1]) - self._pinv @ self.A
        super().__init__()

    def prox_batch(self, n, rho, params):
        rho = np.asarray(rho, dtype=np.float64)
        c = params.get("c", None)
        uniform = bool(np.allclose(rho, rho[:, :1]))
        if uniform:
            x = n @ self._projector.T
            if c is not None:
                x += c @ self._pinv.T
            return x
        # Weighted projection, batch-solved.
        w = expand_rho(rho, self.dims)  # (B, L)
        An = np.einsum("ml,bl->bm", self.A, n)
        if c is not None:
            An = An - c
        # M_b = A diag(1/w_b) Aᵀ  -> solve M_b y_b = An_b
        Aw = self.A[None, :, :] / w[:, None, :]
        M = np.einsum("bml,kl->bmk", Aw, self.A)
        y = np.linalg.solve(M, An[..., None])[..., 0]
        return n - np.einsum("bml,bm->bl", Aw, y)

    def evaluate(self, x, params):
        c = params.get("c", np.zeros(self.A.shape[0]))
        return 0.0 if np.allclose(self.A @ x, c, atol=1e-6) else float("inf")

    def outgoing_weights(self, x, n, rho, params):
        return np.asarray(rho, dtype=np.float64).copy()


@register_prox
class ConsensusEqualProx(ProxOperator):
    """Indicator of ``{s₁ = s₂ = … = s_k}`` over equal-dim variables.

    Weighted closed form (paper Appendix C.4 generalized to k variables):
    every copy is set to the ρ-weighted mean ``Σ ρᵢ nᵢ / Σ ρᵢ``.
    """

    name = "consensus_equal"

    def __init__(self, k: int, dim: int) -> None:
        self.k = int(k)
        self.dim = int(dim)
        if self.k < 2:
            raise ValueError(f"consensus needs k >= 2 variables, got {k}")
        self.signature = tuple([self.dim] * self.k)
        super().__init__()

    def prox_batch(self, n, rho, params):
        B = n.shape[0]
        parts = n.reshape(B, self.k, self.dim)
        w = np.asarray(rho, dtype=np.float64)[:, :, None]  # (B, k, 1)
        mean = (w * parts).sum(axis=1, keepdims=True) / w.sum(axis=1, keepdims=True)
        return np.broadcast_to(mean, parts.shape).reshape(B, -1)

    def evaluate(self, x, params):
        parts = x.reshape(self.k, self.dim)
        return 0.0 if np.allclose(parts, parts[0], atol=1e-6) else float("inf")


@register_prox
class FixedValueProx(ProxOperator):
    """Indicator of ``{s = v}`` — the message is ignored, output pinned.

    The paper's MPC initial-state constraint ``q(0) = q₀`` is this operator.
    Under the three-weight algorithm its messages are *certain* (weight ∞).
    """

    name = "fixed_value"

    def prox_batch(self, n, rho, params):
        return np.broadcast_to(params["value"], n.shape).astype(np.float64).copy()

    def evaluate(self, x, params):
        return 0.0 if np.allclose(x, params["value"], atol=1e-6) else float("inf")

    def outgoing_weights(self, x, n, rho, params):
        return np.full_like(np.asarray(rho, dtype=np.float64), np.inf)


@register_prox
class HalfspaceProx(ProxOperator):
    """Indicator of ``{s : g·s ≤ h}`` — projection onto a half-space.

    Uniform-ρ projection ``x = n − max(0, (g·n − h)/||g||²) g``; with
    per-edge weights the correction uses the W⁻¹-scaled normal.
    """

    name = "halfspace"

    def __init__(self, dims: tuple[int, ...]) -> None:
        self.dims = tuple(int(d) for d in dims)
        self.signature = self.dims
        super().__init__()

    def prox_batch(self, n, rho, params):
        g = params["g"]  # (B, L)
        h = params["h"]  # (B,) or (B, 1)
        h = np.reshape(h, (n.shape[0],))
        w = expand_rho(np.asarray(rho, dtype=np.float64), self.dims)
        gw = g / w
        viol = np.einsum("bl,bl->b", g, n) - h
        denom = np.einsum("bl,bl->b", g, gw)
        lam = np.maximum(0.0, viol / np.maximum(denom, 1e-300))
        return n - lam[:, None] * gw

    def evaluate(self, x, params):
        g = np.asarray(params["g"], dtype=np.float64)
        h = float(np.ravel(params["h"])[0])
        return 0.0 if float(g @ x) <= h + 1e-6 else float("inf")
