"""Proximal-operator protocol: the user-supplied kernel of parADMM.

A proximal operator (PO) of a function ``h`` with weight ``ρ`` maps ``r`` to

    Prox_{h,ρ}(r) = argmin_s  h(s) + (ρ/2) ||s − r||²        (paper eq. 3)

In parADMM the x-update evaluates one PO per function node.  Users write the
PO math once; the engine schedules it.  Two entry points exist, mirroring the
serial-code-only contract of the paper:

* :meth:`ProxOperator.prox` — one factor at a time (``n`` is the stacked
  ``n_(a,∂a)`` message of a single factor).  This is the "serial code for each
  PO" the user writes; the serial backend calls it directly.
* :meth:`ProxOperator.prox_batch` — all factors of a group at once, on
  ``(B, L)`` row matrices.  This is the CUDA-kernel analog (one row per GPU
  thread); the vectorized backend calls it.  Closed-form POs should override
  it for speed; a generic row-loop fallback delegates to :meth:`prox`.

Subclasses must override at least one of the two (the base class detects and
reports mutual-recursion misconfiguration).

Conventions
-----------
``n``       stacked input message, slot layout = concatenation of the
            factor's variables in scope order, shape (L,) or (B, L).
``rho``     per-edge penalty weights, shape (n_edges,) or (B, n_edges);
            note per-*edge*, not per-slot — a 2-D center variable shares one
            ρ across its two slots.
``params``  dict of per-factor constant arrays; batched entries carry a
            leading B axis.
"""

from __future__ import annotations

import abc
from typing import Mapping

import numpy as np


def expand_rho(rho: np.ndarray, dims: tuple[int, ...]) -> np.ndarray:
    """Expand per-edge ρ to per-slot ρ given the factor's variable dims.

    ``rho`` has shape (..., n_edges); the result has shape (..., L) where
    ``L = sum(dims)`` — each edge's ρ is repeated over its variable's slots.
    """
    reps = np.asarray(dims, dtype=np.int64)
    return np.repeat(np.asarray(rho, dtype=np.float64), reps, axis=-1)


def slot_offsets(dims: tuple[int, ...]) -> np.ndarray:
    """Prefix offsets of each variable inside the stacked slot vector."""
    out = np.zeros(len(dims) + 1, dtype=np.int64)
    np.cumsum(np.asarray(dims, dtype=np.int64), out=out[1:])
    return out


class ProxOperator(abc.ABC):
    """Base class for proximal operators (see module docstring).

    Attributes
    ----------
    name:
        Human-readable identifier used in reports and the registry.
    signature:
        Optional tuple of expected per-variable dimensions, e.g. ``(2, 1,
        2, 1)`` for the packing pair operator.  ``None`` accepts any scope.
        The graph/solver validates factors against it at build time.
    convex:
        Whether the underlying ``h`` is convex.  Purely informational (the
        engine supports non-convex POs, as the paper stresses); tests use it
        to decide which invariants (e.g. nonexpansiveness) apply.
    """

    name: str = ""
    signature: tuple[int, ...] | None = None
    convex: bool = True

    def __init__(self) -> None:
        if not self.name:
            self.name = type(self).__name__
        overrides_prox = type(self).prox is not ProxOperator.prox
        overrides_batch = type(self).prox_batch is not ProxOperator.prox_batch
        if not overrides_prox and not overrides_batch:
            raise TypeError(
                f"{type(self).__name__} must override prox() or prox_batch()"
            )

    # ------------------------------------------------------------------ #
    def validate_dims(self, dims: tuple[int, ...]) -> None:
        """Raise if a factor's variable dims don't match the signature."""
        if self.signature is not None and tuple(dims) != tuple(self.signature):
            raise ValueError(
                f"{self.name} expects variable dims {self.signature}, "
                f"got {tuple(dims)}"
            )

    # ------------------------------------------------------------------ #
    def prox(
        self,
        n: np.ndarray,
        rho: np.ndarray,
        params: Mapping[str, np.ndarray],
    ) -> np.ndarray:
        """Single-factor proximal map; default delegates to the batch form."""
        n2 = np.asarray(n, dtype=np.float64)[None, :]
        rho2 = np.atleast_1d(np.asarray(rho, dtype=np.float64))[None, :]
        params2 = {k: np.asarray(v)[None, ...] for k, v in params.items()}
        return self.prox_batch(n2, rho2, params2)[0]

    def prox_batch(
        self,
        n: np.ndarray,
        rho: np.ndarray,
        params: Mapping[str, np.ndarray],
    ) -> np.ndarray:
        """Batched proximal map; default loops over rows calling ``prox``."""
        n = np.asarray(n, dtype=np.float64)
        rho = np.asarray(rho, dtype=np.float64)
        out = np.empty_like(n)
        for i in range(n.shape[0]):
            row_params = {k: v[i] for k, v in params.items()}
            out[i] = self.prox(n[i], rho[i], row_params)
        return out

    # ------------------------------------------------------------------ #
    def evaluate(
        self, x: np.ndarray, params: Mapping[str, np.ndarray]
    ) -> float:
        """Objective value ``f_a(x)`` for diagnostics.

        Indicator functions return 0.0 on (numerically) feasible points and
        ``inf`` otherwise.  Default: not available (NaN), which the
        objective tracker treats as "skip this factor".
        """
        return float("nan")

    # ------------------------------------------------------------------ #
    # Three-weight-algorithm hook (Derbinsky et al. [9]).                 #
    # ------------------------------------------------------------------ #
    def outgoing_weights(
        self,
        x: np.ndarray,
        n: np.ndarray,
        rho: np.ndarray,
        params: Mapping[str, np.ndarray],
    ) -> np.ndarray:
        """Certainty weights of the factor's outgoing messages (batched).

        The three-weight algorithm lets a PO declare each output message
        *certain* (weight ``inf`` — e.g. a hard constraint that fully
        determines the value), *standard* (weight ``ρ``) or *no-opinion*
        (weight ``0``).  The default is the standard ADMM: weights = ρ.

        Shapes follow ``prox_batch``: ``x``/``n`` are (B, L), ``rho`` and the
        result are (B, n_edges).
        """
        return np.asarray(rho, dtype=np.float64).copy()

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"{type(self).__name__}(name={self.name!r})"
