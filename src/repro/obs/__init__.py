"""repro.obs — dependency-free fleet observability.

Structured trace events on a unified (monotonic, segment, worker) clock,
a small metrics registry, and exporters for Chrome trace-event JSON
(Perfetto / ``chrome://tracing``), Prometheus text exposition, and a
plain-text timeline report.

Enable tracing either per solver (``tracer=Tracer()``) or globally with
``REPRO_TRACE=1``; off by default with near-zero disabled overhead.
See the "Observability" section of :mod:`repro` for a walkthrough.
"""

from repro.obs.events import (
    KINDS,
    PARENT,
    POINT_KINDS,
    SPAN_KINDS,
    TRACE_ENV,
    EventRing,
    TraceEvent,
    Tracer,
    default_tracer,
    now,
    segment_events,
    trace_enabled,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    fleet_metrics,
)
from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    timeline_report,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "TraceEvent",
    "Tracer",
    "EventRing",
    "default_tracer",
    "trace_enabled",
    "segment_events",
    "now",
    "PARENT",
    "TRACE_ENV",
    "KINDS",
    "SPAN_KINDS",
    "POINT_KINDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "fleet_metrics",
    "DEFAULT_BUCKETS",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "prometheus_text",
    "timeline_report",
]
