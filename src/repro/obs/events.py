"""Typed structured events on a unified fleet clock.

Every layer of the fleet stack (batched solver, shard workers, the
rebalancer, supervision, the service) emits :class:`TraceEvent` records
stamped with one shared clock:

* **monotonic time** — ``time.monotonic()``.  ``CLOCK_MONOTONIC`` is a
  per-boot clock shared by every process on the host, so timestamps taken
  inside forked shard workers are directly comparable with the parent's.
* **segment index** — the fleet sweep count at the start of the segment
  the event belongs to (the solver's ``iteration`` counter).
* **worker id** — the shard index that produced the event, or
  :data:`PARENT` (``-1``) for the driver process.

Workers buffer events in a bounded :class:`EventRing` and ship them back
piggybacked on their existing result-queue replies at segment boundaries;
the parent folds them into its :class:`Tracer`, whose :meth:`Tracer.timeline`
is the single causally ordered fleet timeline (sorted by monotonic time,
ties broken by segment then worker; per-producer order is preserved).

Tracing is **off by default**: solvers take ``tracer=None`` and consult
:func:`default_tracer`, which returns ``None`` unless the ``REPRO_TRACE``
environment variable is set — so the disabled path is a single ``if`` on
``None`` per segment.  No third-party dependencies.
"""

from __future__ import annotations

import os
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from repro.utils.timing import UPDATE_KINDS

#: Worker id used for events emitted by the driver (parent) process.
PARENT = -1

#: Environment variable that turns tracing on globally (see default_tracer).
TRACE_ENV = "REPRO_TRACE"

#: Event kinds with duration (``t1 > t0`` allowed).
SPAN_KINDS = ("solve", "segment", "kernel", "request")

#: Instantaneous event kinds (``t1 == t0``).
POINT_KINDS = (
    "steal",
    "reshard",
    "rebalance",
    "grow",
    "shrink",
    "freeze",
    "crash",
    "restart",
    "failover",
    "migration",
    "submit",
    "admit",
    "evict",
    "drop",
    "rebuild",
)

#: Every kind a tracer accepts.
KINDS = SPAN_KINDS + POINT_KINDS


def now() -> float:
    """The unified fleet clock (monotonic, comparable across fork)."""
    return time.monotonic()


@dataclass(frozen=True)
class TraceEvent:
    """One structured event on the (monotonic, segment, worker) clock.

    Picklable (it rides worker result queues); ``data`` carries small
    kind-specific payloads (sweep counts, instance ids, details).
    """

    kind: str
    name: str
    t0: float
    t1: float
    segment: int = 0
    worker: int = PARENT
    data: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    @property
    def is_span(self) -> bool:
        return self.kind in SPAN_KINDS

    def shifted(self, dt: float) -> "TraceEvent":
        """A copy with both timestamps shifted by ``dt`` seconds."""
        return replace(self, t0=self.t0 + dt, t1=self.t1 + dt)


def _check_kind(kind: str) -> None:
    if kind not in KINDS:
        raise ValueError(f"unknown event kind {kind!r}; expected one of {KINDS}")


class EventRing:
    """Bounded event buffer: oldest events are dropped, and counted.

    Workers hold one ring per process so a pathological segment cannot grow
    an unbounded buffer; :meth:`drain` hands the buffered events (plus the
    drop count) to the reply that ships them to the parent.
    """

    def __init__(self, capacity: int = 1 << 16) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._events: deque[TraceEvent] = deque()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    def append(self, event: TraceEvent) -> None:
        if len(self._events) >= self.capacity:
            self._events.popleft()
            self.dropped += 1
        self._events.append(event)

    def extend(self, events: Iterable[TraceEvent]) -> None:
        for ev in events:
            self.append(ev)

    def drain(self) -> list[TraceEvent]:
        """Return and clear the buffered events (drop count is kept)."""
        out = list(self._events)
        self._events.clear()
        return out


class Tracer:
    """Parent-side event collector: emit, merge, and order fleet events.

    A ``Tracer`` object means tracing is *on*; the disabled state is simply
    ``tracer is None`` (see :func:`default_tracer`), so hot paths pay one
    ``None`` check per segment when tracing is off.
    """

    def __init__(self, capacity: int = 1 << 20) -> None:
        self._ring = EventRing(capacity)
        self.t_start = now()

    # -- emission ------------------------------------------------------ #

    def emit(self, event: TraceEvent) -> TraceEvent:
        _check_kind(event.kind)
        self._ring.append(event)
        return event

    def point(
        self,
        kind: str,
        name: str = "",
        *,
        worker: int = PARENT,
        segment: int = 0,
        t: float | None = None,
        **data,
    ) -> TraceEvent:
        """Emit an instantaneous event (steal, fault, admit, ...)."""
        t = now() if t is None else t
        return self.emit(TraceEvent(kind, name, t, t, segment, worker, data))

    def add_span(
        self,
        kind: str,
        name: str,
        t0: float,
        t1: float,
        *,
        worker: int = PARENT,
        segment: int = 0,
        **data,
    ) -> TraceEvent:
        """Emit a completed span from explicit timestamps."""
        return self.emit(TraceEvent(kind, name, t0, t1, segment, worker, data))

    @contextmanager
    def span(
        self,
        kind: str,
        name: str,
        *,
        worker: int = PARENT,
        segment: int = 0,
        **data,
    ) -> Iterator[dict]:
        """Context manager emitting a span on exit; yields its ``data``."""
        _check_kind(kind)
        t0 = now()
        try:
            yield data
        finally:
            self.emit(TraceEvent(kind, name, t0, now(), segment, worker, data))

    def extend(self, events: Iterable[TraceEvent]) -> None:
        """Fold worker-shipped events into the fleet timeline."""
        self._ring.extend(events)

    # -- inspection ---------------------------------------------------- #

    @property
    def dropped(self) -> int:
        return self._ring.dropped

    def __len__(self) -> int:
        return len(self._ring)

    def events(self) -> list[TraceEvent]:
        """The collected events in arrival order (not cleared)."""
        return list(self._ring._events)

    def timeline(self) -> list[TraceEvent]:
        """The merged, causally ordered fleet timeline.

        Sorted by monotonic start time (the clock shared by parent and
        forked workers), ties broken by segment index then worker id; the
        sort is stable so each producer's own ordering is preserved.
        """
        return sorted(
            self._ring._events, key=lambda e: (e.t0, e.segment, e.worker, e.t1)
        )

    def clear(self) -> None:
        self._ring.drain()
        self._ring.dropped = 0


def segment_events(
    *,
    worker: int,
    segment: int,
    t0: float,
    t1: float,
    sweeps: int,
    kernel_seconds: dict | None = None,
    name: str | None = None,
    **data,
) -> list[TraceEvent]:
    """Build the standard events for one worker's sweep segment.

    One ``segment`` span covering [t0, t1), plus one ``kernel`` span per
    update kind with nonzero measured time.  Kernel spans carry the *real*
    accumulated duration of that kernel over the segment but are laid out
    back-to-back from ``t0`` (their placement within the segment is
    approximate; their durations and fractions are exact).
    """
    events = [
        TraceEvent(
            "segment",
            name if name is not None else f"sweep[{sweeps}]",
            t0,
            t1,
            segment,
            worker,
            {"sweeps": sweeps, **data},
        )
    ]
    if kernel_seconds:
        t = t0
        for kind in UPDATE_KINDS:
            s = float(kernel_seconds.get(kind, 0.0))
            if s <= 0.0:
                continue
            events.append(
                TraceEvent("kernel", kind, t, t + s, segment, worker, {})
            )
            t += s
    return events


def trace_enabled() -> bool:
    """True when the ``REPRO_TRACE`` environment switch is on."""
    return os.environ.get(TRACE_ENV, "").strip().lower() not in (
        "",
        "0",
        "false",
        "off",
        "no",
    )


_global_tracer: Tracer | None = None


def default_tracer() -> Tracer | None:
    """The tracer solvers use when none is passed explicitly.

    Returns ``None`` (tracing disabled) unless ``REPRO_TRACE`` is set, in
    which case one process-wide :class:`Tracer` is shared by every solver
    constructed in this process.
    """
    global _global_tracer
    if not trace_enabled():
        return None
    if _global_tracer is None:
        _global_tracer = Tracer()
    return _global_tracer
