"""Exporters: Chrome trace-event JSON, Prometheus text, plain-text timeline.

The Chrome export follows the Trace Event Format (the JSON consumed by
Perfetto and ``chrome://tracing``): spans become complete events
(``"ph": "X"``, microsecond ``ts``/``dur``), points become instants
(``"ph": "i"``), and per-worker metadata events name the rows.  Load the
written file directly at https://ui.perfetto.dev.

:func:`validate_chrome_trace` checks an export against the format's
required fields and is the gate CI runs on every ``--trace`` artifact.
"""

from __future__ import annotations

import json
from collections import Counter as _Counter
from typing import Iterable

from repro.obs.events import PARENT, SPAN_KINDS, TraceEvent
from repro.obs.metrics import MetricsRegistry, fleet_metrics
from repro.utils.timing import UPDATE_KINDS, format_seconds

#: ph values the validator accepts (complete, instant, metadata).
_VALID_PHASES = {"X", "i", "M"}


def _worker_label(worker: int) -> str:
    return "parent" if worker == PARENT else f"worker {worker}"


def chrome_trace(events: Iterable[TraceEvent], *, pid: int = 0) -> dict:
    """Render a timeline as a Chrome trace-event JSON object.

    Timestamps are shifted so the earliest event starts at 0 and expressed
    in microseconds, per the format.  Worker ids map to thread rows
    (``tid``); the parent gets its own labeled row.
    """
    events = list(events)
    t_base = min((ev.t0 for ev in events), default=0.0)
    trace_events: list[dict] = []
    workers: dict[int, str] = {}
    for ev in events:
        tid = ev.worker - PARENT  # parent -> row 0, worker k -> row k+1
        workers.setdefault(tid, _worker_label(ev.worker))
        ts = (ev.t0 - t_base) * 1e6
        record = {
            "name": ev.name or ev.kind,
            "cat": ev.kind,
            "pid": pid,
            "tid": tid,
            "ts": ts,
            "args": {"segment": ev.segment, **ev.data},
        }
        if ev.is_span:
            record["ph"] = "X"
            record["dur"] = max(ev.duration, 0.0) * 1e6
        else:
            record["ph"] = "i"
            record["s"] = "t"
        trace_events.append(record)
    for tid, label in sorted(workers.items()):
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "ts": 0,
                "args": {"name": label},
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Iterable[TraceEvent], path) -> dict:
    """Write the Chrome trace JSON to ``path``; returns the exported object."""
    obj = chrome_trace(events)
    with open(path, "w") as fh:
        json.dump(obj, fh, indent=1)
        fh.write("\n")
    return obj


def validate_chrome_trace(obj) -> list[str]:
    """Check an export against the trace-event format; returns problems.

    An empty list means the object is a valid JSON-object-format trace
    (``traceEvents`` array of events with name/ph/pid/tid/ts, non-negative
    ``dur`` on complete events, a scope on instants).
    """
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    evs = obj.get("traceEvents")
    if not isinstance(evs, list):
        return ["missing or non-array 'traceEvents'"]
    for i, ev in enumerate(evs):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _VALID_PHASES:
            problems.append(f"{where}: bad ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where}: missing integer {key!r}")
        if not isinstance(ev.get("ts"), (int, float)):
            problems.append(f"{where}: missing numeric ts")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)):
                problems.append(f"{where}: complete event missing dur")
            elif dur < 0:
                problems.append(f"{where}: negative dur {dur}")
        if ph == "i" and ev.get("s") not in (None, "t", "p", "g"):
            problems.append(f"{where}: bad instant scope {ev.get('s')!r}")
        args = ev.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{where}: args must be an object")
    return problems


def prometheus_text(source) -> str:
    """Prometheus text exposition for a registry or an event timeline."""
    if isinstance(source, MetricsRegistry):
        return source.render()
    return fleet_metrics(source).render()


def timeline_report(
    events: Iterable[TraceEvent], *, limit: int | None = 200
) -> str:
    """Human-readable fleet timeline (causal order) with summary tables."""
    events = sorted(events, key=lambda e: (e.t0, e.segment, e.worker, e.t1))
    if not events:
        return "fleet timeline: no events\n"
    t_base = events[0].t0
    span = max(ev.t1 for ev in events) - t_base
    workers = sorted({ev.worker for ev in events})
    lines = [
        f"fleet timeline: {len(events)} events, "
        f"{len(workers)} lanes, span {format_seconds(span)}",
        "",
    ]

    by_kind = _Counter(ev.kind for ev in events)
    lines.append(
        "events by kind: "
        + ", ".join(f"{k}={n}" for k, n in sorted(by_kind.items()))
    )

    kernel_seconds = {k: 0.0 for k in UPDATE_KINDS}
    for ev in events:
        if ev.kind == "kernel" and ev.name in kernel_seconds:
            kernel_seconds[ev.name] += ev.duration
    total = sum(kernel_seconds.values())
    if total > 0.0:
        parts = [
            f"{k}:{format_seconds(kernel_seconds[k])}({kernel_seconds[k] / total:.0%})"
            for k in UPDATE_KINDS
        ]
        lines.append("kernel time:    " + " ".join(parts))

    busy: dict[int, float] = {}
    for ev in events:
        if ev.kind == "segment":
            busy[ev.worker] = busy.get(ev.worker, 0.0) + ev.duration
    if busy:
        lines.append(
            "segment busy:   "
            + " ".join(
                f"{_worker_label(w)}={format_seconds(s)}"
                for w, s in sorted(busy.items())
            )
        )
    lines.append("")

    shown = events if limit is None else events[:limit]
    for ev in shown:
        stamp = f"+{ev.t0 - t_base:10.6f}s seg {ev.segment:>4} {_worker_label(ev.worker):>9}"
        if ev.is_span:
            body = f"{ev.kind:<8} {ev.name} {format_seconds(ev.duration)}"
        else:
            body = f"{ev.kind:<8} {ev.name}"
        extra = {k: v for k, v in ev.data.items()}
        if extra:
            body += "  " + " ".join(f"{k}={v}" for k, v in sorted(extra.items()))
        lines.append(f"[{stamp}] {body}")
    if limit is not None and len(events) > limit:
        lines.append(f"... ({len(events) - limit} more events)")
    return "\n".join(lines) + "\n"
