"""A small counter/gauge/histogram registry with Prometheus text exposition.

Dependency-free and deliberately tiny: enough to publish fleet health
(segments swept, kernel seconds per update kind, steals, faults, request
latency) in the standard text format that Prometheus / ``promtool`` and
every scrape-compatible agent understand.

    reg = MetricsRegistry()
    reg.counter("repro_steals_total", "Work-stealing events").inc()
    reg.histogram("repro_request_latency_seconds").observe(0.12)
    print(reg.render())

:func:`fleet_metrics` derives the standard fleet metrics from a
:class:`~repro.obs.events.TraceEvent` timeline, so any traced solve can be
scraped without new plumbing in the solvers.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterable

from repro.obs.events import PARENT, TraceEvent

#: Default histogram buckets (seconds), Prometheus' classic latency ladder.
DEFAULT_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _format_value(v: float) -> str:
    if v == math.inf:
        return "+Inf"
    if v == -math.inf:
        return "-Inf"
    if float(v).is_integer():
        return str(int(v))
    return repr(float(v))


def _label_str(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing value."""

    kind = "counter"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount

    def samples(self) -> list[tuple[str, tuple, float]]:
        return [(self.name, self.labels, self.value)]


class Gauge:
    """Value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def samples(self) -> list[tuple[str, tuple, float]]:
        return [(self.name, self.labels, self.value)]


class Histogram:
    """Cumulative histogram with fixed upper-bound buckets (le semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        # One count per finite bound plus the implicit +Inf bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        v = float(value)
        self.counts[bisect_left(self.bounds, v)] += 1
        self.sum += v
        self.count += 1

    def samples(self) -> list[tuple[str, tuple, float]]:
        out = []
        cumulative = 0
        for bound, c in zip(self.bounds, self.counts):
            cumulative += c
            out.append(
                (
                    self.name + "_bucket",
                    self.labels + (("le", _format_value(bound)),),
                    float(cumulative),
                )
            )
        out.append(
            (self.name + "_bucket", self.labels + (("le", "+Inf"),), float(self.count))
        )
        out.append((self.name + "_sum", self.labels, self.sum))
        out.append((self.name + "_count", self.labels, float(self.count)))
        return out


class MetricsRegistry:
    """Get-or-create registry keyed by (metric name, label set)."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple], object] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}
        self._order: list[str] = []

    def _get(self, cls, name: str, help: str, labels: dict, **kwargs):
        label_items = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        declared = self._kinds.get(name)
        if declared is None:
            self._kinds[name] = cls.kind
            self._help[name] = help
            self._order.append(name)
        elif declared != cls.kind:
            raise ValueError(
                f"metric {name!r} already registered as {declared}, not {cls.kind}"
            )
        elif help and not self._help[name]:
            self._help[name] = help
        key = (name, label_items)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, label_items, **kwargs)
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels,
    ) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    def render(self) -> str:
        """Prometheus text exposition (version 0.0.4)."""
        lines: list[str] = []
        for name in self._order:
            help_text = self._help.get(name, "")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {self._kinds[name]}")
            for (mname, _), metric in sorted(self._metrics.items()):
                if mname != name:
                    continue
                for sample_name, labels, value in metric.samples():
                    lines.append(
                        f"{sample_name}{_label_str(labels)} {_format_value(value)}"
                    )
        return "\n".join(lines) + "\n"


def fleet_metrics(
    events: Iterable[TraceEvent], registry: MetricsRegistry | None = None
) -> MetricsRegistry:
    """Aggregate a trace timeline into the standard fleet metrics.

    Populates segment/sweep counters, per-kernel time (the paper's
    time-fraction table as ``repro_kernel_seconds_total{kernel=...}``),
    steal/fault counters, service admission/eviction counters, per-worker
    busy-time gauges, and a request-latency histogram (from ``evict``
    events that carry a ``latency`` payload).
    """
    reg = registry if registry is not None else MetricsRegistry()
    segments = reg.counter("repro_segments_total", "Sweep segments executed")
    sweeps = reg.counter("repro_sweeps_total", "ADMM sweeps executed")
    steals = reg.counter("repro_steals_total", "Work-stealing migrations")
    latency = reg.histogram(
        "repro_request_latency_seconds", "Per-request solve latency"
    )
    for ev in events:
        if ev.kind == "segment":
            segments.inc()
            sweeps.inc(float(ev.data.get("sweeps", 0)))
            who = "parent" if ev.worker == PARENT else str(ev.worker)
            reg.gauge(
                "repro_worker_busy_seconds",
                "Time spent inside sweep segments",
                worker=who,
            ).inc(ev.duration)
        elif ev.kind == "kernel":
            reg.counter(
                "repro_kernel_seconds_total",
                "Per-kernel sweep time (x/m/z/u/n)",
                kernel=ev.name,
            ).inc(ev.duration)
        elif ev.kind in ("steal", "migration"):
            steals.inc()
        elif ev.kind in ("crash", "restart", "failover"):
            reg.counter(
                "repro_faults_total", "Worker faults by kind", kind=ev.kind
            ).inc()
        elif ev.kind in ("submit", "admit", "evict"):
            reg.counter(
                "repro_requests_total", "Service request transitions", phase=ev.kind
            ).inc()
            if ev.kind == "evict" and "latency" in ev.data:
                latency.observe(float(ev.data["latency"]))
    return reg
