"""Precision what-if — the paper's future-work item 5.

"In many applications floating-point precision might be enough and using
cards like TITAN X might bring additional GPU speedups."  On consumer
Maxwell-class cards the FP32:FP64 throughput ratio is 32:1; on the K40 it
is 3:1.  This helper rescales a workload's compute cost (and halves its
traffic — 4-byte instead of 8-byte words) to model switching the engine to
single precision on a given device class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.kernel import KernelWorkload


@dataclass(frozen=True)
class PrecisionProfile:
    """Relative cost of FP32 vs the FP64 baseline on one device class."""

    name: str
    compute_scale: float  # cycles multiplier when moving FP64 -> FP32
    traffic_scale: float = 0.5  # 4-byte words

    def __post_init__(self) -> None:
        if self.compute_scale <= 0 or self.traffic_scale <= 0:
            raise ValueError("scales must be positive")


#: Kepler Tesla (K40): FP64 runs at 1/3 FP32 rate → FP32 is ~3x cheaper.
K40_FP32 = PrecisionProfile("K40 fp32", compute_scale=1.0 / 3.0)
#: Maxwell GeForce (TITAN X): FP64 at 1/32 rate → FP32 is ~32x cheaper, but
#: the FP64 baseline is what our nominal costs describe on Tesla parts, so
#: a conservative 1/4 covers issue-rate limits on real mixed kernels.
TITANX_FP32 = PrecisionProfile("TITAN X fp32", compute_scale=0.25)


def with_precision(
    workloads: dict[str, KernelWorkload], profile: PrecisionProfile
) -> dict[str, KernelWorkload]:
    """Return workloads rescaled for single-precision execution."""
    return {
        k: KernelWorkload(
            w.name,
            w.cycles * profile.compute_scale,
            w.bytes_per_item * profile.traffic_scale,
            access=w.access,
        )
        for k, w in workloads.items()
    }
