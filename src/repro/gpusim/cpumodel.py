"""Multicore CPU performance model (Figures 8/11/14-right mechanism).

Each ADMM kernel is a fork-join parallel loop: per-core compute shrinks as
``1/cores`` (up to chunk imbalance), but two terms do not —

* the shared memory-bandwidth ceiling (all cores drain one memory bus), and
* synchronization overhead, which *grows* with the core count.

Their interplay produces the paper's observed saturation (Fig 8-right) and
the eventual decline where "as we add more cores, the performance actually
gets hurt" (Fig 11-right).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.partition import balanced_partition, chunk_loads
from repro.gpusim.device import CPUSpec
from repro.gpusim.kernel import KernelWorkload


@dataclass(frozen=True)
class LoopTiming:
    """Simulated timing of one parallel loop on ``cores`` cores."""

    name: str
    time_s: float
    compute_s: float
    memory_s: float
    overhead_s: float
    cores: int
    load_imbalance: float  # max chunk / mean chunk


def simulate_parallel_loop(
    cpu: CPUSpec,
    workload: KernelWorkload,
    cores: int,
    balance: str = "contiguous",
) -> LoopTiming:
    """Simulate one fork-join loop over the workload's items.

    ``balance="contiguous"`` splits items into equal contiguous chunks (the
    paper's ``AssignThreads``); ``balance="lpt"`` bin-packs by cost (the
    conclusion's rebalancing scheduler).
    """
    if cores < 1:
        raise ValueError(f"cores must be >= 1, got {cores}")
    if cores > cpu.cores:
        raise ValueError(f"requested {cores} cores, device has {cpu.cores}")
    eff_clock = cpu.clock_hz * cpu.serial_efficiency
    if workload.n_items == 0:
        return LoopTiming(workload.name, 0.0, 0.0, 0.0, 0.0, cores, 1.0)
    # Streaming bandwidth grows with cores until the shared bus saturates.
    bw = min(cores * cpu.core_mem_bandwidth_gbs, cpu.mem_bandwidth_gbs) * 1e9
    if cores == 1:
        compute = workload.total_cycles / eff_clock
        mem = workload.total_bytes / bw
        return LoopTiming(
            workload.name, max(compute, mem), compute, mem, 0.0, cores, 1.0
        )
    if balance == "contiguous":
        part = chunk_loads(workload.cycles, cores)
    elif balance == "lpt":
        part = balanced_partition(workload.cycles, cores)
    else:
        raise ValueError(f"balance must be 'contiguous' or 'lpt', got {balance!r}")
    compute = part.makespan / eff_clock
    mem = workload.total_bytes / bw
    overhead = (cpu.fork_join_us + cpu.barrier_us_per_core * cores) * 1e-6
    return LoopTiming(
        name=workload.name,
        time_s=max(compute, mem) + overhead,
        compute_s=compute,
        memory_s=mem,
        overhead_s=overhead,
        cores=cores,
        load_imbalance=part.imbalance,
    )


@dataclass(frozen=True)
class CPUSimResult:
    """Simulated multicore iteration vs. the 1-core baseline."""

    loops: dict[str, LoopTiming]
    serial_seconds: dict[str, float]

    @property
    def iteration_s(self) -> float:
        return sum(t.time_s for t in self.loops.values())

    @property
    def serial_iteration_s(self) -> float:
        return sum(self.serial_seconds.values())

    @property
    def combined_speedup(self) -> float:
        t = self.iteration_s
        return self.serial_iteration_s / t if t > 0 else float("inf")

    def speedups(self) -> dict[str, float]:
        return {
            k: (self.serial_seconds[k] / t.time_s if t.time_s > 0 else float("inf"))
            for k, t in self.loops.items()
        }

    def fractions(self) -> dict[str, float]:
        total = self.iteration_s
        if total == 0:
            return {k: 0.0 for k in self.loops}
        return {k: t.time_s / total for k, t in self.loops.items()}


def simulate_admm_cpu(
    cpu: CPUSpec,
    workloads: dict[str, KernelWorkload],
    cores: int,
    balance: str = "contiguous",
) -> CPUSimResult:
    """Simulate one five-loop ADMM iteration on ``cores`` cores."""
    loops = {
        k: simulate_parallel_loop(cpu, w, cores, balance)
        for k, w in workloads.items()
    }
    serial = {
        k: simulate_parallel_loop(cpu, w, 1).time_s for k, w in workloads.items()
    }
    return CPUSimResult(loops=loops, serial_seconds=serial)


def speedup_vs_cores(
    cpu: CPUSpec,
    workloads: dict[str, KernelWorkload],
    core_counts: list[int] | None = None,
    balance: str = "contiguous",
) -> dict[int, float]:
    """Combined-speedup curve over core counts (Fig 8/11/14-right)."""
    if core_counts is None:
        core_counts = [c for c in (1, 2, 4, 8, 12, 16, 20, 24, 28, 32) if c <= cpu.cores]
    return {
        c: simulate_admm_cpu(cpu, workloads, c, balance).combined_speedup
        for c in core_counts
    }
