"""Device descriptions for the SIMT and multicore performance models.

The simulators are *mechanistic*: they execute a schedule (blocks onto SMs,
warps in lock step, chunks onto cores) over per-element costs and report
times.  Device constants live here; :data:`TESLA_K40` matches the paper's
GPU, :data:`OPTERON_6300` its 32-core host (2 × 16-core AMD Opteron Abu
Dhabi at 2.8 GHz).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DeviceSpec:
    """A CUDA-style SIMT device.

    Attributes
    ----------
    num_sms:
        Streaming multiprocessors; blocks are list-scheduled onto them.
    cores_per_sm:
        Scalar lanes per SM; ``cores_per_sm / warp_size`` warps execute
        concurrently per SM (the throughput denominator).
    warp_size:
        Lanes per warp; a warp's time is the max over its active lanes
        (lock-step divergence).
    clock_ghz:
        Core clock; converts cycles to seconds.
    max_threads_per_block:
        Upper limit for ``ntb`` (CUDA: 1024).
    mem_bandwidth_gbs:
        Global-memory bandwidth; the roofline memory bound.
    launch_overhead_us:
        Fixed per-kernel-launch cost (five launches per ADMM iteration).
    block_overhead_cycles:
        Per-block dispatch cost — the reason ntb=1 is worse than ntb=32
        even though both waste no lanes beyond the warp quantum.
    issue_lanes_per_sm:
        Effective lanes an SM sustains per cycle for the double-precision,
        branch/sqrt-heavy proximal code the engine runs.  Kepler SMs carry
        192 single-precision cores but issue DP/SFU-heavy warps at a far
        lower rate (64 DP units, reduced issue slots, latency-bound
        threads); 32 — one warp instruction per cycle — models that
        regime.  This is the lever that makes complex POs "hard to speed
        up" on the GPU, as the paper observes for the x-update.
    """

    name: str
    num_sms: int
    cores_per_sm: int
    warp_size: int
    clock_ghz: float
    max_threads_per_block: int
    mem_bandwidth_gbs: float
    launch_overhead_us: float
    block_overhead_cycles: float
    issue_lanes_per_sm: int = 32
    #: Resident-block / resident-thread limits per SM (occupancy caps).
    max_blocks_per_sm: int = 16
    max_threads_per_sm: int = 2048
    #: Per-SM cache serving the resident threads' working set.  When the
    #: resident working set overflows it, data reuse is lost and effective
    #: memory bandwidth degrades — the mechanism that makes very large
    #: thread blocks slow for fat work items (and hence ntb = 32 the sweet
    #: spot the paper lands on, after Volkov's "better performance at lower
    #: occupancy").
    l1_cache_kb: float = 48.0
    #: Per-thread cache footprint cap: a thread that *streams* its data
    #: (e.g. the z-update walking its variable's messages) only ever needs a
    #: few cache lines resident, however many bytes it touches in total.
    stream_window_bytes: float = 256.0

    def __post_init__(self) -> None:
        for field_name in (
            "num_sms",
            "cores_per_sm",
            "warp_size",
            "max_threads_per_block",
        ):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be >= 1")
        check_positive(self.clock_ghz, "clock_ghz")
        check_positive(self.mem_bandwidth_gbs, "mem_bandwidth_gbs")
        if self.launch_overhead_us < 0 or self.block_overhead_cycles < 0:
            raise ValueError("overheads must be non-negative")
        if self.cores_per_sm % self.warp_size != 0:
            raise ValueError("cores_per_sm must be a multiple of warp_size")
        if self.issue_lanes_per_sm < 1:
            raise ValueError("issue_lanes_per_sm must be >= 1")
        if self.max_blocks_per_sm < 1 or self.max_threads_per_sm < 1:
            raise ValueError("occupancy limits must be >= 1")
        check_positive(self.l1_cache_kb, "l1_cache_kb")

    @property
    def warp_slots_per_sm(self) -> float:
        """Warps an SM sustains concurrently for this code class."""
        return self.issue_lanes_per_sm / self.warp_size

    @property
    def total_cores(self) -> int:
        return self.num_sms * self.cores_per_sm

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9


#: The paper's GPU: NVIDIA Tesla K40 (Kepler GK110B).
TESLA_K40 = DeviceSpec(
    name="Tesla K40",
    num_sms=15,
    cores_per_sm=192,
    warp_size=32,
    clock_ghz=0.745,
    max_threads_per_block=1024,
    mem_bandwidth_gbs=288.0,
    launch_overhead_us=5.0,
    block_overhead_cycles=25.0,
    issue_lanes_per_sm=32,
    max_blocks_per_sm=16,
    max_threads_per_sm=2048,
    l1_cache_kb=48.0,
)

#: A newer-generation card for the conclusion's "test on different GPUs".
TITAN_X = DeviceSpec(
    name="GeForce GTX TITAN X",
    num_sms=24,
    cores_per_sm=128,
    warp_size=32,
    clock_ghz=1.0,
    max_threads_per_block=1024,
    mem_bandwidth_gbs=336.5,
    launch_overhead_us=5.0,
    block_overhead_cycles=25.0,
    issue_lanes_per_sm=48,
    max_blocks_per_sm=32,
    max_threads_per_sm=2048,
    l1_cache_kb=96.0,
)


@dataclass(frozen=True)
class CPUSpec:
    """A shared-memory multicore host for the multicore model.

    ``fork_join_us`` is the fixed cost of opening/closing one parallel loop
    (five per ADMM iteration); ``barrier_us_per_core`` grows the
    synchronization cost with the core count — the mechanism behind the
    paper's observation that adding cores can *hurt* (Fig 11-right).
    ``serial_efficiency`` scales per-item cycles when run on one core: an
    out-of-order 2.8 GHz core with -O3 retires the same complex scalar
    work in far fewer cycles than one in-order GPU lane (the paper's
    baseline is "a serial, *optimized* C-version").
    ``core_mem_bandwidth_gbs`` is what a *single* core can stream — the
    serial bound for the memory-dominated m/u/n kernels; the full
    ``mem_bandwidth_gbs`` is shared by all cores in parallel loops.
    """

    name: str
    cores: int
    clock_ghz: float
    mem_bandwidth_gbs: float
    fork_join_us: float
    barrier_us_per_core: float
    serial_efficiency: float = 8.0
    core_mem_bandwidth_gbs: float = 8.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        check_positive(self.clock_ghz, "clock_ghz")
        check_positive(self.mem_bandwidth_gbs, "mem_bandwidth_gbs")
        check_positive(self.serial_efficiency, "serial_efficiency")
        check_positive(self.core_mem_bandwidth_gbs, "core_mem_bandwidth_gbs")
        if self.fork_join_us < 0 or self.barrier_us_per_core < 0:
            raise ValueError("overheads must be non-negative")

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9


#: The paper's host: 2 × AMD Opteron 6300 "Abu Dhabi" (32 cores, 2.8 GHz).
OPTERON_6300 = CPUSpec(
    name="AMD Opteron 6300 x2",
    cores=32,
    clock_ghz=2.8,
    mem_bandwidth_gbs=51.2,
    fork_join_us=8.0,
    barrier_us_per_core=1.5,
    serial_efficiency=8.0,
    core_mem_bandwidth_gbs=8.0,
)
