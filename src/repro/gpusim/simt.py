"""SIMT execution model: blocks onto SMs, warps in lock step.

Mechanism (no fitted magic — the paper's findings must *emerge*):

1. Work items are packed into thread blocks of ``ntb`` consecutive items
   (trailing lanes idle), blocks into warps of ``warp_size`` lanes.
2. A warp executes in lock step: its time is the **max** cost over its
   active lanes.  Heterogeneous per-item costs therefore cause divergence
   loss; a whole warp with one expensive lane is as slow as that lane.
   A warp with fewer than 32 active lanes still occupies a full warp slot —
   the reason ``ntb < 32`` wastes throughput.
3. A block's work is the sum of its warp times plus a fixed dispatch
   overhead; blocks are scheduled onto SMs (list scheduling — each block to
   the SM that frees up first, matching the hardware's greedy dispatcher).
4. An SM retires ``warp_slots_per_sm`` warps concurrently: its busy time is
   ``assigned warp-cycles / warp_slots``, floored by the longest single
   block's critical path.  Kernel compute time = slowest SM.  Few blocks ⇒
   idle SMs and wave-quantization tails — the reason very large ``ntb``
   loses.
5. Roofline memory bound: ``total bytes / (bandwidth × coalescing)``.
   Kernel time = max(compute, memory) + launch overhead.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.gpusim.device import CPUSpec, DeviceSpec
from repro.gpusim.kernel import KernelTiming, KernelWorkload

#: Above this block count, exact list scheduling (a Python heap loop) is
#: replaced by round-robin assignment — indistinguishable at that scale.
LIST_SCHEDULING_MAX_BLOCKS = 200_000


def warp_times(
    cycles: np.ndarray, ntb: int, warp_size: int
) -> tuple[np.ndarray, np.ndarray]:
    """Pack per-item cycles into warps; return (block_work, block_critical).

    ``block_work[b]``     — sum of warp times of block ``b`` (warp-cycles).
    ``block_critical[b]`` — max warp time of block ``b`` (its critical path
    when fully overlapped).
    """
    n = cycles.size
    if n == 0:
        return np.zeros(0), np.zeros(0)
    n_blocks = -(-n // ntb)
    padded = np.zeros(n_blocks * ntb)
    padded[:n] = cycles
    per_block = padded.reshape(n_blocks, ntb)
    warps_per_block = -(-ntb // warp_size)
    pad_w = warps_per_block * warp_size - ntb
    if pad_w:
        per_block = np.pad(per_block, ((0, 0), (0, pad_w)))
    lanes = per_block.reshape(n_blocks, warps_per_block, warp_size)
    wt = lanes.max(axis=2)  # lock-step: warp time = slowest lane
    return wt.sum(axis=1), wt.max(axis=1)


def assign_blocks(
    block_work: np.ndarray, num_sms: int
) -> tuple[np.ndarray, float]:
    """Schedule blocks onto SMs; return (per-SM work, max block critical…).

    Exact greedy list scheduling in block order for modest block counts,
    round-robin beyond :data:`LIST_SCHEDULING_MAX_BLOCKS`.
    Returns per-SM total warp-cycles.
    """
    n_blocks = block_work.size
    if n_blocks == 0:
        return np.zeros(num_sms), 0.0
    if n_blocks <= LIST_SCHEDULING_MAX_BLOCKS:
        heap = [(0.0, s) for s in range(num_sms)]
        heapq.heapify(heap)
        loads = np.zeros(num_sms)
        for w in block_work:
            load, s = heapq.heappop(heap)
            loads[s] = load + w
            heapq.heappush(heap, (loads[s], s))
        return loads, float(block_work.max())
    sm_idx = np.arange(n_blocks) % num_sms
    loads = np.bincount(sm_idx, weights=block_work, minlength=num_sms)
    return loads, float(block_work.max())


def simulate_kernel(
    device: DeviceSpec, workload: KernelWorkload, ntb: int
) -> KernelTiming:
    """Simulate one kernel launch; returns its timing breakdown."""
    if not 1 <= ntb <= device.max_threads_per_block:
        raise ValueError(
            f"ntb must be in [1, {device.max_threads_per_block}], got {ntb}"
        )
    n = workload.n_items
    launch_s = device.launch_overhead_us * 1e-6
    if n == 0:
        return KernelTiming(
            name=workload.name,
            time_s=launch_s,
            compute_s=0.0,
            memory_s=0.0,
            launch_s=launch_s,
            n_blocks=0,
            ntb=ntb,
            sm_imbalance=1.0,
        )
    block_work, block_crit = warp_times(
        workload.cycles, ntb, device.warp_size
    )
    block_work = block_work + device.block_overhead_cycles
    loads, max_block_crit = assign_blocks(block_work, device.num_sms)
    busy = loads / device.warp_slots_per_sm
    sm_time_cycles = float(np.max(np.maximum(busy, 0.0)))
    # An SM can never beat the critical path of its longest block.
    sm_time_cycles = max(sm_time_cycles, max_block_crit)
    compute_s = sm_time_cycles / device.clock_hz
    # Cache-pressure factor: the resident threads' working set vs the SM
    # cache.  Overflow loses reuse and degrades effective bandwidth — fat
    # work items at large ntb pay here (see DeviceSpec.l1_cache_kb).
    resident_threads = min(
        device.max_blocks_per_sm * ntb, device.max_threads_per_sm
    )
    mean_bytes = workload.total_bytes / n
    working_set = resident_threads * min(mean_bytes, device.stream_window_bytes)
    cache_bytes = device.l1_cache_kb * 1024.0
    cache_eff = 1.0 if working_set <= cache_bytes else max(
        cache_bytes / working_set, 0.15
    )
    memory_s = workload.total_bytes / (
        device.mem_bandwidth_gbs
        * 1e9
        * workload.coalescing_efficiency
        * cache_eff
    )
    mean_busy = float(busy.mean()) if busy.size else 0.0
    imbalance = float(busy.max() / mean_busy) if mean_busy > 0 else 1.0
    return KernelTiming(
        name=workload.name,
        time_s=max(compute_s, memory_s) + launch_s,
        compute_s=compute_s,
        memory_s=memory_s,
        launch_s=launch_s,
        n_blocks=int(block_work.size),
        ntb=ntb,
        sm_imbalance=imbalance,
    )


def serial_time(workload: KernelWorkload, cpu: "CPUSpec") -> float:
    """Time for one sequential host core to retire the whole workload.

    Roofline on the host side too: compute at ``clock × serial_efficiency``
    (an out-of-order core retires complex scalar code in fewer cycles than a
    GPU lane), memory at the single-core streaming bandwidth.  The
    memory-dominated m/u/n kernels are bandwidth-bound even serially, which
    is exactly why they parallelize so much better than the x-update.
    """
    compute = workload.total_cycles / (cpu.clock_hz * cpu.serial_efficiency)
    memory = workload.total_bytes / (cpu.core_mem_bandwidth_gbs * 1e9)
    return max(compute, memory)


def best_ntb(
    device: DeviceSpec,
    workload: KernelWorkload,
    candidates: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
) -> tuple[int, dict[int, KernelTiming]]:
    """Sweep threads-per-block; return (argmin ntb, all timings)."""
    timings: dict[int, KernelTiming] = {}
    for ntb in candidates:
        if ntb > device.max_threads_per_block:
            continue
        timings[ntb] = simulate_kernel(device, workload, ntb)
    best = min(timings, key=lambda k: timings[k].time_s)
    return best, timings
