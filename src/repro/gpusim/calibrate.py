"""Calibration: anchor the performance models to measured kernel times.

The simulators' *shapes* come from scheduling mechanics; their absolute
scales come from a nominal lane-cost model.  For experiments that compare
kernels against each other (time fractions, per-update speedups) the
relative per-kernel weights matter, so this module measures real per-kernel
seconds on this machine (via :class:`KernelTimers`) and rescales each
simulated workload so the serial model reproduces the measured ratios.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend
from repro.core.state import ADMMState
from repro.graph.factor_graph import FactorGraph
from repro.gpusim.device import CPUSpec
from repro.gpusim.kernel import KernelWorkload
from repro.utils.timing import UPDATE_KINDS, KernelTimers


def measure_kernel_seconds(
    graph: FactorGraph,
    backend: Backend,
    iterations: int = 10,
    rho: float = 2.0,
    seed: int | None = None,
) -> dict[str, float]:
    """Measured wall seconds per kernel for one iteration (averaged)."""
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    state = ADMMState(graph, rho=rho).init_random(0.1, 0.9, seed=seed)
    timers = KernelTimers()
    backend.prepare(graph)
    backend.run(graph, state, iterations, timers)
    return {k: timers[k].elapsed / iterations for k in UPDATE_KINDS}


def scale_workloads_to_measurements(
    workloads: dict[str, KernelWorkload],
    measured_seconds: dict[str, float],
    reference: CPUSpec,
) -> dict[str, KernelWorkload]:
    """Rescale each kernel's cycles so the 1-core model hits the measurement.

    The scaling is per kernel: cycles are multiplied so that the *compute*
    term ``total_cycles / (clock × efficiency)`` equals the measured
    seconds.  Bytes are left unchanged (traffic is structural).  Kernels
    measured at 0 s (too fast to time) keep their nominal costs.
    """
    eff_clock = reference.clock_hz * reference.serial_efficiency
    out: dict[str, KernelWorkload] = {}
    for k, w in workloads.items():
        meas = measured_seconds.get(k, 0.0)
        if meas <= 0.0 or w.total_cycles <= 0.0:
            out[k] = w
            continue
        scale = (meas * eff_clock) / w.total_cycles
        out[k] = KernelWorkload(
            name=w.name,
            cycles=w.cycles * scale,
            bytes_per_item=w.bytes_per_item,
            access=w.access,
        )
    return out


def measured_fractions(measured_seconds: dict[str, float]) -> dict[str, float]:
    """Per-kernel share of one measured iteration (paper's "x+z take 71%")."""
    total = sum(measured_seconds.values())
    if total <= 0:
        return {k: 0.0 for k in measured_seconds}
    return {k: v / total for k, v in measured_seconds.items()}
