"""Translate a factor graph into the five per-iteration kernel workloads.

The translation is structural: per-element costs are affine in the element's
size (slots per factor, dims per edge, messages per variable), so degree
imbalance, group heterogeneity, and graph growth show up in the simulated
schedule exactly the way they stress real hardware.  Absolute constants are
a nominal lane-cost model; :mod:`repro.gpusim.calibrate` can rescale each
kernel to measured timings (ratios — the quantities the paper reports — are
insensitive to the absolute scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.factor_graph import FactorGraph
from repro.gpusim.device import CPUSpec, DeviceSpec
from repro.gpusim.kernel import KernelTiming, KernelWorkload
from repro.gpusim.simt import serial_time, simulate_kernel

_F8 = 8.0  # bytes per double


@dataclass(frozen=True)
class CostModel:
    """Per-element lane-cost constants (cycles) and traffic (bytes).

    ``x_per_slot_by_prox`` overrides the per-slot x-cost for specific
    operators (closed-form projections are cheaper than batched solves).
    """

    x_base: float = 80.0
    x_per_slot: float = 40.0
    x_per_slot_by_prox: dict[str, float] = field(default_factory=dict)
    m_per_slot: float = 8.0
    z_base: float = 15.0
    z_per_msg_slot: float = 12.0
    u_per_slot: float = 12.0
    n_per_slot: float = 10.0

    def x_cost_of_group(self, prox_name: str) -> float:
        return self.x_per_slot_by_prox.get(prox_name, self.x_per_slot)


def admm_workloads(
    graph: FactorGraph, cost: CostModel | None = None
) -> dict[str, KernelWorkload]:
    """Build the five :class:`KernelWorkload`s of one ADMM iteration."""
    cost = cost if cost is not None else CostModel()
    # ---- x kernel: one item per factor ------------------------------- #
    slots_per_factor = np.diff(graph.factor_slot_indptr).astype(np.float64)
    x_cycles = np.full(graph.num_factors, cost.x_base)
    for g in graph.groups:
        per_slot = cost.x_cost_of_group(getattr(g.prox, "name", ""))
        x_cycles[g.factor_ids] += per_slot * slots_per_factor[g.factor_ids]
    # read n + rho, write x (+ params, folded into the constant)
    x_bytes = _F8 * (2.0 * slots_per_factor + np.diff(graph.factor_indptr))
    x_access = (
        "contiguous" if all(g.contiguous for g in graph.groups) else "gathered"
    )
    # ---- m kernel: one item per edge ---------------------------------- #
    dims = graph.edge_dims.astype(np.float64)
    m_cycles = cost.m_per_slot * dims
    m_bytes = 3.0 * _F8 * dims  # read x, u; write m
    # ---- z kernel: one item per variable ------------------------------ #
    deg = graph.var_degree.astype(np.float64)
    vdim = graph.var_dims.astype(np.float64)
    z_cycles = cost.z_base + cost.z_per_msg_slot * deg * vdim
    z_bytes = _F8 * (deg * vdim + deg + vdim)  # read m, rho; write z
    # ---- u kernel: one item per edge ----------------------------------- #
    u_cycles = cost.u_per_slot * dims
    u_bytes = 4.0 * _F8 * dims  # read u, x, z; write u
    # ---- n kernel: one item per edge ----------------------------------- #
    n_cycles = cost.n_per_slot * dims
    n_bytes = 3.0 * _F8 * dims  # read z, u; write n
    # Access classes: m streams three contiguous arrays; u/n stream edge
    # arrays but gather z through the edge→z map ("mixed"); the z-update
    # gathers messages variable-by-variable ("gathered").
    return {
        "x": KernelWorkload("x", x_cycles, x_bytes, access=x_access),
        "m": KernelWorkload("m", m_cycles, m_bytes, access="contiguous"),
        "z": KernelWorkload("z", z_cycles, z_bytes, access="gathered"),
        "u": KernelWorkload("u", u_cycles, u_bytes, access="mixed"),
        "n": KernelWorkload("n", n_cycles, n_bytes, access="mixed"),
    }


@dataclass(frozen=True)
class GPUSimResult:
    """Simulated GPU vs. serial-CPU comparison for one graph."""

    timings: dict[str, KernelTiming]
    serial_seconds: dict[str, float]

    @property
    def gpu_iteration_s(self) -> float:
        return sum(t.time_s for t in self.timings.values())

    @property
    def serial_iteration_s(self) -> float:
        return sum(self.serial_seconds.values())

    @property
    def combined_speedup(self) -> float:
        gpu = self.gpu_iteration_s
        return self.serial_iteration_s / gpu if gpu > 0 else float("inf")

    def kernel_speedup(self, kind: str) -> float:
        t = self.timings[kind].time_s
        return self.serial_seconds[kind] / t if t > 0 else float("inf")

    def speedups(self) -> dict[str, float]:
        return {k: self.kernel_speedup(k) for k in self.timings}

    def fractions(self, where: str = "gpu") -> dict[str, float]:
        """Per-kernel share of iteration time on "gpu" or "serial"."""
        if where == "gpu":
            total = self.gpu_iteration_s
            per = {k: t.time_s for k, t in self.timings.items()}
        elif where == "serial":
            total = self.serial_iteration_s
            per = dict(self.serial_seconds)
        else:
            raise ValueError(f"where must be 'gpu' or 'serial', got {where!r}")
        if total == 0:
            return {k: 0.0 for k in per}
        return {k: v / total for k, v in per.items()}


def simulate_admm_gpu(
    device: DeviceSpec,
    graph: FactorGraph | None,
    host: CPUSpec,
    ntb: int | dict[str, int] = 32,
    cost: CostModel | None = None,
    workloads: dict[str, KernelWorkload] | None = None,
) -> GPUSimResult:
    """Simulate one ADMM iteration on ``device`` vs one core of ``host``.

    ``ntb`` may be a single threads-per-block value (the paper mostly uses
    32) or a per-kernel dict.  Pass ``workloads`` (e.g. from
    :mod:`repro.gpusim.synthetic`) to model paper-scale instances without
    materializing a graph; ``graph`` may then be ``None``.
    """
    if workloads is None and graph is None:
        raise ValueError("provide a graph or explicit workloads")
    wl = workloads if workloads is not None else admm_workloads(graph, cost)
    if isinstance(ntb, int):
        ntb_by_kernel = {k: ntb for k in wl}
    else:
        missing = set(wl) - set(ntb)
        if missing:
            raise ValueError(f"ntb dict missing kernels: {sorted(missing)}")
        ntb_by_kernel = dict(ntb)
    timings = {
        k: simulate_kernel(device, w, ntb_by_kernel[k]) for k, w in wl.items()
    }
    serial = {k: serial_time(w, host) for k, w in wl.items()}
    return GPUSimResult(timings=timings, serial_seconds=serial)
