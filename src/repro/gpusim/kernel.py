"""Kernel workload descriptions for the performance models.

A :class:`KernelWorkload` is what a CUDA kernel looks like to the scheduler:
one work item per graph element, each with a compute cost (cycles on one
lane) and a memory traffic volume (bytes), plus a memory-access pattern
summarized as a coalescing efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Coalescing efficiencies of the access patterns the engine produces.
#: Contiguous: consecutive threads touch consecutive addresses (the paper's
#: "ideal scenario ... blocks of variables in sequence").  Gathered: threads
#: follow an index map (the paper's "less ideal scenario ... non-consecutive
#: memory positions").  Scattered: fully random per-lane transactions.
COALESCING = {
    "contiguous": 1.0,
    "mixed": 0.6,
    "gathered": 0.35,
    "scattered": 1.0 / 8.0,
}


@dataclass(frozen=True)
class KernelWorkload:
    """One kernel launch's worth of independent work items."""

    name: str
    cycles: np.ndarray  # (n_items,) per-item compute cost on one lane
    bytes_per_item: np.ndarray  # (n_items,) global-memory traffic
    access: str = "contiguous"  # key into COALESCING

    def __post_init__(self) -> None:
        cycles = np.asarray(self.cycles, dtype=np.float64)
        bpi = np.asarray(self.bytes_per_item, dtype=np.float64)
        object.__setattr__(self, "cycles", cycles)
        object.__setattr__(self, "bytes_per_item", bpi)
        if cycles.ndim != 1:
            raise ValueError("cycles must be 1-D (one entry per work item)")
        if bpi.shape != cycles.shape:
            raise ValueError(
                f"bytes_per_item shape {bpi.shape} != cycles shape {cycles.shape}"
            )
        if cycles.size and cycles.min() < 0:
            raise ValueError("cycles must be non-negative")
        if bpi.size and bpi.min() < 0:
            raise ValueError("bytes_per_item must be non-negative")
        if self.access not in COALESCING:
            raise ValueError(
                f"access must be one of {sorted(COALESCING)}, got {self.access!r}"
            )

    @property
    def n_items(self) -> int:
        return int(self.cycles.size)

    @property
    def total_cycles(self) -> float:
        return float(self.cycles.sum())

    @property
    def total_bytes(self) -> float:
        return float(self.bytes_per_item.sum())

    @property
    def coalescing_efficiency(self) -> float:
        return COALESCING[self.access]


@dataclass(frozen=True)
class KernelTiming:
    """Simulated timing of one kernel launch."""

    name: str
    time_s: float
    compute_s: float
    memory_s: float
    launch_s: float
    n_blocks: int
    ntb: int
    sm_imbalance: float  # max SM busy time / mean SM busy time

    @property
    def bound(self) -> str:
        """Which roofline term dominates ("compute" or "memory")."""
        return "compute" if self.compute_s >= self.memory_s else "memory"
