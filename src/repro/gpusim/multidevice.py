"""Multi-GPU execution model — the paper's future-work item 3.

"Extend the code to allow the use of multiple GPUs and multiple computers —
this is an easy extension but requires new code to be written."  This module
models it: the factor graph is partitioned into ``num_devices`` shards
(contiguous element ranges — the natural extension of the flat layout), each
device runs the five kernels on its shard, and between the x/m phase and the
z phase the devices exchange boundary messages over an interconnect.

Cut-size model: a contiguous shard of a graph with ``cut_fraction`` of its
edges crossing shard boundaries must ship ``x/m`` values for those edges to
the device owning the variable, and receive ``z`` values back — two
transfers of ``cut_edges × dim × 8`` bytes per iteration over a link of
``link_bandwidth_gbs`` with ``link_latency_us`` per message.

The headline question it answers: at what graph size and cut fraction does
a second GPU pay off?  (Same wave/overhead mechanics as the single-device
model; communication is the new term.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.device import CPUSpec, DeviceSpec
from repro.gpusim.kernel import KernelWorkload
from repro.gpusim.simt import serial_time, simulate_kernel


@dataclass(frozen=True)
class Interconnect:
    """Device-to-device link (PCIe-gen3-x16-like defaults)."""

    bandwidth_gbs: float = 12.0
    latency_us: float = 10.0

    def transfer_s(self, bytes_: float) -> float:
        if bytes_ <= 0:
            return 0.0
        return self.latency_us * 1e-6 + bytes_ / (self.bandwidth_gbs * 1e9)


#: Same-box GPUs over PCIe gen3 x16.
PCIE_GEN3 = Interconnect(bandwidth_gbs=12.0, latency_us=10.0)
#: "Multiple computers" (future-work item 3's second half): datacenter
#: 10-gigabit Ethernet — two orders of magnitude more latency, an order
#: less bandwidth.  The crossover where a second *machine* pays off sits
#: correspondingly further out.
ETHERNET_10G = Interconnect(bandwidth_gbs=1.25, latency_us=200.0)


def shard_workload(workload: KernelWorkload, num_devices: int) -> list[KernelWorkload]:
    """Split a workload into contiguous per-device shards."""
    if num_devices < 1:
        raise ValueError(f"num_devices must be >= 1, got {num_devices}")
    shards = []
    bounds = np.linspace(0, workload.n_items, num_devices + 1).astype(int)
    for d in range(num_devices):
        s, t = bounds[d], bounds[d + 1]
        shards.append(
            KernelWorkload(
                f"{workload.name}[{d}]",
                workload.cycles[s:t],
                workload.bytes_per_item[s:t],
                access=workload.access,
            )
        )
    return shards


@dataclass(frozen=True)
class MultiDeviceResult:
    """One simulated multi-device iteration."""

    num_devices: int
    compute_s: float  # slowest device's kernel time, summed over kernels
    comm_s: float  # boundary exchange per iteration
    iteration_s: float
    serial_iteration_s: float

    @property
    def combined_speedup(self) -> float:
        return (
            self.serial_iteration_s / self.iteration_s
            if self.iteration_s > 0
            else float("inf")
        )


def simulate_multi_gpu(
    device: DeviceSpec,
    host: CPUSpec,
    workloads: dict[str, KernelWorkload],
    num_devices: int,
    cut_fraction: float = 0.05,
    link: Interconnect | None = None,
    ntb: int = 32,
) -> MultiDeviceResult:
    """Simulate one ADMM iteration sharded over ``num_devices`` GPUs.

    ``cut_fraction`` is the fraction of edges whose factor and variable land
    on different devices (0 = perfectly separable decomposition).
    """
    if not 0.0 <= cut_fraction <= 1.0:
        raise ValueError(f"cut_fraction must be in [0, 1], got {cut_fraction}")
    link = link if link is not None else Interconnect()
    compute = 0.0
    for wl in workloads.values():
        shard_times = [
            simulate_kernel(device, shard, ntb).time_s
            for shard in shard_workload(wl, num_devices)
        ]
        compute += max(shard_times)
    comm = 0.0
    if num_devices > 1:
        edge_bytes = workloads["m"].total_bytes / 3.0  # one family's worth
        cut_bytes = cut_fraction * edge_bytes
        # x/m values out, z values back — serialized on the slowest link.
        comm = 2.0 * link.transfer_s(cut_bytes)
    serial = sum(serial_time(wl, host) for wl in workloads.values())
    return MultiDeviceResult(
        num_devices=num_devices,
        compute_s=compute,
        comm_s=comm,
        iteration_s=compute + comm,
        serial_iteration_s=serial,
    )


def scaling_curve(
    device: DeviceSpec,
    host: CPUSpec,
    workloads: dict[str, KernelWorkload],
    device_counts: tuple[int, ...] = (1, 2, 4, 8),
    cut_fraction: float = 0.05,
    link: Interconnect | None = None,
) -> dict[int, MultiDeviceResult]:
    """Speedup as GPUs are added (the future-work scaling question)."""
    return {
        d: simulate_multi_gpu(
            device, host, workloads, d, cut_fraction, link
        )
        for d in device_counts
    }
