"""SIMT GPU and multicore CPU performance-model simulators."""

from repro.gpusim.device import (
    CPUSpec,
    DeviceSpec,
    OPTERON_6300,
    TESLA_K40,
    TITAN_X,
)
from repro.gpusim.kernel import COALESCING, KernelTiming, KernelWorkload
from repro.gpusim.simt import (
    assign_blocks,
    best_ntb,
    serial_time,
    simulate_kernel,
    warp_times,
)
from repro.gpusim.workloads import (
    CostModel,
    GPUSimResult,
    admm_workloads,
    simulate_admm_gpu,
)
from repro.gpusim.cpumodel import (
    CPUSimResult,
    LoopTiming,
    simulate_admm_cpu,
    simulate_parallel_loop,
    speedup_vs_cores,
)
from repro.gpusim.calibrate import (
    measure_kernel_seconds,
    measured_fractions,
    scale_workloads_to_measurements,
)
from repro.gpusim.synthetic import (
    FactorFamily,
    VariableFamily,
    mpc_families,
    mpc_workloads,
    packing_families,
    packing_workloads,
    svm_families,
    svm_workloads,
    synthetic_workloads,
)
from repro.gpusim.multidevice import (
    ETHERNET_10G,
    PCIE_GEN3,
    Interconnect,
    MultiDeviceResult,
    scaling_curve,
    shard_workload,
    simulate_multi_gpu,
)
from repro.gpusim.precision import (
    K40_FP32,
    TITANX_FP32,
    PrecisionProfile,
    with_precision,
)

__all__ = [
    "CPUSpec",
    "DeviceSpec",
    "OPTERON_6300",
    "TESLA_K40",
    "TITAN_X",
    "COALESCING",
    "KernelTiming",
    "KernelWorkload",
    "assign_blocks",
    "best_ntb",
    "serial_time",
    "simulate_kernel",
    "warp_times",
    "CostModel",
    "GPUSimResult",
    "admm_workloads",
    "simulate_admm_gpu",
    "CPUSimResult",
    "LoopTiming",
    "simulate_admm_cpu",
    "simulate_parallel_loop",
    "speedup_vs_cores",
    "measure_kernel_seconds",
    "measured_fractions",
    "scale_workloads_to_measurements",
    "FactorFamily",
    "VariableFamily",
    "mpc_families",
    "mpc_workloads",
    "packing_families",
    "packing_workloads",
    "svm_families",
    "svm_workloads",
    "synthetic_workloads",
    "ETHERNET_10G",
    "PCIE_GEN3",
    "Interconnect",
    "MultiDeviceResult",
    "scaling_curve",
    "shard_workload",
    "simulate_multi_gpu",
    "K40_FP32",
    "TITANX_FP32",
    "PrecisionProfile",
    "with_precision",
]
