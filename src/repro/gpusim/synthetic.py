"""Synthetic paper-scale workloads, built from graph-structure formulas.

The performance models only need per-element cost/traffic arrays, not a
materialized graph.  For the paper's largest instances (packing N=5000 has
12.5M factors and 50M edges) building the real :class:`FactorGraph` costs
minutes and gigabytes; the element populations, however, follow closed-form
family structures (§V: "2N² − N + 2NS edges, 2N variable nodes and
N(N−1)/2 + N + NS function nodes").  This module synthesizes the exact same
workload arrays directly from those formulas.

A test asserts that the synthetic arrays match ``admm_workloads(real
graph)`` exactly at small sizes, so paper-scale model runs are faithful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.gpusim.kernel import KernelWorkload
from repro.gpusim.workloads import CostModel

_F8 = 8.0


@dataclass(frozen=True)
class FactorFamily:
    """``count`` identical factors with per-edge dims ``edge_dims``."""

    count: int
    edge_dims: tuple[int, ...]
    prox_name: str = ""

    @property
    def slots(self) -> int:
        return int(sum(self.edge_dims))

    @property
    def n_edges(self) -> int:
        return len(self.edge_dims)


@dataclass(frozen=True)
class VariableFamily:
    """``count`` identical variables of dimension ``dim`` and degree ``degree``."""

    count: int
    dim: int
    degree: int


def synthetic_workloads(
    factor_families: Sequence[FactorFamily],
    variable_families: Sequence[VariableFamily],
    cost: CostModel | None = None,
) -> tuple[dict[str, KernelWorkload], int]:
    """Build the five kernel workloads plus the total element count.

    Validates the handshake identity: total factor-side edge endpoints must
    equal total variable-side degree.
    """
    cost = cost if cost is not None else CostModel()
    factor_edges = sum(f.count * f.n_edges for f in factor_families)
    var_edges = sum(v.count * v.degree for v in variable_families)
    if factor_edges != var_edges:
        raise ValueError(
            f"edge handshake mismatch: factors imply {factor_edges} edges, "
            f"variables imply {var_edges}"
        )

    # x kernel: one item per factor.
    x_cycles = np.concatenate(
        [
            np.full(
                f.count,
                cost.x_base + cost.x_cost_of_group(f.prox_name) * f.slots,
            )
            for f in factor_families
        ]
        or [np.zeros(0)]
    )
    x_bytes = np.concatenate(
        [
            np.full(f.count, _F8 * (2.0 * f.slots + f.n_edges))
            for f in factor_families
        ]
        or [np.zeros(0)]
    )

    # Edge kernels: dims per edge, family-major then edge order within.
    dims = np.concatenate(
        [
            np.tile(np.asarray(f.edge_dims, dtype=np.float64), f.count)
            for f in factor_families
        ]
        or [np.zeros(0)]
    )
    m_cycles = cost.m_per_slot * dims
    m_bytes = 3.0 * _F8 * dims
    u_cycles = cost.u_per_slot * dims
    u_bytes = 4.0 * _F8 * dims
    n_cycles = cost.n_per_slot * dims
    n_bytes = 3.0 * _F8 * dims

    # z kernel: one item per variable.
    z_cycles = np.concatenate(
        [
            np.full(v.count, cost.z_base + cost.z_per_msg_slot * v.degree * v.dim)
            for v in variable_families
        ]
        or [np.zeros(0)]
    )
    z_bytes = np.concatenate(
        [
            np.full(v.count, _F8 * (v.degree * v.dim + v.degree + v.dim))
            for v in variable_families
        ]
        or [np.zeros(0)]
    )

    workloads = {
        "x": KernelWorkload("x", x_cycles, x_bytes, access="contiguous"),
        "m": KernelWorkload("m", m_cycles, m_bytes, access="contiguous"),
        "z": KernelWorkload("z", z_cycles, z_bytes, access="gathered"),
        "u": KernelWorkload("u", u_cycles, u_bytes, access="mixed"),
        "n": KernelWorkload("n", n_cycles, n_bytes, access="mixed"),
    }
    n_factors = sum(f.count for f in factor_families)
    n_vars = sum(v.count for v in variable_families)
    num_elements = n_factors + n_vars + factor_edges
    return workloads, num_elements


# --------------------------------------------------------------------- #
# Paper workloads at any scale                                           #
# --------------------------------------------------------------------- #


def packing_families(
    n: int, s: int = 3
) -> tuple[list[FactorFamily], list[VariableFamily]]:
    """§V-A triangle packing: pair/wall/radius families, center/radius vars."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    factors = [
        FactorFamily(n * (n - 1) // 2, (2, 1, 2, 1), "packing_pair"),
        FactorFamily(n * s, (2, 1), "packing_wall"),
        FactorFamily(n, (1,), "packing_radius"),
    ]
    variables = [
        VariableFamily(n, 2, (n - 1) + s),  # centers: pairs + walls
        VariableFamily(n, 1, (n - 1) + s + 1),  # radii: pairs + walls + reward
    ]
    return factors, variables


def mpc_families(
    k: int, dq: int = 4, du: int = 1
) -> tuple[list[FactorFamily], list[VariableFamily]]:
    """§V-B MPC: cost/dynamics/init families over (q, u) nodes."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    d = dq + du
    factors = [
        FactorFamily(k + 1, (d,), "mpc_cost"),
        FactorFamily(k, (d, d), "mpc_dynamics"),
        FactorFamily(1, (d,), "mpc_initial_state"),
    ]
    variables = [
        VariableFamily(1, d, 3),  # node 0: cost + dynamics + init
        VariableFamily(max(k - 1, 0), d, 3),  # internal: cost + 2 dynamics
        VariableFamily(1, d, 2) if k >= 1 else VariableFamily(0, d, 0),  # last
    ]
    return factors, variables


def svm_families(
    n: int, dim: int = 2
) -> tuple[list[FactorFamily], list[VariableFamily]]:
    """§V-C SVM: norm/slack/margin/equality families over plane+slack vars."""
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    d1 = dim + 1
    factors = [
        FactorFamily(n, (d1,), "svm_norm"),
        FactorFamily(n, (1,), "svm_slack"),
        FactorFamily(n, (d1, 1), "svm_margin"),
        FactorFamily(n - 1, (d1, d1), "consensus_equal"),
    ]
    variables = [
        VariableFamily(1, d1, 3),  # first plane: norm + margin + 1 equality
        VariableFamily(n - 2, d1, 4),  # interior planes: + 2 equalities
        VariableFamily(1, d1, 3),  # last plane
        VariableFamily(n, 1, 2),  # slacks: slack factor + margin
    ]
    return factors, variables


def packing_workloads(
    n: int, s: int = 3, cost: CostModel | None = None
) -> tuple[dict[str, KernelWorkload], int]:
    """Packing kernel workloads at any N (no graph materialization)."""
    f, v = packing_families(n, s)
    return synthetic_workloads(f, v, cost)


def mpc_workloads(
    k: int, dq: int = 4, du: int = 1, cost: CostModel | None = None
) -> tuple[dict[str, KernelWorkload], int]:
    """MPC kernel workloads at any K."""
    f, v = mpc_families(k, dq, du)
    return synthetic_workloads(f, v, cost)


def svm_workloads(
    n: int, dim: int = 2, cost: CostModel | None = None
) -> tuple[dict[str, KernelWorkload], int]:
    """SVM kernel workloads at any N."""
    f, v = svm_families(n, dim)
    return synthetic_workloads(f, v, cost)
