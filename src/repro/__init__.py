"""repro — a Python reproduction of parADMM (Hao et al., IPPS 2016).

Fine-grained parallel ADMM on a factor graph: write one proximal operator
per sub-problem, declare the bipartite graph, and the engine schedules the
five message-passing kernels onto serial, vectorized, threaded, or
multiprocess execution — no parallel code required from the user.

Quickstart::

    from repro import GraphBuilder, ADMMSolver
    from repro.prox import DiagQuadProx

    b = GraphBuilder()
    w = b.add_variable(dim=2)
    b.add_factor(DiagQuadProx(dims=(2,)), [w],
                 params={"q": [1.0, 1.0], "c": [-2.0, 2.0]})
    result = ADMMSolver(b.build()).solve(max_iterations=200)
    print(result.variable(w))   # -> approx [2, -2]

Batched multi-instance solving
------------------------------
Fleets of independent problems (e.g. one MPC instance per controlled
device) stack into a single block-diagonal graph whose factor groups stay
memory-coalesced, so one vectorized sweep advances every instance::

    from repro import BatchedSolver, replicate_graph

    batch = replicate_graph(template, batch_size=64,
                            params_per_instance=overrides)
    results = BatchedSolver(batch).solve_batch(max_iterations=500)

``BatchedSolver`` tracks residuals, stopping, and the ρ-schedule per
instance (converged instances freeze but keep sweeping with the fleet) and
returns one ``ADMMResult`` per instance; ``warm_start_pool`` seeds the
fleet from a pool of previous solutions (cycled when smaller than the
fleet), the real-time MPC pattern at scale.

Heterogeneous mixed-family fleets
---------------------------------
Fleets are not restricted to copies of one template.  ``pack_graphs``
packs instances of *different* templates — different app families,
different sizes — into one group-major batch: factor groups bucket
across instances by proximal-operator identity (the sweep only cares
which operator runs, never which instance a factor came from), and
per-instance index maps stay exact, so every solver layer below accepts
a mixed batch unchanged and every instance still matches its solo solve
at 1e-10 (``tests/test_fleet_mixed.py``).  Packing instances of a single
template delegates to ``replicate_graph``, so homogeneous fleets keep
the historical layout bit-for-bit::

    from repro import BatchedSolver, pack_graphs
    from repro.graph import pack_batches

    batch = pack_graphs([mpc_graph, svm_graph, packing_graph],
                        counts=[8, 4, 2])
    results = BatchedSolver(batch).solve_batch(max_iterations=500)

    fleet = pack_batches([build_mpc_batch(mpcs), build_svm_batch(svms)])

``pack_batches`` concatenates per-family fleets built by the app-layer
``build_*_batch`` helpers (``build_mpc_batch``, ``build_svm_batch``,
``build_lasso_batch``, ``build_packing_batch``), and
``FleetService.submit(..., template=...)`` admits requests carrying
their own graphs into one live mixed fleet.

Sharded + elastic fleets
------------------------
``ShardedBatchedSolver`` splits a ``GraphBatch`` into contiguous
instance-block shards — zero-copy z slices, thanks to the instance-major
layout — and drives one vectorized worker per shard (forked process or
pool thread), with residuals, stopping masks, and ρ-schedules still
per-instance, aggregated across shards::

    from repro import ShardedBatchedSolver

    results = ShardedBatchedSolver(batch, num_shards=4).solve_batch()

Batches are elastic: ``BatchedSolver.add_instances`` /
``remove_instances`` (and the ``GraphBatch`` methods underneath) grow or
shrink a running fleet between solves while surviving instances keep their
iterates, duals, and penalties bit-for-bit (the randomized-async backend
re-binds across a resize, restarting its per-instance streams).  The
three-weight and randomized-async variants run through the same fleet path
(``solve_batch_twa``, ``solve_batch_async``, and the ``variant`` argument
of ``ShardedBatchedSolver``) with per-instance randomized streams, so
every combination stays numerically identical to solo solves.

Live rebalancing
----------------
Elastic resizes are structurally **incremental**:
``GraphBatch.append_instances`` splices only the k new instance blocks
into the canonical group-major layout (O(k) instance builds, witnessed by
``repro.graph.REBUILD_COUNTER``) and ``remove_instances`` compacts the
index maps instead of re-replicating survivors.  On top of that,
``RebalancingShardedSolver`` keeps shard ownership *fluid* on a live
fleet: idle shards **work-steal** contiguous roster blocks from the
heaviest shard as instances converge unevenly (deterministic, seeded
decisions logged in ``steal_log``), ``reshard``/``rebalance`` repartition
the fleet in place without restarting workers, and ``add_instances`` /
``remove_instances`` grow or shrink the rosters mid-flight.  Because
every migration moves per-instance state bit-for-bit through the batch
index maps, results stay bit-identical to a plain ``BatchedSolver`` under
any churn — pinned by the churn stress suite (``tests/test_fleet_churn.py``)
and the stealing determinism matrix (``tests/test_fleet_rebalancing.py``).

In process mode all of that churn is **zero-copy**: each worker owns
capacity-bound shared-memory mirrors of its shard state (roster size ×
``slack``), so steals, rebinds, reshards, and elastic resizes move no
iterate bytes over the command queues — growth past the slack triggers
exactly one counted buffer rebuild, and ``transport_stats()`` witnesses
the byte accounting (``transport="queue"`` keeps the legacy pickled
path).  Stealing can also be **predictive**
(``steal_policy="predictive"``): fitted residual-decay slopes project
each instance's sweeps-to-convergence and steals trigger on
cost-weighted rosters before a shard actually starves, with decisions
still deterministic and results still bit-identical
(``tests/test_fleet_zerocopy.py``)::

    from repro import RebalancingShardedSolver

    solver = RebalancingShardedSolver(batch, num_shards=4,
                                      steal_threshold=2,
                                      steal_policy="predictive",
                                      mode="process")  # shared transport
    results = solver.solve_batch()       # steals as instances freeze
    solver.reshard(2)                    # live repartition, state carried
    solver.transport_stats()             # queue_state_bytes == 0

Fault tolerance
---------------
Process-mode fleets survive their workers (``repro.core.supervision``).
Workers heartbeat on their result queues while sweeping; the parent polls
liveness at ``WorkerPolicy.poll_interval`` granularity, so a SIGKILLed,
hung, or queue-corrupting worker is *detected* within one
``wait_timeout`` — never by hanging — and *recovered* without losing a
single in-flight instance: the parent holds the authoritative per-instance
state (iterates, async streams, ρ-schedules) and every sweep is
deterministic given (graph, state, masks), so restarting a fresh worker
and replaying the lost segment reproduces the unfailed run bit-for-bit
(on the shared transport the replacement worker re-inherits the dead
worker's shared-memory mirrors, so even recovery stays off the queues).
When the restart budget is exhausted, ``RebalancingShardedSolver``
executes the segment in the parent and migrates the dead shard's roster
onto a survivor through the work-stealing path — a dead worker is just an
**involuntary steal**.  Every crash, restart, failover, and migration is
recorded in the solver's ``fault_log`` (a ``FaultLog``, mirror of
``steal_log``)::

    from repro import RebalancingShardedSolver
    from repro.core import WorkerPolicy

    solver = RebalancingShardedSolver(batch, num_shards=4, mode="process",
                                      policy=WorkerPolicy(max_restarts=2))
    results = solver.solve_batch()       # crashes recovered, bit-identical
    print(solver.fault_log.summary())

``repro.testing.faults`` makes these failures a scripted, seeded input
(SIGKILL / severed queue / delayed or corrupt replies at chosen sweep
segments) — driving the chaos suite (``tests/test_fleet_faults.py``), the
``repro-bench fleet --fault-plan`` demo, and ``examples/fleet_faults.py``.

Fleet as a service
------------------
``FleetService`` turns the live fleet into a long-lived solve daemon:
requests (per-factor parameter overrides on one template graph, optional
warm-start z, per-request iteration cap) queue on an input lane, are
admission-batched into a running ``RebalancingShardedSolver`` between
sweep segments (O(k) ``add_instances`` appends under a configurable
``admit_every``/``max_batch`` latency window), and are evicted with their
``ADMMResult`` the moment their stopping mask fires — while the service
reports per-request p50/p95/p99 latency and sustained instances/sec
(``stats()``) instead of one batch wall-clock number.  Because the
service drives the exact ``solve_batch`` segment loop through the
solver's public segment-boundary hooks, every returned result is
bit-identical to a solo ``BatchedSolver`` run of that request, under any
admission/eviction churn, stealing, resharding, or worker crash
(``tests/test_fleet_service.py``)::

    from repro import FleetService

    service = FleetService(template, check_every=10)
    rid = service.submit(params={anchor: {"c": q0}}, warm_start=z_prev)
    for done in iter(service.step, None):      # one sweep segment per call
        ...                                    # done: list[RequestResult]

``repro.testing.traffic`` replays seeded arrival processes (open-loop
Poisson, bursty, adversarial; closed-loop clients) against a service on
its deterministic segment clock, and ``repro-bench serve`` benchmarks the
whole stack against tolerance-banded per-host baselines
(``repro.bench.baseline``).

Observability
-------------
``repro.obs`` is a dependency-free tracing and metrics layer over the
whole fleet stack.  Every solver accepts a ``tracer`` (or consults the
``REPRO_TRACE=1`` environment switch — the same opt-in pattern as the
``REPRO_FAULT_SEEDS``/``REPRO_CHURN_SEEDS`` test matrices) and emits
typed ``TraceEvent`` records on one unified clock: monotonic time (shared
across forked workers), sweep-segment index, and worker id.  Shard
workers buffer events in bounded rings and ship them piggybacked on the
result-queue replies they already send at segment boundaries; the parent
merges everything into one causally ordered fleet timeline — segment
spans, **per-kernel timings attributed to the worker that ran them** (so
``ADMMResult.timers.fractions()`` reproduces the paper's time-fraction
table even in fleet mode), steals, reshards, crash/restart/failover/
migration, and service admission/eviction.  Exporters turn a timeline
into Chrome trace-event JSON (load it at https://ui.perfetto.dev),
Prometheus text exposition, or a plain-text report; tracing never changes
results (traced solves are bit-identical — ``tests/test_obs.py``) and
costs one ``None``-check per segment when off::

    from repro import RebalancingShardedSolver
    from repro.obs import Tracer, write_chrome_trace, fleet_metrics

    tracer = Tracer()
    solver = RebalancingShardedSolver(batch, num_shards=4, tracer=tracer)
    results = solver.solve_batch()
    write_chrome_trace(tracer.timeline(), "trace.json")
    print(fleet_metrics(tracer.timeline()).render())   # Prometheus text

``repro-bench fleet --trace t.json`` / ``repro-bench serve --trace t.json``
trace the demos end to end and ``repro-bench trace --input t.json``
summarizes and validates any written trace.

Testing layers
--------------
The suite guards the engine at four levels: a cross-backend equivalence
matrix (every scheduling strategy must reproduce the serial iterates
bit-for-bit — ``tests/test_backend_equivalence.py``), a fleet equivalence
matrix (every backend x {plain, sharded} x {classic, three-weight, async}
combination must match solo solves per instance —
``tests/test_fleet_equivalence.py``, with elastic add/remove property
tests in ``tests/test_fleet_elastic.py``), property-based invariants on
every registered convex proximal operator (nonexpansiveness and the
fixed-point property at the minimizer — ``tests/test_prox_properties.py``),
and golden-trace regressions pinning the residual trajectories of
reference solves (figure-1, MPC, SVM) against drift
(``tests/test_golden_trace.py``).

Subpackages
-----------
``repro.graph``    factor-graph structure, builder, partitioning, analysis
``repro.prox``     proximal-operator protocol and the shipped operators
``repro.core``     ADMM engine: state, kernels, solver, schedules, variants
``repro.backends`` execution backends (the parallelization schemes)
``repro.gpusim``   SIMT GPU / multicore CPU performance-model simulators
``repro.apps``     paper applications: packing, MPC, SVM, Lasso
``repro.bench``    benchmark harness reproducing the paper's figures
``repro.obs``      fleet tracing/metrics: unified timeline + exporters
"""

from repro.graph import (
    FactorGraph,
    GraphBatch,
    GraphBuilder,
    pack_batches,
    pack_graphs,
    replicate_graph,
    start_graph,
)
from repro.core import (
    ADMMResult,
    ADMMSolver,
    ADMMState,
    BatchedSolver,
    FleetService,
    MaxIterations,
    RebalancingShardedSolver,
    ResidualTolerance,
    ShardedBatchedSolver,
    carry_state,
    classic_admm,
)
from repro.backends import (
    PersistentWorkerBackend,
    ProcessBackend,
    SerialBackend,
    ThreadedBackend,
    ThreeWeightBackend,
    VectorizedBackend,
)

__version__ = "1.0.0"

__all__ = [
    "FactorGraph",
    "GraphBatch",
    "GraphBuilder",
    "pack_batches",
    "pack_graphs",
    "replicate_graph",
    "start_graph",
    "ADMMResult",
    "ADMMSolver",
    "ADMMState",
    "BatchedSolver",
    "ShardedBatchedSolver",
    "RebalancingShardedSolver",
    "FleetService",
    "carry_state",
    "MaxIterations",
    "ResidualTolerance",
    "classic_admm",
    "SerialBackend",
    "VectorizedBackend",
    "ThreeWeightBackend",
    "ThreadedBackend",
    "PersistentWorkerBackend",
    "ProcessBackend",
    "__version__",
]
