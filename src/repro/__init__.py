"""repro — a Python reproduction of parADMM (Hao et al., IPPS 2016).

Fine-grained parallel ADMM on a factor graph: write one proximal operator
per sub-problem, declare the bipartite graph, and the engine schedules the
five message-passing kernels onto serial, vectorized, threaded, or
multiprocess execution — no parallel code required from the user.

Quickstart::

    from repro import GraphBuilder, ADMMSolver
    from repro.prox import DiagQuadProx

    b = GraphBuilder()
    w = b.add_variable(dim=2)
    b.add_factor(DiagQuadProx(dims=(2,)), [w],
                 params={"q": [1.0, 1.0], "c": [-2.0, 2.0]})
    result = ADMMSolver(b.build()).solve(max_iterations=200)
    print(result.variable(w))   # -> approx [2, -2]

Subpackages
-----------
``repro.graph``    factor-graph structure, builder, partitioning, analysis
``repro.prox``     proximal-operator protocol and the shipped operators
``repro.core``     ADMM engine: state, kernels, solver, schedules, variants
``repro.backends`` execution backends (the parallelization schemes)
``repro.gpusim``   SIMT GPU / multicore CPU performance-model simulators
``repro.apps``     paper applications: packing, MPC, SVM, Lasso
``repro.bench``    benchmark harness reproducing the paper's figures
"""

from repro.graph import FactorGraph, GraphBuilder, start_graph
from repro.core import (
    ADMMResult,
    ADMMSolver,
    ADMMState,
    MaxIterations,
    ResidualTolerance,
    classic_admm,
)
from repro.backends import (
    PersistentWorkerBackend,
    ProcessBackend,
    SerialBackend,
    ThreadedBackend,
    ThreeWeightBackend,
    VectorizedBackend,
)

__version__ = "1.0.0"

__all__ = [
    "FactorGraph",
    "GraphBuilder",
    "start_graph",
    "ADMMResult",
    "ADMMSolver",
    "ADMMState",
    "MaxIterations",
    "ResidualTolerance",
    "classic_admm",
    "SerialBackend",
    "VectorizedBackend",
    "ThreeWeightBackend",
    "ThreadedBackend",
    "PersistentWorkerBackend",
    "ProcessBackend",
    "__version__",
]
