"""Three-weight message-passing ADMM (Derbinsky–Bento–Elser–Yedidia [9]).

The paper notes parADMM "can also implement" the improved update schemes of
[9].  The three-weight algorithm (TWA) attaches a certainty weight to every
factor→variable message:

* ``∞``  — *certain*: the factor fully determines the value (hard equality
  constraints, pinned variables); certain messages override all others in
  the z-average and carry no dual memory.
* ``ρ̄``  — *standard*: behaves like the classical ADMM.
* ``0``  — *no opinion*: the factor abstains (e.g. a zero factor); the
  message is excluded from the z-average.

Weights come from each operator's :meth:`ProxOperator.outgoing_weights`
hook (default: standard).  Updates:

* z-update: if any incoming weight is ∞, ``z_b`` is the mean of the certain
  messages; else the weight-weighted mean; if all weights are 0, the plain
  mean (so the iterate stays defined).
* u-update: the dual accumulates only on standard edges; it is reset to 0 on
  certain and no-opinion edges (those messages carry no disagreement memory).

:func:`run_iteration_twa` is a drop-in single-iteration driver; the
:class:`ThreeWeightBackend` in :mod:`repro.backends.vectorized` wraps it for
use with :class:`repro.core.solver.ADMMSolver`.
"""

from __future__ import annotations

import numpy as np

from repro.core.state import ADMMState
from repro.graph.factor_graph import FactorGraph
from repro.utils.timing import NULL_TIMERS


def x_update_with_weights(graph: FactorGraph, state: ADMMState) -> np.ndarray:
    """x-update that also collects per-edge outgoing weights.

    Returns the per-edge weight array (``state.weights`` is updated too).
    """
    weights = np.empty(graph.num_edges)
    for g in graph.groups:
        n_rows = g.take_slots(state.n)
        rho_rows = g.take_edge_values(state.rho)
        x_rows = np.asarray(
            g.prox.prox_batch(n_rows, rho_rows, g.params), dtype=np.float64
        )
        g.put_slots(state.x, x_rows)
        w_rows = np.asarray(
            g.prox.outgoing_weights(x_rows, n_rows, rho_rows, g.params),
            dtype=np.float64,
        )
        if w_rows.shape != rho_rows.shape:
            raise ValueError(
                f"outgoing_weights of {getattr(g.prox, 'name', g.prox)} returned "
                f"shape {w_rows.shape}, expected {rho_rows.shape}"
            )
        weights[g.gather_edges.reshape(-1)] = w_rows.reshape(-1)
    state.weights = weights
    return weights


def z_update_weighted(graph: FactorGraph, state: ADMMState) -> None:
    """Three-weight z-update (certain > weighted > plain average)."""
    assert state.weights is not None, "call x_update_with_weights first"
    w_slots = state.weights[graph.slot_edge]
    inf_mask = np.isinf(w_slots)
    S = graph.scatter_matrix
    # Certain messages: average of the ∞-weight m's.
    inf_cnt = S @ inf_mask.astype(np.float64)
    has_inf = inf_cnt > 0
    if np.any(has_inf):
        inf_sum = S @ np.where(inf_mask, state.m, 0.0)
    # Standard path: finite-weight weighted mean.
    fin_w = np.where(inf_mask, 0.0, w_slots)
    den = S @ fin_w
    num = S @ (fin_w * state.m)
    # All-zero-weight fallback: plain average of incoming messages.
    deg = S @ np.ones(graph.edge_size)
    plain = np.divide(S @ state.m, deg, out=np.zeros_like(deg), where=deg > 0)
    z = np.where(den > 0, np.divide(num, den, out=np.zeros_like(den), where=den > 0), plain)
    if np.any(has_inf):
        z = np.where(has_inf, np.divide(inf_sum, inf_cnt, out=np.zeros_like(inf_cnt), where=has_inf), z)
    # Isolated variables keep their previous value.
    state.z[:] = np.where(deg > 0, z, state.z)


def u_update_weighted(graph: FactorGraph, state: ADMMState) -> None:
    """Dual update gated by weights: standard edges accumulate, others reset."""
    assert state.weights is not None
    w_slots = state.weights[graph.slot_edge]
    standard = np.isfinite(w_slots) & (w_slots > 0)
    updated = state.u + state.alpha_slots * (
        state.x - state.z[graph.flat_edge_to_z]
    )
    state.u[:] = np.where(standard, updated, 0.0)


def run_iteration_twa(graph: FactorGraph, state: ADMMState, timers=None) -> None:
    """One full three-weight sweep (x, m, weighted-z, gated-u, n).

    With ``timers`` (a :class:`repro.utils.timing.KernelTimers`), each
    kernel's time is accumulated; the math is identical either way (the
    untimed path uses no-op timers, same kernel order, same arrays).
    """
    t = NULL_TIMERS if timers is None else timers
    with t["x"]:
        x_update_with_weights(graph, state)
    with t["m"]:
        np.add(state.x, state.u, out=state.m)
    with t["z"]:
        z_update_weighted(graph, state)
    with t["u"]:
        u_update_weighted(graph, state)
    with t["n"]:
        np.subtract(state.z[graph.flat_edge_to_z], state.u, out=state.n)
    state.iteration += 1


# --------------------------------------------------------------------- #
# Batch-aware entry points: TWA sweeps over a fleet.                     #
# --------------------------------------------------------------------- #


def run_iterations_twa(
    graph: FactorGraph, state: ADMMState, iterations: int, timers=None
) -> None:
    """Advance ``state`` by ``iterations`` three-weight sweeps.

    Works unchanged on a block-diagonal fleet graph: every TWA update is
    local to one factor row or one variable's incoming messages, so TWA on
    a :class:`~repro.graph.batch.GraphBatch` is per-instance *exact* — each
    instance follows the trajectory a solo TWA solve would (the fleet
    equivalence matrix pins this at 1e-10).  This is the sweep loop the
    shard workers of :class:`repro.core.sharded.ShardedBatchedSolver` run
    in the ``three_weight`` variant.
    """
    if iterations < 0:
        raise ValueError(f"iterations must be >= 0, got {iterations}")
    for _ in range(iterations):
        run_iteration_twa(graph, state, timers)


def solve_batch_twa(batch, rho=1.0, alpha=1.0, schedule=None, **solve_kwargs):
    """Three-weight fleet solve: one result per instance.

    Drives :class:`repro.core.batched.BatchedSolver` with the
    :class:`repro.backends.vectorized.ThreeWeightBackend`, keeping
    residuals, stopping masks, and ρ-schedules per-instance.
    """
    from repro.backends.vectorized import ThreeWeightBackend
    from repro.core.batched import BatchedSolver

    with BatchedSolver(
        batch, backend=ThreeWeightBackend(), rho=rho, alpha=alpha, schedule=schedule
    ) as solver:
        return solver.solve_batch(**solve_kwargs)
