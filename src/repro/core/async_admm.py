"""Randomized (asynchronous-style) ADMM — the paper's future-work item 1.

"Use asynchronous implementations of the ADMM so that not all cores need to
wait for the busiest core."  This module implements the standard *randomized
block* approximation studied in [29]–[31]: at each sweep only a random subset
of factors recomputes its proximal update; the edges of untouched factors
keep their previous x (and skip their u/n refresh), while the z-average is
always recomputed from the current messages.

This models an asynchronous system where slow workers simply miss a round;
convergence (in expectation) is retained for convex problems when every
factor is sampled with positive probability.
"""

from __future__ import annotations

import numpy as np

from repro.core.state import ADMMState
from repro.graph.factor_graph import FactorGraph
from repro.utils.rng import DEFAULT_SEED, default_rng
from repro.utils.timing import NULL_TIMERS


class AsyncSweepPlan:
    """Pre-draws which factors fire at each sweep (deterministic given seed)."""

    def __init__(
        self,
        graph: FactorGraph,
        fraction: float = 0.5,
        seed: int | None = None,
    ) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.graph = graph
        self.fraction = float(fraction)
        self.rng = default_rng(seed)

    def draw(self) -> np.ndarray:
        """Boolean mask over factors: True = update this sweep."""
        if self.fraction >= 1.0:
            return np.ones(self.graph.num_factors, dtype=bool)
        mask = self.rng.random(self.graph.num_factors) < self.fraction
        if not mask.any() and self.graph.num_factors:
            # Guarantee progress: fire at least one factor.
            mask[int(self.rng.integers(self.graph.num_factors))] = True
        return mask


def run_iteration_async(
    graph: FactorGraph, state: ADMMState, factor_mask: np.ndarray, timers=None
) -> None:
    """One randomized sweep updating only the masked factors' messages.

    Edge updates (m, u, n) are restricted to edges whose factor fired; the
    z-update is global (it is a cheap average and in an asynchronous system
    the averaging node always uses the freshest messages it has).

    With ``timers`` (a :class:`repro.utils.timing.KernelTimers`), each
    kernel phase accumulates its time; there is a single code path (no-op
    timers when untimed), so timed sweeps are bit-identical.
    """
    factor_mask = np.asarray(factor_mask, dtype=bool)
    if factor_mask.shape != (graph.num_factors,):
        raise ValueError(
            f"factor_mask must have shape ({graph.num_factors},), "
            f"got {factor_mask.shape}"
        )
    t = NULL_TIMERS if timers is None else timers
    edge_mask = factor_mask[graph.edge_factor]
    slot_mask = edge_mask[graph.slot_edge]

    # x-update on selected rows of each group.
    with t["x"]:
        for g in graph.groups:
            rows = factor_mask[g.factor_ids]
            if not rows.any():
                continue
            sub_slots = g.gather_slots[rows]
            n_rows = state.n[sub_slots]
            rho_rows = state.rho[g.gather_edges[rows]]
            params = {k: v[rows] for k, v in g.params.items()}
            x_rows = np.asarray(
                g.prox.prox_batch(n_rows, rho_rows, params), dtype=np.float64
            )
            state.x[sub_slots.reshape(-1)] = x_rows.reshape(-1)

    # m-update on fired edges only.
    with t["m"]:
        state.m[slot_mask] = state.x[slot_mask] + state.u[slot_mask]
    # Global z-average over the freshest messages.
    with t["z"]:
        num = graph.scatter_matrix @ (state.rho_slots * state.m)
        den = state.rho_den
        np.divide(num, den, out=state.z, where=den > 0.0)
    # u/n refresh on fired edges only.
    with t["u"]:
        zmap = state.z[graph.flat_edge_to_z]
        du = state.alpha_slots * (state.x - zmap)
        state.u[slot_mask] += du[slot_mask]
    with t["n"]:
        state.n[slot_mask] = zmap[slot_mask] - state.u[slot_mask]
    state.iteration += 1


def solve_async(
    graph: FactorGraph,
    state: ADMMState,
    iterations: int,
    fraction: float = 0.5,
    seed: int | None = None,
) -> ADMMState:
    """Run ``iterations`` randomized sweeps (helper for tests/benches)."""
    plan = AsyncSweepPlan(graph, fraction, seed)
    for _ in range(iterations):
        run_iteration_async(graph, state, plan.draw())
    return state


# --------------------------------------------------------------------- #
# Batch-aware entry points: randomized sweeps over a fleet.              #
# --------------------------------------------------------------------- #


class FleetSweepPlan:
    """Per-instance randomized plans for a :class:`~repro.graph.batch.GraphBatch`.

    Instance ``i`` owns an independent :class:`AsyncSweepPlan` over the
    *template* graph, seeded ``seed + instance_offset + i`` — exactly the
    stream a solo randomized solve of that instance with that seed draws.
    Each :meth:`draw` maps the per-instance template masks through
    ``batch.factor_index`` into one batched factor mask, so a fleet sweep
    fires precisely the factors the ``B`` solo sweeps would: randomized
    fleet solving stays per-instance equivalent to solo solving (the
    property the fleet equivalence matrix pins at 1e-10).

    ``instance_offset`` shifts the seed base so a shard covering global
    instances ``[lo, hi)`` (``instance_offset=lo``) draws the same
    per-instance streams as the unsharded fleet.
    """

    def __init__(
        self,
        batch,
        fraction: float = 0.5,
        seed: int | None = None,
        instance_offset: int = 0,
    ) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.batch = batch
        self.fraction = float(fraction)
        base = DEFAULT_SEED if seed is None else int(seed)
        self.plans = [
            AsyncSweepPlan(batch.templates[i], fraction, base + instance_offset + i)
            for i in range(batch.batch_size)
        ]

    def draw(self) -> np.ndarray:
        """Boolean mask over the batched graph's factors for one sweep."""
        mask = np.zeros(self.batch.graph.num_factors, dtype=bool)
        for i, plan in enumerate(self.plans):
            mask[self.batch.factor_index[i]] = plan.draw()
        return mask


def solve_batch_async(
    batch,
    fraction: float = 0.5,
    seed: int | None = None,
    rho=1.0,
    alpha=1.0,
    schedule=None,
    **solve_kwargs,
):
    """Randomized-block fleet solve: one result per instance.

    Batch-aware analog of wrapping :class:`AsyncSweepPlan` in a solo
    solver — drives :class:`repro.core.batched.BatchedSolver` with a
    :class:`repro.backends.randomized.FleetRandomizedBackend` so residuals,
    stopping masks, and ρ-schedules stay per-instance.
    """
    from repro.backends.randomized import FleetRandomizedBackend
    from repro.core.batched import BatchedSolver

    backend = FleetRandomizedBackend(batch, fraction=fraction, seed=seed)
    with BatchedSolver(
        batch, backend=backend, rho=rho, alpha=alpha, schedule=schedule
    ) as solver:
        return solver.solve_batch(**solve_kwargs)
