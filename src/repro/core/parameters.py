"""Penalty-parameter (ρ, α) schedules.

"The free parameters ρ and α allow us to control the convergence rate of the
algorithm" — classical implementations hold them constant, but improved
update schemes exist; this module ships the constant schedule plus the
standard residual-balancing adaptation (Boyd et al. §3.4.1), applied
uniformly across edges.

When ρ changes under the scaled-form ADMM, the scaled dual ``u`` must be
rescaled by ``ρ_old/ρ_new``; :class:`repro.core.solver.ADMMSolver` performs
that rescaling whenever a schedule modifies ρ.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.residuals import Residuals
from repro.core.state import ADMMState
from repro.utils.validation import check_positive


class PenaltySchedule(abc.ABC):
    """Strategy deciding how ρ evolves across iterations."""

    @abc.abstractmethod
    def rho_scale(self, state: ADMMState, residuals: Residuals) -> float:
        """Multiplicative factor to apply to ρ now (1.0 = unchanged)."""

    def reset(self) -> None:
        """Clear internal state before a new solve (default: nothing)."""


class ConstantPenalty(PenaltySchedule):
    """The classical fixed-ρ ADMM (the paper's default)."""

    def rho_scale(self, state: ADMMState, residuals: Residuals) -> float:
        return 1.0


class ResidualBalancing(PenaltySchedule):
    """Scale ρ to keep primal and dual residuals within a factor ``mu``.

    if ``primal > mu · dual``   → ρ ← τ ρ   (penalize consensus violation)
    if ``dual  > mu · primal``  → ρ ← ρ / τ

    ``max_updates`` caps the number of adaptations (unbounded adaptation can
    break convergence guarantees; capping restores them).
    """

    def __init__(
        self, mu: float = 10.0, tau: float = 2.0, max_updates: int = 50
    ) -> None:
        self.mu = check_positive(mu, "mu")
        self.tau = check_positive(tau, "tau")
        if self.tau <= 1.0:
            raise ValueError(f"tau must be > 1, got {tau}")
        if max_updates < 0:
            raise ValueError(f"max_updates must be >= 0, got {max_updates}")
        self.max_updates = max_updates
        self._updates_done = 0

    def reset(self) -> None:
        self._updates_done = 0

    def rho_scale(self, state: ADMMState, residuals: Residuals) -> float:
        if self._updates_done >= self.max_updates:
            return 1.0
        if residuals.primal > self.mu * residuals.dual:
            self._updates_done += 1
            return self.tau
        if residuals.dual > self.mu * residuals.primal:
            self._updates_done += 1
            return 1.0 / self.tau
        return 1.0


def apply_rho_scale(state: ADMMState, scale) -> None:
    """Scale ρ and rescale the scaled dual ``u`` accordingly.

    ``scale`` is a scalar (uniform, the classical case) or a per-edge array
    of shape ``(num_edges,)`` — the latter lets
    :class:`repro.core.batched.BatchedSolver` adapt each problem instance's
    penalty independently while the fleet shares one state.
    """
    scale_arr = np.asarray(scale, dtype=np.float64)
    if scale_arr.ndim == 0:
        s = float(scale_arr)
        if s == 1.0:
            return
        if s <= 0:
            raise ValueError(f"rho scale must be positive, got {s}")
        state.set_rho(state.rho * s)
        state.u /= s
        return
    if scale_arr.shape != state.rho.shape:
        raise ValueError(
            f"per-edge rho scale must have shape {state.rho.shape}, "
            f"got {scale_arr.shape}"
        )
    if np.any(scale_arr <= 0):
        raise ValueError("all rho scale entries must be positive")
    if np.all(scale_arr == 1.0):
        return
    state.set_rho(state.rho * scale_arr)
    state.u /= scale_arr[state.graph.slot_edge]
