"""Classic two-block ADMM (paper Algorithm 1), consensus form.

Used to cross-validate the factor-graph engine: on problems expressible as

    minimize f(x) + g(z)   subject to x = z

the scaled-form iteration is

    x ← Prox_{f, ρ}(z − u)
    z ← Prox_{g, ρ}(x + u)
    u ← u + x − z

which is Algorithm 1 with A = I, B = −I, c = 0.  Tests check that the
factor-graph solver (a two-factor star graph) and this direct loop agree.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.utils.validation import check_positive


@dataclass
class ClassicADMMResult:
    """Outcome of a two-block ADMM run."""

    x: np.ndarray
    z: np.ndarray
    u: np.ndarray
    iterations: int
    converged: bool
    primal_history: list[float]
    dual_history: list[float]
    wall_time: float


def classic_admm(
    prox_f: Callable[[np.ndarray, float], np.ndarray],
    prox_g: Callable[[np.ndarray, float], np.ndarray],
    dim: int,
    rho: float = 1.0,
    max_iterations: int = 1000,
    eps_abs: float = 1e-8,
    eps_rel: float = 1e-6,
    x0: np.ndarray | None = None,
) -> ClassicADMMResult:
    """Run consensus two-block ADMM with user-supplied proximal maps.

    ``prox_f(v, rho)`` must return ``argmin_s f(s) + ρ/2||s − v||²`` (same
    for ``prox_g``).
    """
    check_positive(rho, "rho")
    if max_iterations < 0:
        raise ValueError(f"max_iterations must be >= 0, got {max_iterations}")
    x = np.zeros(dim) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    z = x.copy()
    u = np.zeros(dim)
    primal_hist: list[float] = []
    dual_hist: list[float] = []
    converged = False
    it = 0
    t0 = time.perf_counter()
    sqrt_n = float(np.sqrt(max(dim, 1)))
    for it in range(1, max_iterations + 1):
        x = np.asarray(prox_f(z - u, rho), dtype=np.float64)
        z_prev = z
        z = np.asarray(prox_g(x + u, rho), dtype=np.float64)
        u = u + x - z
        primal = float(np.linalg.norm(x - z))
        dual = float(rho * np.linalg.norm(z - z_prev))
        primal_hist.append(primal)
        dual_hist.append(dual)
        eps_pri = sqrt_n * eps_abs + eps_rel * max(
            float(np.linalg.norm(x)), float(np.linalg.norm(z))
        )
        eps_dual = sqrt_n * eps_abs + eps_rel * float(rho * np.linalg.norm(u))
        if primal <= eps_pri and dual <= eps_dual:
            converged = True
            break
    wall = time.perf_counter() - t0
    return ClassicADMMResult(
        x=x,
        z=z,
        u=u,
        iterations=it,
        converged=converged,
        primal_history=primal_hist,
        dual_history=dual_hist,
        wall_time=wall,
    )
