"""Live fleet rebalancing: work-stealing shards over elastic rosters.

:class:`repro.core.sharded.ShardedBatchedSolver` fixes its contiguous
instance-block shards at construction, which loses the paper's
keep-every-lane-busy property the moment instances converge unevenly (a
shard whose instances all froze idles while another grinds) or the fleet
resizes (a new sharded solver must be built).  This module adds the
load-aware layer the ROADMAP names, in the spirit of parallel multi-block
ADMM (Deng et al.) and Bethe-ADMM's tree-decomposition parallelism: the
*blocks* are mathematically independent, so ownership can move freely
between workers as long as each instance's state moves bit-for-bit.

:class:`RebalancingShardedSolver` keeps a **roster** of global instance
ids per shard instead of a fixed range, and supports, on a *live* fleet:

* **work stealing** — inside :meth:`solve_batch`, when a shard's active
  (non-converged) instance count drops below ``steal_threshold``, it
  steals a contiguous roster block covering half the load imbalance from
  the heaviest shard.  Decisions are deterministic and seeded
  (``steal_seed``); every event is recorded in :attr:`steal_log`.
* **live re-sharding** — :meth:`reshard` / :meth:`rebalance` repartition
  the fleet across shards in place, migrating iterates, duals,
  ρ/α-schedules, and stopping bookkeeping across shard boundaries without
  restarting workers (pool threads are task-agnostic; process workers are
  generic loops that re-``bind`` to a new sub-graph over their command
  queue).
* **elastic rosters** — :meth:`add_instances` splices new instances into
  the fleet batch through the incremental
  :meth:`~repro.graph.batch.GraphBatch.append_instances` (O(k) structural
  builds) and routes them to the lightest shard; :meth:`remove_instances`
  compacts the fleet and every affected roster.

Because every per-instance quantity moves through the batch index maps,
migration never reassociates a single floating-point operation: iterates,
residual traces, freezing decisions, and ρ-schedules stay **bit-identical**
to a plain :class:`~repro.core.batched.BatchedSolver` solve of the same
fleet, under any interleaving of steals and reshards (pinned by
``tests/test_fleet_rebalancing.py`` and ``tests/test_fleet_churn.py``).

Execution modes mirror the sharded solver with one twist: the randomized
``async`` variant's per-instance streams are held by the *parent* (one
:class:`~repro.core.async_admm.AsyncSweepPlan` per global instance, seeded
``seed + instance``), and each run hands workers the pre-drawn factor
masks — so a stolen instance's stream continues exactly where it left
off, wherever it executes.

Process-mode state moves through one of two **transports**
(``transport=``):

``shared`` (default)
    every worker owns capacity-bound shared-memory buffers — the
    :func:`repro.backends.process.shared_capacity_buffers` mirror,
    pre-allocated with ``slack`` headroom above the roster it is bound
    to — and the parent pushes/pulls the iterate through
    :func:`repro.core.sharded.push_shared` /
    :func:`~repro.core.sharded.pull_families` exactly as the static
    sharded solver does.  A steal, rebind, reshard, or elastic
    add/remove is then an index-map update plus row copies inside shared
    memory: the command queue carries only commands, sub-graph structure,
    and pre-drawn masks — never iterate/dual/penalty arrays (witnessed by
    :meth:`RebalancingShardedSolver.transport_stats`, whose
    ``queue_state_bytes`` stays 0).  Roster growth past a worker's slack
    falls back to a one-time buffer rebuild (kill + refork on larger
    buffers, counted in ``buffer_rebuilds``); crash recovery replays from
    the parent's authoritative mirror exactly as before.
``queue``
    the historical fallback: run commands serialize the full iterate
    over the command queue and replies carry the advanced families back
    (the pickling tax, paid once per worker per segment).

Both transports execute identical math on identical state, so results
are bit-identical across them — and to the plain batched solve.

Parent-held state is also what makes the fleet **fault tolerant**
(:mod:`repro.core.supervision`): workers heartbeat while sweeping, the
parent checks liveness at every poll, and a worker that dies, hangs, or
corrupts its queue mid-segment is recovered without losing a single
in-flight instance — first by restarting it and replaying the segment
(up to ``WorkerPolicy.max_restarts`` replacements, exponential backoff),
then, when the budget is exhausted, by executing the segment in the
parent and migrating the shard's roster onto a survivor through the
normal ``_remap`` path: a dead worker is just an **involuntary steal**
(appended to ``steal_log``; every crash/restart/failover/migration is
recorded in :attr:`RebalancingShardedSolver.fault_log`).  Because the
parent re-sends the exact pre-segment state and pre-drawn masks, a
recovered solve is bit-identical to an unfailed one.
"""

from __future__ import annotations

import copy
import multiprocessing as mp
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor, wait
from dataclasses import dataclass

import numpy as np

from repro.backends.process import (
    _as_np,
    shared_capacity_buffers,
    state_sizes,
)
from repro.core.async_admm import AsyncSweepPlan, run_iteration_async
from repro.core.batched import normalize_pool, per_instance_residuals
from repro.core.diagnostics import ADMMResult, SolveHistory
from repro.core.parameters import ConstantPenalty, PenaltySchedule, apply_rho_scale
from repro.core.residuals import Residuals
from repro.core.sharded import (
    MODES,
    VARIANTS,
    pull_families,
    push_families,
    push_shared,
    run_variant_sweeps,
)
from repro.core.state import ADMMState
from repro.core.supervision import (
    FaultLog,
    WorkerFault,
    WorkerPolicy,
    close_queue,
    collect_reply,
    heartbeat,
    reap_process,
)
from repro.graph.batch import GraphBatch
from repro.graph.partition import contiguous_chunks
from repro.obs.events import (
    PARENT,
    EventRing,
    default_tracer,
    now as monotonic_now,
    segment_events,
)
from repro.utils.rng import DEFAULT_SEED, default_rng
from repro.utils.timing import UPDATE_KINDS, KernelTimers

_FAMILIES = ("x", "m", "u", "n")

#: Process-mode state transports (see the module docstring).
TRANSPORTS = ("shared", "queue")

#: Auto-steal trigger policies: raw non-converged counts vs projected
#: cost-weighted loads fitted from residual-decay slopes.
STEAL_POLICIES = ("count", "predictive")


@dataclass(frozen=True)
class StealEvent:
    """One executed work-steal: which shard took which instances from whom.

    ``moved_load`` carries the projected cost weight of the stolen block
    (``edge_size × projected sweeps-to-convergence`` summed over the
    block) when the predictive policy executed the steal; ``None`` under
    the count policy.
    """

    iteration: int
    thief: int
    donor: int
    instances: tuple[int, ...]
    moved_load: float | None = None


@dataclass
class TransportStats:
    """Byte/payload accounting for the parent↔worker state transport.

    The acceptance witness for the zero-copy transport: in shared mode
    ``queue_state_bytes`` and ``queue_reply_bytes`` stay exactly 0 across
    steady-state sweeps, steals, reshards, and elastic add/remove — the
    iterate only ever moves through the shared mirror (``shared_push_bytes``
    / ``shared_pull_bytes``) — and steals/rebinds within a worker's slack
    keep ``buffer_rebuilds`` at 0.
    """

    transport: str
    queue_state_bytes: int = 0  # iterate/penalty bytes pickled onto cmd_q
    queue_reply_bytes: int = 0  # advanced-family bytes pickled back
    shared_push_bytes: int = 0  # parent -> shared mirror row copies
    shared_pull_bytes: int = 0  # shared mirror -> parent row copies
    buffer_rebuilds: int = 0  # growth-past-slack refork fallbacks
    segments: int = 0  # process-mode run dispatches

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class _CostModel:
    """EWMA seconds-per-edge-per-sweep from measured worker segments.

    Fed by the per-worker segment timings the PR 8 reply path already
    ships.  Predictive stealing expresses projected loads in *weight*
    units (``edge_size × projected sweeps``); this rate converts them to
    seconds for logs and trace payloads.  Because the rate is a common
    factor across every shard of a fleet, steal decisions — which only
    compare loads — never depend on wall-clock noise and stay
    deterministic run to run.
    """

    __slots__ = ("rate",)

    def __init__(self) -> None:
        self.rate: float | None = None

    def observe(self, seconds: float, edges: int, sweeps: int) -> None:
        if seconds <= 0.0 or edges <= 0 or sweeps <= 0:
            return
        r = seconds / (float(edges) * float(sweeps))
        self.rate = r if self.rate is None else 0.8 * self.rate + 0.2 * r

    def seconds_per_edge_sweep(self) -> float:
        return self.rate if self.rate is not None else 1.0


def _payload_nbytes(payload) -> int:
    """Total bytes of the iterate arrays in a queue-transport payload."""
    return int(sum(np.asarray(a).nbytes for a in payload))


def _run_reply(payload):
    """Split a worker run reply, tolerating the pre-``dropped`` 4-tuple.

    Replies are ``(fams, elapsed, kernels, events, dropped)``; ``fams``
    is ``None`` on the shared transport (the families live in the shared
    mirror).  ``dropped`` (the worker ring's overflow count) is len-guarded
    like every prior reply growth, so mixed-version replies degrade to 0.
    """
    fams, elapsed, kernels, events = payload[:4]
    dropped = payload[4] if len(payload) > 4 else 0
    return fams, elapsed, kernels, events, dropped


def _run_sweeps(
    graph,
    state: ADMMState,
    iterations: int,
    variant: str,
    masks,
    timers: KernelTimers | None = None,
):
    """Advance ``state`` by ``iterations`` sweeps of the chosen variant.

    ``masks`` (``(iterations, num_factors)`` bool) carries the parent-drawn
    randomized plans for the ``async`` variant; ``None`` otherwise.  With
    ``timers``, each kernel accumulates its elapsed time — the timed paths
    execute identical math, so timed sweeps stay bit-identical.
    """
    if variant == "async":
        for s in range(iterations):
            run_iteration_async(graph, state, masks[s], timers)
    else:
        run_variant_sweeps(graph, state, iterations, variant, timers=timers)


def _worker_main(cmd_q, done_q, heartbeat_interval=None, raws=None):
    """Generic shard worker: owns no graph until told to ``bind``.

    Unlike the sharded solver's workers (forked around one fixed shard
    graph), this loop is re-targetable: a ``bind`` command delivers a new
    sub-graph over the queue, so live re-sharding never restarts the
    process.  With ``raws`` (the capacity-bound shared mirror inherited
    through the fork), a bind also carries the bound graph's true mirror
    sizes and the worker cuts its views to that prefix — ``run`` commands
    then ship no iterate at all (``payload is None``): the worker pulls
    the families from shared memory, sweeps, and pushes them back, so the
    queues carry only commands and masks.  Without ``raws`` (queue
    transport), ``run`` commands carry the full iterate and return the
    advanced families, as before.  Exceptions are relayed; the worker
    survives them.  While a sweep runs, a heartbeat thread signals
    liveness on ``done_q`` so the parent can tell a slow shard from a
    hung one.  Trace events buffer in a bounded ring whose overflow count
    rides back on every reply (``dropped``), so the parent can surface
    event loss instead of silently missing timeline spans.
    """
    graph = None
    variant = "classic"
    state: ADMMState | None = None
    views = None
    ring = EventRing(1 << 12)
    while True:
        cmd = cmd_q.get()
        op = cmd[0]
        if op == "stop":
            return
        try:
            if op == "bind":
                graph, variant = cmd[1], cmd[2]
                sizes = cmd[3] if len(cmd) > 3 else None
                state = ADMMState(graph)
                views = None
                if raws is not None and sizes is not None:
                    views = [_as_np(r)[:s] for r, s in zip(raws, sizes)]
                done_q.put(("ok", None))
            elif op == "run":
                iterations, payload, masks = cmd[1], cmd[2], cmd[3]
                # (want_timers, want_trace, segment, worker_id); absent on
                # the legacy 4-element command.
                want = cmd[4] if len(cmd) > 4 else (False, False, 0, 0)
                want_timers, want_trace, segment, worker_id = want
                if payload is None:
                    # Shared transport: the parent pushed the pre-segment
                    # state into the mirror before dispatching.
                    pull_families(views, state)
                    state.set_rho(views[5].copy())
                    state.set_alpha(views[6].copy())
                else:
                    x, m, u, n, z, rho, alpha = payload
                    state.x[:] = x
                    state.m[:] = m
                    state.u[:] = u
                    state.n[:] = n
                    state.z[:] = z
                    state.set_rho(rho)
                    state.set_alpha(alpha)
                ktimers = (
                    KernelTimers() if (want_timers or want_trace) else None
                )
                t0 = time.perf_counter()
                m0 = monotonic_now()
                with heartbeat(done_q, heartbeat_interval):
                    _run_sweeps(graph, state, iterations, variant, masks, ktimers)
                elapsed = time.perf_counter() - t0
                if payload is None:
                    push_families(views, state)
                    fams = None
                else:
                    fams = (state.x, state.m, state.u, state.n, state.z)
                events: tuple = ()
                dropped = 0
                if want_trace:
                    ring.extend(
                        segment_events(
                            worker=worker_id,
                            segment=segment,
                            t0=m0,
                            t1=monotonic_now(),
                            sweeps=iterations,
                            kernel_seconds=ktimers.elapsed_by_kind(),
                        )
                    )
                    events = tuple(ring.drain())
                    dropped = ring.dropped
                kernels = (
                    ktimers.elapsed_by_kind() if ktimers is not None else None
                )
                done_q.put(("ok", (fams, elapsed, kernels, events, dropped)))
            else:  # pragma: no cover - protocol misuse
                done_q.put(("error", f"unknown command {op!r}"))
        except Exception as err:  # noqa: BLE001 - relayed to the parent
            done_q.put(("error", f"{type(err).__name__}: {err}"))


class _Worker:
    """One persistent generic worker process plus its command plumbing.

    On the shared transport it also owns the capacity-bound mirror:
    ``raws`` (shared blocks sized ``caps``, inherited by the forked child)
    and ``views`` (the parent-side prefix views over them, cut to the
    bound sub-graph's true sizes at bind time).
    """

    def __init__(self, ctx, heartbeat_interval=None, raws=None, caps=None) -> None:
        self.raws = raws
        self.caps = caps
        self.views: list[np.ndarray] | None = None
        self.cmd_q = ctx.Queue()
        self.done_q = ctx.Queue()
        self.proc = ctx.Process(
            target=_worker_main,
            args=(self.cmd_q, self.done_q, heartbeat_interval, raws),
            daemon=True,
        )
        self.proc.start()
        self.bound: GraphBatch | None = None  # sub-batch it currently holds


class _RosterShard:
    """One shard: its roster of global instance ids, sub-batch, and state."""

    def __init__(self, ids: list[int], batch: GraphBatch, state: ADMMState) -> None:
        self.ids = list(ids)
        self.batch = batch
        self.state = state
        self.pending = None  # process-mode result awaiting adoption

    @property
    def size(self) -> int:
        return len(self.ids)


class RebalancingShardedSolver:
    """Fleet ADMM over work-stealing, live-reshardable instance rosters.

    Parameters mirror :class:`~repro.core.sharded.ShardedBatchedSolver`
    (``rho`` additionally accepts ``(B,)`` / ``(B, E_t)`` fleet forms) plus
    the rebalancing knobs:

    ``steal_threshold``
        a shard whose *active* instance count falls below this value
        steals from the heaviest shard at every convergence check of
        :meth:`solve_batch`; ``0`` disables stealing (both policies).
    ``steal_seed``
        seeds the deterministic tie-breaking of steal decisions.
    ``steal_policy``
        ``"count"`` (default) triggers steals on raw non-converged
        counts, the historical behavior.  ``"predictive"`` triggers on
        projected cost-weighted loads: per-instance residual-decay slopes
        (fitted over the last convergence checks) project each active
        instance's sweeps-to-convergence, weighted by its template edge
        size — so one big grinding MPC instance outweighs many small
        nearly-done lasso instances, and load moves *before* a shard
        actually starves.  Steals stay pure state motion under both
        policies, so results are bit-identical either way; decisions are
        deterministic (the measured time rate only scales loads into
        seconds and cancels in comparisons).
    ``transport`` / ``slack``
        process-mode state transport: ``"shared"`` (default) gives every
        worker capacity-bound shared-memory buffers with ``slack``
        headroom (≥ 1.0) above its roster's mirror sizes, so steals,
        rebinds, reshards, and elastic resizes move zero iterate bytes
        over the command queues (see :meth:`transport_stats`); growth
        past a worker's slack falls back to a one-time buffer rebuild.
        ``"queue"`` keeps the historical queue-serialized state.  Thread
        mode ignores both (shards sweep in-process).
    ``policy``
        a :class:`~repro.core.supervision.WorkerPolicy` tuning process-mode
        supervision: heartbeat period, silence budget, liveness-poll
        granularity, restart budget, and backoff.  A worker that dies or
        hangs mid-segment is restarted and its segment replayed; once the
        restart budget is exhausted the segment executes in the parent and
        the shard's roster migrates to a survivor — an involuntary steal.
        All events land in :attr:`fault_log` (and migrations also in
        :attr:`steal_log`); recovered solves stay bit-identical.
    ``injector``
        a :class:`repro.testing.faults.FaultInjector` (or anything with a
        ``before_segment(solver)`` hook) for chaos testing; process mode
        only.
    ``tracer``
        a :class:`repro.obs.events.Tracer` collecting the fleet timeline:
        per-worker segment spans with per-kernel sub-spans, steal /
        reshard / rebalance / grow / shrink points, and every fault-log
        event.  Defaults to :func:`repro.obs.events.default_tracer` (off
        unless ``REPRO_TRACE`` is set).  Tracing never changes the math —
        traced solves are bit-identical.

    Default ``mode`` is ``"thread"``: pool threads are task-agnostic, so
    re-sharding is free.  ``"process"`` drives generic re-bindable worker
    processes (state travels the command queues — for static fleets the
    shared-memory :class:`ShardedBatchedSolver` is the faster path).

    Per-instance results are numerically identical to a plain
    :class:`~repro.core.batched.BatchedSolver` for every variant, under
    any interleaving of steals, reshards, and rebalances — migration moves
    state bit-for-bit and never changes per-instance math.
    """

    def __init__(
        self,
        batch: GraphBatch,
        num_shards: int = 2,
        mode: str = "thread",
        variant: str = "classic",
        rho=1.0,
        alpha=1.0,
        schedule: PenaltySchedule | None = None,
        fraction: float = 0.5,
        seed: int | None = None,
        steal_threshold: int = 1,
        steal_seed: int | None = None,
        steal_policy: str = "count",
        transport: str = "shared",
        slack: float = 1.5,
        policy: WorkerPolicy | None = None,
        injector=None,
        tracer=None,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if variant not in VARIANTS:
            raise ValueError(f"variant must be one of {VARIANTS}, got {variant!r}")
        if transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got {transport!r}"
            )
        if steal_policy not in STEAL_POLICIES:
            raise ValueError(
                f"steal_policy must be one of {STEAL_POLICIES}, got "
                f"{steal_policy!r}"
            )
        if not float(slack) >= 1.0:
            raise ValueError(f"slack must be >= 1.0, got {slack}")
        if not 1 <= num_shards <= batch.batch_size:
            raise ValueError(
                f"num_shards must be in [1, {batch.batch_size}], got "
                f"{num_shards}: every shard must own at least one instance "
                f"(empty shards are not allowed)"
            )
        if steal_threshold < 0:
            raise ValueError(
                f"steal_threshold must be >= 0, got {steal_threshold}"
            )
        if injector is not None and mode != "process":
            raise ValueError(
                "fault injection drives worker processes; use mode='process'"
            )
        self.batch = batch
        self.mode = mode
        self.variant = variant
        self.schedule = schedule if schedule is not None else ConstantPenalty()
        self.fraction = float(fraction)
        self.seed = seed
        self.steal_threshold = int(steal_threshold)
        self.steal_policy = steal_policy
        self.transport = transport
        self.slack = float(slack)
        self.steal_log: list[StealEvent] = []
        self.policy = policy if policy is not None else WorkerPolicy()
        self.injector = injector
        self.tracer = tracer if tracer is not None else default_tracer()
        self.fault_log = FaultLog(tracer=self.tracer)
        self._steal_rng = default_rng(
            DEFAULT_SEED if steal_seed is None else steal_seed
        )
        self._iteration = 0
        self._closed = False
        self._pool: ThreadPoolExecutor | None = None
        self._workers: list[_Worker] = []
        self._doomed: set[int] = set()  # shards awaiting failover migration
        self._shared = mode == "process" and transport == "shared"
        self._tstats = TransportStats(
            transport=(
                "shared" if self._shared
                else ("queue" if mode == "process" else "thread")
            )
        )
        # Predictive-stealing state: per-instance residual-decay history
        # (global id -> deque of (iteration, log10 residual ratio)) and the
        # measured cost rate.  Maintained lazily; empty under "count".
        self._progress: dict[int, deque] = {}
        self._cost = _CostModel()
        self._steal_margin = 0.5  # thief trigger: load < margin * mean load
        self._predict_cap = 512.0  # projection horizon (sweeps)

        rows = self._penalty_rows(rho, "rho")
        arows = self._penalty_rows(alpha, "alpha")
        # Construction-time defaults for cold newcomers (instance 0's row
        # for uniform fleets, same convention as BatchedSolver.add_instances;
        # one row per distinct template for mixed fleets, plus the scalar
        # construction value as fallback for templates joining later).
        def _scalar(v):
            return (
                float(v)
                if isinstance(v, (int, float, np.floating, np.integer))
                else None
            )

        self._fresh_scalar_rho = _scalar(rho)
        self._fresh_scalar_alpha = _scalar(alpha)
        # Mixed-fleet defaults live in one table keyed by template id whose
        # *values* hold the template itself: the strong ref pins the id for
        # the table's lifetime, so CPython can never reuse it for a new
        # template (the id-reuse hazard of keying by bare id(t) with the
        # caller owning the only reference), and lookups double-check
        # identity (`entry[0] is t`) as a belt-and-braces guard.
        self._fresh_by_template: dict[int, tuple] = {}
        if batch.uniform:
            self._fresh_rho = rows[0].copy()
            self._fresh_alpha = arows[0].copy()
        else:
            self._fresh_rho = None
            self._fresh_alpha = None
            for i, t in enumerate(batch.templates):
                self._fresh_by_template.setdefault(
                    id(t), (t, rows[i].copy(), arows[i].copy())
                )

        self.plans: list[AsyncSweepPlan] | None = None
        if variant == "async":
            self._reseed_plans()

        self.shards: list[_RosterShard] = []
        for lo, hi in contiguous_chunks(batch.batch_size, int(num_shards)):
            ids = list(range(lo, hi))
            sub = batch.select_instances(ids)
            state = ADMMState(
                sub.graph,
                rho=sub.instance_rho(rows[ids]),
                alpha=sub.instance_rho(arows[ids]),
            )
            self.shards.append(_RosterShard(ids, sub, state))

        if mode == "process":
            self._ctx = mp.get_context("fork")
            self._workers = [self._spawn_worker(sh) for sh in self.shards]
        else:
            self._pool_size = len(self.shards)
            self._pool = ThreadPoolExecutor(
                max_workers=self._pool_size, thread_name_prefix="paradmm-rebal"
            )

    # ------------------------------------------------------------------ #
    def _penalty_rows(self, value, name: str) -> np.ndarray:
        """Normalize a fleet ρ/α argument to per-instance edge rows.

        ``(B, E_t)`` float rows for uniform fleets; a length-``B`` object
        array of per-instance ``(E_i,)`` rows for mixed-template fleets.
        """
        B = self.batch.batch_size
        if self.batch.uniform:
            Et = self.batch.template.num_edges
            arr = np.asarray(value, dtype=np.float64)
            if arr.ndim == 0:
                return np.full((B, Et), float(arr))
            if arr.shape == (B,):
                return np.repeat(arr[:, None], Et, axis=1)
            if arr.shape == (B, Et):
                return arr.astype(np.float64, copy=True)
            raise ValueError(
                f"{name} must be scalar, ({B},) per-instance, or ({B}, {Et}) "
                f"per-instance-per-edge; got shape {arr.shape}"
            )
        try:
            arr = np.asarray(value, dtype=np.float64)
        except (ValueError, TypeError):
            arr = None  # ragged per-instance rows
        rows = np.empty(B, dtype=object)
        if arr is not None and arr.ndim == 0:
            for i, t in enumerate(self.batch.templates):
                rows[i] = np.full(t.num_edges, float(arr))
            return rows
        if arr is not None and arr.shape == (B,):
            for i, t in enumerate(self.batch.templates):
                rows[i] = np.full(t.num_edges, float(arr[i]))
            return rows
        seq = value if isinstance(value, (list, tuple)) else list(value)
        if len(seq) != B:
            raise ValueError(
                f"{name} for a mixed-template fleet must be scalar, ({B},) "
                f"per-instance, or a length-{B} sequence of per-instance "
                f"rows; got a sequence of length {len(seq)}"
            )
        for i, row in enumerate(seq):
            row = np.asarray(row, dtype=np.float64)
            e_i = self.batch.templates[i].num_edges
            if row.ndim == 0:
                rows[i] = np.full(e_i, float(row))
            elif row.shape == (e_i,):
                rows[i] = row.astype(np.float64, copy=True)
            else:
                raise ValueError(
                    f"{name}: instance {i} row has shape {row.shape}; its "
                    f"template expects a scalar or ({e_i},)"
                )
        return rows

    def _reseed_plans(self) -> None:
        """(Re-)seed the per-instance randomized streams for the fleet.

        Seeding matches :class:`~repro.core.async_admm.FleetSweepPlan`
        (``seed + global instance``), so solves equal the plain fleet's and
        solo randomized solves.  Called at construction and after elastic
        resizes — a resize restarts streams for the new layout, exactly
        like ``FleetRandomizedBackend.rebind``.  Steals and reshards do
        *not* reseed: a migrated instance's stream continues where it left
        off, which is what keeps stolen trajectories bit-identical.
        """
        base = DEFAULT_SEED if self.seed is None else int(self.seed)
        self.plans = [
            AsyncSweepPlan(self.batch.templates[g], self.fraction, base + g)
            for g in range(self.batch.batch_size)
        ]

    # ------------------------------------------------------------------ #
    @property
    def batch_size(self) -> int:
        return self.batch.batch_size

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def iteration(self) -> int:
        """Completed fleet sweeps (every shard advances in lockstep)."""
        return self._iteration

    def shard_rosters(self) -> list[tuple[int, ...]]:
        """The global instance ids owned by each shard, in shard order."""
        return [tuple(sh.ids) for sh in self.shards]

    def owner_of(self, instance: int) -> tuple[int, int]:
        """``(shard index, local index)`` currently owning a global instance."""
        for s, sh in enumerate(self.shards):
            if instance in sh.ids:
                return s, sh.ids.index(instance)
        raise IndexError(
            f"instance {instance} out of range for fleet of {self.batch_size}"
        )

    def summary(self) -> str:
        sizes = "+".join(str(sh.size) for sh in self.shards)
        if self.batch.uniform:
            t = self.batch.template
            shape = (
                f"template(|F|={t.num_factors} |V|={t.num_vars} "
                f"|E|={t.num_edges})"
            )
        else:
            n_templates = len({id(t) for t in self.batch.templates})
            shape = f"{n_templates} templates (mixed)"
        return (
            f"RebalancingShardedSolver: B={self.batch_size} as "
            f"{self.num_shards} shards ({sizes}) x {shape}, "
            f"mode={self.mode}, variant={self.variant}, "
            f"transport={self._tstats.transport}, "
            f"steal_policy={self.steal_policy}, "
            f"steal_threshold={self.steal_threshold}, "
            f"steals={len(self.steal_log)}"
        )

    # ------------------------------------------------------------------ #
    # Fleet views (global instance order, independent of shard rosters).  #
    # ------------------------------------------------------------------ #
    def split_z(self) -> np.ndarray:
        """Per-instance rows of the fleet iterate.

        ``(B, z_size)`` for uniform fleets; a length-``B`` object array of
        per-instance vectors for mixed-template fleets.
        """
        if self.batch.uniform:
            zt = self.batch.template.z_size
            rows = np.empty((self.batch_size, zt))
            for sh in self.shards:
                rows[sh.ids] = sh.state.z.reshape(sh.size, zt)
            return rows
        rows = np.empty(self.batch_size, dtype=object)
        for sh in self.shards:
            for p, g in enumerate(sh.ids):
                rows[g] = sh.state.z[sh.batch.z_slice(p)]
        return rows

    def fleet_z(self) -> np.ndarray:
        """The fleet iterate in the batched z layout (instance-major).

        Byte-comparable to ``BatchedSolver.state.z`` — rosters only decide
        *where* an instance's rows live, never their values.
        """
        if self.batch.uniform:
            return self.split_z().reshape(-1)
        rows = self.split_z()
        return np.concatenate([rows[g] for g in range(self.batch_size)])

    def family_rows(self, family: str) -> np.ndarray:
        """Per-instance rows of one edge family (x/m/u/n).

        ``(B, S_t)`` for uniform fleets; a length-``B`` object array for
        mixed-template fleets.
        """
        if family not in _FAMILIES:
            raise ValueError(f"family must be one of {_FAMILIES}, got {family!r}")
        if self.batch.uniform:
            rows = np.empty((self.batch_size, self.batch.template.edge_size))
            for sh in self.shards:
                rows[sh.ids] = getattr(sh.state, family)[sh.batch.slot_index]
            return rows
        rows = np.empty(self.batch_size, dtype=object)
        for sh in self.shards:
            fam = getattr(sh.state, family)
            for p, g in enumerate(sh.ids):
                rows[g] = fam[sh.batch.slot_index[p]]
        return rows

    def rho_rows(self) -> np.ndarray:
        """Per-instance ρ rows (template edge order).

        ``(B, E_t)`` for uniform fleets; a length-``B`` object array for
        mixed-template fleets.
        """
        if self.batch.uniform:
            rows = np.empty((self.batch_size, self.batch.template.num_edges))
            for sh in self.shards:
                rows[sh.ids] = sh.batch.split_edges(sh.state.rho)
            return rows
        rows = np.empty(self.batch_size, dtype=object)
        for sh in self.shards:
            sub = sh.batch.split_edges(sh.state.rho)
            for p, g in enumerate(sh.ids):
                rows[g] = sub[p]
        return rows

    # ------------------------------------------------------------------ #
    def initialize(
        self,
        how: str = "zeros",
        low: float = 0.0,
        high: float = 1.0,
        seed: int | None = None,
    ) -> None:
        """(Re-)initialize the fleet iterate: "zeros", "random", or "keep".

        "random" draws one stream per *instance* (seeded ``seed + global
        id``), so the initialization is stable under re-sharding and
        stealing — though, like the sharded solver's, not equal to an
        unsharded random init.
        """
        if how == "zeros":
            for sh in self.shards:
                sh.state.init_zeros()
            self._iteration = 0
        elif how == "random":
            if not low < high:
                raise ValueError(f"need low < high, got [{low}, {high})")
            base = DEFAULT_SEED if seed is None else seed
            for sh in self.shards:
                for p, g in enumerate(sh.ids):
                    rng = default_rng(base + g)
                    for fam in _FAMILIES:
                        rows = sh.batch.slot_index[p]
                        getattr(sh.state, fam)[rows] = rng.uniform(
                            low, high, size=rows.size
                        )
                    sh.state.z[sh.batch.z_slice(p)] = rng.uniform(
                        low, high, size=sh.batch.z_size_of(p)
                    )
                sh.state.iteration = 0
            self._iteration = 0
        elif how == "keep":
            pass
        else:
            raise ValueError(f"unknown init {how!r}; use zeros|random|keep")
        if how != "keep":
            self._progress.clear()  # decay histories describe the old run

    def warm_start_pool(self, pool) -> None:
        """Seed every instance from a pool of previous solutions.

        Same contract as :meth:`BatchedSolver.warm_start_pool`, including
        cycling pools smaller than the fleet; rows are routed to the shard
        owning each instance, wherever stealing has put it.  Mixed-template
        fleets take exactly one vector per instance (no cycling — rows are
        instance-shaped).
        """
        if not self.batch.uniform:
            if not isinstance(pool, (np.ndarray, list, tuple)):
                pool = list(pool)
            if len(pool) != self.batch_size:
                raise ValueError(
                    f"mixed-template fleet warm start needs one vector per "
                    f"instance ({self.batch_size}); got {len(pool)}"
                )
            for sh in self.shards:
                sh.state.init_from_z(sh.batch.pack_z([pool[g] for g in sh.ids]))
            self._iteration = 0
            self._progress.clear()
            return
        rows = normalize_pool(pool, self.batch_size, self.batch.template.z_size)
        for sh in self.shards:
            sh.state.init_from_z(sh.batch.pack_z(rows[sh.ids]))
        self._iteration = 0
        self._progress.clear()

    # ------------------------------------------------------------------ #
    # Sweep execution.                                                    #
    # ------------------------------------------------------------------ #
    def _draw_masks(self, iterations: int):
        """Pre-draw per-shard randomized factor masks (async variant).

        The parent owns every instance's stream, so drawing is independent
        of which shard executes the sweep — the migration-safety property.
        """
        if self.variant != "async":
            return [None] * len(self.shards)
        out = []
        for sh in self.shards:
            masks = np.zeros((iterations, sh.batch.graph.num_factors), dtype=bool)
            for s in range(iterations):
                for p, g in enumerate(sh.ids):
                    masks[s, sh.batch.factor_index[p]] = self.plans[g].draw()
            out.append(masks)
        return out

    def iterate(self, iterations: int, timers: KernelTimers | None = None) -> None:
        """Advance the whole fleet a fixed number of sweeps (benchmark mode)."""
        if iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {iterations}")
        if iterations:
            self._run_all(iterations, timers)

    def _run_all(self, iterations: int, timers: KernelTimers | None = None) -> None:
        """Advance every shard ``iterations`` sweeps, workers in parallel.

        Any exception — a relayed sweep error or a ``KeyboardInterrupt``
        while waiting on workers — closes the solver on the way out: the
        fleet iterate may no longer be consistent across shards, and an
        interrupted parent must never leak worker processes.  Worker
        *faults* (death, hang, corrupt queue) do not surface here: they
        are recovered by restart-and-replay or parent failover.
        """
        if self._closed:
            raise RuntimeError("solver is closed")
        try:
            failure = self._run_all_inner(iterations, timers)
        except BaseException:
            self.close()
            raise
        if failure is not None:
            # The fleet iterate is no longer consistent across shards;
            # shut the solver down rather than risk desynchronized reuse.
            self.close()
            raise failure
        self._iteration += iterations

    def _run_all_inner(
        self, iterations: int, timers: KernelTimers | None
    ) -> Exception | None:
        masks = self._draw_masks(iterations)
        failure: Exception | None = None
        tracer = self.tracer
        segment = self._iteration
        seg_t0 = monotonic_now()
        if self.mode == "process":
            self._ensure_workers()
            if self.injector is not None:
                self.injector.before_segment(self)
            faults: dict[int, WorkerFault] = {}
            # Phase 1: re-bind workers whose shard changed under them.  On
            # the shared transport a bind first checks the worker's mirror
            # capacities — a roster that outgrew its slack forces the
            # one-time buffer rebuild — and carries the bound graph's true
            # mirror sizes so the worker can cut its prefix views.
            need_bind = [
                idx
                for idx, sh in enumerate(self.shards)
                if self._workers[idx].bound is not sh.batch
            ]
            bind_sizes: dict[int, list[int]] = {}
            for idx in need_bind:
                sh = self.shards[idx]
                if self._shared:
                    sizes = state_sizes(sh.batch.graph)
                    bind_sizes[idx] = sizes
                    w = self._workers[idx]
                    if any(s > c for s, c in zip(sizes, w.caps)):
                        w = self._rebuild_worker(idx)
                    w.cmd_q.put(
                        ("bind", sh.batch.graph, self.variant, tuple(sizes))
                    )
                else:
                    self._workers[idx].cmd_q.put(
                        ("bind", sh.batch.graph, self.variant)
                    )
            for idx in need_bind:
                try:
                    self._collect(idx, "bind")
                    w = self._workers[idx]
                    w.bound = self.shards[idx].batch
                    if self._shared:
                        w.views = [
                            _as_np(r)[:s]
                            for r, s in zip(w.raws, bind_sizes[idx])
                        ]
                except WorkerFault as fault:
                    faults[idx] = fault
                except RuntimeError as err:
                    failure = failure or err
            if failure is not None:
                return failure
            # Phase 2: dispatch the segment to every healthy worker, then
            # collect every reply before touching any state (a failure in
            # one shard must not leave another's result queued).  Shared
            # transport: push the pre-segment state into each worker's
            # mirror and send a payload-free command — zero iterate bytes
            # on the queue; queue transport serializes the state as before.
            healthy = [i for i in range(len(self.shards)) if i not in faults]
            want = (timers is not None, tracer is not None, segment)
            self._tstats.segments += 1
            for idx in healthy:
                st = self.shards[idx].state
                if self._shared:
                    w = self._workers[idx]
                    push_shared(w.views, st)
                    self._tstats.shared_push_bytes += int(
                        sum(v.nbytes for v in w.views)
                    )
                    payload = None
                else:
                    payload = (st.x, st.m, st.u, st.n, st.z, st.rho, st.alpha)
                    self._tstats.queue_state_bytes += _payload_nbytes(payload)
                self._workers[idx].cmd_q.put(
                    ("run", iterations, payload, masks[idx], want + (idx,))
                )
            results: dict[int, tuple | None] = {}
            for idx in healthy:
                try:
                    fams, _dt, kernels, events, dropped = _run_reply(
                        self._collect(idx, "sweep")
                    )
                except WorkerFault as fault:
                    faults[idx] = fault
                    continue
                except RuntimeError as err:
                    failure = failure or err
                    continue
                results[idx] = fams
                if fams is not None:
                    self._tstats.queue_reply_bytes += _payload_nbytes(fams)
                self._cost.observe(
                    _dt, self.shards[idx].batch.graph.edge_size, iterations
                )
                if timers is not None and kernels is not None:
                    # Per-worker kernel attribution: sum each worker's real
                    # kernel seconds instead of charging the barrier wall
                    # time to "x".
                    timers.add_elapsed(kernels)
                if tracer is not None:
                    tracer.extend(events)
                    if dropped:
                        tracer.point(
                            "drop",
                            f"worker {idx} ring dropped {dropped} events",
                            worker=idx,
                            segment=segment,
                        )
            if failure is not None:
                return failure
            # Phase 3: recover faulted shards — restart & replay, falling
            # back to executing the segment in the parent (both replay the
            # exact pre-segment state and masks: bit-identical).
            parent_ran: set[int] = set()
            for idx in sorted(faults):
                try:
                    out = self._recover_shard(
                        idx, iterations, masks[idx], faults[idx], timers
                    )
                except RuntimeError as err:
                    failure = failure or err
                    continue
                if out is None:
                    parent_ran.add(idx)
                else:
                    fams, _dt, kernels, events, dropped = _run_reply(out)
                    results[idx] = fams
                    if fams is not None:
                        self._tstats.queue_reply_bytes += _payload_nbytes(fams)
                    if timers is not None and kernels is not None:
                        timers.add_elapsed(kernels)
                    if tracer is not None:
                        tracer.extend(events)
                        if dropped:
                            tracer.point(
                                "drop",
                                f"worker {idx} ring dropped {dropped} events",
                                worker=idx,
                                segment=segment,
                            )
            if failure is not None:
                return failure
            # Phase 4: adopt every shard's advanced families — from the
            # reply payload (queue transport) or straight out of the
            # worker's shared mirror (shared transport: fams is None).
            for idx, sh in enumerate(self.shards):
                if idx in parent_ran:
                    continue  # _run_sweeps advanced sh.state in place
                fams = results[idx]
                if fams is None:
                    w = self._workers[idx]
                    pull_families(w.views, sh.state)
                    self._tstats.shared_pull_bytes += int(
                        sum(v.nbytes for v in w.views[:5])
                    )
                else:
                    for fam, arr in zip(_FAMILIES, fams[:4]):
                        getattr(sh.state, fam)[:] = arr
                    sh.state.z[:] = fams[4]
                sh.state.iteration += iterations
            # Phase 5: failover — migrate rosters of shards whose worker
            # is gone for good onto survivors (the involuntary steal).
            if self._doomed:
                self._migrate_doomed()
        else:
            self._ensure_pool()
            need_kernels = timers is not None or tracer is not None
            shard_timers = [
                KernelTimers() if need_kernels else None for _ in self.shards
            ]
            spans: list[tuple[float, float] | None] = [None] * len(self.shards)

            def _task(idx: int, sh: _RosterShard) -> None:
                m0 = monotonic_now()
                _run_sweeps(
                    sh.batch.graph,
                    sh.state,
                    iterations,
                    self.variant,
                    masks[idx],
                    shard_timers[idx],
                )
                spans[idx] = (m0, monotonic_now())

            futures = [
                self._pool.submit(_task, idx, sh)
                for idx, sh in enumerate(self.shards)
            ]
            done, _ = wait(futures)
            for f in done:
                exc = f.exception()
                if exc is not None:
                    failure = failure or exc
            if failure is None:
                self._tstats.segments += 1
                for idx, sh in enumerate(self.shards):
                    if spans[idx] is not None:
                        m0, m1 = spans[idx]
                        self._cost.observe(
                            m1 - m0, sh.batch.graph.edge_size, iterations
                        )
            if failure is None and need_kernels:
                for idx, kt in enumerate(shard_timers):
                    kernels = kt.elapsed_by_kind()
                    if timers is not None:
                        timers.add_elapsed(kernels)
                    if tracer is not None and spans[idx] is not None:
                        m0, m1 = spans[idx]
                        tracer.extend(
                            segment_events(
                                worker=idx,
                                segment=segment,
                                t0=m0,
                                t1=m1,
                                sweeps=iterations,
                                kernel_seconds=kernels,
                            )
                        )
        if failure is None:
            if timers is not None:
                # One logical fleet sweep per iteration regardless of shard
                # count — calls mirror BatchedSolver's accounting, while
                # elapsed is the aggregate across workers.
                for kind in UPDATE_KINDS:
                    timers[kind].calls += iterations
            if tracer is not None:
                tracer.add_span(
                    "segment",
                    f"fleet sweep x{iterations}",
                    seg_t0,
                    monotonic_now(),
                    worker=PARENT,
                    segment=segment,
                    sweeps=iterations,
                    shards=len(self.shards),
                )
        return failure

    def _capacities(self, shard: _RosterShard) -> list[int]:
        """Capacity-bound mirror sizes for a worker serving ``shard``.

        The bound graph's true sizes scaled by ``slack`` — the headroom
        that lets steals and elastic appends re-bind inside the existing
        buffers instead of reallocating shared memory.
        """
        return [
            max(1, int(np.ceil(s * self.slack)))
            for s in state_sizes(shard.batch.graph)
        ]

    def _spawn_worker(
        self, shard: _RosterShard | None = None, raws=None, caps=None
    ) -> _Worker:
        """Fork one generic worker; shared transport attaches its mirror.

        ``raws``/``caps`` reuse an existing mirror (crash recovery: the
        parent still maps the dead worker's buffers, and the fresh fork
        inherits them); otherwise new capacity buffers are allocated with
        ``slack`` headroom over ``shard``'s sizes.
        """
        if self._shared and raws is None:
            caps = self._capacities(shard)
            raws = shared_capacity_buffers(self._ctx, caps)
        return _Worker(
            self._ctx, self.policy.heartbeat_interval, raws=raws, caps=caps
        )

    def _ensure_workers(self) -> None:
        """Grow the process-worker pool to cover every shard (never shrinks)."""
        while len(self._workers) < len(self.shards):
            self._workers.append(
                self._spawn_worker(self.shards[len(self._workers)])
            )

    def _retire_worker(self, worker: _Worker) -> None:
        """Forcibly dispose of a worker (dead, hung, or corrupt): kill + close.

        The worker's shared mirror (``raws``/``caps``) is deliberately
        kept: the parent still maps it, so a replacement fork can inherit
        the same buffers and replay from the parent's authoritative state.
        """
        reap_process(worker.proc, grace=False)
        worker.proc = None
        close_queue(worker.cmd_q)
        close_queue(worker.done_q)
        worker.bound = None

    def _rebuild_worker(self, idx: int) -> _Worker:
        """Growth past slack: retire worker ``idx``, refork on larger buffers.

        The one-time fallback of the capacity scheme — shared blocks
        cannot be resized or re-sent over queues (they share only through
        fork inheritance), so a roster that outgrew its worker's slack
        stops the worker politely and forks a replacement on fresh
        buffers sized for the new roster (again with slack).  Counted in
        :meth:`transport_stats` ``buffer_rebuilds``; steals and appends
        within slack never come through here.
        """
        old = self._workers[idx]
        if old.proc is not None and old.proc.is_alive():
            try:
                old.cmd_q.put(("stop",))
            except Exception:
                pass
        reap_process(old.proc, timeout=self.policy.shutdown_timeout)
        old.proc = None
        close_queue(old.cmd_q)
        close_queue(old.done_q)
        w = self._spawn_worker(self.shards[idx])
        self._workers[idx] = w
        self._tstats.buffer_rebuilds += 1
        if self.tracer is not None:
            self.tracer.point(
                "rebuild",
                f"worker {idx} mirror rebuilt (roster outgrew slack)",
                worker=idx,
                segment=self._iteration,
            )
        return w

    def _recover_shard(
        self,
        idx: int,
        iterations: int,
        masks,
        fault: WorkerFault,
        timers: KernelTimers | None = None,
    ):
        """Recover shard ``idx`` after its worker faulted mid-segment.

        Tries up to ``policy.max_restarts`` replacement workers (fresh
        queues — a command the dead worker never consumed must not be
        replayed by its successor), re-sending the exact pre-segment state
        and masks.  When the budget is exhausted, the segment executes in
        the parent (same math on the same state: bit-identical) and the
        shard is marked for roster migration.  Returns the run reply
        payload, or ``None`` when the parent ran the segment (its kernel
        seconds fold into ``timers`` and trace onto the parent lane here).

        On the shared transport the replacement worker re-inherits the dead
        worker's shared blocks over fork (the parent keeps the references —
        see ``_retire_worker``), and the replay pushes the parent's
        authoritative pre-segment mirror into them: a crash never loses
        iterate state because the parent never ceded ownership of it.
        """
        sh = self.shards[idx]
        self.fault_log.record(
            "crash", self._iteration, idx, f"{type(fault).__name__}: {fault}"
        )
        old = self._workers[idx]
        self._retire_worker(old)
        sizes = state_sizes(sh.batch.graph) if self._shared else None
        reuse = self._shared and all(
            s <= c for s, c in zip(sizes, old.caps or ())
        )
        for attempt in range(self.policy.max_restarts):
            time.sleep(self.policy.restart_delay(attempt))
            if reuse:
                w = self._spawn_worker(raws=old.raws, caps=old.caps)
            else:
                w = self._spawn_worker(sh)
            self._workers[idx] = w
            self.fault_log.record(
                "restart",
                self._iteration,
                idx,
                f"replacement worker pid={w.proc.pid} "
                f"(attempt {attempt + 1}/{self.policy.max_restarts})",
            )
            try:
                st = sh.state
                want = (
                    timers is not None,
                    self.tracer is not None,
                    self._iteration,
                    idx,
                )
                if self._shared:
                    w.cmd_q.put(
                        ("bind", sh.batch.graph, self.variant, tuple(sizes))
                    )
                    self._collect(idx, "bind")
                    w.bound = sh.batch
                    w.views = [_as_np(r)[:s] for r, s in zip(w.raws, sizes)]
                    push_shared(w.views, st)
                    self._tstats.shared_push_bytes += int(
                        sum(v.nbytes for v in w.views)
                    )
                    payload = None
                else:
                    w.cmd_q.put(("bind", sh.batch.graph, self.variant))
                    self._collect(idx, "bind")
                    w.bound = sh.batch
                    payload = (st.x, st.m, st.u, st.n, st.z, st.rho, st.alpha)
                    self._tstats.queue_state_bytes += _payload_nbytes(payload)
                w.cmd_q.put(("run", iterations, payload, masks, want))
                return self._collect(idx, "sweep")
            except WorkerFault as again:
                self.fault_log.record(
                    "crash",
                    self._iteration,
                    idx,
                    f"{type(again).__name__}: {again}",
                )
                self._retire_worker(w)
        self.fault_log.record(
            "failover",
            self._iteration,
            idx,
            f"restart budget exhausted ({self.policy.max_restarts}); segment "
            f"of {iterations} sweep(s) executed in the parent, roster will "
            f"migrate to a survivor",
        )
        ktimers = (
            KernelTimers()
            if (timers is not None or self.tracer is not None)
            else None
        )
        f_t0 = monotonic_now()
        _run_sweeps(
            sh.batch.graph, sh.state, iterations, self.variant, masks, ktimers
        )
        if timers is not None:
            timers.add_elapsed(ktimers.elapsed_by_kind())
        if self.tracer is not None:
            self.tracer.extend(
                segment_events(
                    worker=PARENT,
                    segment=self._iteration,
                    t0=f_t0,
                    t1=monotonic_now(),
                    sweeps=iterations,
                    kernel_seconds=ktimers.elapsed_by_kind(),
                    name=f"failover shard {idx}",
                )
            )
        self._doomed.add(idx)
        return None

    def _migrate_doomed(self) -> None:
        """Migrate rosters of worker-less shards onto survivors.

        The involuntary steal: each doomed shard's roster (state already
        advanced through the parent's failover sweep) moves to the lightest
        surviving shard through the normal ``_remap`` path, its worker slot
        is dropped, and the move is recorded in both ``fault_log`` and
        ``steal_log``.  With no survivors the shards are kept and fresh
        workers are forked lazily at the next run (a fleet-wide restart).
        """
        doomed = sorted(self._doomed)
        self._doomed = set()
        for idx in reversed(doomed):
            self._workers.pop(idx)  # already retired by _recover_shard
        survivors = [i for i in range(len(self.shards)) if i not in doomed]
        if not survivors:
            return
        owner = self._owner_map()
        keep = [self.shards[i] for i in survivors]
        rosters = [list(sh.ids) for sh in keep]
        for idx in doomed:
            dead = self.shards[idx]
            target = min(range(len(rosters)), key=lambda j: len(rosters[j]))
            rosters[target] = sorted(rosters[target] + list(dead.ids))
            instances = tuple(int(g) for g in dead.ids)
            self.fault_log.record(
                "migration",
                self._iteration,
                idx,
                f"roster migrated to shard {survivors[target]} "
                f"(involuntary steal)",
                instances=instances,
            )
            self.steal_log.append(
                StealEvent(
                    iteration=self._iteration,
                    thief=survivors[target],
                    donor=idx,
                    instances=instances,
                )
            )
        self.shards = keep
        self._remap(rosters, lambda g: owner[g])

    def _ensure_pool(self) -> None:
        """Grow the thread pool so every shard sweeps concurrently.

        Re-sharding up past the construction-time shard count would
        otherwise queue the extra shards behind the old ``max_workers``.
        Pool threads hold no shard state, so swapping in a wider pool is
        not a worker restart in any state-bearing sense.
        """
        if len(self.shards) > self._pool_size:
            self._pool.shutdown(wait=True)
            self._pool_size = len(self.shards)
            self._pool = ThreadPoolExecutor(
                max_workers=self._pool_size, thread_name_prefix="paradmm-rebal"
            )

    def _collect(self, idx: int, what: str):
        """Wait for shard ``idx``'s reply under the supervision policy.

        Dead / hung / corrupt workers raise a
        :class:`~repro.core.supervision.WorkerFault` subclass (recoverable:
        the caller restarts or fails over); a relayed sweep exception stays
        a plain ``RuntimeError`` (deterministic — replay would just fail
        again).
        """
        w = self._workers[idx]
        status, payload = collect_reply(
            w.done_q, w.proc, self.policy, f"shard {idx} {what}"
        )
        if status == "error":
            raise RuntimeError(f"shard {idx} {what} failed: {payload}")
        return payload

    # ------------------------------------------------------------------ #
    # Live migration: steals, reshards, elastic rosters.                  #
    # ------------------------------------------------------------------ #
    def _remap(self, assignments: list[list[int]], source_of, fresh=None) -> None:
        """Rebuild shards to own the given rosters, migrating state.

        ``assignments`` lists each new shard's global instance ids
        (ascending); ``source_of(gid)`` returns the ``(shard, local)``
        currently holding that instance's state, or ``None`` for a cold
        newcomer (zero iterate, fresh penalties in template edge order —
        ``fresh`` is a ``(rho_row, alpha_row)`` pair, or a callable
        ``fresh(gid)`` returning one, for mixed-template fleets whose
        newcomers need per-template rows).  Shards whose roster and sources
        are unchanged are reused as-is — a steal rebuilds exactly two
        shards.  Every copied quantity moves through the batch index maps,
        so migration is bit-exact per instance.
        """
        existing: dict[tuple[int, ...], _RosterShard] = {}
        for sh in self.shards:
            existing[tuple(sh.ids)] = sh
        new_shards: list[_RosterShard] = []
        for ids in assignments:
            ids = [int(g) for g in ids]
            sh = existing.get(tuple(ids))
            if sh is not None and all(
                source_of(g) == (sh, p) for p, g in enumerate(ids)
            ):
                new_shards.append(sh)
                continue
            sub = self.batch.select_instances(ids)
            state = ADMMState(sub.graph)
            rho = np.empty(sub.graph.num_edges)
            alpha = np.empty(sub.graph.num_edges)
            for p, g in enumerate(ids):
                src = source_of(g)
                if src is None:
                    fr, fa = fresh(g) if callable(fresh) else fresh
                    rho[sub.edge_index[p]] = fr
                    alpha[sub.edge_index[p]] = fa
                    continue  # cold: families stay zero
                osh, q = src
                for fam in _FAMILIES:
                    getattr(state, fam)[sub.slot_index[p]] = getattr(
                        osh.state, fam
                    )[osh.batch.slot_index[q]]
                state.z[sub.z_slice(p)] = osh.state.z[osh.batch.z_slice(q)]
                rho[sub.edge_index[p]] = osh.state.rho[osh.batch.edge_index[q]]
                alpha[sub.edge_index[p]] = osh.state.alpha[
                    osh.batch.edge_index[q]
                ]
            state.set_rho(rho)
            state.set_alpha(alpha)
            state.iteration = self._iteration
            new_shards.append(_RosterShard(ids, sub, state))
        self.shards = new_shards

    def _owner_map(self):
        owner: dict[int, tuple[_RosterShard, int]] = {}
        for sh in self.shards:
            for p, g in enumerate(sh.ids):
                owner[g] = (sh, p)
        return owner

    def reshard(self, num_shards: int) -> None:
        """Repartition the live fleet into contiguous global-id rosters.

        State (iterates, duals, per-edge penalties) migrates across shard
        boundaries bit-for-bit; workers are not restarted (process workers
        lazily re-``bind`` to their new sub-graph at the next run).
        """
        if self._closed:
            raise RuntimeError("solver is closed")
        if not 1 <= num_shards <= self.batch_size:
            raise ValueError(
                f"cannot reshard a fleet of {self.batch_size} instances "
                f"into {num_shards} shards: every shard must own at least "
                f"one instance (empty shards are not allowed)"
            )
        old_shards = self.num_shards
        owner = self._owner_map()
        assignments = [
            list(range(lo, hi))
            for lo, hi in contiguous_chunks(self.batch_size, int(num_shards))
        ]
        self._remap(assignments, lambda g: owner[g])
        if self.tracer is not None:
            self.tracer.point(
                "reshard",
                f"{old_shards} -> {self.num_shards} shards",
                segment=self._iteration,
            )

    def rebalance(self, active=None) -> None:
        """Re-split the fleet so shards carry (near-)equal active load.

        ``active`` is an optional ``(B,)`` boolean mask of non-converged
        instances; without it every instance counts equally (an even
        re-shard).  Rosters stay contiguous in global id order; the
        partition is a deterministic greedy sweep that weights active
        instances first and instance counts second.
        """
        if self._closed:
            raise RuntimeError("solver is closed")
        B, k = self.batch_size, self.num_shards
        if active is None:
            self.reshard(k)
            return
        active = np.asarray(active, dtype=bool)
        if active.shape != (B,):
            raise ValueError(f"active must have shape ({B},), got {active.shape}")
        # Weight actives heavily, idles lightly, so actives balance first
        # but every shard still gets a roster.
        w = active.astype(np.int64) * B + 1
        owner = self._owner_map()
        assignments: list[list[int]] = []
        start = 0
        for s in range(k):
            if s == k - 1:
                stop = B
            else:
                remaining = int(w[start:].sum())
                target = remaining / (k - s)
                max_stop = B - (k - s - 1)
                stop = start + 1
                acc = int(w[start])
                while stop < max_stop and acc + int(w[stop]) <= target:
                    acc += int(w[stop])
                    stop += 1
            assignments.append(list(range(start, stop)))
            start = stop
        self._remap(assignments, lambda g: owner[g])
        if self.tracer is not None:
            self.tracer.point(
                "rebalance",
                f"{k} shards by active load",
                segment=self._iteration,
                active=int(active.sum()),
            )

    # ------------------------------------------------------------------ #
    def _pick(self, candidates: list[int]) -> int:
        """Seeded tie-break: deterministic given the steal seed and history."""
        if len(candidates) == 1:
            return candidates[0]
        return int(candidates[int(self._steal_rng.integers(len(candidates)))])

    def _steal(
        self,
        thief_idx: int,
        donor_idx: int,
        active: np.ndarray,
        weights: np.ndarray | None = None,
    ):
        """Move half the (active or cost-weighted) imbalance donor → thief.

        The stolen instances are the smallest contiguous *tail block* of
        the donor's roster covering the target active count (trailing
        frozen instances ride along — moving them is free).  With
        ``weights`` (the predictive policy's per-instance cost weights) the
        cut instead accumulates weight tail-first up to half the load gap —
        zero-weight (converged) trailing instances still ride along free.
        Returns the executed :class:`StealEvent`, or ``None`` if no move
        helps.
        """
        donor = self.shards[donor_idx]
        thief = self.shards[thief_idx]
        moved_load = None
        if weights is None:
            d_act = int(active[donor.ids].sum())
            t_act = int(active[thief.ids].sum())
            n_move = (d_act - t_act) // 2
            if n_move <= 0:
                return None
            flags = np.flatnonzero(active[donor.ids])
            cut = int(flags[-n_move])
        else:
            d_load = float(weights[donor.ids].sum())
            t_load = float(weights[thief.ids].sum())
            gap = (d_load - t_load) / 2.0
            if gap <= 0.0:
                return None
            cut = len(donor.ids)
            cum = 0.0
            for pos in range(len(donor.ids) - 1, 0, -1):
                w_pos = float(weights[donor.ids[pos]])
                if cum + w_pos > gap:
                    break
                cum += w_pos
                cut = pos
            if cut == len(donor.ids) or cum <= 0.0:
                return None
            moved_load = cum
        if cut == 0:
            cut = 1  # the donor always keeps at least one instance
        block = donor.ids[cut:]
        if not block:
            return None
        owner = self._owner_map()
        rosters = [list(sh.ids) for sh in self.shards]
        rosters[donor_idx] = donor.ids[:cut]
        rosters[thief_idx] = sorted(thief.ids + block)
        self._remap(rosters, lambda g: owner[g])
        event = StealEvent(
            iteration=self._iteration,
            thief=thief_idx,
            donor=donor_idx,
            instances=tuple(int(g) for g in block),
            moved_load=moved_load,
        )
        self.steal_log.append(event)
        if self.tracer is not None:
            data = dict(
                thief=thief_idx,
                donor=donor_idx,
                instances=list(event.instances),
            )
            if moved_load is not None:
                data["moved_load"] = moved_load
            self.tracer.point(
                "steal",
                f"shard {donor_idx} -> {thief_idx}",
                segment=self._iteration,
                **data,
            )
        return event

    def steal_once(self, active=None):
        """One manual steal from the heaviest to the lightest shard.

        ``active`` defaults to all-instances-active (pure size balancing).
        Returns the :class:`StealEvent` or ``None`` when the fleet is
        already balanced.  Useful for scripted churn; :meth:`solve_batch`
        triggers steals automatically from convergence masks.
        """
        if self._closed:
            raise RuntimeError("solver is closed")
        if self.num_shards < 2:
            return None
        if active is None:
            active = np.ones(self.batch_size, dtype=bool)
        counts = [int(np.asarray(active)[sh.ids].sum()) for sh in self.shards]
        lo, hi = min(counts), max(counts)
        thief = self._pick([i for i, c in enumerate(counts) if c == lo])
        donor = self._pick(
            [i for i, c in enumerate(counts) if c == hi and i != thief]
        )
        return self._steal(thief, donor, np.asarray(active, dtype=bool))

    def _auto_steal(self, active: np.ndarray) -> list[StealEvent]:
        """Stealing pass run at every convergence check of the solve loop.

        Active counts are computed **once** and updated incrementally from
        each executed steal (a steal only moves instances between its
        thief and donor, so no other shard's count can change) — the pass
        is O(B + S·steals) instead of the former O(S²·B) roster rescan per
        thief, with bit-identical decisions.
        """
        if self.steal_threshold <= 0 or self.num_shards < 2:
            return []
        if self.steal_policy == "predictive":
            return self._auto_steal_predictive(active)
        events = []
        order = self._steal_rng.permutation(self.num_shards)
        counts = [int(active[sh.ids].sum()) for sh in self.shards]
        for thief_idx in order:
            if counts[thief_idx] >= self.steal_threshold:
                continue
            hi = max(c for i, c in enumerate(counts) if i != thief_idx)
            if hi <= counts[thief_idx]:
                continue
            donor_idx = self._pick(
                [i for i, c in enumerate(counts) if c == hi and i != thief_idx]
            )
            ev = self._steal(int(thief_idx), donor_idx, active)
            if ev is not None:
                events.append(ev)
                moved = int(active[list(ev.instances)].sum())
                counts[donor_idx] -= moved
                counts[int(thief_idx)] += moved
        return events

    def _auto_steal_predictive(self, active: np.ndarray) -> list[StealEvent]:
        """Predictive, cost-weighted stealing pass.

        Each active instance is weighted by ``edge_size × projected
        sweeps-to-convergence`` (the fitted residual-decay slope of its
        recent checks, capped at ``self._predict_cap``); a shard whose
        summed weight falls below ``self._steal_margin`` of the fleet mean
        steals from the heaviest shard, taking the tail block closest to
        half the load gap.  Decisions compare weights only — the measured
        seconds-per-edge-sweep rate is a common factor that cancels — so
        the pass is deterministic given the steal seed and residual
        history, and every steal is pure state motion: iterates are
        bit-identical to never having stolen at all.
        """
        events = []
        weights = self._instance_weights(active)
        loads = [float(weights[sh.ids].sum()) for sh in self.shards]
        order = self._steal_rng.permutation(self.num_shards)
        for thief_idx in order:
            mean = sum(loads) / len(loads)
            if mean <= 0.0:
                break
            if loads[thief_idx] >= self._steal_margin * mean:
                continue
            hi = max(ld for i, ld in enumerate(loads) if i != thief_idx)
            if hi <= loads[thief_idx]:
                continue
            donor_idx = self._pick(
                [i for i, ld in enumerate(loads) if ld == hi and i != thief_idx]
            )
            ev = self._steal(int(thief_idx), donor_idx, active, weights=weights)
            if ev is not None:
                events.append(ev)
                loads[donor_idx] -= ev.moved_load
                loads[int(thief_idx)] += ev.moved_load
        return events

    def _note_progress(self, g: int, res) -> None:
        """Record one convergence check in instance ``g``'s decay history."""
        ratio = max(
            res.primal / max(res.eps_primal, 1e-300),
            res.dual / max(res.eps_dual, 1e-300),
        )
        dq = self._progress.get(g)
        if dq is None:
            dq = self._progress[g] = deque(maxlen=4)
        if dq and dq[-1][0] == res.iteration:
            return  # duplicate check at the same sweep (e.g. residuals())
        dq.append((res.iteration, float(np.log10(max(ratio, 1e-300)))))

    def _projected_sweeps(self, g: int) -> float:
        """Projected sweeps until instance ``g`` converges.

        Least-squares slope of ``log10(residual ratio)`` over the recent
        checks; non-decaying or too-short histories project the cap (an
        unknown instance is assumed expensive, so nobody unloads it as
        cheap).
        """
        dq = self._progress.get(g)
        if dq is None or len(dq) < 2:
            return self._predict_cap
        its = np.array([p[0] for p in dq], dtype=np.float64)
        logs = np.array([p[1] for p in dq], dtype=np.float64)
        di = its - its.mean()
        denom = float((di * di).sum())
        if denom <= 0.0:
            return self._predict_cap
        slope = float((di * (logs - logs.mean())).sum()) / denom
        if slope >= -1e-12:
            return self._predict_cap
        last = float(logs[-1])
        if last <= 0.0:
            return 1.0  # already at threshold; one sweep to confirm
        return float(min(self._predict_cap, max(1.0, last / -slope)))

    def _instance_weights(self, active: np.ndarray) -> np.ndarray:
        """Per-instance predicted cost weights (0 for converged instances).

        ``edge_size × projected sweeps-to-convergence`` — proportional to
        predicted seconds via the measured per-edge sweep rate, which is a
        common factor and therefore left out of the weights (steal
        decisions stay deterministic; :meth:`shard_loads` applies the rate
        when reporting seconds).
        """
        weights = np.zeros(self.batch_size, dtype=np.float64)
        templates = self.batch.templates
        for g in range(self.batch_size):
            if active[g]:
                weights[g] = templates[g].edge_size * self._projected_sweeps(g)
        return weights

    def shard_loads(self, active=None) -> list[float]:
        """Predicted per-shard cost in seconds under the current rosters.

        ``active`` defaults to all-active.  The product of each shard's
        summed instance weight (:meth:`_instance_weights`) and the measured
        seconds-per-edge-sweep rate; before any sweep has been timed the
        rate defaults to 1.0, making the loads plain weight sums.
        """
        if active is None:
            active = np.ones(self.batch_size, dtype=bool)
        active = np.asarray(active, dtype=bool)
        weights = self._instance_weights(active)
        rate = self._cost.seconds_per_edge_sweep()
        return [float(weights[sh.ids].sum()) * rate for sh in self.shards]

    def transport_stats(self) -> dict:
        """Byte/payload accounting of the parent↔worker state transport.

        See :class:`TransportStats`; in shared mode ``queue_state_bytes``
        == ``queue_reply_bytes`` == 0 is the zero-copy witness.
        """
        return self._tstats.as_dict()

    # ------------------------------------------------------------------ #
    # Elastic rosters: grow/shrink the live fleet.                        #
    # ------------------------------------------------------------------ #
    def add_instances(
        self, new_instances, rho=None, alpha=None, templates=None
    ) -> None:
        """Grow the live fleet, appending cold instances to the lightest shard.

        The fleet batch grows through the incremental
        :meth:`GraphBatch.append_instances` (O(k) structural builds); only
        the receiving shard is rebuilt.  Existing instances keep their
        iterates, duals, and per-edge penalties bit-for-bit.  ``rho`` /
        ``alpha`` (scalar or template-per-edge ``(E_t,)``; for mixed fleets
        scalar or one entry per newcomer) default to the construction-time
        values, so schedule drift on the running fleet does not leak into
        newcomers.  ``templates`` gives each newcomer's template when it
        differs from the fleet's (one per new instance) — the path that
        takes a homogeneous fleet heterogeneous.  The async variant's
        per-instance streams restart for the new layout (the
        ``FleetRandomizedBackend.rebind`` convention).
        """
        if self._closed:
            raise RuntimeError("solver is closed")
        old_B = self.batch_size
        old_templates = self.batch.templates
        self.batch = self.batch.append_instances(new_instances, templates=templates)
        new_ids = list(range(old_B, self.batch.batch_size))
        if self.batch.uniform:
            fresh = (
                self._fresh_edges(rho, self._fresh_rho, "rho"),
                self._fresh_edges(alpha, self._fresh_alpha, "alpha"),
            )
        else:
            if isinstance(self._fresh_rho, np.ndarray):
                # The fleet just went mixed: move the construction-time
                # defaults into the template-keyed table (whose values
                # hold the template — the strong ref keeps its id stable).
                t0 = old_templates[0]
                self._fresh_by_template.setdefault(
                    id(t0), (t0, self._fresh_rho, self._fresh_alpha)
                )
                self._fresh_rho = None
                self._fresh_alpha = None
            rho_rows = self._fresh_rows_mixed(
                rho, new_ids, 1, self._fresh_scalar_rho, "rho"
            )
            alpha_rows = self._fresh_rows_mixed(
                alpha, new_ids, 2, self._fresh_scalar_alpha, "alpha"
            )

            def fresh(g, _r=rho_rows, _a=alpha_rows):
                return _r[g], _a[g]
        owner = self._owner_map()
        target = int(np.argmin([sh.size for sh in self.shards]))
        rosters = [list(sh.ids) for sh in self.shards]
        rosters[target] = sorted(rosters[target] + new_ids)
        self._remap(
            rosters, lambda g: owner[g] if g < old_B else None, fresh=fresh
        )
        if self.tracer is not None:
            self.tracer.point(
                "grow",
                f"+{len(new_ids)} instances -> shard {target}",
                segment=self._iteration,
                instances=new_ids,
            )
        if self.variant == "async":
            self._reseed_plans()

    def remove_instances(self, drop) -> None:
        """Shrink the live fleet, dropping the given global instances.

        The fleet batch compacts (no re-replication); survivors are
        renumbered to their compacted global ids, rosters shed the dropped
        members, and shards left empty are dissolved (their worker stays
        in the pool for the next reshard).  Survivors keep their state
        bit-for-bit; async streams restart for the new layout.
        """
        if self._closed:
            raise RuntimeError("solver is closed")
        dropset = {int(i) for i in drop}
        old_B = self.batch_size
        owner = self._owner_map()
        self.batch = self.batch.remove_instances(dropset)  # validates ids
        old_to_new = {}
        pos = 0
        for g in range(old_B):
            if g not in dropset:
                old_to_new[g] = pos
                pos += 1
        new_to_old = {v: k for k, v in old_to_new.items()}
        self._progress = {
            old_to_new[g]: dq
            for g, dq in self._progress.items()
            if g in old_to_new
        }
        rosters = []
        for sh in self.shards:
            roster = [old_to_new[g] for g in sh.ids if g not in dropset]
            if roster:
                rosters.append(roster)
        self._remap(rosters, lambda g: owner[new_to_old[g]])
        if self.tracer is not None:
            self.tracer.point(
                "shrink",
                f"-{len(dropset)} instances",
                segment=self._iteration,
                instances=sorted(dropset),
            )
        if self.variant == "async":
            self._reseed_plans()

    def _fresh_edges(self, value, default: np.ndarray, name: str) -> np.ndarray:
        if value is None:
            return default
        arr = np.asarray(value, dtype=np.float64)
        if arr.ndim == 0:
            return np.full(self.batch.template.num_edges, float(arr))
        if arr.shape == (self.batch.template.num_edges,):
            return arr
        raise ValueError(
            f"fresh {name} must be scalar or "
            f"({self.batch.template.num_edges},), got shape {arr.shape}"
        )

    def _fresh_rows_mixed(
        self, value, new_ids, slot: int, scalar_fallback, name: str
    ) -> dict:
        """Fresh penalties for cold newcomers in a mixed-template fleet.

        Returns global id → scalar or per-edge row.  ``None`` falls back to
        the construction-time default of the newcomer's template (slot 1 =
        rho, slot 2 = alpha of the ``_fresh_by_template`` entries; the
        lookup re-checks ``entry[0] is t`` so a stale id can never alias a
        different template), then the scalar construction value; an unseen
        template with no scalar fallback demands an explicit ``{name}``.
        """
        out = {}
        if value is None:
            for g in new_ids:
                t = self.batch.templates[g]
                ent = self._fresh_by_template.get(id(t))
                if ent is not None and ent[0] is t:
                    out[g] = ent[slot]
                elif scalar_fallback is not None:
                    out[g] = scalar_fallback
                else:
                    raise ValueError(
                        f"no default {name} for new instance {g}'s template "
                        f"(|F|={t.num_factors}, z={t.z_size}): the fleet was "
                        f"not constructed with a scalar {name} and this "
                        f"template was not in the original packing; pass "
                        f"{name} explicitly"
                    )
            return out
        if isinstance(value, (int, float, np.floating, np.integer)) or (
            isinstance(value, np.ndarray) and value.ndim == 0
        ):
            for g in new_ids:
                out[g] = float(value)
            return out
        seq = value if isinstance(value, (list, tuple)) else list(value)
        if len(seq) != len(new_ids):
            raise ValueError(
                f"fresh {name} for a mixed-template fleet must be scalar or "
                f"a length-{len(new_ids)} sequence (one entry per new "
                f"instance, scalar or per-edge row); got length {len(seq)}"
            )
        for g, entry in zip(new_ids, seq):
            row = np.asarray(entry, dtype=np.float64)
            e_g = self.batch.templates[g].num_edges
            if row.ndim == 0:
                out[g] = float(row)
            elif row.shape == (e_g,):
                out[g] = row
            else:
                raise ValueError(
                    f"fresh {name} for new instance {g} has shape "
                    f"{row.shape}; its template expects a scalar or ({e_g},)"
                )
        return out

    # ------------------------------------------------------------------ #
    # Segment-boundary hooks: the primitives :meth:`solve_batch` composes
    # its outer loop from, public so external drivers (the service layer's
    # admission/eviction loop in :mod:`repro.core.service`) can run the
    # identical math between their own segments.
    # ------------------------------------------------------------------ #
    def _fleet_residuals(
        self, z_prev_rows: np.ndarray, eps_abs: float, eps_rel: float
    ) -> list[Residuals]:
        """Per-instance residuals in *global* fleet order.

        ``z_prev_rows`` is the pre-sweep iterate as per-instance ``(B,
        z_size)`` rows (:meth:`split_z`) — keyed by global id rather than
        shard position, because a failover migration inside :meth:`_run_all`
        can change the shard layout between capture and use.
        """
        out: list[Residuals | None] = [None] * self.batch_size
        for sh in self.shards:
            z_prev = sh.batch.pack_z(z_prev_rows[sh.ids])
            res = per_instance_residuals(sh.batch, sh.state, z_prev, eps_abs, eps_rel)
            for p, g in enumerate(sh.ids):
                out[g] = res[p]
        if self.steal_policy == "predictive":
            # Every convergence check — solve_batch's or an external
            # driver's residuals() call (the service loop) — feeds the
            # per-instance decay histories the predictive stealer fits.
            for g, r in enumerate(out):
                self._note_progress(g, r)
        return out

    def residuals(
        self,
        z_prev_rows: np.ndarray,
        eps_abs: float = 1e-6,
        eps_rel: float = 1e-4,
    ) -> list[Residuals]:
        """Per-instance residuals of the fleet iterate, in global order.

        ``z_prev_rows`` is the pre-sweep iterate captured with
        :meth:`split_z` before the last sweep of a segment — the same
        capture :meth:`solve_batch` performs, so an external segment loop
        (run ``check_every - 1`` sweeps, capture, run 1, check) reproduces
        the solve loop's stopping decisions bit-for-bit.
        """
        if not self.batch.uniform:
            if not isinstance(z_prev_rows, (np.ndarray, list, tuple)):
                z_prev_rows = list(z_prev_rows)
            if len(z_prev_rows) != self.batch_size:
                raise ValueError(
                    f"z_prev_rows must have one row per instance "
                    f"({self.batch_size}); got {len(z_prev_rows)}"
                )
            rows = np.empty(self.batch_size, dtype=object)
            for i in range(self.batch_size):
                rows[i] = np.asarray(z_prev_rows[i], dtype=np.float64)
            return self._fleet_residuals(rows, eps_abs, eps_rel)
        z_prev_rows = np.asarray(z_prev_rows, dtype=np.float64)
        zt = self.batch.template.z_size
        if z_prev_rows.shape != (self.batch_size, zt):
            raise ValueError(
                f"z_prev_rows must have shape ({self.batch_size}, {zt}), "
                f"got {z_prev_rows.shape}"
            )
        return self._fleet_residuals(z_prev_rows, eps_abs, eps_rel)

    def adapt_rho(self, schedules, residuals) -> None:
        """Run per-instance ρ-schedules shard-locally (the solve-loop step).

        ``schedules`` maps global instance id → its (deep-copied, stateful)
        :class:`~repro.core.parameters.PenaltySchedule`; instances absent
        from the mapping (converged/frozen ones) keep scale 1 and their ρ
        and dual untouched.  ``residuals`` is the global-order list from
        :meth:`residuals`.  Identical math to the adaptation pass inside
        :meth:`solve_batch` — which delegates here.
        """
        for sh in self.shards:
            scale = np.ones(sh.batch.graph.num_edges)
            changed = False
            for p, g in enumerate(sh.ids):
                sched = schedules.get(g)
                if sched is None:
                    continue
                s = float(sched.rho_scale(sh.state, residuals[g]))
                if s != 1.0:
                    scale[sh.batch.edge_index[p]] = s
                    changed = True
            if changed:
                apply_rho_scale(sh.state, scale)

    def warm_start_instance(self, instance: int, z_row: np.ndarray) -> None:
        """Warm-start one live instance from a template-layout z vector.

        The per-instance analog of
        :meth:`~repro.core.batched.BatchedSolver.warm_start_pool`: sets the
        instance's z, broadcasts it along its edges into x/m/n, and zeroes
        its dual u — touching *only* that instance's slots, wherever its
        shard currently holds them, so the rest of the fleet sweeps on
        undisturbed.  (``ADMMState.init_from_z`` would reset the whole
        shard; this is the admission path for warm-started service
        requests.)
        """
        g = int(instance)
        s, p = self.owner_of(g)
        template = self.batch.templates[g]
        z_row = np.asarray(z_row, dtype=np.float64)
        if z_row.shape != (template.z_size,):
            raise ValueError(
                f"z_row must have shape ({template.z_size},), got {z_row.shape}"
            )
        sh = self.shards[s]
        slots = sh.batch.slot_index[p]
        broadcast = z_row[template.flat_edge_to_z]
        for fam in ("x", "m", "n"):
            getattr(sh.state, fam)[slots] = broadcast
        sh.state.u[slots] = 0.0
        sh.state.z[sh.batch.z_slice(p)] = z_row
        self._progress.pop(g, None)  # restart the decay history

    def steal_pass(self, active) -> list[StealEvent]:
        """One auto-stealing pass from an activity mask (the solve-loop step).

        ``active`` is a ``(B,)`` boolean mask of non-converged instances;
        every shard whose active count fell below ``steal_threshold``
        steals from the heaviest shard, exactly as :meth:`solve_batch`
        does after each convergence check.  Under
        ``steal_policy="predictive"`` the trigger and cut instead compare
        cost-weighted loads (``edge_size × projected sweeps``, fitted from
        the decay histories the convergence checks feed — external drivers
        get this for free because :meth:`residuals` records them too).
        Pure state motion either way — results stay bit-identical.
        Returns the executed steals.
        """
        if self._closed:
            raise RuntimeError("solver is closed")
        active = np.asarray(active, dtype=bool)
        if active.shape != (self.batch_size,):
            raise ValueError(
                f"active must have shape ({self.batch_size},), got {active.shape}"
            )
        return self._auto_steal(active)

    def solve_batch(
        self,
        max_iterations: int = 1000,
        eps_abs: float = 1e-6,
        eps_rel: float = 1e-4,
        check_every: int = 10,
        init: str = "keep",
        seed: int | None = None,
    ) -> list[ADMMResult]:
        """Iterate until every instance converges or the iteration cap.

        Same per-instance contract as :meth:`BatchedSolver.solve_batch`
        (results in global instance order, converged instances frozen out
        of the ρ-schedule but still sweeping), plus automatic work
        stealing: after every convergence check, shards whose active count
        fell below ``steal_threshold`` steal from the heaviest shard.

        The outer loop deliberately mirrors ``BatchedSolver.solve_batch`` /
        ``ShardedBatchedSolver.solve_batch`` (run/residual/ρ-apply are
        shard-local; the steal pass only moves state); behavioral changes
        must be made in all three — parity is pinned by
        ``tests/test_fleet_rebalancing.py``.
        """
        if max_iterations < 0:
            raise ValueError(f"max_iterations must be >= 0, got {max_iterations}")
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        self.initialize(init, seed=seed)
        B = self.batch_size
        schedules = [copy.deepcopy(self.schedule) for _ in range(B)]
        for s in schedules:
            s.reset()

        timers = KernelTimers()
        histories = [SolveHistory() for _ in range(B)]
        active = np.ones(B, dtype=bool)
        frozen_iterations = np.full(B, -1, dtype=np.int64)
        last_residuals: list[Residuals | None] = [None] * B
        rho_by_instance = self.rho_rows()
        tracer = self.tracer
        t0 = time.perf_counter()
        solve_t0 = monotonic_now()

        if self._iteration >= max_iterations:
            # No sweeps will run: residuals of the current iterate, computed
            # once, converged=False — the max_iterations=0 contract.
            res = self._fleet_residuals(self.split_z(), eps_abs, eps_rel)
            for i in range(B):
                histories[i].append(res[i], None, float(rho_by_instance[i].mean()))
                last_residuals[i] = res[i]

        while self._iteration < max_iterations:
            block = min(check_every, max_iterations - self._iteration)
            if block > 1:
                self._run_all(block - 1, timers)
            z_prev_rows = self.split_z()
            self._run_all(1, timers)
            res = self._fleet_residuals(z_prev_rows, eps_abs, eps_rel)
            rho_by_instance = self.rho_rows()
            for i in np.flatnonzero(active):
                last_residuals[i] = res[i]
                histories[i].append(res[i], None, float(rho_by_instance[i].mean()))
                if res[i].converged:
                    frozen_iterations[i] = self._iteration
                    active[i] = False
                    if tracer is not None:
                        tracer.point(
                            "freeze",
                            f"instance {i}",
                            segment=self._iteration,
                            instance=int(i),
                        )
            if not active.any():
                break
            # Per-instance ρ adaptation, applied shard-locally; frozen
            # instances keep scale 1 (their ρ and dual stay untouched).
            self.adapt_rho(
                {int(g): schedules[g] for g in np.flatnonzero(active)}, res
            )
            # Work stealing: shards starved of active instances take load
            # from the heaviest shard.  Pure state motion — per-instance
            # math is unchanged, so results stay bit-identical.
            self._auto_steal(active)

        wall = time.perf_counter() - t0
        if tracer is not None:
            tracer.add_span(
                "solve",
                f"rebalancing solve B={B}",
                solve_t0,
                monotonic_now(),
                segment=self._iteration,
                converged=int((frozen_iterations >= 0).sum()),
                steals=len(self.steal_log),
            )
        owner = self._owner_map()
        results: list[ADMMResult] = []
        for i in range(B):
            sh, p = owner[i]
            converged = frozen_iterations[i] >= 0
            results.append(
                ADMMResult(
                    solution=sh.batch.instance_solution(sh.state.z, p),
                    z=sh.state.z[sh.batch.z_slice(p)].copy(),
                    converged=bool(converged),
                    iterations=int(
                        frozen_iterations[i] if converged else self._iteration
                    ),
                    residuals=last_residuals[i],
                    history=histories[i],
                    timers=timers,
                    wall_time=wall,
                )
            )
        return results

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop workers and release their queues — idempotent, crash-safe.

        Live workers get a polite ``stop``; any that do not exit (hung in
        a sweep, or already dead with a clogged queue) are reaped with
        ``terminate()`` → ``kill()`` escalation, and queues are closed
        without joining feeder threads.  Safe to call repeatedly, after a
        crash, or mid-fault: it never hangs and never leaks zombies.
        """
        self._closed = True
        workers, self._workers = self._workers, []
        for w in workers:
            if w.proc is not None and w.proc.is_alive():
                try:
                    w.cmd_q.put(("stop",))
                except Exception:
                    pass
        for w in workers:
            reap_process(w.proc, timeout=self.policy.shutdown_timeout)
            w.proc = None
            close_queue(w.cmd_q)
            close_queue(w.done_q)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "RebalancingShardedSolver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"RebalancingShardedSolver(B={self.batch_size}, "
            f"shards={self.num_shards}, mode={self.mode}, "
            f"variant={self.variant}, steals={len(self.steal_log)})"
        )
