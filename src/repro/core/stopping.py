"""Stopping criteria for the ADMM loop ("while !stopping criteria do").

The paper runs "a fixed number of iterations, or [until] a desired accuracy
is achieved"; both forms are provided, plus composition.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.core.residuals import Residuals


class StoppingCriterion(abc.ABC):
    """Decides whether the iteration loop should stop.

    ``check`` is called after every residual evaluation; criteria that don't
    need residuals may ignore the argument.
    """

    @abc.abstractmethod
    def check(self, residuals: Residuals) -> bool:
        """Return True to stop."""

    def reset(self) -> None:
        """Clear internal state before a new solve (default: nothing)."""


@dataclass
class MaxIterations(StoppingCriterion):
    """Stop after a fixed iteration count (the paper's benchmark mode)."""

    max_iterations: int

    def __post_init__(self) -> None:
        if self.max_iterations < 0:
            raise ValueError(
                f"max_iterations must be non-negative, got {self.max_iterations}"
            )

    def check(self, residuals: Residuals) -> bool:
        return residuals.iteration >= self.max_iterations


class ResidualTolerance(StoppingCriterion):
    """Stop when both primal and dual residuals fall under their thresholds."""

    def check(self, residuals: Residuals) -> bool:
        return residuals.converged


class StallDetection(StoppingCriterion):
    """Stop when the primal residual has stopped improving.

    Guards long non-convex runs (e.g. packing) against spinning forever: if
    the best primal residual hasn't improved by ``rel_improvement`` over the
    last ``patience`` checks, stop.
    """

    def __init__(self, patience: int = 20, rel_improvement: float = 1e-3) -> None:
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.patience = patience
        self.rel_improvement = rel_improvement
        self._best = float("inf")
        self._since_best = 0

    def reset(self) -> None:
        self._best = float("inf")
        self._since_best = 0

    def check(self, residuals: Residuals) -> bool:
        if residuals.primal < self._best * (1.0 - self.rel_improvement):
            self._best = residuals.primal
            self._since_best = 0
            return False
        self._since_best += 1
        return self._since_best >= self.patience


class AnyOf(StoppingCriterion):
    """Stop when any sub-criterion fires (e.g. tolerance OR iteration cap)."""

    def __init__(self, *criteria: StoppingCriterion) -> None:
        if not criteria:
            raise ValueError("AnyOf needs at least one criterion")
        self.criteria = criteria

    def reset(self) -> None:
        for c in self.criteria:
            c.reset()

    def check(self, residuals: Residuals) -> bool:
        # Evaluate all (not short-circuit) so stateful criteria keep counting.
        fired = [c.check(residuals) for c in self.criteria]
        return any(fired)
