"""Primal/dual residuals and convergence thresholds for the factor-graph ADMM.

Adapted from Boyd et al. §3.3 to the message-passing form: the consensus
constraint is ``x(a,b) = z_b`` on every edge, so

* primal residual   ``r = x − z∘map``          (consensus violation)
* dual residual     ``s = ρ ⊙ (z∘map − z_prev∘map)``

with the usual absolute/relative stopping thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.state import ADMMState
from repro.graph.factor_graph import FactorGraph


@dataclass(frozen=True)
class Residuals:
    """Residual norms and their thresholds at one iteration."""

    primal: float
    dual: float
    eps_primal: float
    eps_dual: float
    iteration: int

    @property
    def converged(self) -> bool:
        return self.primal <= self.eps_primal and self.dual <= self.eps_dual

    def __str__(self) -> str:  # pragma: no cover - formatting convenience
        return (
            f"iter={self.iteration} primal={self.primal:.3e}/{self.eps_primal:.3e} "
            f"dual={self.dual:.3e}/{self.eps_dual:.3e}"
        )


def compute_residuals(
    graph: FactorGraph,
    state: ADMMState,
    z_prev: np.ndarray,
    eps_abs: float = 1e-6,
    eps_rel: float = 1e-4,
) -> Residuals:
    """Residual norms of the current iterate against the previous z.

    ``z_prev`` is the flat z array *before* the current iteration's z-update.
    """
    zmap = state.z[graph.flat_edge_to_z]
    primal_vec = state.x - zmap
    primal = float(np.linalg.norm(primal_vec))
    dual_vec = state.rho_slots * (zmap - z_prev[graph.flat_edge_to_z])
    dual = float(np.linalg.norm(dual_vec))
    sqrt_n = float(np.sqrt(max(graph.edge_size, 1)))
    eps_primal = sqrt_n * eps_abs + eps_rel * max(
        float(np.linalg.norm(state.x)), float(np.linalg.norm(zmap))
    )
    # In the scaled form the dual variable is ρ·u.
    eps_dual = sqrt_n * eps_abs + eps_rel * float(
        np.linalg.norm(state.rho_slots * state.u)
    )
    return Residuals(
        primal=primal,
        dual=dual,
        eps_primal=eps_primal,
        eps_dual=eps_dual,
        iteration=state.iteration,
    )


def consensus_violation(graph: FactorGraph, state: ADMMState) -> float:
    """Max-norm consensus violation ``max |x − z∘map|`` (a quick health check)."""
    if graph.edge_size == 0:
        return 0.0
    return float(np.max(np.abs(state.x - state.z[graph.flat_edge_to_z])))


def objective_value(graph: FactorGraph, state: ADMMState) -> float:
    """Σ_a f_a(z_∂a) evaluated at the consensus variable z.

    Uses each operator's optional :meth:`evaluate`; factors returning NaN
    (not implemented) are skipped.  Indicator factors contribute ``inf`` when
    violated, so a finite value certifies feasibility up to the operators'
    tolerances.
    """
    total = 0.0
    for a, spec in enumerate(graph.factors):
        zparts = [
            state.z[graph.var_slots(b)] for b in spec.variables
        ]
        val = spec.prox.evaluate(np.concatenate(zparts), spec.params)
        if val != val:  # NaN -> operator does not implement evaluate
            continue
        if val == float("inf"):
            return float("inf")
        total += val
    return total
