"""The user-facing ADMM driver tying graph, state, backend, and schedule.

Typical use::

    from repro import ADMMSolver
    from repro.backends import VectorizedBackend

    solver = ADMMSolver(graph, backend=VectorizedBackend(), rho=1.0)
    result = solver.solve(max_iterations=2000, eps_abs=1e-7, eps_rel=1e-5)
    w_star = result.solution          # one vector per variable node

The solver owns the outer loop (residual checks, stopping, penalty
schedules, history); backends own the inner loop (how the five kernels of
one iteration are scheduled onto compute resources).
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.core.diagnostics import ADMMResult, SolveHistory
from repro.core.parameters import ConstantPenalty, PenaltySchedule, apply_rho_scale
from repro.core.residuals import Residuals, compute_residuals, objective_value
from repro.core.state import ADMMState
from repro.core.stopping import AnyOf, MaxIterations, ResidualTolerance, StoppingCriterion
from repro.graph.factor_graph import FactorGraph
from repro.utils.timing import KernelTimers


class ADMMSolver:
    """Message-passing ADMM (Algorithm 2) over a factor graph.

    Parameters
    ----------
    graph:
        The factor graph to optimize over.
    backend:
        Execution backend; ``None`` selects the vectorized NumPy backend
        (the fine-grained-parallel engine).  Any object satisfying
        :class:`repro.backends.Backend` works.
    rho, alpha:
        Initial penalty / relaxation parameters (scalar or per-edge).
    schedule:
        Optional :class:`PenaltySchedule` adapting ρ between checks.
    record_objective:
        If True, evaluate Σ f_a(z) at every residual check (costs one pass
        over the factors; off by default, as in the paper's timing runs).
    """

    def __init__(
        self,
        graph: FactorGraph,
        backend=None,
        rho: float | np.ndarray = 1.0,
        alpha: float | np.ndarray = 1.0,
        schedule: PenaltySchedule | None = None,
        record_objective: bool = False,
    ) -> None:
        if backend is None:
            from repro.backends.vectorized import VectorizedBackend

            backend = VectorizedBackend()
        self.graph = graph
        self.backend = backend
        self.schedule = schedule if schedule is not None else ConstantPenalty()
        self.record_objective = record_objective
        self._validate_signatures()
        self.state = ADMMState(graph, rho=rho, alpha=alpha)
        self.backend.prepare(graph)

    def _validate_signatures(self) -> None:
        """Check every factor's variable dims against its operator signature."""
        for a, spec in enumerate(self.graph.factors):
            validate = getattr(spec.prox, "validate_dims", None)
            if validate is None:
                continue
            dims = tuple(
                int(self.graph.var_dims[b]) for b in spec.variables
            )
            try:
                validate(dims)
            except ValueError as err:
                raise ValueError(f"factor {a}: {err}") from err

    # ------------------------------------------------------------------ #
    def initialize(
        self,
        how: str = "zeros",
        low: float = 0.0,
        high: float = 1.0,
        seed: int | None = None,
    ) -> ADMMState:
        """(Re-)initialize the iterate: "zeros", "random", or "keep"."""
        if how == "zeros":
            self.state.init_zeros()
        elif how == "random":
            self.state.init_random(low, high, seed)
        elif how == "keep":
            pass
        else:
            raise ValueError(f"unknown init {how!r}; use zeros|random|keep")
        return self.state

    def warm_start(self, z_flat: np.ndarray) -> ADMMState:
        """Seed the iterate from a previous solution (real-time MPC style)."""
        return self.state.init_from_z(z_flat)

    # ------------------------------------------------------------------ #
    def iterate(self, iterations: int, timers: KernelTimers | None = None) -> None:
        """Run a fixed number of iterations without checks (benchmark mode)."""
        if iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {iterations}")
        if iterations:
            self.backend.run(self.graph, self.state, iterations, timers)

    def solve(
        self,
        max_iterations: int = 1000,
        eps_abs: float = 1e-6,
        eps_rel: float = 1e-4,
        check_every: int = 10,
        stopping: StoppingCriterion | None = None,
        callback: Callable[[ADMMState, Residuals], None] | None = None,
        init: str = "keep",
        seed: int | None = None,
    ) -> ADMMResult:
        """Iterate until convergence or the iteration cap.

        The loop runs in blocks of ``check_every`` iterations; after each
        block it computes exact residuals (the final iteration of the block
        is run separately so the dual residual sees one z-step), evaluates
        the stopping criterion, applies the penalty schedule, and invokes
        the callback.

        ``max_iterations=0`` is well-defined: no sweeps run, the residuals
        of the initial iterate are computed once (with a zero dual residual,
        as there is no previous z), ``converged`` is ``False``, and the
        history holds that single entry.
        """
        if max_iterations < 0:
            raise ValueError(f"max_iterations must be >= 0, got {max_iterations}")
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        self.initialize(init, seed=seed)
        criterion = stopping if stopping is not None else AnyOf(
            ResidualTolerance(), MaxIterations(max_iterations)
        )
        criterion.reset()
        self.schedule.reset()

        timers = KernelTimers()
        history = SolveHistory()
        state = self.state
        graph = self.graph
        residuals: Residuals | None = None
        converged = False
        t0 = time.perf_counter()

        if state.iteration >= max_iterations:
            # No sweeps will run (max_iterations == 0, or a kept iterate
            # already past the cap): residuals of the current iterate,
            # computed once, converged=False.
            residuals = compute_residuals(graph, state, state.z, eps_abs, eps_rel)
            obj = objective_value(graph, state) if self.record_objective else None
            history.append(residuals, obj, float(state.rho.mean()))

        while state.iteration < max_iterations:
            block = min(check_every, max_iterations - state.iteration)
            if block > 1:
                self.backend.run(graph, state, block - 1, timers)
            z_prev = state.z.copy()
            self.backend.run(graph, state, 1, timers)
            residuals = compute_residuals(graph, state, z_prev, eps_abs, eps_rel)
            obj = objective_value(graph, state) if self.record_objective else None
            history.append(residuals, obj, float(state.rho.mean()))
            if callback is not None:
                callback(state, residuals)
            if criterion.check(residuals):
                converged = residuals.converged
                break
            apply_rho_scale(state, self.schedule.rho_scale(state, residuals))

        wall = time.perf_counter() - t0
        return ADMMResult(
            solution=state.solution(),
            z=state.z.copy(),
            converged=converged,
            iterations=state.iteration,
            residuals=residuals,
            history=history,
            timers=timers,
            wall_time=wall,
        )

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release backend resources (worker pools)."""
        self.backend.close()

    def __enter__(self) -> "ADMMSolver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
