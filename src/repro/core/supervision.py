"""Worker supervision: liveness, restart policy, and the fault log.

The process-mode fleet solvers (:class:`repro.core.sharded.ShardedBatchedSolver`,
:class:`repro.core.rebalance.RebalancingShardedSolver`) fork one worker per
shard and wait for replies on result queues.  Before this module, a worker
that died mid-sweep (SIGKILL, OOM, segfault) was only noticed after a
hard-coded 5-second poll, and the solve then failed outright — losing every
in-flight instance.  The ROADMAP's cross-host item frames the fix: a dead
shard is *just an involuntary steal* onto a survivor, because the parent
holds the authoritative per-instance state and every sweep is deterministic
given (graph, state, masks).

This module centralizes the supervision primitives both solvers share:

* :class:`WorkerPolicy` — heartbeat period, silence budget, restart budget,
  and exponential backoff, in one validated knob object;
* :func:`heartbeat` — a worker-side context manager that emits periodic
  ``("heartbeat", t)`` messages on the result queue while a sweep runs, so
  the parent can tell *slow* from *hung*;
* :func:`collect_reply` — the parent-side wait loop: polls the result
  queue at ``poll_interval`` granularity, checks ``proc.is_alive()`` on
  every miss (a SIGKILLed worker surfaces within one poll, never by
  hanging), treats heartbeats as liveness, and classifies failures into
  :class:`WorkerDied` / :class:`WorkerUnresponsive` /
  :class:`WorkerProtocolError` (corrupt or unpicklable messages);
* :class:`FaultLog` — the structured mirror of PR 5's ``steal_log``: every
  detected crash, restart, failover, and roster migration is recorded as a
  :class:`FaultEvent`, so recovery is observable instead of silent;
* :func:`reap_process` / :func:`close_queue` — shutdown hardening: join,
  then ``terminate()``, then escalate to ``kill()``; close queues without
  risking a feeder-thread hang.

Recovery *policy* (replay on a fresh worker, failover to a survivor or the
parent) lives in the solvers; this module only detects, classifies, and
records.  The parent always holds the authoritative per-instance state,
so replay works the same on both rebalancing transports — on the
zero-copy shared transport the replacement worker re-inherits the dead
worker's shared-memory mirrors (the parent keeps the buffer handles
alive across the restart) and the authoritative state is re-pushed
through shared memory, never re-pickled onto the command queue.
"""

from __future__ import annotations

import queue
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

HEARTBEAT = "heartbeat"

#: FaultEvent kinds, in the order a failover typically emits them.
FAULT_KINDS = ("crash", "restart", "failover", "migration")


class WorkerFault(RuntimeError):
    """Base class: a worker failed in a way that is *not* a sweep error.

    Sweep exceptions relayed by a live worker (``("error", msg)`` replies)
    stay plain ``RuntimeError`` — they are deterministic and would recur on
    replay.  ``WorkerFault`` subclasses mark the recoverable machinery
    failures: the sweep itself is fine, only the executor was lost.
    """


class WorkerDied(WorkerFault):
    """The worker process exited (killed, segfaulted, OOMed) mid-command."""


class WorkerUnresponsive(WorkerFault):
    """The worker is alive but sent no heartbeat or reply for wait_timeout."""


class WorkerProtocolError(WorkerFault):
    """The result queue delivered a corrupt, unpicklable, or alien message."""


@dataclass(frozen=True)
class WorkerPolicy:
    """Supervision knobs for process-mode shard workers.

    ``heartbeat_interval``
        worker-side period of liveness messages while a sweep runs
        (``<= 0`` disables heartbeats);
    ``wait_timeout``
        parent-side silence budget: a worker that is alive but produced no
        heartbeat or reply for this long is declared
        :class:`WorkerUnresponsive` (``None`` waits forever — death is
        still detected by liveness polls);
    ``poll_interval``
        granularity of the parent's queue polls; ``proc.is_alive()`` is
        checked on every empty poll, so a dead worker is detected within
        roughly one ``poll_interval`` — and always within one
        ``wait_timeout``;
    ``max_restarts``
        replacement workers to try per incident before failing over;
    ``backoff`` / ``backoff_factor``
        exponential restart backoff: attempt ``a`` sleeps
        ``backoff * backoff_factor**a`` seconds first;
    ``shutdown_timeout``
        per-stage budget of :func:`reap_process` during ``close()``: how
        long to wait on join before escalating terminate → kill.  A
        latency-sensitive drain path (e.g. a service evicting its fleet)
        can lower this; a worker mid-sweep gets more grace by raising it.
    """

    heartbeat_interval: float = 0.5
    wait_timeout: float | None = 30.0
    poll_interval: float = 0.25
    max_restarts: int = 2
    backoff: float = 0.05
    backoff_factor: float = 2.0
    shutdown_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.wait_timeout is not None and self.wait_timeout <= 0:
            raise ValueError(
                f"wait_timeout must be positive or None, got {self.wait_timeout}"
            )
        if self.poll_interval <= 0:
            raise ValueError(
                f"poll_interval must be positive, got {self.poll_interval}"
            )
        if (
            self.wait_timeout is not None
            and self.poll_interval > self.wait_timeout
        ):
            raise ValueError(
                f"poll_interval ({self.poll_interval}) must not exceed "
                f"wait_timeout ({self.wait_timeout})"
            )
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.shutdown_timeout <= 0:
            raise ValueError(
                f"shutdown_timeout must be positive, got {self.shutdown_timeout}"
            )

    def restart_delay(self, attempt: int) -> float:
        """Backoff before restart ``attempt`` (0-based): exponential."""
        return self.backoff * self.backoff_factor**attempt


@dataclass(frozen=True)
class FaultEvent:
    """One supervision event: a detected crash, a restart, or a migration.

    ``kind``
        one of :data:`FAULT_KINDS` — ``"crash"`` (worker declared dead /
        unresponsive / corrupt), ``"restart"`` (replacement worker forked),
        ``"failover"`` (segment re-executed off the dead worker, e.g. in
        the parent), ``"migration"`` (roster moved to survivors — the
        involuntary steal);
    ``iteration``
        fleet sweep count when the event was recorded;
    ``shard``
        index of the shard whose worker faulted (position at event time);
    ``detail``
        human-readable cause / action;
    ``instances``
        global instance ids moved, for ``"migration"`` events.
    """

    kind: str
    iteration: int
    shard: int
    detail: str
    instances: tuple[int, ...] = ()


@dataclass
class FaultLog:
    """Structured record of every supervision event (mirror of ``steal_log``).

    Append-only; never consulted by the solver's control flow, so replaying
    a recovered solve produces the same math with a different log.

    ``tracer`` (a :class:`repro.obs.Tracer`, duck-typed) mirrors every
    recorded event onto the fleet trace timeline as a point event of the
    same kind, so fault history shows up interleaved with segments and
    steals; the log itself stays the stable API.
    """

    events: list[FaultEvent] = field(default_factory=list)
    tracer: object | None = field(default=None, repr=False, compare=False)

    def record(
        self,
        kind: str,
        iteration: int,
        shard: int,
        detail: str,
        instances: tuple[int, ...] = (),
    ) -> FaultEvent:
        if kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {kind!r}")
        event = FaultEvent(kind, int(iteration), int(shard), detail, instances)
        self.events.append(event)
        if self.tracer is not None:
            data = {"detail": detail}
            if instances:
                data["instances"] = list(instances)
            self.tracer.point(
                kind,
                f"shard {event.shard}",
                worker=event.shard,
                segment=event.iteration,
                **data,
            )
        return event

    def by_kind(self, kind: str) -> list[FaultEvent]:
        return [e for e in self.events if e.kind == kind]

    @property
    def crashes(self) -> list[FaultEvent]:
        return self.by_kind("crash")

    @property
    def restarts(self) -> list[FaultEvent]:
        return self.by_kind("restart")

    @property
    def failovers(self) -> list[FaultEvent]:
        return self.by_kind("failover")

    @property
    def migrations(self) -> list[FaultEvent]:
        return self.by_kind("migration")

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def summary(self) -> str:
        counts = {k: len(self.by_kind(k)) for k in FAULT_KINDS}
        body = ", ".join(f"{k}={v}" for k, v in counts.items())
        return f"FaultLog({body})"


@contextmanager
def heartbeat(done_q, interval: float | None):
    """Worker-side: emit ``(HEARTBEAT, t)`` on ``done_q`` every ``interval``.

    Wrap the sweep execution with this so the parent sees liveness during
    long compute (NumPy releases the GIL, so the beat thread runs).  The
    thread is stopped before the reply is posted, bounding stray beats; the
    parent skips any that straggle.  ``interval`` of ``None`` / ``<= 0``
    disables the thread entirely.
    """
    if interval is None or interval <= 0:
        yield
        return
    stop = threading.Event()

    def _beat() -> None:
        while not stop.wait(interval):
            try:
                done_q.put((HEARTBEAT, time.monotonic()))
            except Exception:  # queue closed mid-shutdown: just stop beating
                return

    thread = threading.Thread(
        target=_beat, name="paradmm-heartbeat", daemon=True
    )
    thread.start()
    try:
        yield
    finally:
        stop.set()
        thread.join(timeout=interval + 1.0)


def collect_reply(done_q, proc, policy: WorkerPolicy, describe: str):
    """Parent-side: wait for one ``(status, payload)`` reply with supervision.

    Polls at ``policy.poll_interval`` so liveness is checked continuously:

    * worker exited → :class:`WorkerDied` within ~one poll;
    * alive but silent past ``policy.wait_timeout`` (heartbeats reset the
      clock) → :class:`WorkerUnresponsive`;
    * unpicklable / malformed / unknown-status message →
      :class:`WorkerProtocolError`.

    Heartbeats are consumed and skipped.  Returns ``(status, payload)``
    where ``status`` is ``"ok"`` or ``"error"`` — interpreting ``"error"``
    (a relayed sweep exception) is the caller's job.
    """
    last_signal = time.monotonic()
    while True:
        try:
            msg = done_q.get(timeout=policy.poll_interval)
        except queue.Empty:
            if proc is not None and not proc.is_alive():
                raise WorkerDied(
                    f"{describe}: worker died (exitcode "
                    f"{proc.exitcode}) without reporting a result"
                ) from None
            silence = time.monotonic() - last_signal
            if policy.wait_timeout is not None and silence > policy.wait_timeout:
                raise WorkerUnresponsive(
                    f"{describe}: worker alive but silent for "
                    f"{silence:.1f}s (wait_timeout={policy.wait_timeout}s)"
                ) from None
            continue
        except Exception as err:
            # The queue delivered bytes that failed to unpickle — a corrupt
            # payload.  The worker may be fine, but this command's reply is
            # unrecoverable: classify for the caller's replay logic.
            raise WorkerProtocolError(
                f"{describe}: corrupt message on result queue "
                f"({type(err).__name__}: {err})"
            ) from err
        if not (isinstance(msg, tuple) and len(msg) == 2):
            raise WorkerProtocolError(
                f"{describe}: malformed message {msg!r} on result queue"
            )
        status, payload = msg
        if status == HEARTBEAT:
            last_signal = time.monotonic()
            continue
        if status not in ("ok", "error"):
            raise WorkerProtocolError(
                f"{describe}: unknown reply status {status!r}"
            )
        return status, payload


def reap_process(proc, timeout: float = 5.0, grace: bool = True) -> None:
    """Make sure a worker process is gone, escalating as needed.

    ``grace=True`` first joins (for workers that were told to stop), then
    ``terminate()`` (SIGTERM), then ``kill()`` (SIGKILL) — a worker stuck
    in a sweep or ignoring SIGTERM can never outlive its solver.  Safe on
    processes that are already dead or were never started.
    """
    if proc is None:
        return
    try:
        if grace:
            proc.join(timeout=timeout)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=timeout)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=timeout)
    except ValueError:  # pragma: no cover - already closed process object
        pass


def close_queue(q) -> None:
    """Close an mp.Queue without risking a feeder-thread join hang."""
    if q is None:
        return
    try:
        q.cancel_join_thread()
    except Exception:
        pass
    try:
        q.close()
    except Exception:
        pass
