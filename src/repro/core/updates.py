"""The five update kernels of Algorithm 2, defined once, scheduled anywhere.

Every backend executes the same math from this module:

* **per-element** functions (`x_update_factor`, `m_update_edge`, …) — the
  reference semantics, one graph element at a time.  The serial backend is a
  plain Python loop over them (the "serial optimized C" role); the process
  backend partitions the element ranges over workers.
* **whole-array** functions (`x_update`, `m_update`, …) — vectorized NumPy
  forms, each a single batched operation over all elements of a kind.  This
  is the CUDA-kernel analog used by the vectorized backend.
* **range** functions (`m_update_range`, …) — the whole-array forms
  restricted to a contiguous chunk, used by the threaded backend (the
  OpenMP ``parallel for`` analog: one chunk per worker, barrier between
  kernels).

Update math (paper Algorithm 2):

    x(a,∂a) ← Prox_{f_a, ρ}(n(a,∂a))          for each factor a
    m(a,b)  ← x(a,b) + u(a,b)                 for each edge
    z_b     ← Σ_∂b ρ m / Σ_∂b ρ               for each variable b
    u(a,b)  ← u(a,b) + α (x(a,b) − z_b)       for each edge
    n(a,b)  ← z_b − u(a,b)                    for each edge
"""

from __future__ import annotations

import numpy as np

from repro.graph.factor_graph import FactorGraph, FactorGroup
from repro.core.state import ADMMState

# --------------------------------------------------------------------- #
# Whole-array (vectorized) kernels                                       #
# --------------------------------------------------------------------- #


def x_update(graph: FactorGraph, state: ADMMState) -> None:
    """x-update over every factor, one ``prox_batch`` call per group."""
    for g in graph.groups:
        x_update_group(graph, state, g)


def x_update_group(graph: FactorGraph, state: ADMMState, group: FactorGroup) -> None:
    """x-update for one factor group (a single batched prox evaluation)."""
    n_rows = group.take_slots(state.n)
    rho_rows = group.take_edge_values(state.rho)
    x_rows = group.prox.prox_batch(n_rows, rho_rows, group.params)
    x_rows = np.asarray(x_rows, dtype=np.float64)
    if x_rows.shape != (group.size, group.slot_count):
        raise ValueError(
            f"prox_batch of {getattr(group.prox, 'name', group.prox)} returned "
            f"shape {x_rows.shape}, expected {(group.size, group.slot_count)}"
        )
    group.put_slots(state.x, x_rows)


def m_update(graph: FactorGraph, state: ADMMState) -> None:
    """m ← x + u, in place over the whole edge array."""
    np.add(state.x, state.u, out=state.m)


def z_update(graph: FactorGraph, state: ADMMState) -> None:
    """z_b ← ρ-weighted average of incoming m messages (two sparse matvecs).

    Isolated variables (degree 0) keep their previous value.
    """
    num = graph.scatter_matrix @ (state.rho_slots * state.m)
    den = state.rho_den
    np.divide(num, den, out=state.z, where=den > 0.0)


def u_update(graph: FactorGraph, state: ADMMState) -> None:
    """u ← u + α (x − z_b), gathering z through the edge→z map."""
    state.u += state.alpha_slots * (state.x - state.z[graph.flat_edge_to_z])


def n_update(graph: FactorGraph, state: ADMMState) -> None:
    """n ← z_b − u, gathering z through the edge→z map."""
    np.subtract(state.z[graph.flat_edge_to_z], state.u, out=state.n)


#: The five kernels in Algorithm-2 execution order.
VECTOR_KERNELS = (
    ("x", x_update),
    ("m", m_update),
    ("z", z_update),
    ("u", u_update),
    ("n", n_update),
)


def run_iteration(graph: FactorGraph, state: ADMMState) -> None:
    """One full Algorithm-2 sweep with the vectorized kernels."""
    for _, kernel in VECTOR_KERNELS:
        kernel(graph, state)
    state.iteration += 1


def run_iteration_timed(graph: FactorGraph, state: ADMMState, timers) -> None:
    """One vectorized sweep accumulating per-kernel time into ``timers``.

    Identical math to :func:`run_iteration` — kernels run in the same
    order on the same arrays — so timed and untimed sweeps produce
    bit-identical iterates.  ``timers`` is a
    :class:`repro.utils.timing.KernelTimers` (or anything indexable by
    update kind yielding context managers).
    """
    for kind, kernel in VECTOR_KERNELS:
        with timers[kind]:
            kernel(graph, state)
    state.iteration += 1


# --------------------------------------------------------------------- #
# Per-element (reference) kernels                                        #
# --------------------------------------------------------------------- #


def x_update_factor(graph: FactorGraph, state: ADMMState, a: int) -> None:
    """x-update of a single factor ``a`` via the scalar prox path."""
    spec = graph.factors[a]
    sl = graph.factor_slots(a)
    esl = graph.factor_edges(a)
    x = spec.prox.prox(state.n[sl], state.rho[esl], spec.params)
    x = np.asarray(x, dtype=np.float64)
    expected = sl.stop - sl.start
    if x.shape != (expected,):
        raise ValueError(
            f"prox of factor {a} returned shape {x.shape}, expected ({expected},)"
        )
    state.x[sl] = x


def m_update_edge(graph: FactorGraph, state: ADMMState, e: int) -> None:
    """m-update of a single edge ``e``."""
    sl = graph.edge_slots(e)
    state.m[sl] = state.x[sl] + state.u[sl]


def z_update_var(graph: FactorGraph, state: ADMMState, b: int) -> None:
    """z-update of a single variable ``b`` (weighted average over ∂b)."""
    edges = graph.edges_of_var(b)
    if edges.size == 0:
        return
    zsl = graph.var_slots(b)
    num = np.zeros(zsl.stop - zsl.start)
    den = 0.0
    for e in edges:
        sl = graph.edge_slots(e)
        num += state.rho[e] * state.m[sl]
        den += state.rho[e]
    state.z[zsl] = num / den


def u_update_edge(graph: FactorGraph, state: ADMMState, e: int) -> None:
    """u-update of a single edge ``e``."""
    sl = graph.edge_slots(e)
    b = graph.edge_var[e]
    state.u[sl] += state.alpha[e] * (state.x[sl] - state.z[graph.var_slots(b)])


def n_update_edge(graph: FactorGraph, state: ADMMState, e: int) -> None:
    """n-update of a single edge ``e``."""
    sl = graph.edge_slots(e)
    b = graph.edge_var[e]
    state.n[sl] = state.z[graph.var_slots(b)] - state.u[sl]


def run_iteration_serial(graph: FactorGraph, state: ADMMState) -> None:
    """One full Algorithm-2 sweep, element by element (reference semantics)."""
    for a in range(graph.num_factors):
        x_update_factor(graph, state, a)
    for e in range(graph.num_edges):
        m_update_edge(graph, state, e)
    for b in range(graph.num_vars):
        z_update_var(graph, state, b)
    for e in range(graph.num_edges):
        u_update_edge(graph, state, e)
    for e in range(graph.num_edges):
        n_update_edge(graph, state, e)
    state.iteration += 1


# --------------------------------------------------------------------- #
# Range (chunked) kernels for the threaded backend                       #
# --------------------------------------------------------------------- #


def x_update_group_range(
    graph: FactorGraph,
    state: ADMMState,
    group: FactorGroup,
    r0: int,
    r1: int,
) -> None:
    """x-update of rows [r0, r1) of one factor group."""
    if r0 >= r1:
        return
    if group.contiguous:
        L = group.slot_count
        s0 = group.slot_start + r0 * L
        s1 = group.slot_start + r1 * L
        n_rows = state.n[s0:s1].reshape(r1 - r0, L)
    else:
        n_rows = state.n[group.gather_slots[r0:r1]]
    rho_rows = state.rho[group.gather_edges[r0:r1]]
    params = {k: v[r0:r1] for k, v in group.params.items()}
    x_rows = np.asarray(
        group.prox.prox_batch(n_rows, rho_rows, params), dtype=np.float64
    )
    if group.contiguous:
        state.x[s0:s1] = x_rows.reshape(-1)
    else:
        state.x[group.gather_slots[r0:r1].reshape(-1)] = x_rows.reshape(-1)


def m_update_range(graph: FactorGraph, state: ADMMState, s0: int, s1: int) -> None:
    """m-update restricted to flat slots [s0, s1)."""
    np.add(state.x[s0:s1], state.u[s0:s1], out=state.m[s0:s1])


def weighted_m_range(
    graph: FactorGraph, state: ADMMState, out: np.ndarray, s0: int, s1: int
) -> None:
    """Scratch stage of the chunked z-update: out[s0:s1] = ρ ⊙ m."""
    np.multiply(state.rho_slots[s0:s1], state.m[s0:s1], out=out[s0:s1])


def z_update_range(
    graph: FactorGraph,
    state: ADMMState,
    weighted: np.ndarray,
    z0: int,
    z1: int,
) -> None:
    """z-update restricted to z slots [z0, z1) (CSR row-slice matvec)."""
    if z0 >= z1:
        return
    num = graph.scatter_matrix[z0:z1] @ weighted
    den = state.rho_den[z0:z1]
    np.divide(num, den, out=state.z[z0:z1], where=den > 0.0)


def u_update_range(graph: FactorGraph, state: ADMMState, s0: int, s1: int) -> None:
    """u-update restricted to flat slots [s0, s1)."""
    zmap = graph.flat_edge_to_z[s0:s1]
    state.u[s0:s1] += state.alpha_slots[s0:s1] * (state.x[s0:s1] - state.z[zmap])


def n_update_range(graph: FactorGraph, state: ADMMState, s0: int, s1: int) -> None:
    """n-update restricted to flat slots [s0, s1)."""
    zmap = graph.flat_edge_to_z[s0:s1]
    np.subtract(state.z[zmap], state.u[s0:s1], out=state.n[s0:s1])
