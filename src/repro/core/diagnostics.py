"""Solve-time diagnostics: residual/objective history and kernel timing."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.residuals import Residuals
from repro.utils.timing import KernelTimers


@dataclass
class SolveHistory:
    """Time series recorded during a solve (one entry per residual check)."""

    iterations: list[int] = field(default_factory=list)
    primal: list[float] = field(default_factory=list)
    dual: list[float] = field(default_factory=list)
    objective: list[float] = field(default_factory=list)
    rho: list[float] = field(default_factory=list)

    def append(
        self, residuals: Residuals, objective: float | None, rho_mean: float
    ) -> None:
        self.iterations.append(residuals.iteration)
        self.primal.append(residuals.primal)
        self.dual.append(residuals.dual)
        # A check without an objective still consumes a row: every series
        # stays index-aligned with `iterations` (nan marks "not recorded").
        self.objective.append(
            float("nan") if objective is None else objective
        )
        self.rho.append(rho_mean)

    def __len__(self) -> int:
        return len(self.iterations)

    def primal_array(self) -> np.ndarray:
        return np.asarray(self.primal)

    def dual_array(self) -> np.ndarray:
        return np.asarray(self.dual)


@dataclass
class ADMMResult:
    """Outcome of one :meth:`ADMMSolver.solve` call."""

    solution: list[np.ndarray]
    z: np.ndarray
    converged: bool
    iterations: int
    residuals: Residuals | None
    history: SolveHistory
    timers: KernelTimers
    wall_time: float

    def variable(self, b: int) -> np.ndarray:
        """Solution value of variable node ``b``."""
        return self.solution[b]

    def summary(self) -> str:
        status = "converged" if self.converged else "max-iterations"
        lines = [
            f"ADMM {status} after {self.iterations} iterations "
            f"({self.wall_time:.3f}s wall)",
        ]
        if self.residuals is not None:
            lines.append(f"  residuals: {self.residuals}")
        lines.append(f"  kernel time: {self.timers.summary()}")
        return "\n".join(lines)
