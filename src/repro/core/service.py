"""Fleet-as-a-service: a streaming solve daemon over a live elastic fleet.

Every solver below this layer is batch-mode — a caller builds one
:class:`~repro.graph.batch.GraphBatch` and owns the whole fleet for the
duration of one ``solve_batch``.  :class:`FleetService` is the ingress
layer the ROADMAP's "millions of users" north star implies: a long-lived
daemon that

* **accepts solve requests** (:meth:`FleetService.submit`: per-factor
  parameter overrides in the :func:`~repro.graph.batch.replicate_graph`
  form, an optional warm-start z vector, a per-request iteration cap) on
  an input queue;
* **admission-batches** them into a live
  :class:`~repro.core.rebalance.RebalancingShardedSolver` fleet under a
  configurable latency window — pending requests are appended between
  sweep segments through the O(k) ``add_instances`` path, at every
  ``admit_every``-th segment boundary, up to ``max_batch`` per admission;
* **evicts and returns** each instance the moment its stopping mask fires
  (``remove_instances``; survivors' state is carried bit-for-bit), or when
  its iteration cap is reached;
* **reports per-request latency** (p50/p95/p99) and sustained
  instances/sec throughput (:meth:`FleetService.stats`) instead of one
  wall-clock number.

The correctness contract that makes this more than plumbing: the service
drives the *same* segment loop as ``solve_batch`` (``check_every - 1``
sweeps, capture ``z_prev``, one sweep, per-instance residual check,
per-instance ρ-schedules applied shard-locally) through the solver's
public segment-boundary hooks, and admission/eviction move state through
the batch index maps only — so **every request's returned iterate is
bit-identical to a solo** :class:`~repro.core.batched.BatchedSolver`
**solve of that instance** with the same ``check_every``, no matter what
the fleet around it was doing (admissions, evictions, steals, reshards,
worker crashes).  Pinned by ``tests/test_fleet_service.py``.

Two scheduling consequences worth knowing:

* a request admitted at a segment boundary is age-aligned with the
  segment grid, so its convergence checks land at the same sweep counts
  as a solo solve with the same ``check_every``;
* per-request ``max_iterations`` is rounded **up** to the next multiple
  of ``check_every`` (the fleet cannot run a short segment for one
  instance while others need a full one) — exactly the iterate a solo
  ``solve_batch`` with the rounded cap returns.

The ``async`` randomized variant is rejected: elastic resizes reseed its
per-instance streams, so per-request trajectories would depend on the
admission history — breaking the solo-equivalence contract this service
is built on.

Traffic generation and replay (seeded Poisson / bursty / adversarial
arrival processes, open- and closed-loop) live in
:mod:`repro.testing.traffic`; tolerance-banded per-host performance
baselines in :mod:`repro.bench.baseline`; the CLI front end is
``repro-bench serve``.
"""

from __future__ import annotations

import copy
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.diagnostics import ADMMResult, SolveHistory
from repro.core.parameters import ConstantPenalty, PenaltySchedule
from repro.core.rebalance import (
    STEAL_POLICIES,
    TRANSPORTS,
    RebalancingShardedSolver,
)
from repro.core.residuals import Residuals
from repro.core.supervision import WorkerPolicy
from repro.graph.batch import pack_graphs, replicate_graph
from repro.graph.factor_graph import FactorGraph
from repro.obs.events import default_tracer
from repro.utils.timing import KernelTimers


@dataclass
class SolveRequest:
    """One queued solve: parameters, optional warm start, per-request cap.

    ``params`` is the per-factor override mapping of
    :func:`~repro.graph.batch.replicate_graph` (``{factor_id: {name:
    value}}``; empty = template parameters).  ``warm_start`` is a
    template-layout z vector seeding the instance on admission
    (broadcast to x/m/n, dual zeroed — the real-time MPC pattern).
    ``max_iterations`` of ``None`` falls back to the service default.
    ``template`` is the request's own factor graph (``None`` = the
    service default template); requests with different templates pack
    into one mixed-family fleet.
    """

    request_id: int
    params: dict = field(default_factory=dict)
    warm_start: np.ndarray | None = None
    max_iterations: int | None = None
    submit_time: float = 0.0
    submit_segment: int = 0
    template: FactorGraph | None = None


@dataclass
class RequestResult:
    """One completed request: its solo-equivalent result plus latency.

    ``result`` is the per-instance :class:`ADMMResult` (z bit-identical to
    the solo solve); ``latency`` is wall-clock submit → completion;
    ``wait_segments`` counts segments spent queued before admission and
    ``sweeps`` the ADMM iterations executed in the fleet.
    """

    request_id: int
    result: ADMMResult
    latency: float
    wait_segments: int
    sweeps: int
    submit_time: float
    admit_time: float
    complete_time: float


@dataclass(frozen=True)
class ServiceStats:
    """Latency/throughput digest of a service run (the SLO view).

    Percentiles are over per-request wall-clock latencies; throughput is
    completed instances per second of service wall time (first submit →
    last completion).
    """

    completed: int
    p50_latency: float
    p95_latency: float
    p99_latency: float
    mean_latency: float
    max_latency: float
    instances_per_sec: float
    segments: int
    sweeps_per_request_mean: float

    def summary(self) -> str:
        return (
            f"ServiceStats(completed={self.completed}, "
            f"p50={self.p50_latency:.4f}s p95={self.p95_latency:.4f}s "
            f"p99={self.p99_latency:.4f}s, "
            f"throughput={self.instances_per_sec:.2f} inst/s)"
        )


def _reject_degenerate(template: FactorGraph) -> None:
    if template.isolated_vars.size:
        raise ValueError(
            f"template graph is degenerate: {template.isolated_vars.size} "
            f"variable(s) (ids {template.isolated_vars[:8].tolist()}"
            f"{'...' if template.isolated_vars.size > 8 else ''}) appear "
            f"in no factor scope and would never be optimized; the "
            f"service rejects degenerate graphs at admission"
        )


class _LiveInstance:
    """Book-keeping for one admitted request while it sweeps in the fleet."""

    def __init__(
        self,
        request: SolveRequest,
        cap: int,
        schedule: PenaltySchedule,
        admit_time: float,
        admit_segment: int,
    ) -> None:
        self.request = request
        self.cap = cap
        self.schedule = schedule
        self.admit_time = admit_time
        self.admit_segment = admit_segment
        self.sweeps = 0
        self.history = SolveHistory()
        self.residuals: Residuals | None = None


class FleetService:
    """Long-lived solve daemon over one live rebalancing fleet.

    The service carries one *default* template graph, but requests may
    each bring their own (``submit(..., template=...)``): instances from
    different app families — MPC, SVM, lasso, packing — pack into one
    mixed-family fleet through :func:`~repro.graph.batch.pack_graphs`,
    bucketed by prox operator across instances.  Drive it with
    :meth:`submit` + :meth:`step` (one sweep segment per call — the unit
    of admission latency), or :meth:`drain` to run the backlog dry;
    :mod:`repro.testing.traffic` replays seeded arrival processes
    against it.

    Parameters
    ----------
    template:
        the default :class:`FactorGraph` a request instantiates when it
        does not bring its own.  Degenerate templates (isolated variables
        — see :class:`~repro.graph.DegenerateGraphWarning`) are rejected
        here, and per-request templates at :meth:`submit`, instead of
        converging to garbage per request.
    rho, alpha, schedule:
        solver parameters, as in :class:`~repro.core.batched.BatchedSolver`
        (the schedule is deep-copied per request at admission).
    num_shards, mode, variant, steal_threshold, steal_seed, steal_policy,
    transport, policy:
        fleet knobs, as in :class:`RebalancingShardedSolver`; the shard
        count is capped at the live instance count while the fleet is
        small.  ``variant="async"`` is rejected (resizes reseed streams —
        per-request results would depend on admission history).
        ``steal_policy="predictive"`` weighs steals by fitted
        residual-decay projections (the service's own residual checks feed
        the histories); ``transport`` picks the process-mode state
        transport (``"shared"`` zero-copy mirrors / ``"queue"``).  Neither
        changes per-request results.
    check_every:
        sweeps per segment: the convergence-check cadence *and* the
        admission/eviction granularity.  Requests complete only at
        segment boundaries, so this is the latency/throughput dial.
    eps_abs, eps_rel:
        service-wide stopping tolerances (per-request tolerances would
        need per-instance thresholds in one vectorized residual pass —
        not worth it until a workload demands it).
    max_iterations:
        default per-request cap, rounded up to a multiple of
        ``check_every`` (see the module docstring).
    admit_every, max_batch:
        the admission latency window: pending requests are admitted at
        every ``admit_every``-th segment boundary (1 = every boundary),
        at most ``max_batch`` per admission (``None`` = unbounded).
    tracer:
        a :class:`repro.obs.events.Tracer` recording the request lifecycle
        (submit / admit / evict points, with per-request latency on evict)
        alongside the fleet solver's segment/kernel/steal/fault timeline —
        the same tracer is handed to every fleet solver the service builds.
        Defaults to :func:`repro.obs.events.default_tracer` (off unless
        ``REPRO_TRACE`` is set); tracing never changes results.
    """

    def __init__(
        self,
        template: FactorGraph,
        rho=1.0,
        alpha=1.0,
        schedule: PenaltySchedule | None = None,
        num_shards: int = 2,
        mode: str = "thread",
        variant: str = "classic",
        check_every: int = 10,
        eps_abs: float = 1e-6,
        eps_rel: float = 1e-4,
        max_iterations: int = 1000,
        admit_every: int = 1,
        max_batch: int | None = None,
        steal_threshold: int = 1,
        steal_seed: int | None = None,
        steal_policy: str = "count",
        transport: str = "shared",
        policy: WorkerPolicy | None = None,
        tracer=None,
    ) -> None:
        _reject_degenerate(template)
        if variant == "async":
            raise ValueError(
                "variant='async' is not supported by the service: elastic "
                "admission/eviction reseeds the randomized streams, so "
                "per-request results would depend on the admission history "
                "(breaking solo equivalence); use 'classic' or 'three_weight'"
            )
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        if max_iterations < 1:
            raise ValueError(
                f"max_iterations must be >= 1, got {max_iterations}"
            )
        if admit_every < 1:
            raise ValueError(f"admit_every must be >= 1, got {admit_every}")
        if max_batch is not None and max_batch < 1:
            raise ValueError(
                f"max_batch must be >= 1 or None, got {max_batch}"
            )
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if steal_policy not in STEAL_POLICIES:
            raise ValueError(
                f"steal_policy must be one of {STEAL_POLICIES}, "
                f"got {steal_policy!r}"
            )
        if transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got {transport!r}"
            )
        self.template = template
        self.rho = rho
        self.alpha = alpha
        self.schedule = schedule if schedule is not None else ConstantPenalty()
        self.num_shards = int(num_shards)
        self.mode = mode
        self.variant = variant
        self.check_every = int(check_every)
        self.eps_abs = float(eps_abs)
        self.eps_rel = float(eps_rel)
        self.max_iterations = int(max_iterations)
        self.admit_every = int(admit_every)
        self.max_batch = max_batch
        self.steal_threshold = int(steal_threshold)
        self.steal_seed = steal_seed
        self.steal_policy = steal_policy
        self.transport = transport
        self.policy = policy
        self.tracer = tracer if tracer is not None else default_tracer()

        self._solver: RebalancingShardedSolver | None = None
        self._pending: deque[SolveRequest] = deque()
        self._live: list[_LiveInstance] = []  # position == global instance id
        self._segment = 0
        self._next_id = 0
        self._closed = False
        self._completed: list[RequestResult] = []
        self._first_submit: float | None = None
        self._last_complete: float | None = None

    # ------------------------------------------------------------------ #
    @property
    def solver(self) -> RebalancingShardedSolver | None:
        """The live fleet solver (``None`` while the fleet is empty).

        Exposed so churn can be scripted against a running service
        (``service.solver.reshard(2)``, ``kill_worker(service.solver, 0)``)
        — every such move must leave per-request results bit-identical.
        """
        return self._solver

    @property
    def segment(self) -> int:
        """Completed sweep segments (the service's virtual clock)."""
        return self._segment

    @property
    def pending(self) -> int:
        """Requests queued but not yet admitted."""
        return len(self._pending)

    @property
    def live(self) -> int:
        """Requests currently sweeping in the fleet."""
        return len(self._live)

    @property
    def in_flight(self) -> int:
        """Requests submitted but not yet completed (queued + sweeping)."""
        return len(self._pending) + len(self._live)

    @property
    def completed(self) -> list[RequestResult]:
        """Every completed request so far, in completion order."""
        return self._completed

    def _effective_cap(self, max_iterations: int | None) -> int:
        cap = self.max_iterations if max_iterations is None else int(max_iterations)
        if cap < 1:
            raise ValueError(f"max_iterations must be >= 1, got {cap}")
        c = self.check_every
        return ((cap + c - 1) // c) * c

    # ------------------------------------------------------------------ #
    def submit(
        self,
        params=None,
        warm_start=None,
        max_iterations: int | None = None,
        template: FactorGraph | None = None,
    ) -> int:
        """Queue one solve request; returns its request id.

        ``params`` is a per-factor override mapping (the
        :func:`replicate_graph` form) or ``None`` for template parameters;
        ``warm_start`` an optional template-layout z vector;
        ``max_iterations`` a per-request cap (rounded up to a multiple of
        ``check_every``); ``template`` the request's own factor graph
        (``None`` = the service default — requests with different
        templates pack into one mixed-family fleet).  The request is
        admitted into the fleet at the next admission boundary of
        :meth:`step`.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        self._effective_cap(max_iterations)  # validate eagerly
        if template is None:
            template = self.template
        else:
            _reject_degenerate(template)
        if warm_start is not None:
            warm_start = np.asarray(warm_start, dtype=np.float64)
            if warm_start.shape != (template.z_size,):
                raise ValueError(
                    f"warm_start must have shape ({template.z_size},), "
                    f"got {warm_start.shape}"
                )
        now = time.perf_counter()
        if self._first_submit is None:
            self._first_submit = now
        req = SolveRequest(
            request_id=self._next_id,
            params=dict(params) if params else {},
            warm_start=warm_start,
            max_iterations=max_iterations,
            submit_time=now,
            submit_segment=self._segment,
            template=template,
        )
        self._next_id += 1
        self._pending.append(req)
        if self.tracer is not None:
            self.tracer.point(
                "submit",
                f"request {req.request_id}",
                segment=self._segment,
                request=req.request_id,
            )
        return req.request_id

    # ------------------------------------------------------------------ #
    def _make_solver(self, batch) -> RebalancingShardedSolver:
        kwargs = dict(
            num_shards=min(self.num_shards, batch.batch_size),
            mode=self.mode,
            variant=self.variant,
            rho=self.rho,
            alpha=self.alpha,
            steal_threshold=self.steal_threshold,
            steal_seed=self.steal_seed,
            steal_policy=self.steal_policy,
            transport=self.transport,
        )
        if self.policy is not None:
            kwargs["policy"] = self.policy
        if self.tracer is not None:
            kwargs["tracer"] = self.tracer
        solver = RebalancingShardedSolver(batch, **kwargs)
        solver.initialize("zeros")
        return solver

    def _admit(self) -> int:
        """Admit pending requests at this segment boundary; returns count."""
        if not self._pending:
            return 0
        if self._live and self._segment % self.admit_every != 0:
            # A live fleet admits on the window grid; an idle service
            # admits immediately — there is nothing to batch against.
            return 0
        k = len(self._pending)
        if self.max_batch is not None:
            k = min(k, self.max_batch)
        taken = [self._pending.popleft() for _ in range(k)]
        params = [r.params for r in taken]
        inst_templates = [r.template for r in taken]
        base = len(self._live)
        if self._solver is None:
            if all(t is self.template for t in inst_templates):
                # The homogeneous path stays bit-identical to the pre-mixed
                # service: replication, not packing.
                batch = replicate_graph(self.template, k, params)
            else:
                batch = pack_graphs(inst_templates, params_per_instance=params)
            self._solver = self._make_solver(batch)
        elif self._solver.batch.uniform and all(
            t is self._solver.batch.templates[0] for t in inst_templates
        ):
            self._solver.add_instances(params)
        else:
            self._solver.add_instances(params, templates=inst_templates)
        now = time.perf_counter()
        for j, req in enumerate(taken):
            if req.warm_start is not None:
                self._solver.warm_start_instance(base + j, req.warm_start)
            schedule = copy.deepcopy(self.schedule)
            schedule.reset()
            self._live.append(
                _LiveInstance(
                    req,
                    cap=self._effective_cap(req.max_iterations),
                    schedule=schedule,
                    admit_time=now,
                    admit_segment=self._segment,
                )
            )
            if self.tracer is not None:
                self.tracer.point(
                    "admit",
                    f"request {req.request_id}",
                    segment=self._segment,
                    request=req.request_id,
                    instance=base + j,
                    wait_segments=self._segment - req.submit_segment,
                )
        return k

    def _evict(self, done: list[int], wall: float) -> list[RequestResult]:
        """Pull completed instances out of the fleet and package results."""
        solver = self._solver
        z_rows = solver.split_z()
        out: list[RequestResult] = []
        doneset = set(done)
        for g in done:
            live = self._live[g]
            z = z_rows[g].copy()
            converged = (
                live.residuals is not None and live.residuals.converged
            )
            result = ADMMResult(
                solution=live.request.template.read_solution(z),
                z=z,
                converged=bool(converged),
                iterations=int(live.sweeps),
                residuals=live.residuals,
                history=live.history,
                timers=KernelTimers(),
                wall_time=wall - live.admit_time,
            )
            out.append(
                RequestResult(
                    request_id=live.request.request_id,
                    result=result,
                    latency=wall - live.request.submit_time,
                    wait_segments=live.admit_segment
                    - live.request.submit_segment,
                    sweeps=live.sweeps,
                    submit_time=live.request.submit_time,
                    admit_time=live.admit_time,
                    complete_time=wall,
                )
            )
            if self.tracer is not None:
                self.tracer.point(
                    "evict",
                    f"request {live.request.request_id}",
                    segment=self._segment,
                    request=live.request.request_id,
                    latency=wall - live.request.submit_time,
                    sweeps=live.sweeps,
                    converged=bool(converged),
                )
        if len(doneset) == len(self._live):
            # A batch can never be empty: dissolve the fleet instead.
            solver.close()
            self._solver = None
            self._live = []
        else:
            solver.remove_instances(done)
            self._live = [
                live for g, live in enumerate(self._live) if g not in doneset
            ]
        self._completed.extend(out)
        if out:
            self._last_complete = wall
        return out

    def step(self) -> list[RequestResult]:
        """Advance the service one sweep segment; returns completions.

        One call = one admission boundary + one ``check_every``-sweep
        segment of the live fleet + one convergence check with eviction +
        one ρ-adaptation and stealing pass — the exact outer-loop cadence
        of ``solve_batch``, interleaved with admission/eviction.  With an
        empty fleet the segment is an idle tick (pending requests are
        still admitted, arming the next segment).
        """
        if self._closed:
            raise RuntimeError("service is closed")
        self._admit()
        self._segment += 1
        if self._solver is None:
            return []
        solver = self._solver
        c = self.check_every
        # The solve_batch segment shape: sweep c-1, capture z_prev, sweep 1.
        if c > 1:
            solver.iterate(c - 1)
        z_prev_rows = solver.split_z()
        solver.iterate(1)
        res = solver.residuals(z_prev_rows, self.eps_abs, self.eps_rel)
        rho_rows = solver.rho_rows()
        wall = time.perf_counter()
        done: list[int] = []
        for g, live in enumerate(self._live):
            live.sweeps += c
            live.residuals = res[g]
            live.history.append(res[g], None, float(rho_rows[g].mean()))
            if res[g].converged or live.sweeps >= live.cap:
                done.append(g)
        # ρ-adaptation for survivors only — converged instances are evicted
        # at the very check that froze them, so (like solve_batch's frozen
        # lanes) their ρ and dual are never touched again.
        survivors = {
            g: live.schedule
            for g, live in enumerate(self._live)
            if g not in set(done)
        }
        if survivors:
            solver.adapt_rho(survivors, res)
        completions = self._evict(done, wall) if done else []
        # Keep rosters balanced as eviction hollows shards out: the same
        # deterministic stealing pass solve_batch runs, driven by the
        # live mask (every surviving instance is active by construction).
        if self._solver is not None and self._solver.num_shards > 1:
            self._solver.steal_pass(np.ones(len(self._live), dtype=bool))
        return completions

    def drain(self, max_segments: int | None = None) -> list[RequestResult]:
        """Step until no request is in flight; returns the completions.

        ``max_segments`` bounds the number of segments (``None`` = until
        dry; the per-request caps guarantee termination).
        """
        out: list[RequestResult] = []
        steps = 0
        while self.in_flight:
            if max_segments is not None and steps >= max_segments:
                break
            out.extend(self.step())
            steps += 1
        return out

    # ------------------------------------------------------------------ #
    def stats(self) -> ServiceStats:
        """Latency percentiles + sustained throughput over completions."""
        if not self._completed:
            return ServiceStats(
                completed=0,
                p50_latency=0.0,
                p95_latency=0.0,
                p99_latency=0.0,
                mean_latency=0.0,
                max_latency=0.0,
                instances_per_sec=0.0,
                segments=self._segment,
                sweeps_per_request_mean=0.0,
            )
        lat = np.asarray([r.latency for r in self._completed])
        span = (self._last_complete or 0.0) - (self._first_submit or 0.0)
        return ServiceStats(
            completed=len(self._completed),
            p50_latency=float(np.percentile(lat, 50)),
            p95_latency=float(np.percentile(lat, 95)),
            p99_latency=float(np.percentile(lat, 99)),
            mean_latency=float(lat.mean()),
            max_latency=float(lat.max()),
            instances_per_sec=(
                len(self._completed) / span if span > 0 else float("inf")
            ),
            segments=self._segment,
            sweeps_per_request_mean=float(
                np.mean([r.sweeps for r in self._completed])
            ),
        )

    def summary(self) -> str:
        t = self.template
        fleet = (
            self._solver.summary() if self._solver is not None else "(idle)"
        )
        return (
            f"FleetService: template(|F|={t.num_factors} |V|={t.num_vars} "
            f"|E|={t.num_edges}), check_every={self.check_every}, "
            f"segment={self._segment}, pending={self.pending}, "
            f"live={self.live}, completed={len(self._completed)}\n"
            f"  fleet: {fleet}"
        )

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the fleet down (idempotent; pending requests are dropped)."""
        self._closed = True
        if self._solver is not None:
            self._solver.close()
            self._solver = None

    def __enter__(self) -> "FleetService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"FleetService(segment={self._segment}, pending={self.pending}, "
            f"live={self.live}, completed={len(self._completed)})"
        )
