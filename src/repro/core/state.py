"""ADMM iterate state: the five auxiliary variable families on the graph.

Exactly the paper's storage model: ``x, m, u, n`` live in flat 1-D arrays in
edge-creation order (one slot per edge-dimension), ``z`` in a flat array in
variable-creation order, ``ρ`` and ``α`` per edge.  Slot-expanded copies of
ρ/α and the z-update denominator ``Σ_∂b ρ`` are cached and invalidated when
the penalties change (they are constants inside the iteration loop, so this
mirrors the paper's "initialize_RHOS_APHAS once" pattern).
"""

from __future__ import annotations

import numpy as np

from repro.graph.factor_graph import FactorGraph
from repro.utils.rng import default_rng
from repro.utils.validation import check_positive


class ADMMState:
    """Mutable iterate of the message-passing ADMM on one graph.

    Attributes
    ----------
    x, m, u, n:
        Flat edge arrays of length ``graph.edge_size``.
    z:
        Flat variable array of length ``graph.z_size``.
    rho, alpha:
        Per-edge penalty / step-size arrays of length ``graph.num_edges``.
    weights:
        Per-edge three-weight-algorithm certainty weights; ``None`` in the
        standard ADMM (treated as ≡ ρ).
    iteration:
        Completed-iteration counter, maintained by the backends.
    """

    def __init__(self, graph: FactorGraph, rho: float = 1.0, alpha: float = 1.0):
        self.graph = graph
        E, Z = graph.edge_size, graph.z_size
        self.x = np.zeros(E)
        self.m = np.zeros(E)
        self.u = np.zeros(E)
        self.n = np.zeros(E)
        self.z = np.zeros(Z)
        self.rho = np.empty(graph.num_edges)
        self.alpha = np.empty(graph.num_edges)
        self.weights: np.ndarray | None = None
        self.iteration = 0
        self._rho_slots: np.ndarray | None = None
        self._alpha_slots: np.ndarray | None = None
        self._rho_den: np.ndarray | None = None
        self.set_rho(rho)
        self.set_alpha(alpha)

    # ------------------------------------------------------------------ #
    # Penalty management (invalidates the slot caches).                   #
    # ------------------------------------------------------------------ #
    def set_rho(self, rho) -> None:
        """Set ρ: scalar (uniform, the paper's default) or per-edge array."""
        rho_arr = np.asarray(rho, dtype=np.float64)
        if rho_arr.ndim == 0:
            check_positive(float(rho_arr), "rho")
            self.rho.fill(float(rho_arr))
        else:
            if rho_arr.shape != (self.graph.num_edges,):
                raise ValueError(
                    f"per-edge rho must have shape ({self.graph.num_edges},), "
                    f"got {rho_arr.shape}"
                )
            if np.any(rho_arr <= 0):
                raise ValueError("all rho entries must be positive")
            self.rho[:] = rho_arr
        self._rho_slots = None
        self._rho_den = None

    def set_alpha(self, alpha) -> None:
        """Set α: scalar or per-edge array (α=1 is the classical ADMM)."""
        a = np.asarray(alpha, dtype=np.float64)
        if a.ndim == 0:
            check_positive(float(a), "alpha")
            self.alpha.fill(float(a))
        else:
            if a.shape != (self.graph.num_edges,):
                raise ValueError(
                    f"per-edge alpha must have shape ({self.graph.num_edges},), "
                    f"got {a.shape}"
                )
            if np.any(a <= 0):
                raise ValueError("all alpha entries must be positive")
            self.alpha[:] = a
        self._alpha_slots = None

    @property
    def rho_slots(self) -> np.ndarray:
        """ρ expanded from per-edge to per-slot (cached)."""
        if self._rho_slots is None:
            self._rho_slots = self.rho[self.graph.slot_edge]
        return self._rho_slots

    @property
    def alpha_slots(self) -> np.ndarray:
        """α expanded from per-edge to per-slot (cached)."""
        if self._alpha_slots is None:
            self._alpha_slots = self.alpha[self.graph.slot_edge]
        return self._alpha_slots

    @property
    def rho_den(self) -> np.ndarray:
        """z-update denominator ``Σ_{a∈∂b} ρ_(a,b)`` per z slot (cached)."""
        if self._rho_den is None:
            self._rho_den = self.graph.scatter_matrix @ self.rho_slots
        return self._rho_den

    # ------------------------------------------------------------------ #
    # Initialization (paper: initialize_X_N_Z_M_U_rand).                   #
    # ------------------------------------------------------------------ #
    def init_random(
        self, low: float = 0.0, high: float = 1.0, seed: int | None = None
    ) -> "ADMMState":
        """Uniform-random initialization of all five families in [low, high)."""
        if not low < high:
            raise ValueError(f"need low < high, got [{low}, {high})")
        rng = default_rng(seed)
        for arr in (self.x, self.m, self.u, self.n):
            arr[:] = rng.uniform(low, high, size=arr.shape)
        self.z[:] = rng.uniform(low, high, size=self.z.shape)
        self.iteration = 0
        return self

    def init_zeros(self) -> "ADMMState":
        """All-zeros initialization (useful for deterministic tests)."""
        for arr in (self.x, self.m, self.u, self.n, self.z):
            arr.fill(0.0)
        self.iteration = 0
        return self

    def init_from_z(self, z_flat: np.ndarray) -> "ADMMState":
        """Warm start: seed every family consistently from a z estimate.

        Mirrors the paper's real-time-MPC usage — "run a few more ADMM
        iterations ... starting from the ADMM solution of the previous
        cycle".  Sets ``z`` to the given value, broadcasts it along edges
        into ``x, m, n`` and zeroes the dual ``u``.
        """
        z_flat = np.asarray(z_flat, dtype=np.float64)
        if z_flat.shape != (self.graph.z_size,):
            raise ValueError(
                f"z must have shape ({self.graph.z_size},), got {z_flat.shape}"
            )
        self.z[:] = z_flat
        broadcast = z_flat[self.graph.flat_edge_to_z]
        self.x[:] = broadcast
        self.m[:] = broadcast
        self.n[:] = broadcast
        self.u.fill(0.0)
        self.iteration = 0
        return self

    # ------------------------------------------------------------------ #
    def copy(self) -> "ADMMState":
        """Deep copy (graph shared, arrays duplicated)."""
        other = ADMMState(self.graph)
        other.x = self.x.copy()
        other.m = self.m.copy()
        other.u = self.u.copy()
        other.n = self.n.copy()
        other.z = self.z.copy()
        other.rho = self.rho.copy()
        other.alpha = self.alpha.copy()
        other.weights = None if self.weights is None else self.weights.copy()
        other.iteration = self.iteration
        other._rho_slots = None
        other._alpha_slots = None
        other._rho_den = None
        return other

    def solution(self) -> list[np.ndarray]:
        """Per-variable solution vectors read from z (the paper's read-out)."""
        return self.graph.read_solution(self.z)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"ADMMState(iter={self.iteration}, edge_size={self.x.size}, "
            f"z_size={self.z.size})"
        )
