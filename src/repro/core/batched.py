"""Fleet solving: one ADMM driver advancing many independent instances.

:class:`BatchedSolver` runs Algorithm 2 on the block-diagonal graph of a
:class:`repro.graph.batch.GraphBatch`.  The inner loop is unchanged — any
backend sweeps the batched graph exactly as it would a single instance; the
batching win is that one vectorized sweep advances all ``B`` problems.  The
*outer* loop becomes per-instance:

* residuals and stopping thresholds are evaluated per instance (restricted
  to that instance's slots, identical to a solo
  :func:`repro.core.residuals.compute_residuals` on its subgraph);
* an instance that converges is **frozen**: it drops out of the ρ-schedule
  and the convergence bookkeeping but keeps sweeping with the fleet (its
  iterate only tightens further — lanes stay full, matching the paper's
  fine-grained-parallelism thesis);
* the penalty schedule runs one independent copy per instance, applied
  through per-edge ρ scaling so converged instances are untouched;
* :meth:`BatchedSolver.warm_start_pool` seeds each instance from a pool of
  previous solutions (cycled when smaller than the fleet — the real-time
  MPC pattern, fleet-sized);
* the fleet is **elastic**: :meth:`BatchedSolver.add_instances` /
  :meth:`BatchedSolver.remove_instances` (via :func:`carry_state`) grow or
  shrink a running fleet between solves while surviving instances keep
  their iterates, duals, and per-edge penalties bit-for-bit.

``solve_batch`` returns one :class:`ADMMResult` per instance, byte-for-byte
comparable to solving that instance alone for the same iteration count.
:class:`repro.core.sharded.ShardedBatchedSolver` scales the same outer loop
across worker processes, one contiguous instance block per shard.
"""

from __future__ import annotations

import copy
import time

import numpy as np

from repro.core.diagnostics import ADMMResult, SolveHistory
from repro.core.parameters import ConstantPenalty, PenaltySchedule, apply_rho_scale
from repro.core.residuals import Residuals
from repro.core.solver import ADMMSolver
from repro.core.state import ADMMState
from repro.graph.batch import GraphBatch
from repro.obs.events import (
    default_tracer,
    now as monotonic_now,
    segment_events,
)
from repro.utils.timing import KernelTimers


def per_instance_residuals(
    batch: GraphBatch,
    state: ADMMState,
    z_prev: np.ndarray,
    eps_abs: float = 1e-6,
    eps_rel: float = 1e-4,
) -> list[Residuals]:
    """Residuals of every instance at the current iterate (one pass).

    Each entry equals :func:`repro.core.residuals.compute_residuals` run on
    the instance's subgraph: norms are restricted to the instance's slots
    and thresholds use each instance's *own template* edge count (one
    shared template for uniform batches, per-instance templates for mixed
    packings).
    """
    g = batch.graph
    zmap = state.z[g.flat_edge_to_z]
    primal_vec = state.x - zmap
    dual_full = state.rho_slots * (zmap - z_prev[g.flat_edge_to_z])
    u_full = state.rho_slots * state.u
    if not batch.uniform:
        out = []
        for i in range(batch.batch_size):
            S = batch.slot_index[i]
            x_norm = float(np.linalg.norm(state.x[S]))
            z_norm = float(np.linalg.norm(zmap[S]))
            sqrt_n = float(np.sqrt(max(batch.templates[i].edge_size, 1)))
            out.append(
                Residuals(
                    primal=float(np.linalg.norm(primal_vec[S])),
                    dual=float(np.linalg.norm(dual_full[S])),
                    eps_primal=sqrt_n * eps_abs
                    + eps_rel * max(x_norm, z_norm),
                    eps_dual=sqrt_n * eps_abs
                    + eps_rel * float(np.linalg.norm(u_full[S])),
                    iteration=state.iteration,
                )
            )
        return out
    S = batch.slot_index  # (B, S_t) gather map
    primal = np.linalg.norm(primal_vec[S], axis=1)
    dual = np.linalg.norm(dual_full[S], axis=1)
    x_norm = np.linalg.norm(state.x[S], axis=1)
    z_norm = np.linalg.norm(zmap[S], axis=1)
    u_norm = np.linalg.norm(u_full[S], axis=1)
    sqrt_n = float(np.sqrt(max(batch.template.edge_size, 1)))
    eps_primal = sqrt_n * eps_abs + eps_rel * np.maximum(x_norm, z_norm)
    eps_dual = sqrt_n * eps_abs + eps_rel * u_norm
    return [
        Residuals(
            primal=float(primal[i]),
            dual=float(dual[i]),
            eps_primal=float(eps_primal[i]),
            eps_dual=float(eps_dual[i]),
            iteration=state.iteration,
        )
        for i in range(batch.batch_size)
    ]


def normalize_pool(pool, batch_size: int, z_size: int) -> np.ndarray:
    """Normalize a warm-start pool to one ``(B, z_size)`` row per instance.

    Accepts a ``(P, z_size)`` matrix or length-``P`` sequence for any
    ``P >= 1`` — a pool smaller than the fleet is *cycled* (instance ``i``
    takes row ``i % P``, the round-robin reuse pattern of a solution cache
    that has not seen every instance yet; a pool larger than the fleet
    contributes its first ``B`` rows by the same rule).  A single
    ``(z_size,)`` vector broadcasts to every instance.

    Any non-ndarray iterable (generators included) is materialized first,
    and the returned rows are always **writable** — the broadcast path
    copies, so callers may edit one instance's row without silently
    editing every other instance's (or tripping numpy's read-only guard).
    """
    if not isinstance(pool, (np.ndarray, list, tuple)):
        pool = list(pool)
    if isinstance(pool, (list, tuple)):
        try:
            arr = np.stack(
                [np.asarray(v, dtype=np.float64) for v in pool]
            ).astype(np.float64, copy=False)
        except ValueError as exc:
            raise ValueError(
                f"pool must be ({z_size},), or (P, {z_size}) with P >= 1; "
                f"got a sequence with mismatched row shapes"
            ) from exc
    else:
        arr = np.asarray(pool, dtype=np.float64)
    if arr.shape == (z_size,):
        return np.broadcast_to(arr, (batch_size, z_size)).copy()
    if arr.ndim != 2 or arr.shape[1] != z_size or arr.shape[0] < 1:
        raise ValueError(
            f"pool must be ({z_size},), or (P, {z_size}) with P >= 1; "
            f"got shape {arr.shape}"
        )
    if arr.shape[0] == batch_size:
        return arr
    return arr[np.arange(batch_size) % arr.shape[0]]


def carry_state(
    old_batch: GraphBatch,
    old_state: ADMMState,
    new_batch: GraphBatch,
    sources,
    fresh_rho=1.0,
    fresh_alpha=1.0,
) -> ADMMState:
    """Map per-instance iterates from one batch layout to another.

    ``sources[j]`` names the old instance whose state seeds new instance
    ``j``, or ``-1`` for a cold instance (all-zeros iterate, ``fresh_rho`` /
    ``fresh_alpha`` penalties — scalar or template-per-edge ``(E_t,)``).
    Carried instances keep their x/m/u/n/z families, per-edge ρ/α, *and*
    the scaled dual ``u`` bit-for-bit: because every per-instance quantity
    is gathered through the index maps, a carried instance's subsequent
    sweeps are identical to the ones it would have taken in the old batch.
    The fleet iteration counter is carried so segmented solves stay aligned
    across elastic resizes.  TWA certainty weights are transient (recomputed
    by the next x-update) and are not carried.

    Both batches may be heterogeneous (:func:`repro.graph.batch.pack_graphs`
    packings): compatibility is then checked per carried instance — each
    source instance's template must structurally match its destination's —
    and ``fresh_rho``/``fresh_alpha`` additionally accept a per-new-instance
    sequence of scalars or per-edge vectors (each in that instance's own
    template edge order).
    """
    uniform = old_batch.uniform and new_batch.uniform
    if uniform and old_batch.template is not new_batch.template and (
        old_batch.template.num_factors != new_batch.template.num_factors
        or old_batch.template.z_size != new_batch.template.z_size
    ):
        raise ValueError("old and new batches must share a template layout")
    sources = np.asarray(sources, dtype=np.int64)
    if sources.shape != (new_batch.batch_size,):
        raise ValueError(
            f"sources must have shape ({new_batch.batch_size},), "
            f"got {sources.shape}"
        )
    if np.any(sources >= old_batch.batch_size) or np.any(sources < -1):
        raise ValueError(
            "sources must be old instance ids in [0, old B) or the cold "
            "sentinel -1"
        )
    if not uniform:
        for j in np.flatnonzero(sources >= 0):
            ot = old_batch.templates[int(sources[j])]
            nt = new_batch.templates[int(j)]
            if ot is not nt and (
                ot.num_factors != nt.num_factors
                or ot.z_size != nt.z_size
                or ot.num_edges != nt.num_edges
                or ot.edge_size != nt.edge_size
            ):
                raise ValueError(
                    f"new instance {j} (template layout "
                    f"|F|={nt.num_factors}, z={nt.z_size}) cannot carry "
                    f"state from old instance {int(sources[j])} (template "
                    f"layout |F|={ot.num_factors}, z={ot.z_size})"
                )

    new_graph = new_batch.graph
    state = ADMMState(new_graph)
    rho = np.empty(new_graph.num_edges)
    alpha = np.empty(new_graph.num_edges)
    for arr, fresh in ((rho, fresh_rho), (alpha, fresh_alpha)):
        _fill_fresh_penalty(arr, fresh, new_batch)

    carried = np.flatnonzero(sources >= 0)
    if carried.size and uniform:
        old_ids = sources[carried]
        new_slots = new_batch.slot_index[carried].reshape(-1)
        old_slots = old_batch.slot_index[old_ids].reshape(-1)
        for family in ("x", "m", "u", "n"):
            getattr(state, family)[new_slots] = getattr(old_state, family)[old_slots]
        zt = new_batch.template.z_size
        state.z.reshape(new_batch.batch_size, zt)[carried] = (
            old_state.z.reshape(old_batch.batch_size, zt)[old_ids]
        )
        rho[new_batch.edge_index[carried]] = (
            old_state.rho[old_batch.edge_index[old_ids]]
        )
        alpha[new_batch.edge_index[carried]] = (
            old_state.alpha[old_batch.edge_index[old_ids]]
        )
    elif carried.size:
        for j in carried:
            src = int(sources[j])
            new_slots = new_batch.slot_index[j]
            old_slots = old_batch.slot_index[src]
            for family in ("x", "m", "u", "n"):
                getattr(state, family)[new_slots] = getattr(old_state, family)[
                    old_slots
                ]
            state.z[new_batch.z_slice(int(j))] = old_state.z[
                old_batch.z_slice(src)
            ]
            rho[new_batch.edge_index[j]] = old_state.rho[
                old_batch.edge_index[src]
            ]
            alpha[new_batch.edge_index[j]] = old_state.alpha[
                old_batch.edge_index[src]
            ]
    state.set_rho(rho)
    state.set_alpha(alpha)
    state.iteration = old_state.iteration
    return state


def _fill_fresh_penalty(arr: np.ndarray, fresh, new_batch: GraphBatch) -> None:
    """Fill a per-edge penalty array from a fresh-penalty spec.

    Accepts a scalar (fills everywhere), a template-per-edge ``(E_t,)``
    vector (uniform batches), or a per-instance sequence — one scalar or
    per-edge vector per instance of ``new_batch``, each in its own
    template's edge order.
    """
    try:
        fresh_arr = np.asarray(fresh, dtype=np.float64)
    except (ValueError, TypeError):
        fresh_arr = None
    if fresh_arr is not None and fresh_arr.dtype == object:
        fresh_arr = None
    if fresh_arr is not None and fresh_arr.ndim == 0:
        arr.fill(float(fresh_arr))
        return
    if (
        fresh_arr is not None
        and new_batch.uniform
        and fresh_arr.shape == (new_batch.template.num_edges,)
    ):
        arr[new_batch.edge_index] = fresh_arr
        return
    rows = list(fresh) if not isinstance(fresh, np.ndarray) or fresh.ndim else None
    if rows is not None and len(rows) == new_batch.batch_size:
        ok = True
        prepared = []
        for j, row in enumerate(rows):
            row = np.asarray(row, dtype=np.float64)
            e_j = new_batch.templates[j].num_edges
            if row.ndim == 0 or row.shape == (e_j,):
                prepared.append(row)
            else:
                ok = False
                break
        if ok:
            for j, row in enumerate(prepared):
                arr[new_batch.edge_index[j]] = (
                    float(row) if row.ndim == 0 else row
                )
            return
    if new_batch.uniform:
        raise ValueError(
            f"fresh penalty must be scalar, "
            f"({new_batch.template.num_edges},), or a per-instance "
            f"sequence of length {new_batch.batch_size}; got "
            f"{fresh_arr.shape if fresh_arr is not None else type(fresh)}"
        )
    raise ValueError(
        f"fresh penalty must be scalar or a length-{new_batch.batch_size} "
        f"per-instance sequence of scalars / per-edge vectors"
    )


class BatchedSolver:
    """Lockstep ADMM over a :class:`GraphBatch` of independent instances.

    Parameters mirror :class:`repro.core.solver.ADMMSolver`; ``schedule`` is
    deep-copied per instance so stateful schedules (e.g. residual balancing)
    adapt each problem independently.  ``rho`` additionally accepts a
    ``(B,)`` per-instance or ``(B, E_t)`` per-instance-per-edge array.

    ``tracer`` (a :class:`repro.obs.events.Tracer`) records the solve
    timeline: one segment span per convergence-check block with per-kernel
    sub-spans, a freeze point per newly converged instance, and one solve
    span.  Defaults to :func:`repro.obs.events.default_tracer` (off unless
    ``REPRO_TRACE`` is set); tracing never changes the math.
    """

    def __init__(
        self,
        batch: GraphBatch,
        backend=None,
        rho=1.0,
        alpha=1.0,
        schedule: PenaltySchedule | None = None,
        tracer=None,
    ) -> None:
        self.batch = batch
        self.tracer = tracer if tracer is not None else default_tracer()
        def _scalar(v):
            if isinstance(v, (int, float, np.integer, np.floating)):
                return float(v)
            if isinstance(v, np.ndarray) and v.ndim == 0:
                return float(v)
            return None

        self._fresh_scalar_rho = _scalar(rho)
        self._fresh_scalar_alpha = _scalar(alpha)
        try:
            rho_arr = np.asarray(rho, dtype=np.float64)
        except (ValueError, TypeError):
            rho_arr = None
        if rho_arr is None or rho_arr.dtype == object:
            # Ragged per-instance penalties of a mixed batch.
            rho = batch.instance_rho(rho)
        elif rho_arr.ndim and rho_arr.shape[0] == batch.batch_size and (
            rho_arr.shape != (batch.graph.num_edges,)
        ):
            rho = batch.instance_rho(rho_arr)
        # Delegates signature validation, state construction, and backend
        # preparation; the batched outer loop below replaces .solve().
        self._solver = ADMMSolver(batch.graph, backend=backend, rho=rho, alpha=alpha)
        self.schedule = schedule if schedule is not None else ConstantPenalty()
        # Construction-time penalties, in template edge order: the defaults
        # cold instances receive when the fleet grows (schedule drift on the
        # running fleet must not leak into newcomers).  Uniform fleets keep
        # one row; mixed fleets keep one row per distinct template (first
        # instance of each), plus the scalar construction values as the
        # fallback for templates first admitted later.
        if batch.uniform:
            self._fresh_rho = self.batch.split_edges(self.state.rho)[0].copy()
            self._fresh_alpha = self.batch.split_edges(self.state.alpha)[0].copy()
            self._fresh_templates = {}
        else:
            rho_rows = self.batch.split_edges(self.state.rho)
            alpha_rows = self.batch.split_edges(self.state.alpha)
            self._fresh_rho = {}
            self._fresh_alpha = {}
            # Pins the keyed templates alive so the id() keys stay valid.
            self._fresh_templates = {id(t): t for t in batch.templates}
            for i, t in enumerate(batch.templates):
                self._fresh_rho.setdefault(id(t), rho_rows[i].copy())
                self._fresh_alpha.setdefault(id(t), alpha_rows[i].copy())

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> ADMMState:
        return self._solver.state

    @property
    def backend(self):
        return self._solver.backend

    @property
    def graph(self):
        return self.batch.graph

    @property
    def batch_size(self) -> int:
        return self.batch.batch_size

    # ------------------------------------------------------------------ #
    def initialize(self, how: str = "zeros", **kwargs) -> ADMMState:
        """(Re-)initialize the fleet iterate (see ``ADMMSolver.initialize``)."""
        return self._solver.initialize(how, **kwargs)

    def warm_start_pool(self, pool) -> ADMMState:
        """Seed every instance from a pool of previous solutions.

        ``pool`` is a ``(P, z_size)`` matrix or length-``P`` sequence of
        per-instance z vectors for any ``P >= 1``, or one ``(z_size,)``
        vector broadcast to the whole fleet (template layout; ``z_size`` is
        the template's).  A pool smaller than the fleet — the steady state
        of a solution cache while a fleet grows — is cycled: instance ``i``
        is seeded from row ``i % P``.

        A mixed-template fleet has no shared row shape to cycle, so it
        takes exactly one z vector per instance (each in its own
        template's layout) — any length-``B`` sequence
        :meth:`GraphBatch.pack_z` accepts.
        """
        if not self.batch.uniform:
            return self.state.init_from_z(self.batch.pack_z(pool))
        rows = normalize_pool(pool, self.batch.batch_size, self.batch.template.z_size)
        return self.state.init_from_z(self.batch.pack_z(rows))

    # ------------------------------------------------------------------ #
    # Elastic fleet: grow/shrink between solves, preserving iterates.      #
    # ------------------------------------------------------------------ #
    def add_instances(
        self, new_instances, rho=None, alpha=None, templates=None
    ) -> None:
        """Grow the fleet in place, appending cold instances.

        ``new_instances`` is a count or a sequence of per-factor override
        mappings (see :meth:`GraphBatch.add_instances`); ``templates``
        optionally names each new instance's template, which is how a
        fleet goes (or stays) heterogeneous.  Existing instances keep
        their iterates, duals, and per-edge penalties bit-for-bit; new
        instances start from zeros with ``rho``/``alpha`` penalties.  The
        default is the fleet's construction-time values — so schedule drift
        on the running fleet does not leak into newcomers — taken from
        *instance 0's* row (uniform fleets) or the first instance of the
        same template (mixed fleets; scalar construction penalties are the
        fallback for templates the fleet has not seen).  If the fleet was
        constructed with per-instance penalties, pass ``rho``/``alpha``
        explicitly rather than relying on that arbitrary choice.
        """
        new_batch = self.batch.add_instances(new_instances, templates=templates)
        n_new = new_batch.batch_size - self.batch.batch_size
        sources = list(range(self.batch.batch_size)) + [-1] * n_new
        self._adopt(new_batch, sources, rho, alpha)

    def remove_instances(self, drop) -> None:
        """Shrink the fleet in place, dropping the given instances.

        Survivors keep their relative order and their iterates, duals, and
        per-edge penalties bit-for-bit — with a deterministic backend their
        subsequent sweeps are identical to the ones they would have taken
        in the unshrunk fleet.  (A batch-bound randomized backend re-binds
        to the new layout and restarts its per-instance streams from their
        seeds, so post-resize *randomized* trajectories are freshly seeded,
        not a continuation.)
        """
        dropset = {int(i) for i in drop}
        survivors = [
            i for i in range(self.batch.batch_size) if i not in dropset
        ]
        new_batch = self.batch.remove_instances(dropset)
        self._adopt(new_batch, survivors, None, None)

    def _default_fresh(self, new_batch, sources, table, scalar_fallback, what):
        """Per-instance fresh penalties for a resize with no explicit value."""
        if isinstance(table, np.ndarray):
            if new_batch.uniform:
                return table
            table = {id(self.batch.templates[0]): table}
        if new_batch.uniform:
            row = table.get(id(new_batch.templates[0]))
            if row is not None:
                return row
        rows = []
        for j, t in enumerate(new_batch.templates):
            row = table.get(id(t))
            if row is None and scalar_fallback is not None:
                row = scalar_fallback
            if row is None:
                if sources[j] >= 0:
                    row = 1.0  # placeholder; overwritten by the carried copy
                else:
                    raise ValueError(
                        f"no default {what} for new instance {j}'s template "
                        f"(never seen by this fleet and construction "
                        f"{what} was not scalar); pass {what} explicitly"
                    )
            rows.append(row)
        return rows

    def _adopt(self, new_batch: GraphBatch, sources, rho, alpha) -> None:
        """Swap in a resized batch, carrying per-instance state across."""
        if rho is None:
            rho = self._default_fresh(
                new_batch, sources, self._fresh_rho, self._fresh_scalar_rho,
                "rho",
            )
        if alpha is None:
            alpha = self._default_fresh(
                new_batch, sources, self._fresh_alpha,
                self._fresh_scalar_alpha, "alpha",
            )
        state = carry_state(
            self.batch,
            self.state,
            new_batch,
            sources,
            fresh_rho=rho,
            fresh_alpha=alpha,
        )
        # Once the fleet goes mixed, key the construction-time defaults by
        # template so they survive arbitrary later churn.
        if not new_batch.uniform and isinstance(self._fresh_rho, np.ndarray):
            old_t = self.batch.templates[0]
            self._fresh_rho = {id(old_t): self._fresh_rho}
            self._fresh_alpha = {id(old_t): self._fresh_alpha}
            self._fresh_templates = {id(old_t): old_t}
        backend = self.backend
        # Rebuild the inner driver on the new graph; the backend is reused
        # (its prepare() re-plans for the new graph, re-forking workers if
        # it owns any).  Batch-bound backends re-bind to the resized batch
        # first; their per-instance streams restart for the new layout.
        rebind = getattr(backend, "rebind", None)
        if rebind is not None:
            rebind(new_batch)
        self._solver = ADMMSolver(new_batch.graph, backend=backend)
        self._solver.state = state
        self.batch = new_batch

    def iterate(self, iterations: int, timers: KernelTimers | None = None) -> None:
        """Advance the whole fleet a fixed number of sweeps (benchmark mode)."""
        self._solver.iterate(iterations, timers)

    # ------------------------------------------------------------------ #
    def solve_batch(
        self,
        max_iterations: int = 1000,
        eps_abs: float = 1e-6,
        eps_rel: float = 1e-4,
        check_every: int = 10,
        init: str = "keep",
        seed: int | None = None,
    ) -> list[ADMMResult]:
        """Iterate until every instance converges or the iteration cap.

        Returns one :class:`ADMMResult` per instance.  ``iterations`` and
        ``residuals`` of a converged instance are frozen at the check where
        it first converged (it keeps sweeping afterwards, so its returned
        ``z`` reflects the final iterate — at least as tight).  The shared
        ``timers``/``wall_time`` cover the whole fleet run.

        :meth:`ShardedBatchedSolver.solve_batch` mirrors this outer loop
        shard-locally; behavioral changes must be made in both (parity is
        pinned by ``tests/test_fleet_sharding.py::TestMatchesBatched``).
        """
        if max_iterations < 0:
            raise ValueError(f"max_iterations must be >= 0, got {max_iterations}")
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        self.initialize(init, seed=seed)
        B = self.batch.batch_size
        schedules = [copy.deepcopy(self.schedule) for _ in range(B)]
        for s in schedules:
            s.reset()

        state = self.state
        graph = self.batch.graph
        backend = self.backend
        timers = KernelTimers()
        histories = [SolveHistory() for _ in range(B)]
        active = np.ones(B, dtype=bool)
        frozen_iterations = np.full(B, -1, dtype=np.int64)
        last_residuals: list[Residuals | None] = [None] * B
        rho_by_instance = self.batch.split_edges(state.rho)
        tracer = self.tracer
        t0 = time.perf_counter()
        solve_t0 = monotonic_now()

        if state.iteration >= max_iterations:
            # No sweeps will run (max_iterations == 0, or a kept iterate
            # already past the cap) — same contract as
            # ADMMSolver.solve(max_iterations=0): residuals of the current
            # iterate, computed once, converged=False.
            res = per_instance_residuals(
                self.batch, state, state.z, eps_abs, eps_rel
            )
            for i in range(B):
                histories[i].append(res[i], None, float(rho_by_instance[i].mean()))
                last_residuals[i] = res[i]

        while state.iteration < max_iterations:
            block = min(check_every, max_iterations - state.iteration)
            segment = state.iteration
            pre = timers.elapsed_by_kind() if tracer is not None else None
            seg_t0 = monotonic_now()
            if block > 1:
                backend.run(graph, state, block - 1, timers)
            z_prev = state.z.copy()
            backend.run(graph, state, 1, timers)
            if tracer is not None:
                post = timers.elapsed_by_kind()
                tracer.extend(
                    segment_events(
                        worker=0,
                        segment=segment,
                        t0=seg_t0,
                        t1=monotonic_now(),
                        sweeps=block,
                        kernel_seconds={k: post[k] - pre[k] for k in post},
                    )
                )
            res = per_instance_residuals(self.batch, state, z_prev, eps_abs, eps_rel)
            rho_by_instance = self.batch.split_edges(state.rho)
            for i in np.flatnonzero(active):
                last_residuals[i] = res[i]
                histories[i].append(res[i], None, float(rho_by_instance[i].mean()))
                if res[i].converged:
                    frozen_iterations[i] = state.iteration
                    active[i] = False
                    if tracer is not None:
                        tracer.point(
                            "freeze",
                            f"instance {i}",
                            segment=state.iteration,
                            instance=int(i),
                        )
            if not active.any():
                break
            # Per-instance ρ adaptation; frozen instances keep scale 1.
            scale = np.ones(graph.num_edges)
            changed = False
            for i in np.flatnonzero(active):
                s = float(schedules[i].rho_scale(state, res[i]))
                if s != 1.0:
                    scale[self.batch.edge_index[i]] = s
                    changed = True
            if changed:
                apply_rho_scale(state, scale)

        wall = time.perf_counter() - t0
        if tracer is not None:
            tracer.add_span(
                "solve",
                f"batched solve B={B}",
                solve_t0,
                monotonic_now(),
                segment=state.iteration,
                converged=int((frozen_iterations >= 0).sum()),
            )
        results = []
        for i in range(B):
            converged = frozen_iterations[i] >= 0
            results.append(
                ADMMResult(
                    solution=self.batch.instance_solution(state.z, i),
                    z=state.z[self.batch.z_slice(i)].copy(),
                    converged=bool(converged),
                    iterations=int(
                        frozen_iterations[i] if converged else state.iteration
                    ),
                    residuals=last_residuals[i],
                    history=histories[i],
                    timers=timers,
                    wall_time=wall,
                )
            )
        return results

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release backend resources (worker pools)."""
        self._solver.close()

    def __enter__(self) -> "BatchedSolver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
