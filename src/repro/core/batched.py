"""Fleet solving: one ADMM driver advancing many independent instances.

:class:`BatchedSolver` runs Algorithm 2 on the block-diagonal graph of a
:class:`repro.graph.batch.GraphBatch`.  The inner loop is unchanged — any
backend sweeps the batched graph exactly as it would a single instance; the
batching win is that one vectorized sweep advances all ``B`` problems.  The
*outer* loop becomes per-instance:

* residuals and stopping thresholds are evaluated per instance (restricted
  to that instance's slots, identical to a solo
  :func:`repro.core.residuals.compute_residuals` on its subgraph);
* an instance that converges is **frozen**: it drops out of the ρ-schedule
  and the convergence bookkeeping but keeps sweeping with the fleet (its
  iterate only tightens further — lanes stay full, matching the paper's
  fine-grained-parallelism thesis);
* the penalty schedule runs one independent copy per instance, applied
  through per-edge ρ scaling so converged instances are untouched;
* :meth:`BatchedSolver.warm_start_pool` seeds each instance from a pool of
  previous solutions (the real-time MPC pattern, fleet-sized).

``solve_batch`` returns one :class:`ADMMResult` per instance, byte-for-byte
comparable to solving that instance alone for the same iteration count.
"""

from __future__ import annotations

import copy
import time

import numpy as np

from repro.core.diagnostics import ADMMResult, SolveHistory
from repro.core.parameters import ConstantPenalty, PenaltySchedule, apply_rho_scale
from repro.core.residuals import Residuals
from repro.core.solver import ADMMSolver
from repro.core.state import ADMMState
from repro.graph.batch import GraphBatch
from repro.utils.timing import KernelTimers


def per_instance_residuals(
    batch: GraphBatch,
    state: ADMMState,
    z_prev: np.ndarray,
    eps_abs: float = 1e-6,
    eps_rel: float = 1e-4,
) -> list[Residuals]:
    """Residuals of every instance at the current iterate (one pass).

    Each entry equals :func:`repro.core.residuals.compute_residuals` run on
    the instance's subgraph: norms are restricted to the instance's slots
    and thresholds use the *template* edge count.
    """
    g = batch.graph
    S = batch.slot_index  # (B, S_t) gather map
    zmap = state.z[g.flat_edge_to_z]
    primal = np.linalg.norm((state.x - zmap)[S], axis=1)
    dual_vec = state.rho_slots * (zmap - z_prev[g.flat_edge_to_z])
    dual = np.linalg.norm(dual_vec[S], axis=1)
    x_norm = np.linalg.norm(state.x[S], axis=1)
    z_norm = np.linalg.norm(zmap[S], axis=1)
    u_norm = np.linalg.norm((state.rho_slots * state.u)[S], axis=1)
    sqrt_n = float(np.sqrt(max(batch.template.edge_size, 1)))
    eps_primal = sqrt_n * eps_abs + eps_rel * np.maximum(x_norm, z_norm)
    eps_dual = sqrt_n * eps_abs + eps_rel * u_norm
    return [
        Residuals(
            primal=float(primal[i]),
            dual=float(dual[i]),
            eps_primal=float(eps_primal[i]),
            eps_dual=float(eps_dual[i]),
            iteration=state.iteration,
        )
        for i in range(batch.batch_size)
    ]


class BatchedSolver:
    """Lockstep ADMM over a :class:`GraphBatch` of independent instances.

    Parameters mirror :class:`repro.core.solver.ADMMSolver`; ``schedule`` is
    deep-copied per instance so stateful schedules (e.g. residual balancing)
    adapt each problem independently.  ``rho`` additionally accepts a
    ``(B,)`` per-instance or ``(B, E_t)`` per-instance-per-edge array.
    """

    def __init__(
        self,
        batch: GraphBatch,
        backend=None,
        rho=1.0,
        alpha=1.0,
        schedule: PenaltySchedule | None = None,
    ) -> None:
        self.batch = batch
        rho_arr = np.asarray(rho, dtype=np.float64)
        if rho_arr.ndim and rho_arr.shape[0] == batch.batch_size and rho_arr.shape != (
            batch.graph.num_edges,
        ):
            rho = batch.instance_rho(rho_arr)
        # Delegates signature validation, state construction, and backend
        # preparation; the batched outer loop below replaces .solve().
        self._solver = ADMMSolver(batch.graph, backend=backend, rho=rho, alpha=alpha)
        self.schedule = schedule if schedule is not None else ConstantPenalty()

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> ADMMState:
        return self._solver.state

    @property
    def backend(self):
        return self._solver.backend

    @property
    def graph(self):
        return self.batch.graph

    @property
    def batch_size(self) -> int:
        return self.batch.batch_size

    # ------------------------------------------------------------------ #
    def initialize(self, how: str = "zeros", **kwargs) -> ADMMState:
        """(Re-)initialize the fleet iterate (see ``ADMMSolver.initialize``)."""
        return self._solver.initialize(how, **kwargs)

    def warm_start_pool(self, pool) -> ADMMState:
        """Seed every instance from a pool of previous solutions.

        ``pool`` is a ``(B, z_size)`` matrix, a length-``B`` sequence of
        per-instance z vectors, or one ``(z_size,)`` vector broadcast to the
        whole fleet (template layout; ``z_size`` is the template's).
        """
        return self.state.init_from_z(self.batch.pack_z(pool))

    def iterate(self, iterations: int, timers: KernelTimers | None = None) -> None:
        """Advance the whole fleet a fixed number of sweeps (benchmark mode)."""
        self._solver.iterate(iterations, timers)

    # ------------------------------------------------------------------ #
    def solve_batch(
        self,
        max_iterations: int = 1000,
        eps_abs: float = 1e-6,
        eps_rel: float = 1e-4,
        check_every: int = 10,
        init: str = "keep",
        seed: int | None = None,
    ) -> list[ADMMResult]:
        """Iterate until every instance converges or the iteration cap.

        Returns one :class:`ADMMResult` per instance.  ``iterations`` and
        ``residuals`` of a converged instance are frozen at the check where
        it first converged (it keeps sweeping afterwards, so its returned
        ``z`` reflects the final iterate — at least as tight).  The shared
        ``timers``/``wall_time`` cover the whole fleet run.
        """
        if max_iterations < 0:
            raise ValueError(f"max_iterations must be >= 0, got {max_iterations}")
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        self.initialize(init, seed=seed)
        B = self.batch.batch_size
        schedules = [copy.deepcopy(self.schedule) for _ in range(B)]
        for s in schedules:
            s.reset()

        state = self.state
        graph = self.batch.graph
        backend = self.backend
        timers = KernelTimers()
        histories = [SolveHistory() for _ in range(B)]
        active = np.ones(B, dtype=bool)
        frozen_iterations = np.full(B, -1, dtype=np.int64)
        last_residuals: list[Residuals | None] = [None] * B
        rho_by_instance = self.batch.split_edges(state.rho)
        t0 = time.perf_counter()

        if max_iterations == 0:
            # Same contract as ADMMSolver.solve(max_iterations=0): residuals
            # of the initial iterate, computed once, converged=False.
            res = per_instance_residuals(
                self.batch, state, state.z, eps_abs, eps_rel
            )
            for i in range(B):
                histories[i].append(res[i], None, float(rho_by_instance[i].mean()))
                last_residuals[i] = res[i]

        while state.iteration < max_iterations:
            block = min(check_every, max_iterations - state.iteration)
            if block > 1:
                backend.run(graph, state, block - 1, timers)
            z_prev = state.z.copy()
            backend.run(graph, state, 1, timers)
            res = per_instance_residuals(self.batch, state, z_prev, eps_abs, eps_rel)
            rho_by_instance = self.batch.split_edges(state.rho)
            for i in np.flatnonzero(active):
                last_residuals[i] = res[i]
                histories[i].append(res[i], None, float(rho_by_instance[i].mean()))
                if res[i].converged:
                    frozen_iterations[i] = state.iteration
                    active[i] = False
            if not active.any():
                break
            # Per-instance ρ adaptation; frozen instances keep scale 1.
            scale = np.ones(graph.num_edges)
            changed = False
            for i in np.flatnonzero(active):
                s = float(schedules[i].rho_scale(state, res[i]))
                if s != 1.0:
                    scale[self.batch.edge_index[i]] = s
                    changed = True
            if changed:
                apply_rho_scale(state, scale)

        wall = time.perf_counter() - t0
        results = []
        for i in range(B):
            converged = frozen_iterations[i] >= 0
            results.append(
                ADMMResult(
                    solution=self.batch.instance_solution(state.z, i),
                    z=state.z[self.batch.z_slice(i)].copy(),
                    converged=bool(converged),
                    iterations=int(
                        frozen_iterations[i] if converged else state.iteration
                    ),
                    residuals=last_residuals[i],
                    history=histories[i],
                    timers=timers,
                    wall_time=wall,
                )
            )
        return results

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release backend resources (worker pools)."""
        self._solver.close()

    def __enter__(self) -> "BatchedSolver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
