"""Fleet solving: one ADMM driver advancing many independent instances.

:class:`BatchedSolver` runs Algorithm 2 on the block-diagonal graph of a
:class:`repro.graph.batch.GraphBatch`.  The inner loop is unchanged — any
backend sweeps the batched graph exactly as it would a single instance; the
batching win is that one vectorized sweep advances all ``B`` problems.  The
*outer* loop becomes per-instance:

* residuals and stopping thresholds are evaluated per instance (restricted
  to that instance's slots, identical to a solo
  :func:`repro.core.residuals.compute_residuals` on its subgraph);
* an instance that converges is **frozen**: it drops out of the ρ-schedule
  and the convergence bookkeeping but keeps sweeping with the fleet (its
  iterate only tightens further — lanes stay full, matching the paper's
  fine-grained-parallelism thesis);
* the penalty schedule runs one independent copy per instance, applied
  through per-edge ρ scaling so converged instances are untouched;
* :meth:`BatchedSolver.warm_start_pool` seeds each instance from a pool of
  previous solutions (cycled when smaller than the fleet — the real-time
  MPC pattern, fleet-sized);
* the fleet is **elastic**: :meth:`BatchedSolver.add_instances` /
  :meth:`BatchedSolver.remove_instances` (via :func:`carry_state`) grow or
  shrink a running fleet between solves while surviving instances keep
  their iterates, duals, and per-edge penalties bit-for-bit.

``solve_batch`` returns one :class:`ADMMResult` per instance, byte-for-byte
comparable to solving that instance alone for the same iteration count.
:class:`repro.core.sharded.ShardedBatchedSolver` scales the same outer loop
across worker processes, one contiguous instance block per shard.
"""

from __future__ import annotations

import copy
import time

import numpy as np

from repro.core.diagnostics import ADMMResult, SolveHistory
from repro.core.parameters import ConstantPenalty, PenaltySchedule, apply_rho_scale
from repro.core.residuals import Residuals
from repro.core.solver import ADMMSolver
from repro.core.state import ADMMState
from repro.graph.batch import GraphBatch
from repro.obs.events import (
    default_tracer,
    now as monotonic_now,
    segment_events,
)
from repro.utils.timing import KernelTimers


def per_instance_residuals(
    batch: GraphBatch,
    state: ADMMState,
    z_prev: np.ndarray,
    eps_abs: float = 1e-6,
    eps_rel: float = 1e-4,
) -> list[Residuals]:
    """Residuals of every instance at the current iterate (one pass).

    Each entry equals :func:`repro.core.residuals.compute_residuals` run on
    the instance's subgraph: norms are restricted to the instance's slots
    and thresholds use the *template* edge count.
    """
    g = batch.graph
    S = batch.slot_index  # (B, S_t) gather map
    zmap = state.z[g.flat_edge_to_z]
    primal = np.linalg.norm((state.x - zmap)[S], axis=1)
    dual_vec = state.rho_slots * (zmap - z_prev[g.flat_edge_to_z])
    dual = np.linalg.norm(dual_vec[S], axis=1)
    x_norm = np.linalg.norm(state.x[S], axis=1)
    z_norm = np.linalg.norm(zmap[S], axis=1)
    u_norm = np.linalg.norm((state.rho_slots * state.u)[S], axis=1)
    sqrt_n = float(np.sqrt(max(batch.template.edge_size, 1)))
    eps_primal = sqrt_n * eps_abs + eps_rel * np.maximum(x_norm, z_norm)
    eps_dual = sqrt_n * eps_abs + eps_rel * u_norm
    return [
        Residuals(
            primal=float(primal[i]),
            dual=float(dual[i]),
            eps_primal=float(eps_primal[i]),
            eps_dual=float(eps_dual[i]),
            iteration=state.iteration,
        )
        for i in range(batch.batch_size)
    ]


def normalize_pool(pool, batch_size: int, z_size: int) -> np.ndarray:
    """Normalize a warm-start pool to one ``(B, z_size)`` row per instance.

    Accepts a ``(P, z_size)`` matrix or length-``P`` sequence for any
    ``P >= 1`` — a pool smaller than the fleet is *cycled* (instance ``i``
    takes row ``i % P``, the round-robin reuse pattern of a solution cache
    that has not seen every instance yet; a pool larger than the fleet
    contributes its first ``B`` rows by the same rule).  A single
    ``(z_size,)`` vector broadcasts to every instance.
    """
    arr = np.asarray(
        pool if not isinstance(pool, (list, tuple))
        else np.stack([np.asarray(v, dtype=np.float64) for v in pool]),
        dtype=np.float64,
    )
    if arr.shape == (z_size,):
        return np.broadcast_to(arr, (batch_size, z_size))
    if arr.ndim != 2 or arr.shape[1] != z_size or arr.shape[0] < 1:
        raise ValueError(
            f"pool must be ({z_size},), or (P, {z_size}) with P >= 1; "
            f"got shape {arr.shape}"
        )
    if arr.shape[0] == batch_size:
        return arr
    return arr[np.arange(batch_size) % arr.shape[0]]


def carry_state(
    old_batch: GraphBatch,
    old_state: ADMMState,
    new_batch: GraphBatch,
    sources,
    fresh_rho=1.0,
    fresh_alpha=1.0,
) -> ADMMState:
    """Map per-instance iterates from one batch layout to another.

    ``sources[j]`` names the old instance whose state seeds new instance
    ``j``, or ``-1`` for a cold instance (all-zeros iterate, ``fresh_rho`` /
    ``fresh_alpha`` penalties — scalar or template-per-edge ``(E_t,)``).
    Carried instances keep their x/m/u/n/z families, per-edge ρ/α, *and*
    the scaled dual ``u`` bit-for-bit: because every per-instance quantity
    is gathered through the index maps, a carried instance's subsequent
    sweeps are identical to the ones it would have taken in the old batch.
    The fleet iteration counter is carried so segmented solves stay aligned
    across elastic resizes.  TWA certainty weights are transient (recomputed
    by the next x-update) and are not carried.
    """
    if old_batch.template is not new_batch.template and (
        old_batch.template.num_factors != new_batch.template.num_factors
        or old_batch.template.z_size != new_batch.template.z_size
    ):
        raise ValueError("old and new batches must share a template layout")
    sources = np.asarray(sources, dtype=np.int64)
    if sources.shape != (new_batch.batch_size,):
        raise ValueError(
            f"sources must have shape ({new_batch.batch_size},), "
            f"got {sources.shape}"
        )
    if np.any(sources >= old_batch.batch_size) or np.any(sources < -1):
        raise ValueError(
            "sources must be old instance ids in [0, old B) or the cold "
            "sentinel -1"
        )

    new_graph = new_batch.graph
    state = ADMMState(new_graph)
    rho = np.empty(new_graph.num_edges)
    alpha = np.empty(new_graph.num_edges)
    for arr, fresh in ((rho, fresh_rho), (alpha, fresh_alpha)):
        fresh_arr = np.asarray(fresh, dtype=np.float64)
        if fresh_arr.ndim == 0:
            arr.fill(float(fresh_arr))
        elif fresh_arr.shape == (new_batch.template.num_edges,):
            arr[new_batch.edge_index] = fresh_arr
        else:
            raise ValueError(
                f"fresh penalty must be scalar or "
                f"({new_batch.template.num_edges},), got {fresh_arr.shape}"
            )

    carried = np.flatnonzero(sources >= 0)
    if carried.size:
        old_ids = sources[carried]
        new_slots = new_batch.slot_index[carried].reshape(-1)
        old_slots = old_batch.slot_index[old_ids].reshape(-1)
        for family in ("x", "m", "u", "n"):
            getattr(state, family)[new_slots] = getattr(old_state, family)[old_slots]
        zt = new_batch.template.z_size
        state.z.reshape(new_batch.batch_size, zt)[carried] = (
            old_state.z.reshape(old_batch.batch_size, zt)[old_ids]
        )
        rho[new_batch.edge_index[carried]] = (
            old_state.rho[old_batch.edge_index[old_ids]]
        )
        alpha[new_batch.edge_index[carried]] = (
            old_state.alpha[old_batch.edge_index[old_ids]]
        )
    state.set_rho(rho)
    state.set_alpha(alpha)
    state.iteration = old_state.iteration
    return state


class BatchedSolver:
    """Lockstep ADMM over a :class:`GraphBatch` of independent instances.

    Parameters mirror :class:`repro.core.solver.ADMMSolver`; ``schedule`` is
    deep-copied per instance so stateful schedules (e.g. residual balancing)
    adapt each problem independently.  ``rho`` additionally accepts a
    ``(B,)`` per-instance or ``(B, E_t)`` per-instance-per-edge array.

    ``tracer`` (a :class:`repro.obs.events.Tracer`) records the solve
    timeline: one segment span per convergence-check block with per-kernel
    sub-spans, a freeze point per newly converged instance, and one solve
    span.  Defaults to :func:`repro.obs.events.default_tracer` (off unless
    ``REPRO_TRACE`` is set); tracing never changes the math.
    """

    def __init__(
        self,
        batch: GraphBatch,
        backend=None,
        rho=1.0,
        alpha=1.0,
        schedule: PenaltySchedule | None = None,
        tracer=None,
    ) -> None:
        self.batch = batch
        self.tracer = tracer if tracer is not None else default_tracer()
        rho_arr = np.asarray(rho, dtype=np.float64)
        if rho_arr.ndim and rho_arr.shape[0] == batch.batch_size and rho_arr.shape != (
            batch.graph.num_edges,
        ):
            rho = batch.instance_rho(rho_arr)
        # Delegates signature validation, state construction, and backend
        # preparation; the batched outer loop below replaces .solve().
        self._solver = ADMMSolver(batch.graph, backend=backend, rho=rho, alpha=alpha)
        self.schedule = schedule if schedule is not None else ConstantPenalty()
        # Construction-time penalties, in template edge order: the defaults
        # cold instances receive when the fleet grows (schedule drift on the
        # running fleet must not leak into newcomers).
        self._fresh_rho = self.batch.split_edges(self.state.rho)[0].copy()
        self._fresh_alpha = self.batch.split_edges(self.state.alpha)[0].copy()

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> ADMMState:
        return self._solver.state

    @property
    def backend(self):
        return self._solver.backend

    @property
    def graph(self):
        return self.batch.graph

    @property
    def batch_size(self) -> int:
        return self.batch.batch_size

    # ------------------------------------------------------------------ #
    def initialize(self, how: str = "zeros", **kwargs) -> ADMMState:
        """(Re-)initialize the fleet iterate (see ``ADMMSolver.initialize``)."""
        return self._solver.initialize(how, **kwargs)

    def warm_start_pool(self, pool) -> ADMMState:
        """Seed every instance from a pool of previous solutions.

        ``pool`` is a ``(P, z_size)`` matrix or length-``P`` sequence of
        per-instance z vectors for any ``P >= 1``, or one ``(z_size,)``
        vector broadcast to the whole fleet (template layout; ``z_size`` is
        the template's).  A pool smaller than the fleet — the steady state
        of a solution cache while a fleet grows — is cycled: instance ``i``
        is seeded from row ``i % P``.
        """
        rows = normalize_pool(pool, self.batch.batch_size, self.batch.template.z_size)
        return self.state.init_from_z(self.batch.pack_z(rows))

    # ------------------------------------------------------------------ #
    # Elastic fleet: grow/shrink between solves, preserving iterates.      #
    # ------------------------------------------------------------------ #
    def add_instances(self, new_instances, rho=None, alpha=None) -> None:
        """Grow the fleet in place, appending cold instances.

        ``new_instances`` is a count or a sequence of per-factor override
        mappings (see :meth:`GraphBatch.add_instances`).  Existing instances
        keep their iterates, duals, and per-edge penalties bit-for-bit; new
        instances start from zeros with ``rho``/``alpha`` penalties.  The
        default is the fleet's construction-time values — so schedule drift
        on the running fleet does not leak into newcomers — taken from
        *instance 0's* row; if the fleet was constructed with per-instance
        penalties, pass ``rho``/``alpha`` explicitly rather than relying on
        that arbitrary choice.
        """
        new_batch = self.batch.add_instances(new_instances)
        n_new = new_batch.batch_size - self.batch.batch_size
        sources = list(range(self.batch.batch_size)) + [-1] * n_new
        self._adopt(new_batch, sources, rho, alpha)

    def remove_instances(self, drop) -> None:
        """Shrink the fleet in place, dropping the given instances.

        Survivors keep their relative order and their iterates, duals, and
        per-edge penalties bit-for-bit — with a deterministic backend their
        subsequent sweeps are identical to the ones they would have taken
        in the unshrunk fleet.  (A batch-bound randomized backend re-binds
        to the new layout and restarts its per-instance streams from their
        seeds, so post-resize *randomized* trajectories are freshly seeded,
        not a continuation.)
        """
        dropset = {int(i) for i in drop}
        survivors = [
            i for i in range(self.batch.batch_size) if i not in dropset
        ]
        new_batch = self.batch.remove_instances(dropset)
        self._adopt(new_batch, survivors, None, None)

    def _adopt(self, new_batch: GraphBatch, sources, rho, alpha) -> None:
        """Swap in a resized batch, carrying per-instance state across."""
        state = carry_state(
            self.batch,
            self.state,
            new_batch,
            sources,
            fresh_rho=self._fresh_rho if rho is None else rho,
            fresh_alpha=self._fresh_alpha if alpha is None else alpha,
        )
        backend = self.backend
        # Rebuild the inner driver on the new graph; the backend is reused
        # (its prepare() re-plans for the new graph, re-forking workers if
        # it owns any).  Batch-bound backends re-bind to the resized batch
        # first; their per-instance streams restart for the new layout.
        rebind = getattr(backend, "rebind", None)
        if rebind is not None:
            rebind(new_batch)
        self._solver = ADMMSolver(new_batch.graph, backend=backend)
        self._solver.state = state
        self.batch = new_batch

    def iterate(self, iterations: int, timers: KernelTimers | None = None) -> None:
        """Advance the whole fleet a fixed number of sweeps (benchmark mode)."""
        self._solver.iterate(iterations, timers)

    # ------------------------------------------------------------------ #
    def solve_batch(
        self,
        max_iterations: int = 1000,
        eps_abs: float = 1e-6,
        eps_rel: float = 1e-4,
        check_every: int = 10,
        init: str = "keep",
        seed: int | None = None,
    ) -> list[ADMMResult]:
        """Iterate until every instance converges or the iteration cap.

        Returns one :class:`ADMMResult` per instance.  ``iterations`` and
        ``residuals`` of a converged instance are frozen at the check where
        it first converged (it keeps sweeping afterwards, so its returned
        ``z`` reflects the final iterate — at least as tight).  The shared
        ``timers``/``wall_time`` cover the whole fleet run.

        :meth:`ShardedBatchedSolver.solve_batch` mirrors this outer loop
        shard-locally; behavioral changes must be made in both (parity is
        pinned by ``tests/test_fleet_sharding.py::TestMatchesBatched``).
        """
        if max_iterations < 0:
            raise ValueError(f"max_iterations must be >= 0, got {max_iterations}")
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        self.initialize(init, seed=seed)
        B = self.batch.batch_size
        schedules = [copy.deepcopy(self.schedule) for _ in range(B)]
        for s in schedules:
            s.reset()

        state = self.state
        graph = self.batch.graph
        backend = self.backend
        timers = KernelTimers()
        histories = [SolveHistory() for _ in range(B)]
        active = np.ones(B, dtype=bool)
        frozen_iterations = np.full(B, -1, dtype=np.int64)
        last_residuals: list[Residuals | None] = [None] * B
        rho_by_instance = self.batch.split_edges(state.rho)
        tracer = self.tracer
        t0 = time.perf_counter()
        solve_t0 = monotonic_now()

        if state.iteration >= max_iterations:
            # No sweeps will run (max_iterations == 0, or a kept iterate
            # already past the cap) — same contract as
            # ADMMSolver.solve(max_iterations=0): residuals of the current
            # iterate, computed once, converged=False.
            res = per_instance_residuals(
                self.batch, state, state.z, eps_abs, eps_rel
            )
            for i in range(B):
                histories[i].append(res[i], None, float(rho_by_instance[i].mean()))
                last_residuals[i] = res[i]

        while state.iteration < max_iterations:
            block = min(check_every, max_iterations - state.iteration)
            segment = state.iteration
            pre = timers.elapsed_by_kind() if tracer is not None else None
            seg_t0 = monotonic_now()
            if block > 1:
                backend.run(graph, state, block - 1, timers)
            z_prev = state.z.copy()
            backend.run(graph, state, 1, timers)
            if tracer is not None:
                post = timers.elapsed_by_kind()
                tracer.extend(
                    segment_events(
                        worker=0,
                        segment=segment,
                        t0=seg_t0,
                        t1=monotonic_now(),
                        sweeps=block,
                        kernel_seconds={k: post[k] - pre[k] for k in post},
                    )
                )
            res = per_instance_residuals(self.batch, state, z_prev, eps_abs, eps_rel)
            rho_by_instance = self.batch.split_edges(state.rho)
            for i in np.flatnonzero(active):
                last_residuals[i] = res[i]
                histories[i].append(res[i], None, float(rho_by_instance[i].mean()))
                if res[i].converged:
                    frozen_iterations[i] = state.iteration
                    active[i] = False
                    if tracer is not None:
                        tracer.point(
                            "freeze",
                            f"instance {i}",
                            segment=state.iteration,
                            instance=int(i),
                        )
            if not active.any():
                break
            # Per-instance ρ adaptation; frozen instances keep scale 1.
            scale = np.ones(graph.num_edges)
            changed = False
            for i in np.flatnonzero(active):
                s = float(schedules[i].rho_scale(state, res[i]))
                if s != 1.0:
                    scale[self.batch.edge_index[i]] = s
                    changed = True
            if changed:
                apply_rho_scale(state, scale)

        wall = time.perf_counter() - t0
        if tracer is not None:
            tracer.add_span(
                "solve",
                f"batched solve B={B}",
                solve_t0,
                monotonic_now(),
                segment=state.iteration,
                converged=int((frozen_iterations >= 0).sum()),
            )
        results = []
        for i in range(B):
            converged = frozen_iterations[i] >= 0
            results.append(
                ADMMResult(
                    solution=self.batch.instance_solution(state.z, i),
                    z=state.z[self.batch.z_slice(i)].copy(),
                    converged=bool(converged),
                    iterations=int(
                        frozen_iterations[i] if converged else state.iteration
                    ),
                    residuals=last_residuals[i],
                    history=histories[i],
                    timers=timers,
                    wall_time=wall,
                )
            )
        return results

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release backend resources (worker pools)."""
        self._solver.close()

    def __enter__(self) -> "BatchedSolver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
