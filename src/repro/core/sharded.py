"""Sharded fleet solving: contiguous instance blocks on parallel workers.

:class:`repro.core.batched.BatchedSolver` advances a whole fleet with one
vectorized sweep — fine-grained parallelism *within* one process.  This
module adds the next axis the ROADMAP names: split a
:class:`~repro.graph.batch.GraphBatch` into contiguous **instance-block
shards** and drive one worker per shard, so a fleet scales across cores
(process mode) the way a single graph scales across SIMD lanes.

Sharding exploits the batch layout guarantees:

* variables are instance-major, so a shard covering instances ``[lo, hi)``
  owns one contiguous z block of the fleet iterate (``fleet_z`` is a plain
  concatenation of shard z arrays, and splitting costs nothing);
* every instance records its exact factor parameters, so
  :meth:`GraphBatch.select_instances` re-replicates a shard's sub-batch
  whose per-instance math is bit-identical to the unsharded fleet's.

Workers run the *vectorized* sweep over their shard's block-diagonal
sub-graph (not the per-element loops of
:class:`~repro.backends.process.ProcessBackend`): each shard is itself a
batched fleet, so the paper's memory-coalesced fast path is preserved
inside every worker.  Two execution modes:

``process``
    one forked OS process per shard, iterate in shared memory, commands
    over queues — true multicore scaling, the production mode;
``thread``
    one pool thread per shard — no fork cost, concurrency limited to the
    GIL-released portions of NumPy kernels, the portable/debug mode.

The outer loop stays per-instance exactly as in ``BatchedSolver``:
residuals, stopping masks, and ρ-schedules are evaluated per instance and
aggregated across shards (a shard whose every instance froze still sweeps
with the fleet).  All three sweep variants run through the same path:
``classic`` (Algorithm 2), ``three_weight``
(:func:`repro.core.three_weight.run_iterations_twa`), and ``async``
(randomized-block sweeps with the per-instance streams of
:class:`repro.core.async_admm.FleetSweepPlan`, seeded by *global* instance
index so sharded == unsharded == solo).

Workers are supervised (:mod:`repro.core.supervision`): they emit
heartbeats on the result queue while sweeping, the parent checks liveness
at every ``WorkerPolicy.poll_interval``, and a worker that dies or goes
silent is **restarted and its segment replayed** — the parent holds the
authoritative iterate and re-pushes it into shared memory, and the async
variant's streams are fast-forwarded to the shard's completed draw count,
so a recovered run is bit-identical to an unfailed one.  Every crash and
restart is recorded in :attr:`ShardedBatchedSolver.fault_log`; when the
restart budget is exhausted the solve fails (fixed contiguous shards have
nowhere to migrate — :class:`~repro.core.rebalance.RebalancingShardedSolver`
adds roster failover on top of this).
"""

from __future__ import annotations

import copy
import multiprocessing as mp
import time
from concurrent.futures import ThreadPoolExecutor, wait

import numpy as np

from repro.core import updates
from repro.core.async_admm import FleetSweepPlan, run_iteration_async
from repro.core.batched import normalize_pool, per_instance_residuals
from repro.core.diagnostics import ADMMResult, SolveHistory
from repro.core.parameters import ConstantPenalty, PenaltySchedule, apply_rho_scale
from repro.core.residuals import Residuals
from repro.core.state import ADMMState
from repro.core.supervision import (
    FaultLog,
    WorkerFault,
    WorkerPolicy,
    close_queue,
    collect_reply,
    heartbeat,
    reap_process,
)
from repro.core.three_weight import run_iterations_twa
from repro.graph.batch import GraphBatch
from repro.graph.partition import contiguous_chunks
from repro.obs.events import (
    PARENT,
    EventRing,
    default_tracer,
    now as monotonic_now,
    segment_events,
)
from repro.utils.rng import DEFAULT_SEED
from repro.utils.timing import UPDATE_KINDS, KernelTimers

VARIANTS = ("classic", "three_weight", "async")
MODES = ("process", "thread")


def run_variant_sweeps(
    graph, state: ADMMState, iterations: int, variant: str, plan=None, timers=None
) -> None:
    """Advance ``state`` by ``iterations`` sweeps of the chosen variant.

    The single sweep loop shared by both shard execution modes; ``plan``
    (a :class:`FleetSweepPlan`) is required for the ``async`` variant.
    With ``timers`` (a :class:`~repro.utils.timing.KernelTimers`), each
    sweep accumulates per-kernel time — same math either way, so timed
    runs stay bit-identical.
    """
    if variant == "classic":
        if timers is None:
            for _ in range(iterations):
                updates.run_iteration(graph, state)
        else:
            for _ in range(iterations):
                updates.run_iteration_timed(graph, state, timers)
    elif variant == "three_weight":
        run_iterations_twa(graph, state, iterations, timers)
    elif variant == "async":
        if plan is None:
            raise ValueError("the async variant needs a FleetSweepPlan")
        for _ in range(iterations):
            run_iteration_async(graph, state, plan.draw(), timers)
    else:
        raise ValueError(f"unknown variant {variant!r}; use one of {VARIANTS}")


# The shared-memory mirror follows repro.backends.process.shared_state_buffers
# order: x, m, u, n, z, rho, alpha.  These three helpers are the only places
# that order is spelled out.


def _push_shared(views, state: ADMMState) -> None:
    """Parent -> shared: the full iterate plus penalties."""
    for view, arr in zip(
        views,
        (state.x, state.m, state.u, state.n, state.z, state.rho, state.alpha),
    ):
        view[:] = arr


def _pull_families(views, state: ADMMState) -> None:
    """Shared -> state: the five families a sweep advances (x, m, u, n, z)."""
    for view, arr in zip(views[:5], (state.x, state.m, state.u, state.n, state.z)):
        arr[:] = view


def _push_families(views, state: ADMMState) -> None:
    """State -> shared: the five families a sweep advances."""
    for view, arr in zip(views[:5], (state.x, state.m, state.u, state.n, state.z)):
        view[:] = arr


# Public names for the mirror helpers: the rebalancing solver's
# shared-memory transport (repro.core.rebalance) drives the same
# push/pull protocol over capacity-bound buffers.
push_shared = _push_shared
pull_families = _pull_families
push_families = _push_families


def _shard_worker_main(
    graph,
    variant,
    plan,
    raws,
    sizes,
    cmd_q,
    done_q,
    heartbeat_interval=None,
    worker_id=0,
):
    """Worker loop: vectorized variant sweeps over this shard's sub-graph.

    The iterate lives in shared memory; every run command reloads it (the
    parent may have warm-started, frozen, or ρ-rescaled instances between
    runs) and writes the advanced families back.  Exceptions are reported
    back on ``done_q`` (the worker survives them), so a bad per-instance
    parameter fails the fleet solve instead of hanging it.  While a sweep
    runs, a heartbeat thread signals liveness on ``done_q`` so the parent
    can tell a slow shard from a hung one.

    Run commands are ``("run", iterations, want_timers, want_trace,
    segment)``; the reply payload is ``(elapsed, kernel_seconds | None,
    events, dropped)``.  When the parent asks for timing/tracing, sweeps
    run with per-kernel timers and the resulting events — one segment
    span plus per-kernel spans on the shared monotonic clock — are
    buffered in a bounded :class:`~repro.obs.events.EventRing` and
    shipped back piggybacked on the ordinary reply at the segment
    boundary.  Untraced runs take the exact pre-existing path.
    """
    from repro.backends.process import _as_np

    views = [_as_np(r)[:s] for r, s in zip(raws, sizes)]
    state = ADMMState(graph)
    ring = EventRing(1 << 12)
    while True:
        cmd = cmd_q.get()
        if cmd[0] == "stop":
            return
        iterations = cmd[1]
        want_timers = len(cmd) > 2 and cmd[2]
        want_trace = len(cmd) > 3 and cmd[3]
        segment = cmd[4] if len(cmd) > 4 else 0
        ktimers = KernelTimers() if (want_timers or want_trace) else None
        try:
            _pull_families(views, state)
            state.set_rho(views[5].copy())
            state.set_alpha(views[6].copy())
            t0 = time.perf_counter()
            m0 = monotonic_now()
            with heartbeat(done_q, heartbeat_interval):
                run_variant_sweeps(graph, state, iterations, variant, plan, ktimers)
            elapsed = time.perf_counter() - t0
        except Exception as err:  # noqa: BLE001 - relayed to the parent
            done_q.put(("error", f"{type(err).__name__}: {err}"))
            continue
        _push_families(views, state)
        events: tuple = ()
        dropped = 0
        if want_trace:
            ring.extend(
                segment_events(
                    worker=worker_id,
                    segment=segment,
                    t0=m0,
                    t1=monotonic_now(),
                    sweeps=iterations,
                    kernel_seconds=ktimers.elapsed_by_kind(),
                )
            )
            events = tuple(ring.drain())
            dropped = ring.dropped
        kernels = ktimers.elapsed_by_kind() if ktimers is not None else None
        done_q.put(("ok", (elapsed, kernels, events, dropped)))


class _Shard:
    """One contiguous instance block: its sub-batch, state, and worker."""

    def __init__(self, sub_batch: GraphBatch, lo: int, hi: int) -> None:
        self.batch = sub_batch
        self.lo = lo
        self.hi = hi
        self.state: ADMMState | None = None
        self.plan: FleetSweepPlan | None = None
        # process-mode plumbing
        self.proc: mp.Process | None = None
        self.views: list[np.ndarray] = []
        self.raws = []
        self.sizes: list[int] = []
        self.cmd_q = None
        self.done_q = None
        # async-variant draws the worker has consumed (completed runs only);
        # a restarted worker's fresh plan is fast-forwarded to this count.
        self.draws_done = 0

    @property
    def size(self) -> int:
        return self.hi - self.lo


class ShardedBatchedSolver:
    """Fleet ADMM over instance-block shards, one parallel worker each.

    Parameters mirror :class:`~repro.core.batched.BatchedSolver`; ``rho``
    additionally accepts ``(B,)`` per-instance or ``(B, E_t)``
    per-instance-per-edge arrays (fleet order — the solver routes each
    shard its rows).  ``variant`` selects the sweep math (``classic`` /
    ``three_weight`` / ``async``); ``fraction``/``seed`` parameterize the
    async variant's per-instance randomized streams.

    Per-instance results are numerically identical to a plain
    ``BatchedSolver`` (and to solo solves) for every variant — sharding
    changes *where* a shard's sweeps execute, never their math.

    ``policy`` (a :class:`~repro.core.supervision.WorkerPolicy`) tunes the
    process-mode supervision: heartbeat period, silence budget, liveness
    poll granularity, and the restart budget.  A worker that dies or goes
    silent mid-run is restarted and its segment replayed from the
    parent-held iterate — bit-identical, since sweeps are deterministic —
    with every crash and restart recorded in :attr:`fault_log`.
    ``injector`` (see :mod:`repro.testing.faults`) hooks fault injection
    into each run dispatch for chaos testing; process mode only.

    ``tracer`` (a :class:`repro.obs.Tracer`) turns on fleet tracing:
    workers measure per-kernel time and ship segment/kernel events back
    with their replies, and faults emit onto the same timeline.  Defaults
    to :func:`repro.obs.default_tracer` — ``None`` (off) unless the
    ``REPRO_TRACE`` environment switch is set.  Tracing never changes the
    math; traced solves are bit-identical.
    """

    def __init__(
        self,
        batch: GraphBatch,
        num_shards: int = 2,
        mode: str = "process",
        variant: str = "classic",
        rho=1.0,
        alpha=1.0,
        schedule: PenaltySchedule | None = None,
        fraction: float = 0.5,
        seed: int | None = None,
        policy: WorkerPolicy | None = None,
        injector=None,
        tracer=None,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if variant not in VARIANTS:
            raise ValueError(
                f"variant must be one of {VARIANTS}, got {variant!r}"
            )
        if not 1 <= num_shards <= batch.batch_size:
            raise ValueError(
                f"num_shards must be in [1, {batch.batch_size}], got {num_shards}"
            )
        if injector is not None and mode != "process":
            raise ValueError(
                "fault injection drives worker processes; use mode='process'"
            )
        self.batch = batch
        self.mode = mode
        self.variant = variant
        self.num_shards = int(num_shards)
        self.schedule = schedule if schedule is not None else ConstantPenalty()
        self.policy = policy if policy is not None else WorkerPolicy()
        self.injector = injector
        self.tracer = tracer if tracer is not None else default_tracer()
        self.fault_log = FaultLog(tracer=self.tracer)
        self._fraction = float(fraction)
        self._seed_base = DEFAULT_SEED if seed is None else int(seed)
        self._closed = False
        self._pool: ThreadPoolExecutor | None = None

        self.shards: list[_Shard] = []
        for lo, hi in contiguous_chunks(batch.batch_size, self.num_shards):
            shard = _Shard(batch.select_instances(range(lo, hi)), lo, hi)
            shard.state = ADMMState(
                shard.batch.graph,
                rho=self._shard_edge_param(rho, shard, "rho"),
                alpha=self._shard_edge_param(alpha, shard, "alpha"),
            )
            if variant == "async":
                # Global-instance seeding: shard [lo, hi) draws exactly the
                # streams the unsharded fleet (and B solo solves) would.
                base = DEFAULT_SEED if seed is None else seed
                shard.plan = FleetSweepPlan(
                    shard.batch, fraction, base, instance_offset=lo
                )
            self.shards.append(shard)

        if mode == "process":
            self._start_workers()
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_shards, thread_name_prefix="paradmm-shard"
            )

    # ------------------------------------------------------------------ #
    def _shard_edge_param(self, value, shard: _Shard, name: str):
        """Route a fleet-level ρ/α argument to one shard's edge layout."""
        try:
            arr = np.asarray(value, dtype=np.float64)
        except (ValueError, TypeError):
            arr = None  # ragged per-instance rows (mixed-template fleets)
        if arr is not None and arr.ndim == 0:
            return float(arr)
        B = self.batch.batch_size
        if arr is not None and arr.shape == (B,):
            return shard.batch.instance_rho(arr[shard.lo : shard.hi])
        if self.batch.uniform:
            Et = self.batch.template.num_edges
            if arr is not None and arr.shape == (B, Et):
                return shard.batch.instance_rho(arr[shard.lo : shard.hi])
            got = f"shape {arr.shape}" if arr is not None else f"{value!r}"
            raise ValueError(
                f"{name} must be scalar, ({B},) per-instance, or ({B}, {Et}) "
                f"per-instance-per-edge; got {got}"
            )
        rows = value if isinstance(value, (list, tuple)) else list(value)
        if len(rows) != B:
            raise ValueError(
                f"{name} for a mixed-template fleet must be scalar, ({B},) "
                f"per-instance, or a length-{B} sequence of per-instance "
                f"rows; got a sequence of length {len(rows)}"
            )
        return shard.batch.instance_rho(
            [rows[i] for i in range(shard.lo, shard.hi)]
        )

    def _start_workers(self) -> None:
        from repro.backends.process import shared_state_buffers

        self._ctx = mp.get_context("fork")
        for shard in self.shards:
            shard.raws, shard.views, shard.sizes = shared_state_buffers(
                self._ctx, shard.batch.graph
            )
            self._spawn_shard_worker(shard)

    def _worker_plan(self, shard: _Shard) -> FleetSweepPlan | None:
        """A fresh sweep plan for a (re)started worker, fast-forwarded.

        The forked worker owns its plan copy and advances it run by run;
        the parent only tracks the consumed draw count.  A replacement
        worker gets a fresh plan advanced by ``shard.draws_done``, so its
        next draw is exactly the one the dead worker would have made —
        replayed runs stay bit-identical.
        """
        if self.variant != "async":
            return None
        plan = FleetSweepPlan(
            shard.batch, self._fraction, self._seed_base, instance_offset=shard.lo
        )
        for _ in range(shard.draws_done):
            plan.draw()
        return plan

    def _spawn_shard_worker(self, shard: _Shard) -> None:
        """Fork one worker for ``shard`` on fresh queues (initial or restart).

        Fresh queues matter on restart: a command the dead worker never
        consumed must not be replayed by its replacement.
        """
        shard.cmd_q = self._ctx.Queue()
        shard.done_q = self._ctx.Queue()
        shard.proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(
                shard.batch.graph,
                self.variant,
                self._worker_plan(shard),
                shard.raws,
                shard.sizes,
                shard.cmd_q,
                shard.done_q,
                self.policy.heartbeat_interval,
                self.shards.index(shard),
            ),
            daemon=True,
        )
        shard.proc.start()

    # ------------------------------------------------------------------ #
    @property
    def batch_size(self) -> int:
        return self.batch.batch_size

    @property
    def iteration(self) -> int:
        """Completed fleet sweeps (every shard advances in lockstep)."""
        return self.shards[0].state.iteration

    def shard_bounds(self) -> list[tuple[int, int]]:
        """The contiguous global instance range ``[lo, hi)`` of each shard."""
        return [(s.lo, s.hi) for s in self.shards]

    def fleet_z(self) -> np.ndarray:
        """The fleet iterate in the batched z layout (instance-major).

        Shards cover contiguous instance blocks and variables are
        instance-major, so the fleet z is the plain concatenation of shard
        z arrays — byte-comparable to ``BatchedSolver.state.z``.
        """
        return np.concatenate([s.state.z for s in self.shards])

    def split_z(self) -> np.ndarray:
        """Per-instance rows of the fleet iterate.

        ``(B, z_size)`` for uniform fleets; a length-``B`` object array of
        per-instance vectors for mixed-template fleets.
        """
        if self.batch.uniform:
            return self.fleet_z().reshape(
                self.batch_size, self.batch.template.z_size
            )
        return self.batch.split_z(self.fleet_z())

    def rho_rows(self) -> np.ndarray:
        """Per-instance ρ rows (template edge order).

        ``(B, E_t)`` for uniform fleets; a length-``B`` object array of
        per-instance rows for mixed-template fleets.
        """
        rows = [s.batch.split_edges(s.state.rho) for s in self.shards]
        if self.batch.uniform:
            return np.vstack(rows)
        return np.concatenate(rows)

    def summary(self) -> str:
        sizes = "+".join(str(s.size) for s in self.shards)
        if self.batch.uniform:
            t = self.batch.template
            shape = (
                f"template(|F|={t.num_factors} |V|={t.num_vars} "
                f"|E|={t.num_edges})"
            )
        else:
            n_templates = len({id(t) for t in self.batch.templates})
            shape = f"{n_templates} templates (mixed)"
        return (
            f"ShardedBatchedSolver: B={self.batch_size} as {self.num_shards} "
            f"shards ({sizes}) x {shape}, mode={self.mode}, "
            f"variant={self.variant}"
        )

    # ------------------------------------------------------------------ #
    def initialize(
        self,
        how: str = "zeros",
        low: float = 0.0,
        high: float = 1.0,
        seed: int | None = None,
    ) -> None:
        """(Re-)initialize the fleet iterate: "zeros", "random", or "keep".

        "random" draws one stream per shard (seeded ``seed + lo`` so the
        layout is stable under re-sharding by instance count, though not
        equal to an unsharded random init).
        """
        if how == "zeros":
            for shard in self.shards:
                shard.state.init_zeros()
        elif how == "random":
            base = DEFAULT_SEED if seed is None else seed
            for shard in self.shards:
                shard.state.init_random(low, high, seed=base + shard.lo)
        elif how == "keep":
            pass
        else:
            raise ValueError(f"unknown init {how!r}; use zeros|random|keep")

    def warm_start_pool(self, pool) -> None:
        """Seed every instance from a pool of previous solutions.

        Same contract as :meth:`BatchedSolver.warm_start_pool`, including
        cycling pools smaller than the fleet; rows are routed to the shard
        owning each instance.  Mixed-template fleets take exactly one
        vector per instance (no cycling — rows are instance-shaped).
        """
        if not self.batch.uniform:
            if not isinstance(pool, (np.ndarray, list, tuple)):
                pool = list(pool)
            if len(pool) != self.batch_size:
                raise ValueError(
                    f"mixed-template fleet warm start needs one vector per "
                    f"instance ({self.batch_size}); got {len(pool)}"
                )
            for shard in self.shards:
                shard.state.init_from_z(
                    shard.batch.pack_z(
                        [pool[i] for i in range(shard.lo, shard.hi)]
                    )
                )
            return
        rows = normalize_pool(pool, self.batch_size, self.batch.template.z_size)
        for shard in self.shards:
            shard.state.init_from_z(
                shard.batch.pack_z(rows[shard.lo : shard.hi])
            )

    # ------------------------------------------------------------------ #
    def iterate(self, iterations: int, timers: KernelTimers | None = None) -> None:
        """Advance the whole fleet a fixed number of sweeps (benchmark mode)."""
        if iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {iterations}")
        if iterations:
            self._run_all(iterations, timers)

    def _run_all(self, iterations: int, timers: KernelTimers | None = None) -> None:
        """Advance every shard ``iterations`` sweeps, workers in parallel.

        Any exception — a relayed sweep error, an exhausted restart
        budget, or a ``KeyboardInterrupt`` while waiting on workers —
        closes the solver on the way out: the fleet iterate may no longer
        be consistent across shards, and an interrupted parent must never
        leak worker processes.
        """
        if self._closed:
            raise RuntimeError("solver is closed")
        try:
            failure = self._run_all_inner(iterations, timers)
        except BaseException:
            self.close()
            raise
        if failure is not None:
            self.close()
            raise failure

    def _run_all_inner(
        self, iterations: int, timers: KernelTimers | None
    ) -> Exception | None:
        tracer = self.tracer
        segment = self.iteration
        if self.mode == "process":
            if self.injector is not None:
                self.injector.before_segment(self)
            run_cmd = (
                "run",
                iterations,
                timers is not None,
                tracer is not None,
                segment,
            )
            seg_t0 = monotonic_now()
            for shard in self.shards:
                _push_shared(shard.views, shard.state)
                shard.cmd_q.put(run_cmd)
            # Collect every shard before touching any state: a failure in
            # one shard must not leave another's result queued (a stale
            # entry would desynchronize the next run).
            replies = []
            failure: Exception | None = None
            for idx, shard in enumerate(self.shards):
                try:
                    replies.append(self._collect(shard))
                except WorkerFault as fault:
                    try:
                        replies.append(
                            self._restart_and_replay(idx, shard, run_cmd, fault)
                        )
                    except RuntimeError as err:
                        failure = failure or err
                except RuntimeError as err:
                    failure = failure or err
            if failure is None:
                for idx, (shard, payload) in enumerate(zip(self.shards, replies)):
                    _pull_families(shard.views, shard.state)
                    shard.state.iteration += iterations
                    if self.variant == "async":
                        shard.draws_done += iterations
                    _, kernels, events, dropped = payload
                    if timers is not None and kernels is not None:
                        # Per-worker kernel attribution: sum each worker's
                        # measured x/m/z/u/n seconds, so fractions() reads
                        # where fleet compute time actually went (total is
                        # aggregate worker seconds, not barrier wall-clock).
                        timers.add_elapsed(kernels)
                    if tracer is not None:
                        tracer.extend(events)
                        if dropped:
                            tracer.point(
                                "drop",
                                f"worker {idx} ring dropped {dropped} events",
                                worker=idx,
                                segment=segment,
                            )
                if timers is not None:
                    for kind in UPDATE_KINDS:
                        timers[kind].calls += iterations
                if tracer is not None:
                    tracer.add_span(
                        "segment",
                        f"fleet sweep x{iterations}",
                        seg_t0,
                        monotonic_now(),
                        worker=PARENT,
                        segment=segment,
                        sweeps=iterations,
                        shards=len(self.shards),
                    )
            return failure
        need_kernels = timers is not None or tracer is not None
        shard_timers = [
            KernelTimers() if need_kernels else None for _ in self.shards
        ]
        spans: list[tuple[float, float] | None] = [None] * len(self.shards)

        def _task(shard: _Shard, ktimers, slot: int) -> None:
            m0 = monotonic_now()
            run_variant_sweeps(
                shard.batch.graph,
                shard.state,
                iterations,
                self.variant,
                shard.plan,
                ktimers,
            )
            spans[slot] = (m0, monotonic_now())

        seg_t0 = monotonic_now()
        futures = [
            self._pool.submit(_task, shard, shard_timers[i], i)
            for i, shard in enumerate(self.shards)
        ]
        done, _ = wait(futures)
        failure = None
        for f in done:
            exc = f.exception()
            if exc is not None:
                failure = failure or exc
        if failure is None and need_kernels:
            for idx, (ktimers, span) in enumerate(zip(shard_timers, spans)):
                if timers is not None:
                    timers.add_elapsed(ktimers.elapsed_by_kind())
                if tracer is not None and span is not None:
                    tracer.extend(
                        segment_events(
                            worker=idx,
                            segment=segment,
                            t0=span[0],
                            t1=span[1],
                            sweeps=iterations,
                            kernel_seconds=ktimers.elapsed_by_kind(),
                        )
                    )
            if timers is not None:
                for kind in UPDATE_KINDS:
                    timers[kind].calls += iterations
            if tracer is not None:
                tracer.add_span(
                    "segment",
                    f"fleet sweep x{iterations}",
                    seg_t0,
                    monotonic_now(),
                    worker=PARENT,
                    segment=segment,
                    sweeps=iterations,
                    shards=len(self.shards),
                )
        return failure

    def _collect(self, shard: _Shard):
        """Wait for one shard's run reply payload, surfacing worker failures.

        A worker relays sweep exceptions over ``done_q`` (raised here as
        plain ``RuntimeError`` — deterministic, not retried); a worker
        that died, hung, or corrupted its queue raises a
        :class:`~repro.core.supervision.WorkerFault` for the caller's
        restart-and-replay logic.  Liveness is checked on every
        ``poll_interval``, so a killed worker surfaces immediately
        instead of blocking the fleet.
        """
        status, payload = collect_reply(
            shard.done_q,
            shard.proc,
            self.policy,
            f"shard [{shard.lo}, {shard.hi})",
        )
        if status == "error":
            raise RuntimeError(
                f"shard [{shard.lo}, {shard.hi}) sweep failed: {payload}"
            )
        return payload

    def _restart_and_replay(
        self, idx: int, shard: _Shard, run_cmd: tuple, fault: WorkerFault
    ):
        """Recover a crashed shard worker: fresh fork, replay the segment.

        The parent's ``shard.state`` is authoritative (only updated after
        a successful collect), so re-pushing it into shared memory and
        re-sending the run command replays the segment bit-identically —
        even if the dead worker had already written partial or complete
        results into the shared buffers.  Raises ``RuntimeError`` once
        ``policy.max_restarts`` replacements have failed.
        """
        self.fault_log.record(
            "crash", self.iteration, idx, f"{type(fault).__name__}: {fault}"
        )
        for attempt in range(self.policy.max_restarts):
            time.sleep(self.policy.restart_delay(attempt))
            reap_process(shard.proc, grace=False)
            close_queue(shard.cmd_q)
            close_queue(shard.done_q)
            self._spawn_shard_worker(shard)
            self.fault_log.record(
                "restart",
                self.iteration,
                idx,
                f"replacement worker pid={shard.proc.pid} "
                f"(attempt {attempt + 1}/{self.policy.max_restarts})",
            )
            _push_shared(shard.views, shard.state)
            shard.cmd_q.put(run_cmd)
            try:
                return self._collect(shard)
            except WorkerFault as again:
                self.fault_log.record(
                    "crash",
                    self.iteration,
                    idx,
                    f"{type(again).__name__}: {again}",
                )
                fault = again
        raise RuntimeError(
            f"shard [{shard.lo}, {shard.hi}) worker kept failing after "
            f"{self.policy.max_restarts} restart(s): {fault}"
        )

    # ------------------------------------------------------------------ #
    def _fleet_residuals(
        self, z_prevs: list[np.ndarray], eps_abs: float, eps_rel: float
    ) -> list[Residuals]:
        """Per-instance residuals, shard by shard, in global fleet order."""
        out: list[Residuals] = []
        for shard, z_prev in zip(self.shards, z_prevs):
            out.extend(
                per_instance_residuals(
                    shard.batch, shard.state, z_prev, eps_abs, eps_rel
                )
            )
        return out

    def solve_batch(
        self,
        max_iterations: int = 1000,
        eps_abs: float = 1e-6,
        eps_rel: float = 1e-4,
        check_every: int = 10,
        init: str = "keep",
        seed: int | None = None,
    ) -> list[ADMMResult]:
        """Iterate until every instance converges or the iteration cap.

        Same contract as :meth:`BatchedSolver.solve_batch` — one
        :class:`ADMMResult` per instance, converged instances frozen out of
        the ρ-schedule and the bookkeeping but still sweeping with their
        shard — with the sweeps executed by the shard workers.

        The outer loop deliberately mirrors ``BatchedSolver.solve_batch``
        (only the run/residual/ρ-apply steps are shard-local); behavioral
        changes must be made in both, and the parity is pinned by
        ``tests/test_fleet_sharding.py::TestMatchesBatched``.
        """
        if max_iterations < 0:
            raise ValueError(f"max_iterations must be >= 0, got {max_iterations}")
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        self.initialize(init, seed=seed)
        B = self.batch_size
        schedules = [copy.deepcopy(self.schedule) for _ in range(B)]
        for s in schedules:
            s.reset()

        timers = KernelTimers()
        histories = [SolveHistory() for _ in range(B)]
        active = np.ones(B, dtype=bool)
        frozen_iterations = np.full(B, -1, dtype=np.int64)
        last_residuals: list[Residuals | None] = [None] * B
        rho_by_instance = self.rho_rows()
        tracer = self.tracer
        t0 = time.perf_counter()
        solve_t0 = monotonic_now()

        if self.iteration >= max_iterations:
            # No sweeps will run (max_iterations == 0, or a kept iterate
            # already past the cap): residuals of the current iterate,
            # computed once, converged=False — the documented
            # ``max_iterations=0`` contract, generalized.
            res = self._fleet_residuals(
                [sh.state.z for sh in self.shards], eps_abs, eps_rel
            )
            for i in range(B):
                histories[i].append(res[i], None, float(rho_by_instance[i].mean()))
                last_residuals[i] = res[i]

        while self.iteration < max_iterations:
            block = min(check_every, max_iterations - self.iteration)
            if block > 1:
                self._run_all(block - 1, timers)
            z_prevs = [sh.state.z.copy() for sh in self.shards]
            self._run_all(1, timers)
            res = self._fleet_residuals(z_prevs, eps_abs, eps_rel)
            rho_by_instance = self.rho_rows()
            for i in np.flatnonzero(active):
                last_residuals[i] = res[i]
                histories[i].append(res[i], None, float(rho_by_instance[i].mean()))
                if res[i].converged:
                    frozen_iterations[i] = self.iteration
                    active[i] = False
                    if tracer is not None:
                        tracer.point(
                            "freeze", f"instance {i}", segment=self.iteration
                        )
            if not active.any():
                break
            # Per-instance ρ adaptation, applied shard-locally; frozen
            # instances keep scale 1 (their ρ and dual stay untouched).
            for shard in self.shards:
                scale = np.ones(shard.batch.graph.num_edges)
                changed = False
                for i in np.flatnonzero(active[shard.lo : shard.hi]) + shard.lo:
                    s = float(schedules[i].rho_scale(shard.state, res[i]))
                    if s != 1.0:
                        scale[shard.batch.edge_index[i - shard.lo]] = s
                        changed = True
                if changed:
                    apply_rho_scale(shard.state, scale)

        wall = time.perf_counter() - t0
        if tracer is not None:
            tracer.add_span(
                "solve",
                f"sharded solve B={B}",
                solve_t0,
                monotonic_now(),
                segment=self.iteration,
                converged=int((frozen_iterations >= 0).sum()),
            )
        results: list[ADMMResult] = []
        for shard in self.shards:
            for j in range(shard.size):
                i = shard.lo + j
                converged = frozen_iterations[i] >= 0
                results.append(
                    ADMMResult(
                        solution=shard.batch.instance_solution(shard.state.z, j),
                        z=shard.state.z[shard.batch.z_slice(j)].copy(),
                        converged=bool(converged),
                        iterations=int(
                            frozen_iterations[i] if converged else self.iteration
                        ),
                        residuals=last_residuals[i],
                        history=histories[i],
                        timers=timers,
                        wall_time=wall,
                    )
                )
        return results

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop shard workers (idempotent, crash-safe).

        Safe to call repeatedly and after worker crashes: a worker that
        ignores the stop command (or its SIGTERM) is escalated to
        ``kill()``, and queues are closed without joining their feeder
        threads — close never hangs and never leaks zombies or fds.
        """
        if self._closed and not any(s.proc is not None for s in self.shards):
            return
        self._closed = True
        if self.mode == "process":
            for shard in self.shards:
                if shard.cmd_q is not None:
                    try:
                        shard.cmd_q.put(("stop",))
                    except Exception:
                        pass
            for shard in self.shards:
                reap_process(shard.proc, timeout=self.policy.shutdown_timeout)
                shard.proc = None
                close_queue(shard.cmd_q)
                close_queue(shard.done_q)
                shard.cmd_q = shard.done_q = None
        elif self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardedBatchedSolver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"ShardedBatchedSolver(B={self.batch_size}, shards={self.num_shards}, "
            f"mode={self.mode}, variant={self.variant})"
        )
