"""Core ADMM engine: state, kernels, solver, schedules, variants."""

from repro.core.state import ADMMState
from repro.core.solver import ADMMSolver
from repro.core.batched import (
    BatchedSolver,
    carry_state,
    normalize_pool,
    per_instance_residuals,
)
from repro.core.sharded import ShardedBatchedSolver, run_variant_sweeps
from repro.core.rebalance import RebalancingShardedSolver, StealEvent
from repro.core.service import (
    FleetService,
    RequestResult,
    ServiceStats,
    SolveRequest,
)
from repro.core.supervision import FaultEvent, FaultLog, WorkerPolicy
from repro.core.diagnostics import ADMMResult, SolveHistory
from repro.core.residuals import (
    Residuals,
    compute_residuals,
    consensus_violation,
    objective_value,
)
from repro.core.stopping import (
    AnyOf,
    MaxIterations,
    ResidualTolerance,
    StallDetection,
    StoppingCriterion,
)
from repro.core.parameters import (
    ConstantPenalty,
    PenaltySchedule,
    ResidualBalancing,
    apply_rho_scale,
)
from repro.core.classic import ClassicADMMResult, classic_admm
from repro.core.three_weight import (
    run_iteration_twa,
    run_iterations_twa,
    solve_batch_twa,
)
from repro.core.async_admm import (
    AsyncSweepPlan,
    FleetSweepPlan,
    run_iteration_async,
    solve_async,
    solve_batch_async,
)
from repro.core import updates

__all__ = [
    "ADMMState",
    "ADMMSolver",
    "BatchedSolver",
    "ShardedBatchedSolver",
    "RebalancingShardedSolver",
    "StealEvent",
    "FleetService",
    "SolveRequest",
    "RequestResult",
    "ServiceStats",
    "FaultEvent",
    "FaultLog",
    "WorkerPolicy",
    "carry_state",
    "normalize_pool",
    "per_instance_residuals",
    "run_variant_sweeps",
    "ADMMResult",
    "SolveHistory",
    "Residuals",
    "compute_residuals",
    "consensus_violation",
    "objective_value",
    "AnyOf",
    "MaxIterations",
    "ResidualTolerance",
    "StallDetection",
    "StoppingCriterion",
    "ConstantPenalty",
    "PenaltySchedule",
    "ResidualBalancing",
    "apply_rho_scale",
    "ClassicADMMResult",
    "classic_admm",
    "run_iteration_twa",
    "run_iterations_twa",
    "solve_batch_twa",
    "AsyncSweepPlan",
    "FleetSweepPlan",
    "run_iteration_async",
    "solve_async",
    "solve_batch_async",
    "updates",
]
