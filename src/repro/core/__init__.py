"""Core ADMM engine: state, kernels, solver, schedules, variants."""

from repro.core.state import ADMMState
from repro.core.solver import ADMMSolver
from repro.core.batched import BatchedSolver, per_instance_residuals
from repro.core.diagnostics import ADMMResult, SolveHistory
from repro.core.residuals import (
    Residuals,
    compute_residuals,
    consensus_violation,
    objective_value,
)
from repro.core.stopping import (
    AnyOf,
    MaxIterations,
    ResidualTolerance,
    StallDetection,
    StoppingCriterion,
)
from repro.core.parameters import (
    ConstantPenalty,
    PenaltySchedule,
    ResidualBalancing,
    apply_rho_scale,
)
from repro.core.classic import ClassicADMMResult, classic_admm
from repro.core.three_weight import run_iteration_twa
from repro.core.async_admm import AsyncSweepPlan, run_iteration_async, solve_async
from repro.core import updates

__all__ = [
    "ADMMState",
    "ADMMSolver",
    "BatchedSolver",
    "per_instance_residuals",
    "ADMMResult",
    "SolveHistory",
    "Residuals",
    "compute_residuals",
    "consensus_violation",
    "objective_value",
    "AnyOf",
    "MaxIterations",
    "ResidualTolerance",
    "StallDetection",
    "StoppingCriterion",
    "ConstantPenalty",
    "PenaltySchedule",
    "ResidualBalancing",
    "apply_rho_scale",
    "ClassicADMMResult",
    "classic_admm",
    "run_iteration_twa",
    "AsyncSweepPlan",
    "run_iteration_async",
    "solve_async",
    "updates",
]
