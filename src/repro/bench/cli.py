"""Command-line figure runner: regenerate paper tables without pytest.

Usage::

    python -m repro.bench.cli list
    python -m repro.bench.cli fig05
    python -m repro.bench.cli ntb --packing-n 2000
    python -m repro.bench.cli fig07 --sizes 5 10 20

Only the model-side and small measured sweeps run here (the full measured
protocol lives in ``benchmarks/``); this entry point exists for quick
interactive exploration.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.reporting import SeriesTable
from repro.bench.solver_table import build_table
from repro.gpusim.device import OPTERON_6300, TESLA_K40
from repro.gpusim.simt import best_ntb, serial_time
from repro.gpusim.synthetic import mpc_workloads, packing_workloads, svm_workloads
from repro.gpusim.workloads import simulate_admm_gpu
from repro.utils.timing import UPDATE_KINDS

WORKLOADS = {
    "packing": packing_workloads,
    "mpc": mpc_workloads,
    "svm": svm_workloads,
}

DEFAULT_SIZES = {
    "packing": (200, 1000, 5000),
    "mpc": (1000, 10_000, 100_000),
    "svm": (5000, 50_000, 100_000),
}


def run_fig05(args) -> int:
    build_table(include_paradmm=True).emit()
    return 0


def run_model_sweep(app: str, sizes) -> int:
    t = SeriesTable(
        f"{app} — K40 model vs one Opteron core",
        ("size", "speedup", *UPDATE_KINDS),
    )
    for size in sizes:
        wl, _ = WORKLOADS[app](size)
        res = simulate_admm_gpu(TESLA_K40, None, OPTERON_6300, workloads=wl)
        sp = res.speedups()
        t.add_row(size, res.combined_speedup, *[sp[k] for k in UPDATE_KINDS])
    t.emit()
    return 0


def _export_trace(tracer, path: str) -> int:
    """Write a tracer's timeline as Chrome trace JSON + text report.

    The JSON at ``path`` loads directly in Perfetto / ``chrome://tracing``
    and is validated against the trace-event format (nonzero exit on a
    malformed export — the CI gate); the plain-text timeline report is
    appended to ``results/fleet_trace.txt`` for artifact upload.
    """
    import os

    from repro.bench.reporting import results_path
    from repro.obs.export import (
        timeline_report,
        validate_chrome_trace,
        write_chrome_trace,
    )

    events = tracer.timeline()
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    obj = write_chrome_trace(events, path)
    problems = validate_chrome_trace(obj)
    report = timeline_report(events)
    out = results_path("fleet_trace.txt")
    with open(out, "a") as fh:
        fh.write(report)
        fh.write("\n")
    print(
        f"\ntrace: {len(events)} events -> {path} "
        f"(timeline appended to {out})"
    )
    if tracer.dropped:
        print(f"trace: {tracer.dropped} events dropped (ring buffer full)")
    if problems:
        print(
            f"error: Chrome trace validation failed "
            f"({len(problems)} problem(s)): {problems[0]}",
            file=sys.stderr,
        )
        return 1
    return 0


def run_fleet(args) -> int:
    """Batched fleet solving vs a per-instance loop (vectorized backend).

    ``--shards N`` adds the sharded path (one vectorized worker per shard,
    ``--mode`` process/thread); ``--elastic`` appends an add/remove demo
    showing survivors' iterates are preserved bit-for-bit; ``--rebalance``
    appends the work-stealing / live-resharding demo
    (``--steal-threshold`` tunes when idle shards steal).  ``--trace PATH``
    records the demos' fleet timeline as Perfetto-loadable Chrome trace
    JSON (forcing the rebalance demo on if no demo was selected).
    """
    from repro.bench.harness import (
        time_fleet_batched,
        time_fleet_loop,
        time_fleet_sharded,
    )
    from repro.bench.workloads import mpc_fleet

    tracer = None
    if args.trace:
        from repro.obs.events import Tracer

        tracer = Tracer()
        if not (args.elastic or args.rebalance or args.fault_plan):
            # A trace needs a traced solve; the rebalance demo is the
            # richest one (segments, kernels, steals, freezes).
            args.rebalance = True
    sizes = args.sizes if args.sizes else (4, 16, 64)
    if args.shards and args.shards > min(sizes):
        # A shard with zero instances would idle a worker and break the
        # per-instance bookkeeping; refuse loudly instead of clamping or
        # spawning empty shards.
        print(
            f"error: --shards {args.shards} exceeds the smallest fleet size "
            f"B={min(sizes)}; every shard must own at least one instance "
            f"(empty shards are not allowed). Lower --shards or raise "
            f"--sizes.",
            file=sys.stderr,
        )
        return 2
    iterations = 30
    columns = ["B", "elements", "loop s", "batched s", "speedup"]
    if args.shards:
        columns += ["shards", "sharded s", "shard x"]
    t = SeriesTable(
        f"MPC fleet (horizon {args.horizon}) — batched sweep vs per-instance "
        f"loop, {iterations} iterations",
        tuple(columns),
    )
    for B in sizes:
        batch = mpc_fleet(B, horizon=args.horizon)
        loop_s = time_fleet_loop(batch.template, B, iterations)
        batched_s = time_fleet_batched(batch, iterations)
        row = [
            B,
            batch.graph.num_elements,
            loop_s,
            batched_s,
            loop_s / batched_s if batched_s > 0 else float("inf"),
        ]
        if args.shards:
            sharded_s = time_fleet_sharded(batch, iterations, args.shards, args.mode)
            row += [
                args.shards,
                sharded_s,
                batched_s / sharded_s if sharded_s > 0 else float("inf"),
            ]
        t.add_row(*row)
    if args.shards:
        t.add_note(
            f"sharded: {args.mode}-mode ShardedBatchedSolver with the row's "
            "shard count; shard x = batched s / sharded s (needs multiple "
            "cores to exceed 1)"
        )
    t.emit()
    # Every demo audits a bit-identical invariant and reports pass/fail in
    # its exit code; propagate the worst one instead of dropping returns.
    rc = 0
    if args.elastic:
        rc = max(rc, run_fleet_elastic_demo(args, iterations))
    if args.rebalance:
        rc = max(rc, run_fleet_rebalance_demo(args, tracer=tracer))
    if args.fault_plan:
        rc = max(rc, run_fleet_faults_demo(args, tracer=tracer))
    if args.mixed:
        rc = max(rc, run_fleet_mixed_demo(args, iterations))
    if tracer is not None:
        rc = max(rc, _export_trace(tracer, args.trace))
    return rc


def run_fleet_faults_demo(args, tracer=None) -> int:
    """Chaos demo: scripted worker faults under solving, recovery audited.

    Applies ``--fault-plan`` (DSL: ``kind:shard@segment[:duration]``, e.g.
    ``"kill:0@2,drop:1@4"``) to a process-mode
    :class:`RebalancingShardedSolver` solve of the rebalance demo's uneven
    MPC fleet, then reports every supervision event and the deviation from
    the crash-free ``BatchedSolver`` trajectory (must be 0).
    """
    import numpy as np

    from repro.apps.mpc import MPCProblem, build_batch, inverted_pendulum
    from repro.core.batched import BatchedSolver
    from repro.core.rebalance import RebalancingShardedSolver
    from repro.core.supervision import WorkerPolicy
    from repro.testing.faults import FaultInjector, FaultPlan

    if args.mode != "process":
        print(
            "error: --fault-plan drives worker processes; use --mode process",
            file=sys.stderr,
        )
        return 2
    B = max(args.sizes[-1] if args.sizes else 8, 4)
    shards = args.shards if args.shards else 2
    A, Bm = inverted_pendulum()
    problems = [
        MPCProblem(
            A=A,
            B=Bm,
            q0=np.zeros(4) if i < B // 2 else np.full(4, 0.4),
            horizon=args.horizon,
        )
        for i in range(B)
    ]
    kwargs = dict(max_iterations=150, check_every=5, init="zeros")
    with BatchedSolver(build_batch(problems), rho=10.0) as plain:
        ref = plain.solve_batch(**kwargs)
    plan = FaultPlan.parse(args.fault_plan)
    injector = FaultInjector(plan)
    policy = WorkerPolicy(
        heartbeat_interval=0.1, wait_timeout=5.0, poll_interval=0.1,
        max_restarts=2, backoff=0.05,
    )
    t = SeriesTable(
        f"Fleet fault-injection demo — plan '{plan.spec()}' on {shards} "
        f"process shards, B={B}",
        ("plan", "applied", "crashes", "restarts", "migrations",
         "max |dz| vs crash-free"),
    )
    with RebalancingShardedSolver(
        build_batch(problems),
        num_shards=shards,
        mode="process",
        rho=10.0,
        steal_threshold=args.steal_threshold,
        policy=policy,
        injector=injector,
        tracer=tracer,
    ) as solver:
        got = solver.solve_batch(**kwargs)
        dev = max(float(np.max(np.abs(a.z - b.z))) for a, b in zip(got, ref))
        log = solver.fault_log
        t.add_row(
            plan.spec() or "(empty)",
            len(injector.applied),
            len(log.crashes),
            len(log.restarts),
            len(log.migrations),
            dev,
        )
        for e in log:
            t.add_note(f"{e.kind} @ iter {e.iteration}, shard {e.shard}: {e.detail}")
        for seg, action in injector.skipped:
            t.add_note(f"skipped {action.spec()} (shard gone by segment {seg})")
    t.add_note(
        "max |dz| = 0 means the faulted solve is bit-identical to the "
        "crash-free one — supervision recovers machinery, never math"
    )
    t.emit()
    return 0 if dev == 0.0 else 1


def run_fleet_rebalance_demo(args, tracer=None) -> int:
    """Work-stealing + live-resharding demo: results match plain batched.

    Builds an unevenly-converging MPC fleet, solves it with a
    :class:`RebalancingShardedSolver` (idle shards steal from the heaviest
    once their active count drops below ``--steal-threshold``), then
    re-shards the live fleet and verifies every iterate stayed
    bit-identical to the plain ``BatchedSolver`` solve.
    """
    import numpy as np

    from repro.apps.mpc import MPCProblem, build_batch, inverted_pendulum
    from repro.core.batched import BatchedSolver
    from repro.core.rebalance import RebalancingShardedSolver

    B = max(args.sizes[-1] if args.sizes else 8, 4)
    shards = args.shards if args.shards else 2

    def uneven_fleet():
        # Half the fleet starts at the target (freezes at the first check),
        # half far out (grinds) — the convergence skew that makes fixed
        # shards idle and stealing worthwhile.
        A, Bm = inverted_pendulum()
        return build_batch(
            [
                MPCProblem(
                    A=A,
                    B=Bm,
                    q0=np.zeros(4) if i < B // 2 else np.full(4, 0.4),
                    horizon=args.horizon,
                )
                for i in range(B)
            ]
        )

    batch = uneven_fleet()
    kwargs = dict(max_iterations=150, check_every=5, init="zeros")
    plain = BatchedSolver(uneven_fleet(), rho=10.0)
    ref = plain.solve_batch(**kwargs)

    t = SeriesTable(
        f"Rebalancing fleet demo (horizon {args.horizon}) — work-stealing "
        f"shards vs plain batched, steal threshold {args.steal_threshold}, "
        f"policy {args.steal_policy}",
        ("op", "B", "shards", "steals", "max |dz| vs batched"),
    )
    with RebalancingShardedSolver(
        batch,
        num_shards=shards,
        mode=args.mode,
        rho=10.0,
        steal_threshold=args.steal_threshold,
        steal_policy=args.steal_policy,
        tracer=tracer,
    ) as solver:
        got = solver.solve_batch(**kwargs)
        dev = max(
            float(np.max(np.abs(a.z - b.z))) for a, b in zip(got, ref)
        )
        worst = dev
        t.add_row("solve+steal", B, solver.num_shards, len(solver.steal_log), dev)
        solver.reshard(max(1, shards - 1))
        solver.initialize("zeros")
        plain.initialize("zeros")
        solver.iterate(30)
        plain.iterate(30)
        dev = float(np.max(np.abs(solver.fleet_z() - plain.state.z)))
        worst = max(worst, dev)
        t.add_row(
            f"reshard->{solver.num_shards}+iterate",
            B,
            solver.num_shards,
            len(solver.steal_log),
            dev,
        )
        for ev in solver.steal_log:
            t.add_note(
                f"steal @ iter {ev.iteration}: shard {ev.thief} took "
                f"instances {list(ev.instances)} from shard {ev.donor}"
            )
    t.add_note("max |dz| = 0 means bit-identical to the plain batched solve")
    t.emit()
    plain.close()
    rc = 0 if worst == 0.0 else 1
    return max(rc, run_fleet_zerocopy_report(args, uneven_fleet, ref))


def run_fleet_zerocopy_report(args, make_batch, ref) -> int:
    """Zero-copy transport audit: queue bytes avoided + steal quality.

    Solves the rebalance demo's uneven fleet in process mode under both
    state transports (shared-memory mirrors vs pickled queue payloads)
    with the selected ``--steal-policy``, and writes
    ``results/fleet_zerocopy.txt``: per-transport queue/shared byte
    counts, buffer rebuilds, steal counts, and the bytes the shared
    transport kept off the command queue.  Equality-gated — a nonzero
    deviation from the plain batched solve on either transport fails the
    run — and the shared transport must move **zero** iterate bytes over
    its queues.
    """
    import numpy as np

    from repro.bench.reporting import results_path
    from repro.core.rebalance import TRANSPORTS, RebalancingShardedSolver

    shards = args.shards if args.shards else 2
    kwargs = dict(max_iterations=150, check_every=5, init="zeros")
    t = SeriesTable(
        f"Zero-copy transport audit (horizon {args.horizon}) — process-mode "
        f"shards, steal policy {args.steal_policy}",
        (
            "transport",
            "queue state B",
            "queue reply B",
            "shared push B",
            "rebuilds",
            "steals",
            "max |dz|",
        ),
    )
    stats_by = {}
    worst = 0.0
    for transport in TRANSPORTS:
        with RebalancingShardedSolver(
            make_batch(),
            num_shards=shards,
            mode="process",
            transport=transport,
            rho=10.0,
            steal_threshold=args.steal_threshold,
            steal_policy=args.steal_policy,
        ) as solver:
            got = solver.solve_batch(**kwargs)
            dev = max(
                float(np.max(np.abs(a.z - b.z))) for a, b in zip(got, ref)
            )
            worst = max(worst, dev)
            stats = solver.transport_stats()
            stats_by[transport] = stats
            t.add_row(
                transport,
                stats["queue_state_bytes"],
                stats["queue_reply_bytes"],
                stats["shared_push_bytes"],
                stats["buffer_rebuilds"],
                len(solver.steal_log),
                dev,
            )
            for ev in solver.steal_log:
                quality = (
                    f", moved load {ev.moved_load:.1f}"
                    if ev.moved_load is not None
                    else ""
                )
                t.add_note(
                    f"{transport}: steal @ iter {ev.iteration} shard "
                    f"{ev.donor} -> {ev.thief}, instances "
                    f"{list(ev.instances)}{quality}"
                )
    avoided = (
        stats_by["queue"]["queue_state_bytes"]
        + stats_by["queue"]["queue_reply_bytes"]
    )
    t.add_note(
        f"queue bytes avoided by the shared transport: {avoided} "
        f"over {stats_by['queue']['segments']} segments"
    )
    t.add_note("max |dz| = 0 means bit-identical to the plain batched solve")
    out = results_path("fleet_zerocopy.txt")
    t.emit(out)
    print(f"\n(zero-copy audit written to {out})")
    leaked = (
        stats_by["shared"]["queue_state_bytes"]
        + stats_by["shared"]["queue_reply_bytes"]
    )
    if leaked:
        print(
            f"error: shared transport moved {leaked} iterate bytes over "
            f"its queues (expected 0)",
            file=sys.stderr,
        )
        return 1
    return 0 if worst == 0.0 else 1


def run_fleet_elastic_demo(args, iterations: int) -> int:
    """Elastic fleet demo: grow/shrink between solves, survivors untouched."""
    import numpy as np

    from repro.core.batched import BatchedSolver
    from repro.bench.workloads import mpc_fleet

    B = args.sizes[-1] if args.sizes else 8
    if B < 2:
        print("\n(elastic demo needs a fleet of >= 2 instances; skipping)")
        return 0
    batch = mpc_fleet(B, horizon=args.horizon)
    solver = BatchedSolver(batch, rho=10.0)
    solver.initialize("zeros")
    reference = BatchedSolver(mpc_fleet(B, horizon=args.horizon), rho=10.0)
    reference.initialize("zeros")

    t = SeriesTable(
        f"Elastic fleet demo (horizon {args.horizon}) — add/remove between "
        "solves, survivors bit-identical",
        ("op", "B", "fleet iter", "max |dz| survivors"),
    )
    drop = list(range(0, B, 3))
    survivors = [i for i in range(B) if i not in drop]

    worst = 0.0

    def dev() -> float:
        nonlocal worst
        rows = solver.batch.split_z(solver.state.z)
        ref_rows = reference.batch.split_z(reference.state.z)
        pairs = zip(rows, (ref_rows[i] for i in survivors))
        d = max(float(np.max(np.abs(a - b))) for a, b in pairs)
        worst = max(worst, d)
        return d

    solver.iterate(iterations)
    reference.iterate(iterations)
    t.add_row("solve", solver.batch_size, solver.state.iteration, 0.0)
    solver.remove_instances(drop)
    t.add_row(f"remove {len(drop)}", solver.batch_size, solver.state.iteration, dev())
    solver.iterate(iterations)
    reference.iterate(iterations)
    t.add_row("solve", solver.batch_size, solver.state.iteration, dev())
    solver.add_instances(len(drop))
    t.add_row(f"add {len(drop)} cold", solver.batch_size, solver.state.iteration, dev())
    t.add_note(
        "max |dz| survivors compares surviving instances against an untouched "
        "fleet advanced the same number of sweeps (0 = bit-identical)"
    )
    t.emit()
    solver.close()
    reference.close()
    return 0 if worst == 0.0 else 1


def run_fleet_mixed_demo(args, iterations: int) -> int:
    """Heterogeneous fleet demo: MPC+SVM+lasso+packing in one batch.

    Packs instances of all four app families into one group-major fleet
    (:func:`repro.graph.batch.pack_graphs`), solves it plain, sharded, and
    rebalancing-with-churn, and audits every instance against its own solo
    :class:`ADMMSolver` run.  The table is written to
    ``results/fleet_mixed.txt``; exits nonzero if any instance deviates
    from its solo solve by more than 1e-10.
    """
    import numpy as np

    from repro.apps.lasso import LassoProblem, make_lasso_data
    from repro.bench.reporting import results_path
    from repro.core.batched import BatchedSolver
    from repro.core.rebalance import RebalancingShardedSolver
    from repro.core.sharded import ShardedBatchedSolver
    from repro.core.solver import ADMMSolver
    from repro.bench.workloads import mpc_graph, packing_graph, svm_graph
    from repro.graph.batch import pack_graphs

    rho, atol = 10.0, 1e-10
    A, y, _ = make_lasso_data(24, 6, seed=5)
    templates = [
        mpc_graph(args.horizon),
        svm_graph(14, seed=3),
        LassoProblem(A, y, lam=0.1, n_blocks=3).build_graph(),
        packing_graph(4),
    ]
    counts = [2, 1, 1, 2]
    batch = pack_graphs(templates, counts)
    B = batch.batch_size

    solo = []
    for i, t in enumerate(batch.templates):
        s = ADMMSolver(t, rho=rho)
        s.initialize("zeros")
        s.iterate(iterations)
        solo.append(s.state.z.copy())
        s.close()

    def fleet_dev(rows) -> float:
        return max(
            float(np.max(np.abs(rows[i] - solo[i]))) for i in range(B)
        )

    t = SeriesTable(
        f"Mixed-family fleet demo — {B} instances "
        f"(MPC/SVM/lasso/packing) in one group-major batch, "
        f"{iterations} iterations, max |z - solo| per path",
        ("path", "B", "templates", "groups", "max |z - solo|"),
    )
    n_templates = len(set(id(g) for g in batch.templates))
    n_groups = len(batch.graph.groups)
    worst = 0.0

    plain = BatchedSolver(pack_graphs(templates, counts), rho=rho)
    plain.initialize("zeros")
    plain.iterate(iterations)
    d = fleet_dev(plain.batch.split_z(plain.state.z))
    plain.close()
    worst = max(worst, d)
    t.add_row("batched", B, n_templates, n_groups, d)

    with ShardedBatchedSolver(
        pack_graphs(templates, counts), num_shards=3, mode=args.mode, rho=rho
    ) as sh:
        sh.initialize("zeros")
        sh.iterate(iterations)
        d = fleet_dev(sh.split_z())
    worst = max(worst, d)
    t.add_row(f"sharded/{args.mode}", B, n_templates, n_groups, d)

    with RebalancingShardedSolver(
        pack_graphs(templates, counts), num_shards=3, mode=args.mode, rho=rho
    ) as rb:
        rb.initialize("zeros")
        rb.iterate(iterations // 2)
        rb.steal_once()
        rb.reshard(2)
        rb.iterate(iterations - iterations // 2)
        d = fleet_dev(rb.split_z())
    worst = max(worst, d)
    t.add_row(f"rebalance+churn/{args.mode}", B, n_templates, n_groups, d)

    t.add_note(
        "every instance is audited against its own solo ADMMSolver run; "
        "max |z - solo| is the worst instance deviation (0 = bit-identical, "
        f"tolerance {atol:g})"
    )
    t.emit(results_path("fleet_mixed.txt"))
    if worst > atol:
        print(
            f"MIXED-FLEET AUDIT FAILED: worst deviation {worst:.3e} "
            f"exceeds {atol:g}",
            file=sys.stderr,
        )
        return 1
    return 0


def run_serve(args) -> int:
    """Fleet-service benchmark: replay a seeded Poisson trace, report SLOs.

    Streams ``--requests`` MPC solve requests (randomized initial states,
    seeded by ``--seed``) through a live :class:`FleetService` as an
    open-loop Poisson process, reports p50/p95/p99 per-request latency and
    sustained instances/sec against the tolerance-banded per-host baseline
    (:mod:`repro.bench.baseline`), and audits that every returned result
    is bit-identical to a solo ``BatchedSolver`` run of the same request.
    Exits nonzero on solo deviation > 1e-10 or a baseline band violation.
    Appends the report (with a latency histogram) to
    ``results/fleet_service.txt`` for CI artifact upload.
    """
    import numpy as np

    from repro.apps.mpc import MPCProblem, build_batch, inverted_pendulum
    from repro.bench.baseline import check_performance, reference_for
    from repro.bench.reporting import results_path
    from repro.core.batched import BatchedSolver
    from repro.core.service import FleetService
    from repro.graph.batch import replicate_graph
    from repro.testing.traffic import poisson_trace, replay

    A, Bm = inverted_pendulum()
    template = build_batch(
        [MPCProblem(A=A, B=Bm, q0=np.zeros(4), horizon=args.horizon)]
    ).template
    init_factor = 2 * args.horizon + 1  # the q0 anchor (see apps.mpc)

    def make_params(rng, i):
        return {init_factor: {"c": rng.uniform(-0.2, 0.2, 4)}}

    trace = poisson_trace(
        args.requests, rate=args.rate, seed=args.seed, make_params=make_params
    )
    tracer = None
    if args.trace:
        from repro.obs.events import Tracer

        tracer = Tracer()
    rho, cap = 10.0, 200
    shards = args.shards if args.shards else 2
    with FleetService(
        template,
        rho=rho,
        num_shards=shards,
        mode="thread",
        check_every=args.check_every,
        max_iterations=cap,
        steal_threshold=args.steal_threshold,
        tracer=tracer,
    ) as service:
        results = replay(service, trace)
        stats = service.stats()

    # Audit: every request bit-identical to its solo BatchedSolver solve.
    eff_cap = -(-cap // args.check_every) * args.check_every
    worst = 0.0
    for rid in sorted(results):
        res = results[rid]
        solo_batch = replicate_graph(template, 1, [dict(trace[rid].params)])
        with BatchedSolver(solo_batch, rho=rho) as solo:
            ref = solo.solve_batch(
                max_iterations=eff_cap,
                check_every=args.check_every,
                init="zeros",
            )[0]
        worst = max(worst, float(np.max(np.abs(ref.z - res.result.z))))

    t = SeriesTable(
        f"Fleet service — {args.requests} Poisson requests (rate "
        f"{args.rate}/segment, seed {args.seed}), horizon {args.horizon}, "
        f"{shards} thread shards, check_every {args.check_every}",
        ("metric", "value", "unit"),
    )
    t.add_row("completed", stats.completed, "requests")
    t.add_row("p50 latency", stats.p50_latency, "s")
    t.add_row("p95 latency", stats.p95_latency, "s")
    t.add_row("p99 latency", stats.p99_latency, "s")
    t.add_row("mean latency", stats.mean_latency, "s")
    t.add_row("throughput", stats.instances_per_sec, "inst/s")
    t.add_row("segments", stats.segments, "")
    t.add_row("sweeps/request", stats.sweeps_per_request_mean, "")
    t.add_row("max |dz| vs solo", worst, "")

    latencies = np.asarray([results[rid].latency for rid in sorted(results)])
    if latencies.size:
        edges = np.histogram_bin_edges(latencies, bins=8)
        counts, _ = np.histogram(latencies, bins=edges)
        t.add_note("latency histogram (s):")
        peak = max(int(counts.max()), 1)
        for lo, hi, n in zip(edges[:-1], edges[1:], counts):
            bar = "#" * max(1, round(30 * int(n) / peak)) if n else ""
            t.add_note(f"  [{lo:.4f}, {hi:.4f}) {bar} {int(n)}")

    host, reference = reference_for()
    checks = check_performance(
        {
            "instances_per_sec": stats.instances_per_sec,
            "p50_latency": stats.p50_latency,
            "p99_latency": stats.p99_latency,
        },
        reference,
    )
    t.add_note(f"baseline host: {host}")
    for c in checks:
        t.add_note(f"  {c.summary()}")
    t.add_note(
        "max |dz| vs solo = 0 means every request's iterate is bit-identical "
        "to a dedicated BatchedSolver run of that request alone"
    )
    t.emit(results_path("fleet_service.txt"))
    if tracer is not None:
        rc = _export_trace(tracer, args.trace)
        if rc:
            return rc
    if worst > 1e-10:
        print(
            f"error: service results deviate from solo solves "
            f"(max |dz| = {worst:.3e} > 1e-10)",
            file=sys.stderr,
        )
        return 1
    bad = [c for c in checks if not c.ok]
    if bad:
        print(
            f"error: {len(bad)} baseline band violation(s): "
            + "; ".join(c.summary() for c in bad),
            file=sys.stderr,
        )
        return 1
    return 0


def run_trace(args) -> int:
    """Summarize a Chrome trace JSON written by ``--trace``.

    Validates the file against the trace-event format (nonzero exit on a
    malformed trace) and reports event counts and total duration per
    category, plus the lanes and wall span covered.
    """
    import json

    from repro.obs.export import validate_chrome_trace

    path = args.input or args.trace
    if not path:
        print(
            "error: trace requires --input PATH (a --trace JSON file)",
            file=sys.stderr,
        )
        return 2
    with open(path) as fh:
        obj = json.load(fh)
    problems = validate_chrome_trace(obj)
    events = obj.get("traceEvents", []) if isinstance(obj, dict) else []
    rows = [
        e for e in events if isinstance(e, dict) and e.get("ph") in ("X", "i")
    ]
    agg: dict[str, tuple[int, float]] = {}
    for e in rows:
        cat = str(e.get("cat", e.get("name", "?")))
        cnt, tot = agg.get(cat, (0, 0.0))
        agg[cat] = (cnt + 1, tot + float(e.get("dur", 0.0)) / 1e3)
    t = SeriesTable(
        f"Trace summary — {path}", ("category", "events", "total ms")
    )
    for cat in sorted(agg, key=lambda c: (-agg[c][1], c)):
        cnt, tot = agg[cat]
        t.add_row(cat, cnt, tot)
    if rows:
        lanes = {e.get("tid") for e in rows}
        ts = [float(e.get("ts", 0.0)) for e in rows]
        te = [
            float(e.get("ts", 0.0)) + float(e.get("dur", 0.0)) for e in rows
        ]
        t.add_note(
            f"{len(rows)} events across {len(lanes)} lanes, "
            f"span {(max(te) - min(ts)) / 1e3:.3f} ms"
        )
    if problems:
        for p in problems[:10]:
            t.add_note(f"INVALID: {p}")
    else:
        t.add_note("valid Chrome trace-event JSON (Perfetto-loadable)")
    t.emit()
    return 1 if problems else 0


def run_ntb(args) -> int:
    wl = packing_workloads(args.packing_n)[0]["x"]
    base = serial_time(wl, OPTERON_6300)
    best, timings = best_ntb(TESLA_K40, wl)
    t = SeriesTable(
        f"packing N={args.packing_n} x-update speedup vs ntb (best: {best})",
        ("ntb", "speedup"),
    )
    for ntb in sorted(timings):
        t.add_row(ntb, base / timings[ntb].time_s)
    t.emit()
    return 0


COMMANDS = {
    "fig05": "Figure 5 solver table",
    "fig07": "packing GPU model sweep",
    "fig10": "MPC GPU model sweep",
    "fig13": "SVM GPU model sweep",
    "ntb": "threads-per-block sweep",
    "fleet": "batched/sharded/rebalancing multi-instance solving vs per-instance loop",
    "serve": "fleet service: replay a seeded request trace, report latency SLOs",
    "trace": "summarize + validate a Chrome trace JSON written by --trace",
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.bench.cli", description=__doc__)
    parser.add_argument("command", choices=[*COMMANDS, "list"])
    parser.add_argument("--sizes", type=int, nargs="*", default=None)
    parser.add_argument("--packing-n", type=int, default=5000)
    parser.add_argument("--horizon", type=int, default=8)
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="fleet: also time a ShardedBatchedSolver with this many shards",
    )
    parser.add_argument(
        "--mode",
        choices=("process", "thread"),
        default="process",
        help="fleet: shard worker mode",
    )
    parser.add_argument(
        "--elastic",
        action="store_true",
        help="fleet: append the elastic add/remove demo",
    )
    parser.add_argument(
        "--rebalance",
        action="store_true",
        help="fleet: append the work-stealing / live-resharding demo",
    )
    parser.add_argument(
        "--mixed",
        action="store_true",
        help="fleet: append the heterogeneous-fleet demo — pack "
        "MPC/SVM/lasso/packing instances into one batch, audit every "
        "instance against its solo solve (writes results/fleet_mixed.txt; "
        "exits nonzero on deviation > 1e-10)",
    )
    parser.add_argument(
        "--steal-threshold",
        type=int,
        default=1,
        help="fleet --rebalance: a shard steals once its active instance "
        "count drops below this (0 disables stealing)",
    )
    parser.add_argument(
        "--steal-policy",
        choices=("count", "predictive"),
        default="count",
        help="fleet --rebalance: steal trigger — active-instance counts "
        "(count) or fitted residual-decay × cost-weighted loads "
        "(predictive); results are bit-identical either way",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=32,
        help="serve: number of requests in the replayed trace",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=2.0,
        help="serve: Poisson arrival rate (requests per sweep segment)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="serve: trace seed (arrivals and request parameters)",
    )
    parser.add_argument(
        "--check-every",
        type=int,
        default=10,
        help="serve: sweeps per segment (convergence-check and "
        "admission/eviction cadence)",
    )
    parser.add_argument(
        "--fault-plan",
        default="",
        help="fleet: append the chaos demo — inject scripted worker faults "
        "(DSL: kind:shard@segment[:duration], kinds kill/drop/delay/corrupt, "
        "e.g. 'kill:0@2,drop:1@4') and audit recovery + fault log; exits "
        "nonzero if the recovered solve deviates from the crash-free one",
    )
    parser.add_argument(
        "--trace",
        default="",
        metavar="PATH",
        help="fleet/serve: record the run's fleet timeline as Chrome "
        "trace-event JSON at PATH (Perfetto-loadable; validated, and the "
        "plain-text timeline is appended to results/fleet_trace.txt)",
    )
    parser.add_argument(
        "--input",
        default="",
        metavar="PATH",
        help="trace: the Chrome trace JSON file to summarize",
    )
    args = parser.parse_args(argv)
    if args.command == "list":
        for name, desc in COMMANDS.items():
            print(f"  {name:7s} {desc}")
        return 0
    if args.command == "fig05":
        return run_fig05(args)
    if args.command == "ntb":
        return run_ntb(args)
    if args.command == "fleet":
        return run_fleet(args)
    if args.command == "serve":
        return run_serve(args)
    if args.command == "trace":
        return run_trace(args)
    app = {"fig07": "packing", "fig10": "mpc", "fig13": "svm"}[args.command]
    sizes = args.sizes if args.sizes else DEFAULT_SIZES[app]
    return run_model_sweep(app, sizes)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
