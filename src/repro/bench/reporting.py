"""Paper-style table/series formatting for the benchmark harness.

Every figure bench prints rows shaped like the paper's plots: a sweep
variable (N, K, cores, ntb) against times and speedups.  Reports go to
stdout and, when a path is given, to a text file under ``results/`` so the
series survive pytest's output capture.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class SeriesTable:
    """A small fixed-column table printed in paper style."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def _fmt(self, v) -> str:
        if isinstance(v, float):
            if v != v:
                return "nan"
            if abs(v) >= 1000 or (abs(v) < 1e-3 and v != 0):
                return f"{v:.3e}"
            return f"{v:.4g}"
        return str(v)

    def render(self) -> str:
        cells = [[self._fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(str(c)), *(len(r[i]) for r in cells)) if cells else len(str(c))
            for i, c in enumerate(self.columns)
        ]
        lines = [f"== {self.title} =="]
        header = "  ".join(str(c).rjust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for r in cells:
            lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def emit(self, path: str | None = None) -> str:
        """Print the table; optionally write it to a report file.

        The first ``emit`` to a given path in this process truncates the
        file; subsequent emits append.  Reruns therefore replace a report
        instead of accumulating duplicates, and a run never touches report
        files it does not itself regenerate.
        """
        text = self.render()
        print("\n" + text)
        if path is not None:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            key = os.path.abspath(path)
            mode = "a" if key in _written_this_process else "w"
            _written_this_process.add(key)
            with open(path, mode, encoding="utf-8") as fh:
                fh.write(text + "\n\n")
        return text


# Report files already truncated by SeriesTable.emit in this process;
# first write wins the truncation, everything after appends.
_written_this_process: set[str] = set()


def results_path(name: str) -> str:
    """Canonical results-file location for a bench (under ``results/``)."""
    root = os.environ.get("REPRO_RESULTS_DIR")
    if root is None:
        # repo root = three levels above this file's package dir
        here = os.path.dirname(os.path.abspath(__file__))
        root = os.path.normpath(os.path.join(here, "..", "..", "..", "results"))
    return os.path.join(root, name)


def fresh_report(name: str, header: str) -> str:
    """Start (truncate) a results file with a header; returns its path."""
    path = results_path(name)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(header.rstrip() + "\n\n")
    return path
