"""Measurement harness: timed ADMM runs and speedup comparisons.

The paper's protocol: run the *same number of iterations* on every engine
and compare wall time ("The GPU speedups compare the runtime of the ADMM on
a single core … with the runtime of the ADMM on a NVIDIA Tesla K40 GPU for
the same number of iterations").  :func:`measure_backend` and
:func:`compare_backends` implement exactly that, per-kernel timers included.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.backends.base import Backend
from repro.core.state import ADMMState
from repro.graph.factor_graph import FactorGraph
from repro.utils.timing import UPDATE_KINDS, KernelTimers


@dataclass(frozen=True)
class BackendMeasurement:
    """Wall time of one backend over a fixed iteration count."""

    backend_name: str
    iterations: int
    total_seconds: float
    kernel_seconds: dict[str, float]

    @property
    def seconds_per_iteration(self) -> float:
        return self.total_seconds / self.iterations if self.iterations else 0.0

    def kernel_fractions(self) -> dict[str, float]:
        total = sum(self.kernel_seconds.values())
        if total <= 0:
            return {k: 0.0 for k in UPDATE_KINDS}
        return {k: self.kernel_seconds[k] / total for k in UPDATE_KINDS}


def measure_backend(
    graph: FactorGraph,
    backend: Backend,
    iterations: int,
    rho: float = 2.0,
    seed: int | None = None,
    warmup: int = 1,
    repeats: int = 1,
) -> BackendMeasurement:
    """Time ``iterations`` sweeps of ``backend`` on a fresh random state.

    With ``repeats > 1`` the timed region runs that many times on identical
    fresh states and the fastest repeat wins (timeit's estimator): a
    co-located load spike can slow a repeat but never speed one up, so the
    min is the cleanest estimate of the machine's actual rate.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    initial = ADMMState(graph, rho=rho).init_random(0.1, 0.9, seed=seed)
    backend.prepare(graph)
    if warmup:
        backend.run(graph, initial.copy(), warmup)
    best_total = None
    best_kernels = None
    for _ in range(repeats):
        state = initial.copy()
        timers = KernelTimers()
        t0 = time.perf_counter()
        backend.run(graph, state, iterations, timers)
        total = time.perf_counter() - t0
        if best_total is None or total < best_total:
            best_total = total
            best_kernels = {k: timers[k].elapsed for k in UPDATE_KINDS}
    return BackendMeasurement(
        backend_name=backend.name,
        iterations=iterations,
        total_seconds=best_total,
        kernel_seconds=best_kernels,
    )


@dataclass(frozen=True)
class SpeedupComparison:
    """Baseline vs accelerated engine over identical iteration counts."""

    baseline: BackendMeasurement
    accelerated: BackendMeasurement

    @property
    def combined_speedup(self) -> float:
        acc = self.accelerated.seconds_per_iteration
        return self.baseline.seconds_per_iteration / acc if acc > 0 else float("inf")

    def kernel_speedups(self) -> dict[str, float]:
        out = {}
        for k in UPDATE_KINDS:
            base = self.baseline.kernel_seconds[k] / self.baseline.iterations
            acc = self.accelerated.kernel_seconds[k] / self.accelerated.iterations
            out[k] = base / acc if acc > 0 else float("inf")
        return out


def time_fleet_loop(
    template: FactorGraph, batch_size: int, iterations: int, rho: float = 10.0
) -> float:
    """Wall time of the per-instance baseline: B solo runs on one solver.

    Each instance re-initializes to zeros and sweeps ``iterations`` times —
    the work a service without batching performs per fleet tick.
    """
    from repro.core.solver import ADMMSolver

    solver = ADMMSolver(template, rho=rho)
    solver.iterate(1)  # warmup
    t0 = time.perf_counter()
    for _ in range(batch_size):
        solver.initialize("zeros")
        solver.iterate(iterations)
    elapsed = time.perf_counter() - t0
    solver.close()
    return elapsed


def time_fleet_batched(batch, iterations: int, rho: float = 10.0) -> float:
    """Wall time of the batched path: one block-diagonal sweep for the fleet.

    Initialization is inside the timed region, mirroring
    :func:`time_fleet_loop`, so the two measure the same end-to-end work.
    """
    from repro.core.batched import BatchedSolver

    solver = BatchedSolver(batch, rho=rho)
    solver.iterate(1)  # warmup
    t0 = time.perf_counter()
    solver.initialize("zeros")
    solver.iterate(iterations)
    elapsed = time.perf_counter() - t0
    solver.close()
    return elapsed


def time_fleet_sharded(
    batch,
    iterations: int,
    num_shards: int,
    mode: str = "process",
    rho: float = 10.0,
) -> float:
    """Wall time of the sharded path: one vectorized worker per shard.

    Worker startup (fork, sub-batch construction) happens outside the timed
    region — it is a once-per-fleet cost, amortized over every solve of a
    long-lived service — while initialization and sweeps are timed exactly
    as in :func:`time_fleet_batched`.
    """
    from repro.core.sharded import ShardedBatchedSolver

    solver = ShardedBatchedSolver(batch, num_shards=num_shards, mode=mode, rho=rho)
    solver.iterate(1)  # warmup
    t0 = time.perf_counter()
    solver.initialize("zeros")
    solver.iterate(iterations)
    elapsed = time.perf_counter() - t0
    solver.close()
    return elapsed


def time_fleet_rebalanced(
    batch,
    iterations: int,
    num_shards: int,
    mode: str = "thread",
    steal_threshold: int = 1,
    rho: float = 10.0,
) -> float:
    """Wall time of the rebalancing path (roster shards, stealing enabled).

    Same timed region as :func:`time_fleet_sharded`; ``iterate`` performs
    no convergence checks, so stealing never fires here — the number
    measures the roster machinery's sweep overhead versus the fixed-shard
    solver.
    """
    from repro.core.rebalance import RebalancingShardedSolver

    solver = RebalancingShardedSolver(
        batch,
        num_shards=num_shards,
        mode=mode,
        steal_threshold=steal_threshold,
        rho=rho,
    )
    solver.iterate(1)  # warmup
    t0 = time.perf_counter()
    solver.initialize("zeros")
    solver.iterate(iterations)
    elapsed = time.perf_counter() - t0
    solver.close()
    return elapsed


def compare_backends(
    graph: FactorGraph,
    baseline: Backend,
    accelerated: Backend,
    iterations_baseline: int,
    iterations_accelerated: int | None = None,
    rho: float = 2.0,
    seed: int | None = None,
    repeats: int = 1,
) -> SpeedupComparison:
    """Measure both engines on the same graph (per-iteration comparison).

    The accelerated engine may run more iterations (it is faster; more
    iterations stabilize the per-iteration estimate) — speedups are
    per-iteration ratios, matching the paper's protocol.  ``repeats``
    applies to both engines (see :func:`measure_backend`).
    """
    if iterations_accelerated is None:
        iterations_accelerated = iterations_baseline
    base = measure_backend(graph, baseline, iterations_baseline, rho, seed, repeats=repeats)
    acc = measure_backend(graph, accelerated, iterations_accelerated, rho, seed, repeats=repeats)
    return SpeedupComparison(baseline=base, accelerated=acc)
