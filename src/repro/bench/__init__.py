"""Benchmark harness: measurement, reporting, workloads, Figure-5 table."""

from repro.bench.harness import (
    BackendMeasurement,
    SpeedupComparison,
    compare_backends,
    measure_backend,
)
from repro.bench.reporting import SeriesTable, fresh_report, results_path
from repro.bench.solver_table import (
    FIGURE5_SOLVERS,
    PARADMM_ROW,
    SolverEntry,
    build_table,
    open_source_parallel_count,
)
from repro.bench import workloads

__all__ = [
    "BackendMeasurement",
    "SpeedupComparison",
    "compare_backends",
    "measure_backend",
    "SeriesTable",
    "fresh_report",
    "results_path",
    "FIGURE5_SOLVERS",
    "PARADMM_ROW",
    "SolverEntry",
    "build_table",
    "open_source_parallel_count",
    "workloads",
]
