"""The paper's Figure 5: the optimization-solver landscape table.

A static capability matrix ("most open-source solvers cannot exploit
parallelism; commercial solvers allow [shared-memory] parallelism for
special classes …"), reproduced as data plus the row for the system this
repository implements, so the comparison the paper draws is regenerable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.reporting import SeriesTable


@dataclass(frozen=True)
class SolverEntry:
    """One row of Figure 5."""

    name: str
    generality: str  # problem classes
    parallelism: str  # "-", "SMMP", "CC", "SMMP+GPU", ...
    open_source: bool


#: Figure 5 as printed (legend: SMMP = shared-memory multi-processor,
#: CC = computer cluster).
FIGURE5_SOLVERS = (
    SolverEntry("Bonmin", "LP, MILP, NLP, MINLP", "-", True),
    SolverEntry("Couenne", "LP, MILP, NLP, MINLP", "-", True),
    SolverEntry("ECOS", "LP, SOCP", "-", True),
    SolverEntry("GLPK", "LP, MILP", "-", True),
    SolverEntry("Ipopt", "LP, NLP", "-", True),
    SolverEntry("NLopt", "NLP", "-", True),
    SolverEntry("SCS", "LP, SOCP, SDP", "-", True),
    SolverEntry("CPLEX", "LP, MILP, SOCP, MISOCP", "SMMP, CC (MILP only)", False),
    SolverEntry("Gurobi", "LP, MILP, SOCP, MISOCP", "SMMP, CC (MILP only)", False),
    SolverEntry("KNITRO", "LP, MILP, NLP, MINLP", "SMMP", False),
    SolverEntry("Mosek", "LP, MILP, SOCP, MISOCP, SDP, NLP", "SMMP", False),
)

#: The row the paper adds implicitly: parADMM itself (and this repo).
PARADMM_ROW = SolverEntry(
    "parADMM (this repo)",
    "any factor-graph objective (incl. non-convex) via proximal operators",
    "SMMP + GPU (fine-grained, automatic)",
    True,
)


def build_table(include_paradmm: bool = True) -> SeriesTable:
    """Render Figure 5 as a :class:`SeriesTable`."""
    t = SeriesTable(
        title="Figure 5 — state-of-the-art optimization solvers",
        columns=("Solver", "How general?", "Parallelism?", "Open?"),
    )
    entries = list(FIGURE5_SOLVERS)
    if include_paradmm:
        entries.append(PARADMM_ROW)
    for e in entries:
        t.add_row(e.name, e.generality, e.parallelism, "Y" if e.open_source else "-")
    t.add_note("SMMP = shared-memory multi-processor; CC = computer cluster")
    return t


def open_source_parallel_count() -> int:
    """How many Figure-5 open-source solvers exploit parallelism (paper: 0)."""
    return sum(
        1 for e in FIGURE5_SOLVERS if e.open_source and e.parallelism != "-"
    )
