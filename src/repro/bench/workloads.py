"""Shared workload builders for the figure benches.

Each paper figure sweeps a size parameter; these helpers build the graphs at
both "measured" scale (small enough for the pure-Python serial baseline to
run in seconds) and "modeled" scale (the paper's sizes, fed to the
performance models).  Keeping them here guarantees every bench and test
sweeps identical instances.
"""

from __future__ import annotations

import numpy as np

from repro.apps.mpc import MPCProblem, default_problem, inverted_pendulum
from repro.apps.packing import PackingProblem
from repro.apps.svm import SVMProblem, make_blobs
from repro.graph.batch import GraphBatch
from repro.graph.factor_graph import FactorGraph
from repro.utils.rng import default_rng

#: Measured sweeps (this machine, wall clock; serial baseline is Python).
PACKING_MEASURED_N = (5, 10, 20, 40, 60)
MPC_MEASURED_K = (25, 50, 100, 200, 400)
SVM_MEASURED_N = (25, 50, 100, 200, 400)

#: Modeled sweeps (performance models at paper scale).
PACKING_MODELED_N = (200, 500, 1000, 2000, 3000, 5000)
MPC_MODELED_K = (200, 1000, 10_000, 50_000, 100_000)
SVM_MODELED_N = (5000, 25_000, 50_000, 75_000, 100_000)

#: Measured multicore sweeps (threaded vs 1-thread vectorized baseline).
#: Larger than the serial sweeps: Python thread dispatch costs ~100us per
#: parallel loop, so the crossover sits at ~1e5 flat slots on this host.
PACKING_MULTICORE_N = (50, 100, 200, 350)
MPC_MULTICORE_K = (2000, 10_000, 50_000)
SVM_MULTICORE_N = (2000, 10_000, 40_000)

#: Iterations per timed measurement (the paper times 10 packing / 100 MPC /
#: 1000 SVM iterations; scaled down to keep the Python baseline tractable).
PACKING_TIMED_ITERS = 3
MPC_TIMED_ITERS = 3
SVM_TIMED_ITERS = 3


def packing_graph(n_disks: int) -> FactorGraph:
    """Triangle-packing graph for N disks (paper §V-A workload)."""
    return PackingProblem(n_disks).build_graph()


def mpc_graph(horizon: int) -> FactorGraph:
    """Inverted-pendulum MPC graph for horizon K (paper §V-B workload)."""
    return default_problem(horizon).build_graph()


def svm_graph(n_points: int, dim: int = 2, seed: int = 0) -> FactorGraph:
    """Two-Gaussian SVM graph for N points (paper §V-C workload)."""
    X, y = make_blobs(n_points, dim=dim, seed=seed)
    return SVMProblem(X, y).build_graph()


def mpc_fleet_problems(
    batch_size: int, horizon: int = 8, seed: int | None = 0
) -> list[MPCProblem]:
    """The instances behind :func:`mpc_fleet`, for solo-solve comparisons."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    rng = default_rng(seed)
    A, B = inverted_pendulum()
    return [
        MPCProblem(A=A, B=B, q0=rng.uniform(-0.2, 0.2, size=4), horizon=horizon)
        for _ in range(batch_size)
    ]


def mpc_fleet(
    batch_size: int, horizon: int = 8, seed: int | None = 0
) -> GraphBatch:
    """Fleet workload: B pendulum MPC instances with random initial states.

    All instances share the plant model; only ``q0`` varies — the
    one-model-many-devices pattern the batching subsystem targets.
    """
    from repro.apps.mpc import build_batch

    return build_batch(mpc_fleet_problems(batch_size, horizon, seed))


def svm_fleet(
    batch_size: int, n_points: int = 12, dim: int = 2, seed: int | None = 0
) -> GraphBatch:
    """Fleet workload: B small SVM training sets (per-instance blobs)."""
    from repro.apps.svm import build_batch

    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    problems = []
    base = 0 if seed is None else seed
    for i in range(batch_size):
        X, y = make_blobs(n_points, dim=dim, seed=base + i)
        problems.append(SVMProblem(X, y))
    return build_batch(problems)


def figure1_graph() -> FactorGraph:
    """The paper's Figure-1 graph: f1(w1,w2,w3) f2(w1,w4,w5) f3(w2,w5) f4(w5).

    All functions are benign diagonal quadratics so the graph is solvable;
    shared by the test fixtures, the equivalence matrix, and the golden
    trace.
    """
    from repro.graph.builder import GraphBuilder
    from repro.prox.standard import DiagQuadProx

    b = GraphBuilder()
    w = [b.add_variable(1, name=f"w{i + 1}") for i in range(5)]

    def quad(dims, target):
        return (
            DiagQuadProx(dims=dims),
            {"q": np.ones(sum(dims)), "c": -np.asarray(target, dtype=float)},
        )

    p1, par1 = quad((1, 1, 1), [1.0, 2.0, 3.0])
    p2, par2 = quad((1, 1, 1), [1.0, 4.0, 5.0])
    p3, par3 = quad((1, 1), [2.0, 5.0])
    p4, par4 = quad((1,), [5.0])
    b.add_factor(p1, [w[0], w[1], w[2]], par1)
    b.add_factor(p2, [w[0], w[3], w[4]], par2)
    b.add_factor(p3, [w[1], w[4]], par3)
    b.add_factor(p4, [w[4]], par4)
    return b.build()


def chain_graph() -> FactorGraph:
    """Six 2-D variables chained with consensus factors + anchors.

    A well-conditioned convex problem exercising mixed groups, used by the
    backend-equivalence and solver tests.
    """
    from repro.graph.builder import GraphBuilder
    from repro.prox.standard import ConsensusEqualProx, DiagQuadProx, L1Prox

    b = GraphBuilder()
    vs = b.add_variables(6, dim=2)
    dq = DiagQuadProx(dims=(2,))
    ce = ConsensusEqualProx(k=2, dim=2)
    l1 = L1Prox(lam=0.3)
    for i, v in enumerate(vs):
        b.add_factor(dq, [v], params={"q": [1.0, 2.0], "c": [float(i), -1.0]})
    for i in range(5):
        b.add_factor(ce, [vs[i], vs[i + 1]])
    b.add_factor(l1, [vs[0]])
    return b.build()


def star_graph(n_leaves: int, hub_extra: int = 0) -> FactorGraph:
    """Imbalance stressor: one hub variable touched by every factor.

    Used by the degree-imbalance ablation — the hub's z-update is the
    "highest-degree variable node" of the paper's conclusion.  ``hub_extra``
    adds that many extra degree-1 leaf variables to dilute or sharpen the
    imbalance.
    """
    from repro.graph.builder import GraphBuilder
    from repro.prox.standard import ConsensusEqualProx

    b = GraphBuilder()
    hub = b.add_variable(1, name="hub")
    eq = ConsensusEqualProx(k=2, dim=1)
    for i in range(n_leaves + hub_extra):
        leaf = b.add_variable(1, name=f"leaf{i}")
        b.add_factor(eq, [hub, leaf])
    return b.build()
