"""Shared workload builders for the figure benches.

Each paper figure sweeps a size parameter; these helpers build the graphs at
both "measured" scale (small enough for the pure-Python serial baseline to
run in seconds) and "modeled" scale (the paper's sizes, fed to the
performance models).  Keeping them here guarantees every bench and test
sweeps identical instances.
"""

from __future__ import annotations

import numpy as np

from repro.apps.mpc import default_problem
from repro.apps.packing import PackingProblem
from repro.apps.svm import SVMProblem, make_blobs
from repro.graph.factor_graph import FactorGraph

#: Measured sweeps (this machine, wall clock; serial baseline is Python).
PACKING_MEASURED_N = (5, 10, 20, 40, 60)
MPC_MEASURED_K = (25, 50, 100, 200, 400)
SVM_MEASURED_N = (25, 50, 100, 200, 400)

#: Modeled sweeps (performance models at paper scale).
PACKING_MODELED_N = (200, 500, 1000, 2000, 3000, 5000)
MPC_MODELED_K = (200, 1000, 10_000, 50_000, 100_000)
SVM_MODELED_N = (5000, 25_000, 50_000, 75_000, 100_000)

#: Measured multicore sweeps (threaded vs 1-thread vectorized baseline).
#: Larger than the serial sweeps: Python thread dispatch costs ~100us per
#: parallel loop, so the crossover sits at ~1e5 flat slots on this host.
PACKING_MULTICORE_N = (50, 100, 200, 350)
MPC_MULTICORE_K = (2000, 10_000, 50_000)
SVM_MULTICORE_N = (2000, 10_000, 40_000)

#: Iterations per timed measurement (the paper times 10 packing / 100 MPC /
#: 1000 SVM iterations; scaled down to keep the Python baseline tractable).
PACKING_TIMED_ITERS = 3
MPC_TIMED_ITERS = 3
SVM_TIMED_ITERS = 3


def packing_graph(n_disks: int) -> FactorGraph:
    """Triangle-packing graph for N disks (paper §V-A workload)."""
    return PackingProblem(n_disks).build_graph()


def mpc_graph(horizon: int) -> FactorGraph:
    """Inverted-pendulum MPC graph for horizon K (paper §V-B workload)."""
    return default_problem(horizon).build_graph()


def svm_graph(n_points: int, dim: int = 2, seed: int = 0) -> FactorGraph:
    """Two-Gaussian SVM graph for N points (paper §V-C workload)."""
    X, y = make_blobs(n_points, dim=dim, seed=seed)
    return SVMProblem(X, y).build_graph()


def star_graph(n_leaves: int, hub_extra: int = 0) -> FactorGraph:
    """Imbalance stressor: one hub variable touched by every factor.

    Used by the degree-imbalance ablation — the hub's z-update is the
    "highest-degree variable node" of the paper's conclusion.  ``hub_extra``
    adds that many extra degree-1 leaf variables to dilute or sharpen the
    imbalance.
    """
    from repro.graph.builder import GraphBuilder
    from repro.prox.standard import ConsensusEqualProx

    b = GraphBuilder()
    hub = b.add_variable(1, name="hub")
    eq = ConsensusEqualProx(k=2, dim=1)
    for i in range(n_leaves + hub_extra):
        leaf = b.add_variable(1, name=f"leaf{i}")
        b.add_factor(eq, [hub, leaf])
    return b.build()
