"""Per-host reference-performance baselines with tolerance bands.

Performance numbers only mean something relative to the machine that
produced them, so the service benchmark checks its metrics against a
ReFrame-style reference table::

    {hostname: {metric: (ref, lower_frac, upper_frac, unit)}}

``lower_frac``/``upper_frac`` are *fractional deviations from ref* (the
ReFrame convention): ``(100, -0.5, None, "inst/s")`` accepts anything
above 50 inst/s with no upper bound.  ``None`` on either side disables
that bound.  Hosts are matched by :func:`platform.node` with a
``"default"`` fallback whose bands are deliberately loose — on unknown
hardware the check only gates on order-of-magnitude collapse, while a
host with a curated entry gets a tight regression fence.

For higher-is-better metrics (throughput) put the fence in
``lower_frac``; for lower-is-better (latency) put it in ``upper_frac``.
"""

from __future__ import annotations

import platform
from dataclasses import dataclass
from typing import Mapping

# Reference values for the `repro-bench serve` smoke workload
# (32 requests, seed 0, horizon 8, check_every 10, 2 thread shards).
# The "default" entry gates only on collapse: an order of magnitude
# below ref fails, anything else passes.  Add named hosts with tight
# bands as curated machines appear.
SERVE_BASELINES: dict[str, dict[str, tuple]] = {
    "default": {
        "instances_per_sec": (20.0, -0.9, None, "inst/s"),
        "p50_latency": (0.5, None, 19.0, "s"),
        "p99_latency": (2.0, None, 19.0, "s"),
    },
}


@dataclass(frozen=True)
class BaselineCheck:
    """Verdict for one metric against its reference band."""

    metric: str
    value: float
    ref: float
    lower: float | None  # absolute bound, already ref*(1+lower_frac)
    upper: float | None
    unit: str
    ok: bool

    def summary(self) -> str:
        lo = f"{self.lower:.4g}" if self.lower is not None else "-inf"
        hi = f"{self.upper:.4g}" if self.upper is not None else "+inf"
        verdict = "ok" if self.ok else "FAIL"
        return (
            f"{self.metric}: {self.value:.4g} {self.unit} "
            f"(ref {self.ref:.4g}, band [{lo}, {hi}]) {verdict}"
        )


def reference_for(
    baselines: Mapping[str, Mapping[str, tuple]] | None = None,
    host: str | None = None,
) -> tuple[str, Mapping[str, tuple]]:
    """Pick the reference table for ``host`` (default: this machine).

    Returns ``(matched_key, table)``; falls back to ``"default"`` and to
    an empty table if no default exists.
    """
    if baselines is None:
        baselines = SERVE_BASELINES
    if host is None:
        host = platform.node()
    if host in baselines:
        return host, baselines[host]
    return "default", baselines.get("default", {})


def check_performance(
    metrics: Mapping[str, float],
    reference: Mapping[str, tuple],
) -> list[BaselineCheck]:
    """Check measured ``metrics`` against one host's reference table.

    Metrics without a reference entry are skipped (not failures —
    baselines grow one curated metric at a time); reference entries
    without a measurement are skipped likewise.
    """
    out: list[BaselineCheck] = []
    for name, entry in reference.items():
        if name not in metrics:
            continue
        ref, lower_frac, upper_frac, unit = entry
        value = float(metrics[name])
        lower = None if lower_frac is None else ref * (1.0 + lower_frac)
        upper = None if upper_frac is None else ref * (1.0 + upper_frac)
        ok = (lower is None or value >= lower) and (
            upper is None or value <= upper
        )
        out.append(
            BaselineCheck(
                metric=name,
                value=value,
                ref=float(ref),
                lower=lower,
                upper=upper,
                unit=unit,
                ok=bool(ok),
            )
        )
    return out


def all_ok(checks: list[BaselineCheck]) -> bool:
    return all(c.ok for c in checks)
