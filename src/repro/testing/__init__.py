"""Test-support machinery shipped with the package (not test cases).

:mod:`repro.testing.faults` is the fault-injection harness for the
process-mode fleet solvers: seeded fault plans that kill workers, sever
or delay their result queues, and corrupt replies at chosen sweep
segments, so the supervision layer (:mod:`repro.core.supervision`) can be
exercised deterministically from ``tests/test_fleet_faults.py``, the
bench CLI (``--fault-plan``), and ``examples/fleet_faults.py``.
"""

from repro.testing.faults import FaultAction, FaultInjector, FaultPlan, kill_worker

__all__ = ["FaultAction", "FaultInjector", "FaultPlan", "kill_worker"]
