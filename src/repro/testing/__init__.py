"""Test-support machinery shipped with the package (not test cases).

:mod:`repro.testing.faults` is the fault-injection harness for the
process-mode fleet solvers: seeded fault plans that kill workers, sever
or delay their result queues, and corrupt replies at chosen sweep
segments, so the supervision layer (:mod:`repro.core.supervision`) can be
exercised deterministically from ``tests/test_fleet_faults.py``, the
bench CLI (``--fault-plan``), and ``examples/fleet_faults.py``.

:mod:`repro.testing.traffic` is the traffic harness for the fleet
service (:mod:`repro.core.service`): seeded open-loop arrival processes
(Poisson, bursty, adversarial) on the service's segment clock, plus
open- and closed-loop replay drivers — deterministic workloads for
``tests/test_fleet_service.py`` and ``repro-bench serve``.
"""

from repro.testing.faults import FaultAction, FaultInjector, FaultPlan, kill_worker
from repro.testing.traffic import (
    TraceEntry,
    adversarial_trace,
    bursty_trace,
    closed_loop,
    poisson_trace,
    replay,
)

__all__ = [
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "kill_worker",
    "TraceEntry",
    "adversarial_trace",
    "bursty_trace",
    "closed_loop",
    "poisson_trace",
    "replay",
]
