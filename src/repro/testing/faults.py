"""Deterministic fault injection for the process-mode fleet solvers.

The supervision layer (:mod:`repro.core.supervision`) exists to survive
workers that die, hang, or corrupt their queues — failures that are
miserable to reproduce by accident.  This module makes them a scripted,
seeded input instead:

* :class:`FaultAction` — one fault: a ``kind`` (``kill`` / ``drop`` /
  ``delay`` / ``corrupt``), the target shard, and the sweep *segment*
  (0-based count of ``_run_all`` calls) at which to strike;
* :class:`FaultPlan` — an ordered collection of actions, buildable from
  the compact spec DSL (``"kill:0@2,corrupt:1@3,delay:0@1:0.5"``) or
  drawn from a seeded RNG (:meth:`FaultPlan.random`) for chaos matrices;
* :class:`FaultInjector` — the hook object both solvers accept as
  ``injector=``: their ``_run_all`` calls :meth:`before_segment` right
  before dispatching each segment, and the injector applies whatever the
  plan scripts for that segment.

Fault semantics (all parent-observable, so recovery is testable):

``kill``
    SIGKILL the shard's worker process — the canonical crash.  The parent
    sees :class:`~repro.core.supervision.WorkerDied` within one poll.
``drop``
    sever the result queue: every message (heartbeats included) is
    swallowed for the rest of the segment, emulating a dead link to a
    live worker.  The parent sees
    :class:`~repro.core.supervision.WorkerUnresponsive` after
    ``wait_timeout``.
``delay``
    hold the next reply for ``duration`` seconds, emulating a straggler.
    A delay under ``wait_timeout`` must produce *no* fault — the test for
    false positives.
``corrupt``
    the segment's reply fails to decode (as an unpicklable payload
    would), surfacing :class:`~repro.core.supervision.WorkerProtocolError`.

Because plans are data and the solvers' recovery replays exact pre-segment
state, a faulted solve must match its fault-free twin bit-for-bit — the
acceptance bar pinned by ``tests/test_fleet_faults.py``.
"""

from __future__ import annotations

import os
import queue as _queue
import signal
import time
from dataclasses import dataclass

from repro.core.supervision import HEARTBEAT
from repro.utils.rng import DEFAULT_SEED, default_rng

#: Supported fault kinds, in rough order of severity.
KINDS = ("kill", "drop", "delay", "corrupt")


@dataclass(frozen=True)
class FaultAction:
    """One scripted fault: strike ``shard`` at sweep segment ``segment``.

    ``duration`` only matters for ``delay`` (seconds to hold the reply).
    """

    kind: str
    shard: int
    segment: int
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        if self.shard < 0:
            raise ValueError(f"shard must be >= 0, got {self.shard}")
        if self.segment < 0:
            raise ValueError(f"segment must be >= 0, got {self.segment}")
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")

    def spec(self) -> str:
        """The DSL form of this action (inverse of :meth:`FaultPlan.parse`)."""
        base = f"{self.kind}:{self.shard}@{self.segment}"
        if self.duration:
            base += f":{self.duration:g}"
        return base


class FaultPlan:
    """An ordered script of :class:`FaultAction`\\ s, indexable by segment."""

    def __init__(self, actions=()) -> None:
        self.actions = sorted(
            actions, key=lambda a: (a.segment, a.shard, a.kind)
        )

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from the compact DSL.

        ``spec`` is a comma-separated list of ``kind:shard@segment`` items,
        with an optional ``:duration`` tail for ``delay`` — e.g.
        ``"kill:0@2,corrupt:1@3,delay:0@1:0.5"``.  Whitespace around items
        is ignored; an empty spec is an empty plan.
        """
        actions = []
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            try:
                kind, rest = item.split(":", 1)
                at = rest.split("@", 1)
                shard = int(at[0])
                tail = at[1].split(":", 1)
                segment = int(tail[0])
                duration = float(tail[1]) if len(tail) > 1 else 0.0
            except (ValueError, IndexError) as err:
                raise ValueError(
                    f"bad fault spec item {item!r} (want kind:shard@segment"
                    f"[:duration], e.g. 'kill:0@2'): {err}"
                ) from None
            actions.append(FaultAction(kind.strip(), shard, segment, duration))
        return cls(actions)

    @classmethod
    def random(
        cls,
        num_faults: int,
        num_shards: int,
        num_segments: int,
        seed: int | None = None,
        kinds=("kill",),
        delay: float = 0.1,
    ) -> "FaultPlan":
        """Draw a seeded plan: ``num_faults`` strikes over a segment range.

        Deterministic given the seed — the chaos-matrix entry point
        (``REPRO_FAULT_SEEDS`` widens the matrix in CI).
        """
        if num_shards < 1 or num_segments < 1:
            raise ValueError("need at least one shard and one segment")
        rng = default_rng(DEFAULT_SEED if seed is None else seed)
        actions = []
        for _ in range(int(num_faults)):
            kind = kinds[int(rng.integers(len(kinds)))]
            actions.append(
                FaultAction(
                    kind,
                    int(rng.integers(num_shards)),
                    int(rng.integers(num_segments)),
                    delay if kind == "delay" else 0.0,
                )
            )
        return cls(actions)

    def for_segment(self, segment: int) -> list[FaultAction]:
        return [a for a in self.actions if a.segment == segment]

    def spec(self) -> str:
        return ",".join(a.spec() for a in self.actions)

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self):
        return iter(self.actions)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"FaultPlan({self.spec()!r})"


class _MisbehavingQueue:
    """Parent-side wrapper that makes a result queue misbehave on command.

    Wraps the real ``done_q`` (workers keep writing to the real queue;
    only the parent's view is sabotaged).  ``mode`` is one of ``None``
    (transparent), ``"drop"`` (swallow everything — a severed link),
    ``"delay"`` (hold the next reply ``delay`` seconds, once), or
    ``"corrupt"`` (the next non-heartbeat reply raises, as an unpicklable
    payload would).  Restart-recovery replaces faulted queues wholesale,
    so a wrapper never outlives the incident it scripted.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self.mode: str | None = None
        self.delay = 0.0

    def get(self, block=True, timeout=None):
        if self.mode == "drop":
            self._inner.get(block, timeout)  # queue.Empty propagates
            raise _queue.Empty  # a message arrived: swallow it
        if self.mode == "delay":
            self.mode = None
            time.sleep(self.delay)
            return self._inner.get(block, timeout)
        if self.mode == "corrupt":
            msg = self._inner.get(block, timeout)
            if isinstance(msg, tuple) and msg and msg[0] == HEARTBEAT:
                return msg  # liveness still flows; only the reply is bad
            self.mode = None
            raise RuntimeError("injected corrupt payload (unpicklable reply)")
        return self._inner.get(block, timeout)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _worker_slot(solver, shard_idx: int):
    """The object carrying shard ``shard_idx``'s ``proc``/``done_q``.

    ``RebalancingShardedSolver`` keeps them on ``_workers`` entries;
    ``ShardedBatchedSolver`` keeps them on the shards themselves.
    """
    workers = getattr(solver, "_workers", None)
    if workers:
        return workers[shard_idx]
    return solver.shards[shard_idx]


def kill_worker(solver, shard_idx: int) -> int:
    """SIGKILL shard ``shard_idx``'s worker right now; returns the pid.

    The scripted-plan path goes through :class:`FaultInjector`; this
    direct form is for composing crashes with churn in tests (kill, then
    ``append_instances`` / ``reshard`` / steal, then solve on).
    """
    slot = _worker_slot(solver, shard_idx)
    pid = slot.proc.pid
    os.kill(pid, signal.SIGKILL)
    slot.proc.join(timeout=10)
    return pid


class FaultInjector:
    """Applies a :class:`FaultPlan` as a fleet solver runs.

    Pass as ``injector=`` to :class:`~repro.core.sharded.ShardedBatchedSolver`
    or :class:`~repro.core.rebalance.RebalancingShardedSolver`
    (``mode="process"`` only).  The solver calls :meth:`before_segment`
    right before dispatching each ``_run_all`` segment; every applied
    action is mirrored into :attr:`applied` as ``(segment, action)`` so
    tests can assert the script actually fired.
    """

    def __init__(self, plan: FaultPlan | str) -> None:
        self.plan = FaultPlan.parse(plan) if isinstance(plan, str) else plan
        self.segment = 0
        self.applied: list[tuple[int, FaultAction]] = []
        self.skipped: list[tuple[int, FaultAction]] = []

    def before_segment(self, solver) -> None:
        seg, self.segment = self.segment, self.segment + 1
        for action in self.plan.for_segment(seg):
            if action.shard >= len(solver.shards):
                # A migration may have shrunk the fleet under the plan.
                self.skipped.append((seg, action))
                continue
            self._apply(solver, action)
            self.applied.append((seg, action))

    def _apply(self, solver, action: FaultAction) -> None:
        if action.kind == "kill":
            kill_worker(solver, action.shard)
            return
        slot = _worker_slot(solver, action.shard)
        if not isinstance(slot.done_q, _MisbehavingQueue):
            slot.done_q = _MisbehavingQueue(slot.done_q)
        slot.done_q.mode = action.kind
        slot.done_q.delay = action.duration
