"""Traffic generation and replay for the fleet service.

The service's latency/throughput behaviour depends on *when* requests
arrive relative to the sweep-segment clock, so its tests and benchmarks
need reproducible arrival processes, not ad-hoc loops.  This module
provides seeded trace generators and two replay drivers:

* **open-loop** traces (:func:`poisson_trace`, :func:`bursty_trace`,
  :func:`adversarial_trace`): arrivals are scheduled in advance on the
  service's virtual clock (the segment counter) regardless of how the
  fleet is keeping up — the standard way to expose queueing behaviour
  (and to avoid the coordinated-omission trap of only sending when the
  system is ready).  :func:`replay` feeds such a trace to a service.
* **closed-loop** driving (:func:`closed_loop`): a fixed number of
  synthetic clients each submit, wait for completion, and immediately
  resubmit — throughput-bound rather than arrival-bound.

Arrival times are *segment ticks*, never wall-clock: replay is therefore
deterministic, and identical traces replayed twice produce bit-identical
per-request results (the property ``tests/test_fleet_service.py`` pins
against solo solves).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np


@dataclass(frozen=True)
class TraceEntry:
    """One scheduled request: arrival tick + submit() arguments."""

    arrival: int
    params: Mapping = field(default_factory=dict)
    warm_start: np.ndarray | None = None
    max_iterations: int | None = None


def _make_params(make_params, rng: np.random.Generator, i: int):
    if make_params is None:
        return {}
    return make_params(rng, i)


def poisson_trace(
    num_requests: int,
    rate: float,
    seed: int = 0,
    make_params: Callable[[np.random.Generator, int], Mapping] | None = None,
) -> list[TraceEntry]:
    """Open-loop Poisson arrivals: ``rate`` requests per segment tick.

    Inter-arrival gaps are seeded exponential draws accumulated and
    floored onto the segment grid (the service admits at boundaries, so
    sub-segment timing is unobservable anyway).  ``make_params(rng, i)``
    builds per-request parameter overrides from the same stream, so one
    seed fixes the whole workload.
    """
    if num_requests < 0:
        raise ValueError(f"num_requests must be >= 0, got {num_requests}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=num_requests)
    arrivals = np.floor(np.cumsum(gaps)).astype(int)
    return [
        TraceEntry(arrival=int(arrivals[i]), params=_make_params(make_params, rng, i))
        for i in range(num_requests)
    ]


def bursty_trace(
    num_bursts: int,
    burst_size: int,
    gap: int,
    seed: int = 0,
    make_params: Callable[[np.random.Generator, int], Mapping] | None = None,
) -> list[TraceEntry]:
    """Bursty arrivals: ``num_bursts`` volleys of ``burst_size`` requests
    landing on the same tick, ``gap`` segments apart.

    Exercises admission batching (a whole burst should be admitted in one
    ``add_instances`` call) and the tail-latency cost of queue spikes.
    """
    if num_bursts < 0 or burst_size < 0:
        raise ValueError("num_bursts and burst_size must be >= 0")
    if gap < 0:
        raise ValueError(f"gap must be >= 0, got {gap}")
    rng = np.random.default_rng(seed)
    out: list[TraceEntry] = []
    i = 0
    for b in range(num_bursts):
        for _ in range(burst_size):
            out.append(
                TraceEntry(
                    arrival=b * gap, params=_make_params(make_params, rng, i)
                )
            )
            i += 1
    return out


def adversarial_trace(
    num_requests: int,
    seed: int = 0,
    make_params: Callable[[np.random.Generator, int], Mapping] | None = None,
    max_iterations_choices: Sequence[int] = (10, 50, 200),
) -> list[TraceEntry]:
    """Worst-case mix: everything arrives at tick 0 with wildly mixed
    per-request iteration caps.

    The full backlog hits one admission, then evictions fire at staggered
    segments as the short caps expire — the pattern that most stresses
    ``remove_instances`` renumbering and the bit-identical contract.
    """
    if num_requests < 0:
        raise ValueError(f"num_requests must be >= 0, got {num_requests}")
    rng = np.random.default_rng(seed)
    caps = rng.choice(list(max_iterations_choices), size=num_requests)
    return [
        TraceEntry(
            arrival=0,
            params=_make_params(make_params, rng, i),
            max_iterations=int(caps[i]),
        )
        for i in range(num_requests)
    ]


def replay(service, trace: Sequence[TraceEntry]) -> dict[int, object]:
    """Open-loop replay: feed ``trace`` to ``service`` on its segment clock.

    Entries are submitted when their arrival tick is due (arrival <= the
    service's current segment), then the service is stepped; repeats
    until the trace is exhausted and the service is dry.  Returns
    ``{request_id: RequestResult}`` — ids are assigned in trace order, so
    ``trace[i]`` maps to the i-th submitted id.
    """
    entries = sorted(trace, key=lambda e: e.arrival)
    results: dict[int, object] = {}
    nxt = 0
    while nxt < len(entries) or service.in_flight:
        while nxt < len(entries) and entries[nxt].arrival <= service.segment:
            e = entries[nxt]
            service.submit(
                params=dict(e.params),
                warm_start=e.warm_start,
                max_iterations=e.max_iterations,
            )
            nxt += 1
        for r in service.step():
            results[r.request_id] = r
    return results


def closed_loop(
    service,
    num_requests: int,
    clients: int,
    make_params: Callable[[np.random.Generator, int], Mapping] | None = None,
    seed: int = 0,
    max_iterations: int | None = None,
) -> dict[int, object]:
    """Closed-loop driver: ``clients`` synthetic users, each with one
    request in flight at a time, until ``num_requests`` have completed.

    Each completion immediately triggers that client's next submit, so
    the offered load tracks service throughput — the saturation view that
    complements open-loop latency measurement.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    rng = np.random.default_rng(seed)
    results: dict[int, object] = {}
    submitted = 0
    target = int(num_requests)
    while submitted < min(clients, target):
        service.submit(
            params=_make_params(make_params, rng, submitted),
            max_iterations=max_iterations,
        )
        submitted += 1
    while len(results) < target:
        for r in service.step():
            results[r.request_id] = r
            if submitted < target:
                service.submit(
                    params=_make_params(make_params, rng, submitted),
                    max_iterations=max_iterations,
                )
                submitted += 1
    return results
