"""Work partitioning and the degree-rebalancing scheduler.

Two schedulers live here:

* :func:`contiguous_chunks` — the paper's ``AssignThreads`` (Figure 4):
  split a range of graph elements into near-equal contiguous chunks, one per
  worker.  Cheap, cache-friendly, but blind to per-element cost.
* :func:`balanced_variable_groups` — the fix proposed in the paper's
  conclusion for the z-update bottleneck: group variable nodes so the total
  number of incident edges per group is as uniform as possible ("each CUDA
  thread is responsible for updating not just one but several variable nodes
  in groups such that the total number of edges per group is as uniform as
  possible").  Implemented as LPT (longest-processing-time-first) greedy
  makespan scheduling.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.graph.factor_graph import FactorGraph


def contiguous_chunks(n: int, k: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``k`` contiguous [start, stop) chunks.

    Matches the paper's ``AssignThreads``: chunk ``i`` is
    ``[i*n//k, (i+1)*n//k)`` with the final chunk absorbing the remainder.
    Empty chunks are possible when ``k > n`` (also true of the original).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    out = []
    for i in range(k):
        start = i * n // k
        stop = (i + 1) * n // k if i < k - 1 else n
        out.append((start, stop))
    return out


@dataclass(frozen=True)
class Partition:
    """Assignment of items to groups plus its load statistics."""

    groups: tuple[tuple[int, ...], ...]
    loads: np.ndarray  # total weight per group

    @property
    def makespan(self) -> float:
        """Heaviest group load — the parallel completion time."""
        return float(self.loads.max()) if self.loads.size else 0.0

    @property
    def imbalance(self) -> float:
        """makespan / mean load; 1.0 is perfectly balanced."""
        if self.loads.size == 0:
            return 1.0
        mean = float(self.loads.mean())
        return self.makespan / mean if mean > 0 else 1.0


def balanced_partition(weights: np.ndarray, k: int) -> Partition:
    """LPT greedy makespan scheduling of weighted items onto ``k`` groups.

    Classic 4/3-approximation: sort items by decreasing weight, always place
    the next item on the currently lightest group.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1:
        raise ValueError("weights must be 1-D")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    order = np.argsort(weights, kind="stable")[::-1]
    heap: list[tuple[float, int]] = [(0.0, g) for g in range(k)]
    heapq.heapify(heap)
    members: list[list[int]] = [[] for _ in range(k)]
    loads = np.zeros(k, dtype=np.float64)
    for item in order:
        load, g = heapq.heappop(heap)
        members[g].append(int(item))
        loads[g] = load + weights[item]
        heapq.heappush(heap, (loads[g], g))
    return Partition(groups=tuple(tuple(m) for m in members), loads=loads)


def balanced_variable_groups(graph: FactorGraph, k: int) -> Partition:
    """Group variable nodes so edges-per-group is near-uniform.

    This is the conclusion's proposed z-update scheduler: the z-update kernel
    finishes only when the highest-degree variable is done, so we bin-pack
    variables by degree to equalize per-worker edge counts.
    """
    return balanced_partition(graph.var_degree.astype(np.float64), k)


def balanced_factor_groups(graph: FactorGraph, k: int) -> Partition:
    """Group factors so total edge count per group is near-uniform.

    Same rebalancing idea applied to the x-update ("highly unbalanced degrees
    on the function nodes can also cause slowdowns for a similar reason").
    """
    return balanced_partition(graph.factor_degree.astype(np.float64), k)


def chunk_loads(weights: np.ndarray, k: int) -> Partition:
    """Load statistics of the naive contiguous-chunk schedule.

    The baseline the rebalancer is compared against in the ablation bench.
    """
    weights = np.asarray(weights, dtype=np.float64)
    chunks = contiguous_chunks(weights.size, k)
    groups = tuple(tuple(range(s, t)) for s, t in chunks)
    loads = np.array([weights[s:t].sum() for s, t in chunks])
    return Partition(groups=groups, loads=loads)
