"""Factor-graph substrate: structure, construction, partitioning, analysis."""

from repro.graph.factor_graph import (
    DegenerateGraphWarning,
    FactorGraph,
    FactorGroup,
    FactorSpec,
)
from repro.graph.builder import GraphBuilder, graph_from_edges, start_graph
from repro.graph.batch import (
    REBUILD_COUNTER,
    GraphBatch,
    StructuralRebuildCounter,
    pack_batches,
    pack_graphs,
    replicate_graph,
)
from repro.graph.partition import (
    Partition,
    balanced_factor_groups,
    balanced_partition,
    balanced_variable_groups,
    chunk_loads,
    contiguous_chunks,
)
from repro.graph.analysis import (
    DegreeStats,
    degree_histogram,
    factor_degree_stats,
    graph_report,
    is_bipartite_consistent,
    memory_footprint_bytes,
    variable_degree_stats,
)
from repro.graph.io import load_graph, load_state, save_graph, save_state

__all__ = [
    "DegenerateGraphWarning",
    "FactorGraph",
    "FactorGroup",
    "FactorSpec",
    "GraphBuilder",
    "graph_from_edges",
    "start_graph",
    "GraphBatch",
    "REBUILD_COUNTER",
    "StructuralRebuildCounter",
    "pack_batches",
    "pack_graphs",
    "replicate_graph",
    "Partition",
    "balanced_factor_groups",
    "balanced_partition",
    "balanced_variable_groups",
    "chunk_loads",
    "contiguous_chunks",
    "DegreeStats",
    "degree_histogram",
    "factor_degree_stats",
    "graph_report",
    "is_bipartite_consistent",
    "memory_footprint_bytes",
    "variable_degree_stats",
    "load_graph",
    "load_state",
    "save_graph",
    "save_state",
]
