"""Structural analysis of factor graphs: degrees, imbalance, memory.

These diagnostics back the paper's discussion of when fine-grained
parallelism pays off (large graphs, simple sub-problems, balanced degrees)
and the conclusion's observation that one overloaded GPU core drags the whole
kernel ("the z-update kernel only finishes once the highest-degree variable
node ... is updated").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.factor_graph import FactorGraph


@dataclass(frozen=True)
class DegreeStats:
    """Summary statistics of a degree sequence."""

    count: int
    min: int
    max: int
    mean: float
    std: float

    @property
    def imbalance(self) -> float:
        """max/mean degree — 1.0 means perfectly uniform load."""
        return self.max / self.mean if self.mean > 0 else 1.0


def _stats(deg: np.ndarray) -> DegreeStats:
    if deg.size == 0:
        return DegreeStats(count=0, min=0, max=0, mean=0.0, std=0.0)
    return DegreeStats(
        count=int(deg.size),
        min=int(deg.min()),
        max=int(deg.max()),
        mean=float(deg.mean()),
        std=float(deg.std()),
    )


def variable_degree_stats(graph: FactorGraph) -> DegreeStats:
    """Degree statistics of variable nodes (|∂b|)."""
    return _stats(graph.var_degree)


def factor_degree_stats(graph: FactorGraph) -> DegreeStats:
    """Degree statistics of function nodes (|∂a|)."""
    return _stats(graph.factor_degree)


def degree_histogram(graph: FactorGraph, side: str = "var") -> dict[int, int]:
    """Histogram {degree: count} for one side of the bipartite graph."""
    if side == "var":
        deg = graph.var_degree
    elif side == "factor":
        deg = graph.factor_degree
    else:
        raise ValueError(f"side must be 'var' or 'factor', got {side!r}")
    values, counts = np.unique(deg, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def memory_footprint_bytes(graph: FactorGraph) -> dict[str, int]:
    """Bytes needed for the five ADMM variable families plus index maps.

    Mirrors the paper's statement that "the limits of the current version are
    the computer memory and the GPU memory".
    """
    f8, i8 = 8, 8
    edge_arrays = 4 * graph.edge_size * f8  # x, m, u, n
    z_array = graph.z_size * f8
    rho_alpha = 2 * graph.num_edges * f8
    index_maps = (
        graph.flat_edge_to_z.size * i8
        + graph.slot_edge.size * i8
        + graph.edge_var.size * i8
        + graph.edge_indptr.size * i8
        + graph.z_indptr.size * i8
    )
    scatter = int(graph.scatter_matrix.data.nbytes + graph.scatter_matrix.indices.nbytes + graph.scatter_matrix.indptr.nbytes)
    total = edge_arrays + z_array + rho_alpha + index_maps + scatter
    return {
        "edge_arrays": edge_arrays,
        "z_array": z_array,
        "rho_alpha": rho_alpha,
        "index_maps": index_maps,
        "scatter_matrix": scatter,
        "total": total,
    }


def is_bipartite_consistent(graph: FactorGraph) -> bool:
    """Cross-check the redundant index structures against each other.

    Verifies that (a) edge counts from the factor side and the variable side
    agree, (b) the flat slot maps are a permutation-free cover of the edge
    array, and (c) the scatter matrix row sums equal variable degrees (each
    z slot receives exactly ``deg(b)`` messages).
    """
    if int(graph.factor_degree.sum()) != graph.num_edges:
        return False
    if int(graph.var_degree.sum()) != graph.num_edges:
        return False
    if graph.edge_size != int(graph.edge_dims.sum()):
        return False
    row_sums = np.asarray(graph.scatter_matrix.sum(axis=1)).ravel()
    expected = np.repeat(graph.var_degree, graph.var_dims)
    if not np.array_equal(row_sums.astype(np.int64), expected):
        return False
    # every flat edge slot maps to a valid z slot of the same variable
    z_var = np.repeat(np.arange(graph.num_vars), graph.var_dims)
    if graph.edge_size and not np.array_equal(
        z_var[graph.flat_edge_to_z], graph.edge_var[graph.slot_edge]
    ):
        return False
    return True


def graph_report(graph: FactorGraph) -> str:
    """Multi-line human-readable structural report."""
    vs, fs = variable_degree_stats(graph), factor_degree_stats(graph)
    mem = memory_footprint_bytes(graph)
    lines = [
        graph.summary(),
        f"  var degree:    min={vs.min} max={vs.max} mean={vs.mean:.2f} "
        f"imbalance={vs.imbalance:.2f}",
        f"  factor degree: min={fs.min} max={fs.max} mean={fs.mean:.2f} "
        f"imbalance={fs.imbalance:.2f}",
        f"  memory: {mem['total'] / 1e6:.2f} MB "
        f"(edge arrays {mem['edge_arrays'] / 1e6:.2f} MB)",
    ]
    if graph.isolated_vars.size:
        lines.append(
            f"  isolated vars: {graph.isolated_vars.size} "
            f"(ids {graph.isolated_vars[:8].tolist()}"
            f"{'...' if graph.isolated_vars.size > 8 else ''}) — degenerate: "
            f"their z entries are never updated"
        )
    return "\n".join(lines)
