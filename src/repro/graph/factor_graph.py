"""The bipartite factor-graph data structure at the heart of parADMM.

An objective ``f(w) = sum_a f_a(w_{∂a})`` is represented as a bipartite graph
``G = (F, V, E)``: function nodes (factors) on one side, variable nodes on the
other, an edge ``(a, b)`` whenever factor ``a`` depends on variable ``b``.

Storage follows the paper's flat structure-of-arrays layout: every edge
``(a, b)`` owns ``dim(b)`` consecutive slots in flat 1-D arrays (one array per
ADMM auxiliary family: x, m, u, n), laid out in edge-creation order — exactly
the order of ``addNode`` calls in the paper's Figure 2.  Variable values
``z_b`` live in a second flat array in variable-creation order.  Precomputed
index maps connect the two layouts:

* ``flat_edge_to_z[s]`` — the z-slot that edge slot ``s`` mirrors; powers the
  vectorized u/n updates (``u += α (x − z[map])``; ``n = z[map] − u``).
* ``scatter_matrix`` — a 0/1 CSR matrix ``S`` of shape (z_size, edge_size)
  with ``S[z_slot, edge_slot] = 1``; the z-update becomes two sparse
  mat-vecs: ``z = (S @ (ρ ⊙ m)) / (S @ ρ)``.
* per-factor contiguous slot ranges (``factor_indptr`` on edges,
  ``factor_slot_indptr`` on slots) — the x-update operates on whole-factor
  slices, one slice per "GPU thread".

Unlike the C engine (one global ``number_of_dims_per_edge``), variable nodes
may have different dimensions; circle packing mixes 2-D centers with 1-D
radii without padding.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

import numpy as np
import scipy.sparse as sp


class DegenerateGraphWarning(UserWarning):
    """The graph has variables outside every factor scope (degree zero).

    An isolated variable's z-update is ``0/0`` territory: no factor ever
    writes a message to it, so its z entry stays at whatever it was
    initialized to while every residual norm silently ignores it — a solve
    "converges" without ever optimizing over that variable.  The graph
    still builds (the ids are recorded in :attr:`FactorGraph.isolated_vars`
    and skipped by the solver), but anything admitting user-supplied graphs
    — the service layer in particular — should treat this warning as a
    hard rejection.
    """


@dataclass(frozen=True)
class FactorSpec:
    """One function node: its proximal operator, scope, and parameters.

    ``prox`` is opaque to the graph layer — any object is accepted; the core
    solver requires it to implement the :class:`repro.prox.ProxOperator`
    protocol.  ``params`` is a mapping from name to array-like, constant over
    the run (the analog of the ``parameters_i`` blobs in the paper's API).
    """

    prox: Any
    variables: tuple[int, ...]
    params: Mapping[str, np.ndarray] = field(default_factory=dict)


class FactorGroup:
    """A batch of factors sharing one proximal operator and one signature.

    The x-update processes each group with a single ``prox_batch`` call on a
    ``(num_factors, slot_count)`` matrix — the CUDA-kernel analog, one matrix
    row per GPU thread.  When the group's factors were added consecutively
    (the common case: applications add factors family-by-family), the matrix
    is a zero-copy reshape of a contiguous slice of the flat array — the
    "memory coalesced" fast path the paper recommends; otherwise a precomputed
    gather/scatter index matrix is used (the "scattered" path).
    """

    def __init__(
        self,
        prox: Any,
        factor_ids: np.ndarray,
        var_dims: tuple[int, ...],
        gather_slots: np.ndarray,
        gather_edges: np.ndarray,
        params: Mapping[str, np.ndarray],
    ) -> None:
        self.prox = prox
        self.factor_ids = factor_ids
        self.var_dims = var_dims
        self.size = int(factor_ids.shape[0])
        self.slot_count = int(gather_slots.shape[1])
        self.edge_count = int(gather_edges.shape[1])
        self.gather_slots = gather_slots
        self.gather_edges = gather_edges
        self.params = dict(params)
        # Map slot position within a factor -> edge position within the factor
        # (used to expand per-edge rho to per-slot rho).
        pos = np.empty(self.slot_count, dtype=np.int64)
        o = 0
        for e, d in enumerate(var_dims):
            pos[o : o + d] = e
            o += d
        self.slot_edge_pos = pos
        # Detect the contiguous fast path: slots form one ascending run.
        flat = gather_slots.ravel()
        self.contiguous = bool(
            flat.size == 0
            or np.array_equal(flat, np.arange(flat[0], flat[0] + flat.size))
        )
        self.slot_start = int(flat[0]) if flat.size else 0
        self.slot_stop = int(flat[-1]) + 1 if flat.size else 0

    # ------------------------------------------------------------------ #
    # Gather / scatter between flat edge arrays and (B, L) row matrices.  #
    # ------------------------------------------------------------------ #
    def take_slots(self, flat: np.ndarray) -> np.ndarray:
        """Gather this group's slots from a flat edge array as (B, L) rows."""
        if self.contiguous:
            return flat[self.slot_start : self.slot_stop].reshape(
                self.size, self.slot_count
            )
        return flat[self.gather_slots]

    def put_slots(self, flat: np.ndarray, rows: np.ndarray) -> None:
        """Scatter (B, L) rows back into a flat edge array (in place)."""
        if self.contiguous:
            flat[self.slot_start : self.slot_stop] = rows.reshape(-1)
        else:
            flat[self.gather_slots.reshape(-1)] = rows.reshape(-1)

    def take_edge_values(self, per_edge: np.ndarray) -> np.ndarray:
        """Gather a per-edge quantity (e.g. ρ) as (B, n_edges) rows."""
        return per_edge[self.gather_edges]

    def expand_rho(self, rho_edges: np.ndarray) -> np.ndarray:
        """Expand per-edge rows (B, n_edges) to per-slot rows (B, L)."""
        return rho_edges[:, self.slot_edge_pos]

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        name = getattr(self.prox, "name", type(self.prox).__name__)
        return (
            f"FactorGroup({name}, size={self.size}, "
            f"slots={self.slot_count}, contiguous={self.contiguous})"
        )


class FactorGraph:
    """Immutable factor graph with precomputed index maps.

    Build instances through :class:`repro.graph.GraphBuilder` (or the
    paper-flavored :func:`repro.graph.start_graph` / ``add_node`` helpers);
    the constructor performs full validation but no layout optimization.
    """

    def __init__(
        self,
        var_dims: Sequence[int],
        factors: Sequence[FactorSpec],
        var_names: Sequence[str] | None = None,
    ) -> None:
        self.var_dims = np.asarray(var_dims, dtype=np.int64)
        if self.var_dims.ndim != 1:
            raise ValueError("var_dims must be a 1-D sequence of dimensions")
        if self.var_dims.size and self.var_dims.min() < 1:
            raise ValueError("every variable dimension must be >= 1")
        self.num_vars = int(self.var_dims.size)
        self.factors = tuple(factors)
        self.num_factors = len(self.factors)
        if var_names is not None and len(var_names) != self.num_vars:
            raise ValueError(
                f"var_names has {len(var_names)} entries for {self.num_vars} variables"
            )
        self.var_names = tuple(var_names) if var_names is not None else None

        # ---- variable (z) layout ------------------------------------- #
        self.z_indptr = np.zeros(self.num_vars + 1, dtype=np.int64)
        np.cumsum(self.var_dims, out=self.z_indptr[1:])
        self.z_size = int(self.z_indptr[-1])

        # ---- edge layout (creation order: factor by factor) ----------- #
        edge_var: list[int] = []
        edge_factor: list[int] = []
        factor_indptr = np.zeros(self.num_factors + 1, dtype=np.int64)
        for a, spec in enumerate(self.factors):
            if len(spec.variables) == 0:
                raise ValueError(f"factor {a} has an empty variable scope")
            seen: set[int] = set()
            for b in spec.variables:
                if not 0 <= b < self.num_vars:
                    raise ValueError(
                        f"factor {a} references variable {b}; "
                        f"graph has {self.num_vars} variables"
                    )
                if b in seen:
                    raise ValueError(
                        f"factor {a} lists variable {b} twice; scopes are sets"
                    )
                seen.add(b)
                edge_var.append(b)
                edge_factor.append(a)
            factor_indptr[a + 1] = len(edge_var)
        self.factor_indptr = factor_indptr
        self.edge_var = np.asarray(edge_var, dtype=np.int64)
        self.edge_factor = np.asarray(edge_factor, dtype=np.int64)
        self.num_edges = int(self.edge_var.size)

        self._finalize_layout()

        # ---- factor groups (x-update batching) -------------------------- #
        self.groups = self._build_groups()

    @classmethod
    def from_parts(
        cls,
        var_dims: Sequence[int],
        factors: Sequence[FactorSpec],
        var_names: Sequence[str] | None,
        edge_var: np.ndarray,
        edge_factor: np.ndarray,
        factor_indptr: np.ndarray,
        groups_fn,
    ) -> "FactorGraph":
        """Assemble a graph from prevalidated parts, skipping the scan.

        The regular constructor re-derives the edge layout from every
        :class:`FactorSpec` with a per-factor validation loop and regroups
        factors from scratch — O(F) Python work.  Structural editors that
        already know the exact layout (:meth:`repro.graph.batch.GraphBatch.
        append_instances` splicing k new instance blocks into an existing
        block-diagonal batch) pass the edge arrays directly and supply the
        factor groups via ``groups_fn(graph)``, called once the index maps
        exist.  The caller guarantees consistency; nothing is re-validated.
        """
        g = object.__new__(cls)
        g.var_dims = np.asarray(var_dims, dtype=np.int64)
        g.num_vars = int(g.var_dims.size)
        g.factors = tuple(factors)
        g.num_factors = len(g.factors)
        g.var_names = tuple(var_names) if var_names is not None else None
        g.z_indptr = np.zeros(g.num_vars + 1, dtype=np.int64)
        np.cumsum(g.var_dims, out=g.z_indptr[1:])
        g.z_size = int(g.z_indptr[-1])
        g.factor_indptr = np.asarray(factor_indptr, dtype=np.int64)
        g.edge_var = np.asarray(edge_var, dtype=np.int64)
        g.edge_factor = np.asarray(edge_factor, dtype=np.int64)
        g.num_edges = int(g.edge_var.size)
        g._finalize_layout()
        g.groups = tuple(groups_fn(g))
        return g

    def _finalize_layout(self) -> None:
        """Derive the vectorized index maps from the edge arrays.

        Everything here is a pure array computation over ``var_dims``,
        ``edge_var``, ``edge_factor``, and ``factor_indptr`` — shared by the
        validating constructor and :meth:`from_parts`.
        """
        # ---- flat slot layout ----------------------------------------- #
        self.edge_dims = self.var_dims[self.edge_var]
        self.edge_indptr = np.zeros(self.num_edges + 1, dtype=np.int64)
        np.cumsum(self.edge_dims, out=self.edge_indptr[1:])
        self.edge_size = int(self.edge_indptr[-1])
        self.factor_slot_indptr = self.edge_indptr[self.factor_indptr]

        # flat_edge_to_z: slot s of edge e mirrors slot z_indptr[b] + k.
        if self.num_edges:
            # offsets within each edge: 0..d_e-1
            within = np.arange(self.edge_size, dtype=np.int64) - np.repeat(
                self.edge_indptr[:-1], self.edge_dims
            )
            self.flat_edge_to_z = (
                np.repeat(self.z_indptr[self.edge_var], self.edge_dims) + within
            )
            #: per-slot edge id (slot -> owning edge), for per-edge parameters
            self.slot_edge = np.repeat(
                np.arange(self.num_edges, dtype=np.int64), self.edge_dims
            )
        else:
            self.flat_edge_to_z = np.zeros(0, dtype=np.int64)
            self.slot_edge = np.zeros(0, dtype=np.int64)

        # ---- z-update scatter matrix ----------------------------------- #
        data = np.ones(self.edge_size, dtype=np.float64)
        cols = np.arange(self.edge_size, dtype=np.int64)
        self.scatter_matrix = sp.coo_matrix(
            (data, (self.flat_edge_to_z, cols)),
            shape=(self.z_size, self.edge_size),
        ).tocsr()

        # ---- variable -> incident edges CSR ----------------------------- #
        order = np.argsort(self.edge_var, kind="stable")
        self.var_edge_ids = order
        counts = np.bincount(self.edge_var, minlength=self.num_vars)
        self.var_edge_indptr = np.zeros(self.num_vars + 1, dtype=np.int64)
        np.cumsum(counts, out=self.var_edge_indptr[1:])
        self.var_degree = counts.astype(np.int64)
        self.factor_degree = np.diff(self.factor_indptr)

        # sanity: every variable should appear in >= 1 factor for the ADMM
        # z-update to be defined; we allow isolated variables but remember
        # them (so the solver can skip them) and warn loudly — a degenerate
        # graph "converges" without ever touching its isolated z entries.
        self.isolated_vars = np.flatnonzero(self.var_degree == 0)
        if self.isolated_vars.size:
            ids = self.isolated_vars[:8].tolist()
            shown = str(ids) if self.isolated_vars.size <= 8 else f"{ids}..."
            warnings.warn(
                f"{self.isolated_vars.size} of {self.num_vars} variable(s) "
                f"appear in no factor scope (ids {shown}); their z entries "
                f"are never updated and residuals ignore them — the solve "
                f"will not optimize over these variables",
                DegenerateGraphWarning,
                stacklevel=3,
            )

    # ------------------------------------------------------------------ #
    def _group_key(self, spec: FactorSpec) -> tuple:
        dims = tuple(int(self.var_dims[b]) for b in spec.variables)
        return (id(spec.prox), dims, tuple(sorted(spec.params.keys())))

    def _build_groups(self) -> tuple[FactorGroup, ...]:
        by_key: dict[tuple, list[int]] = {}
        for a, spec in enumerate(self.factors):
            by_key.setdefault(self._group_key(spec), []).append(a)
        groups: list[FactorGroup] = []
        for key, ids in by_key.items():
            ids_arr = np.asarray(ids, dtype=np.int64)
            first = self.factors[ids[0]]
            dims = tuple(int(self.var_dims[b]) for b in first.variables)
            slot_count = int(sum(dims))
            edge_count = len(first.variables)
            gather_slots = np.empty((len(ids), slot_count), dtype=np.int64)
            gather_edges = np.empty((len(ids), edge_count), dtype=np.int64)
            for row, a in enumerate(ids):
                s0, s1 = self.factor_slot_indptr[a], self.factor_slot_indptr[a + 1]
                gather_slots[row] = np.arange(s0, s1)
                e0, e1 = self.factor_indptr[a], self.factor_indptr[a + 1]
                gather_edges[row] = np.arange(e0, e1)
            params = self._stack_params(ids)
            groups.append(
                FactorGroup(
                    prox=first.prox,
                    factor_ids=ids_arr,
                    var_dims=dims,
                    gather_slots=gather_slots,
                    gather_edges=gather_edges,
                    params=params,
                )
            )
        # Deterministic order: by first factor id, so iteration order (and
        # hence floating-point summation order) is stable run to run.
        groups.sort(key=lambda g: int(g.factor_ids[0]))
        return tuple(groups)

    def _stack_params(self, ids: list[int]) -> dict[str, np.ndarray]:
        if not self.factors[ids[0]].params:
            return {}
        keys = sorted(self.factors[ids[0]].params.keys())
        out: dict[str, np.ndarray] = {}
        for k in keys:
            vals = [np.asarray(self.factors[a].params[k], dtype=np.float64) for a in ids]
            shapes = {v.shape for v in vals}
            if len(shapes) != 1:
                raise ValueError(
                    f"parameter {k!r} has inconsistent shapes {shapes} within "
                    "one factor group; factors grouped together must share "
                    "parameter shapes"
                )
            out[k] = np.stack(vals, axis=0)
        return out

    # ------------------------------------------------------------------ #
    # Convenience views                                                    #
    # ------------------------------------------------------------------ #
    def factor_slots(self, a: int) -> slice:
        """Flat slot range owned by factor ``a`` (its x/n slice)."""
        return slice(
            int(self.factor_slot_indptr[a]), int(self.factor_slot_indptr[a + 1])
        )

    def factor_edges(self, a: int) -> slice:
        """Edge-index range owned by factor ``a``."""
        return slice(int(self.factor_indptr[a]), int(self.factor_indptr[a + 1]))

    def var_slots(self, b: int) -> slice:
        """Flat z-slot range of variable ``b``."""
        return slice(int(self.z_indptr[b]), int(self.z_indptr[b + 1]))

    def edges_of_var(self, b: int) -> np.ndarray:
        """Edge ids incident to variable ``b`` (∂b, in creation order)."""
        return self.var_edge_ids[self.var_edge_indptr[b] : self.var_edge_indptr[b + 1]]

    def edge_slots(self, e: int) -> slice:
        """Flat slot range of edge ``e``."""
        return slice(int(self.edge_indptr[e]), int(self.edge_indptr[e + 1]))

    # ------------------------------------------------------------------ #
    def read_variable(self, z_flat: np.ndarray, b: int) -> np.ndarray:
        """Extract variable ``b``'s value from a flat z array."""
        return z_flat[self.var_slots(b)]

    def read_solution(self, z_flat: np.ndarray) -> list[np.ndarray]:
        """Split a flat z array into one vector per variable node."""
        return [z_flat[self.var_slots(b)] for b in range(self.num_vars)]

    # ------------------------------------------------------------------ #
    @property
    def num_elements(self) -> int:
        """Total graph elements (factors + variables + edges).

        The paper's figures plot time against this count ("the time per
        iteration grows linearly with the number of elements").
        """
        return self.num_factors + self.num_vars + self.num_edges

    def summary(self) -> str:
        lines = [
            f"FactorGraph: |F|={self.num_factors} |V|={self.num_vars} "
            f"|E|={self.num_edges} (elements={self.num_elements})",
            f"  flat sizes: edge={self.edge_size} z={self.z_size}",
            f"  groups: {len(self.groups)}",
        ]
        if self.isolated_vars.size:
            lines.append(
                f"  DEGENERATE: {self.isolated_vars.size} isolated "
                f"variable(s) outside every factor scope"
            )
        for g in self.groups:
            name = getattr(g.prox, "name", type(g.prox).__name__)
            lines.append(
                f"    {name}: {g.size} factors x {g.slot_count} slots "
                f"({'contiguous' if g.contiguous else 'gathered'})"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"FactorGraph(F={self.num_factors}, V={self.num_vars}, "
            f"E={self.num_edges})"
        )
