"""Graph and state serialization.

The paper notes that "once formed and copied to the GPU the graph can be
reused for different instances of similar problems" — graph construction is
the expensive step (450 s for N=5000 packing on their testbed).  This module
persists a built :class:`FactorGraph` (structure + per-factor parameters +
operator identities) and an :class:`ADMMState` to ``.npz`` archives so a
graph is built once and reloaded across runs.

Proximal operators are stored by registry name plus constructor kwargs
(every shipped operator registers via :mod:`repro.prox.registry`); custom
unregistered operators can be supplied at load time through ``prox_lookup``.
"""

from __future__ import annotations

import json
from typing import Callable, Mapping

import numpy as np

from repro.core.state import ADMMState
from repro.graph.builder import GraphBuilder
from repro.graph.factor_graph import FactorGraph
from repro.prox.registry import make_prox


def _prox_spec(prox) -> dict:
    """JSON-serializable description of an operator instance.

    The *class-level* name is stored (the registry key); instances may carry
    renamed display names (e.g. ``mpc_dynamics`` on an affine projection),
    which are preserved separately and restored on load.
    """
    cls_name = getattr(type(prox), "name", "") or type(prox).__name__
    spec: dict = {"name": cls_name}
    inst_name = getattr(prox, "name", cls_name)
    if inst_name != cls_name:
        spec["display_name"] = inst_name
    kwargs = {}
    for attr in ("dims", "lam", "kappa", "k", "dim", "radius", "dq", "du"):
        if hasattr(prox, attr):
            v = getattr(prox, attr)
            if isinstance(v, tuple):
                v = list(v)
            kwargs[attr] = v
    if hasattr(prox, "A"):  # affine-constraint family
        kwargs["A"] = np.asarray(prox.A).tolist()
    spec["kwargs"] = kwargs
    return spec


def _build_prox(spec: dict, prox_lookup: Mapping[str, Callable] | None):
    name = spec["name"]
    kwargs = dict(spec.get("kwargs", {}))
    if prox_lookup is not None and name in prox_lookup:
        return prox_lookup[name](**kwargs)
    if "dims" in kwargs:
        kwargs["dims"] = tuple(kwargs["dims"])
    if "A" in kwargs:
        kwargs["A"] = np.asarray(kwargs["A"], dtype=np.float64)
    # Constructor signatures vary; drop kwargs the class doesn't take.
    from repro.prox.registry import get_prox_class
    import inspect

    cls = get_prox_class(name)
    sig = inspect.signature(cls.__init__)
    accepted = {
        k: v for k, v in kwargs.items() if k in sig.parameters
    }
    prox = cls(**accepted)
    if "display_name" in spec:
        prox.name = spec["display_name"]
    return prox


def save_graph(path: str, graph: FactorGraph) -> None:
    """Persist a factor graph to a ``.npz`` archive."""
    prox_specs: list[dict] = []
    prox_ids: dict[int, int] = {}
    factor_prox: list[int] = []
    factor_scopes: list[list[int]] = []
    param_arrays: dict[str, np.ndarray] = {}
    factor_param_keys: list[list[str]] = []
    for a, spec in enumerate(graph.factors):
        pid = prox_ids.get(id(spec.prox))
        if pid is None:
            pid = len(prox_specs)
            prox_ids[id(spec.prox)] = pid
            prox_specs.append(_prox_spec(spec.prox))
        factor_prox.append(pid)
        factor_scopes.append(list(spec.variables))
        keys = sorted(spec.params.keys())
        factor_param_keys.append(keys)
        for k in keys:
            param_arrays[f"param_{a}_{k}"] = np.asarray(spec.params[k])
    meta = {
        "var_dims": [int(d) for d in graph.var_dims],
        "var_names": list(graph.var_names) if graph.var_names else None,
        "prox_specs": prox_specs,
        "factor_prox": factor_prox,
        "factor_scopes": factor_scopes,
        "factor_param_keys": factor_param_keys,
        "format_version": 1,
    }
    np.savez_compressed(
        path, meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8), **param_arrays
    )


def load_graph(
    path: str, prox_lookup: Mapping[str, Callable] | None = None
) -> FactorGraph:
    """Reload a graph saved by :func:`save_graph`.

    ``prox_lookup`` maps operator names to factories for operators that are
    not reconstructible from the registry alone.
    """
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(bytes(data["meta"].tobytes()).decode())
        if meta.get("format_version") != 1:
            raise ValueError(
                f"unsupported graph file version {meta.get('format_version')!r}"
            )
        prox_objs = [_build_prox(s, prox_lookup) for s in meta["prox_specs"]]
        b = GraphBuilder()
        names = meta["var_names"]
        for i, d in enumerate(meta["var_dims"]):
            b.add_variable(d, name=names[i] if names else None)
        for a, (pid, scope) in enumerate(
            zip(meta["factor_prox"], meta["factor_scopes"])
        ):
            params = {
                k: data[f"param_{a}_{k}"] for k in meta["factor_param_keys"][a]
            }
            b.add_factor(prox_objs[pid], scope, params)
        return b.build()


def save_state(path: str, state: ADMMState) -> None:
    """Persist an ADMM iterate (all five families + penalties + counter)."""
    np.savez_compressed(
        path,
        x=state.x,
        m=state.m,
        u=state.u,
        n=state.n,
        z=state.z,
        rho=state.rho,
        alpha=state.alpha,
        iteration=np.array([state.iteration]),
    )


def load_state(path: str, graph: FactorGraph) -> ADMMState:
    """Reload an iterate saved by :func:`save_state` onto ``graph``."""
    with np.load(path) as data:
        state = ADMMState(graph)
        if data["x"].shape != state.x.shape or data["z"].shape != state.z.shape:
            raise ValueError(
                "saved state does not match the graph "
                f"(edge {data['x'].shape} vs {state.x.shape}, "
                f"z {data['z'].shape} vs {state.z.shape})"
            )
        state.x[:] = data["x"]
        state.m[:] = data["m"]
        state.u[:] = data["u"]
        state.n[:] = data["n"]
        state.z[:] = data["z"]
        state.set_rho(data["rho"])
        state.set_alpha(data["alpha"])
        state.iteration = int(data["iteration"][0])
        return state
