"""Batched multi-instance graphs: many independent problems, one sweep.

The paper parallelizes *within* one factor graph; the production-scale
extension is parallelism *across* problem instances.  Stacking ``B``
independent copies of a template graph into one block-diagonal
:class:`FactorGraph` lets a single vectorized Algorithm-2 sweep advance the
whole fleet: the x-update sees one ``(B·n, L)`` matrix per operator, the
z-update one sparse matvec over all instances.

Layout guarantees (load-bearing for performance):

* **Variables** are instance-major: instance ``i``'s variable ``b`` becomes
  batch variable ``i·V + b``, so each instance owns one contiguous z slice
  (``z.reshape(B, z_size)`` splits the fleet for free).
* **Factors** are group-major: all ``B`` copies of a template factor group
  are created consecutively, so every batched group stays *contiguous* —
  ``prox_batch`` runs on a zero-copy reshape of the flat edge array (the
  paper's memory-coalesced fast path), never the gathered path.

Per-instance parameters (``params_per_instance``) flow into the stacked
group parameter matrices, which is how a fleet of MPC instances with
different initial states or cost weights shares one graph.

:class:`GraphBatch` carries the index maps connecting template and batch
layouts; :class:`repro.core.batched.BatchedSolver` consumes them for
per-instance residuals, stopping masks, and warm starts.

Batches are **elastic**: because every instance records its exact factor
parameters inside the batched graph, :meth:`GraphBatch.add_instances`,
:meth:`GraphBatch.remove_instances`, and :meth:`GraphBatch.select_instances`
re-replicate any subset without the application layer re-deriving anything —
the substrate for fleet growth/shrink between solves and for splitting a
fleet into contiguous shards (:class:`repro.core.sharded.ShardedBatchedSolver`).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.graph.factor_graph import FactorGraph


class GraphBatch:
    """A block-diagonal graph of ``B`` template copies plus its index maps.

    Attributes
    ----------
    graph:
        The batched :class:`FactorGraph` (``B`` disconnected copies).
    template:
        The single-instance graph the batch was replicated from.
    batch_size:
        Number of instances ``B``.
    factor_index, edge_index, slot_index:
        Integer maps of shapes ``(B, F_t)``, ``(B, E_t)``, ``(B, S_t)``
        taking a template factor/edge/flat-slot id to the corresponding id
        in the batched graph (``_t`` = template counts).
    """

    def __init__(
        self,
        graph: FactorGraph,
        template: FactorGraph,
        factor_index: np.ndarray,
        edge_index: np.ndarray,
        slot_index: np.ndarray,
    ) -> None:
        self.graph = graph
        self.template = template
        self.batch_size = int(factor_index.shape[0])
        self.factor_index = factor_index
        self.edge_index = edge_index
        self.slot_index = slot_index

    # ------------------------------------------------------------------ #
    # z (variable) views — instance-major, so these are cheap reshapes.    #
    # ------------------------------------------------------------------ #
    def z_slice(self, i: int) -> slice:
        """Flat z range of instance ``i`` in the batched layout."""
        self._check_instance(i)
        zt = self.template.z_size
        return slice(i * zt, (i + 1) * zt)

    def split_z(self, z_flat: np.ndarray) -> np.ndarray:
        """View a batched z array as one ``(B, z_size)`` row per instance."""
        z_flat = np.asarray(z_flat)
        if z_flat.shape != (self.graph.z_size,):
            raise ValueError(
                f"z must have shape ({self.graph.z_size},), got {z_flat.shape}"
            )
        return z_flat.reshape(self.batch_size, self.template.z_size)

    def pack_z(self, per_instance: np.ndarray | Sequence[np.ndarray]) -> np.ndarray:
        """Stack per-instance z vectors into one batched flat array.

        Accepts a ``(B, z_size)`` matrix, a length-``B`` sequence of
        ``(z_size,)`` vectors, or a single ``(z_size,)`` vector broadcast to
        every instance (warm-starting a fleet from one solution).
        """
        zt = self.template.z_size
        arr = np.asarray(
            per_instance if not isinstance(per_instance, (list, tuple))
            else np.stack([np.asarray(v, dtype=np.float64) for v in per_instance]),
            dtype=np.float64,
        )
        if arr.shape == (zt,):
            arr = np.broadcast_to(arr, (self.batch_size, zt))
        if arr.shape != (self.batch_size, zt):
            raise ValueError(
                f"expected ({self.batch_size}, {zt}), (B,)-sequence of ({zt},) "
                f"vectors, or a single ({zt},) vector; got shape {arr.shape}"
            )
        return arr.reshape(-1).copy()

    # ------------------------------------------------------------------ #
    # Edge/slot views — factor order is group-major, so these gather.      #
    # ------------------------------------------------------------------ #
    def split_slots(self, flat: np.ndarray) -> np.ndarray:
        """Gather a batched flat edge array as ``(B, S_t)`` instance rows."""
        flat = np.asarray(flat)
        if flat.shape != (self.graph.edge_size,):
            raise ValueError(
                f"expected shape ({self.graph.edge_size},), got {flat.shape}"
            )
        return flat[self.slot_index]

    def split_edges(self, per_edge: np.ndarray) -> np.ndarray:
        """Gather a batched per-edge array as ``(B, E_t)`` instance rows."""
        per_edge = np.asarray(per_edge)
        if per_edge.shape != (self.graph.num_edges,):
            raise ValueError(
                f"expected shape ({self.graph.num_edges},), got {per_edge.shape}"
            )
        return per_edge[self.edge_index]

    def instance_rho(self, rho_per_instance) -> np.ndarray:
        """Expand per-instance ρ to a per-edge array of the batched graph.

        ``rho_per_instance`` is ``(B,)`` scalars (uniform within each
        instance) or ``(B, E_t)`` per-edge values in template edge order.
        """
        rho = np.asarray(rho_per_instance, dtype=np.float64)
        out = np.empty(self.graph.num_edges)
        if rho.shape == (self.batch_size,):
            out[self.edge_index] = rho[:, None]
        elif rho.shape == (self.batch_size, self.template.num_edges):
            out[self.edge_index] = rho
        else:
            raise ValueError(
                f"expected shape ({self.batch_size},) or "
                f"({self.batch_size}, {self.template.num_edges}), got {rho.shape}"
            )
        return out

    # ------------------------------------------------------------------ #
    # Elastic batches: grow/shrink the fleet between solves.               #
    # ------------------------------------------------------------------ #
    def instance_params(self, i: int) -> dict[int, dict[str, np.ndarray]]:
        """Recover instance ``i``'s full per-factor parameters.

        Returns one mapping from *template factor id* to that factor's
        parameter dict as realized in the batched graph — exactly the
        override form :func:`replicate_graph` accepts, so an instance can be
        re-replicated (sharding, elastic resize) without the application
        layer re-deriving anything.
        """
        self._check_instance(i)
        out: dict[int, dict[str, np.ndarray]] = {}
        for a in range(self.template.num_factors):
            spec = self.graph.factors[int(self.factor_index[i, a])]
            out[a] = {k: np.array(v, copy=True) for k, v in spec.params.items()}
        return out

    def select_instances(self, keep: Sequence[int]) -> "GraphBatch":
        """A new batch of the given instances, in the given order.

        Each kept instance carries its exact parameters, so the new batch's
        per-instance math is bit-identical to the old one's.  This is the
        primitive behind sharding (contiguous ``keep`` ranges) and the
        elastic :meth:`add_instances` / :meth:`remove_instances`.
        """
        keep = [int(i) for i in keep]
        if not keep:
            raise ValueError("select_instances needs at least one instance")
        for i in keep:
            self._check_instance(i)
        return replicate_graph(
            self.template, len(keep), [self.instance_params(i) for i in keep]
        )

    def add_instances(
        self,
        new_instances: int | Sequence[Mapping[int, Mapping[str, np.ndarray]]],
    ) -> "GraphBatch":
        """Grow the fleet: a new batch with fresh instances appended.

        ``new_instances`` is either a count (template-parameter clones) or a
        sequence of per-factor override mappings, one per new instance (the
        :func:`replicate_graph` override form).  Existing instances keep
        their exact parameters and their positions ``0..B-1``; new instances
        take positions ``B..B+n-1``.  The template graph is never re-derived
        and the application layer never re-enters — the batch re-replicates
        itself from its own recorded parameters.  (Structurally this is a
        full O(B) re-replication of the block-diagonal graph, a
        once-per-resize cost amortized over the solves between resizes;
        incremental structural append is a ROADMAP item.)
        """
        if isinstance(new_instances, int):
            if new_instances < 1:
                raise ValueError(
                    f"must add at least one instance, got {new_instances}"
                )
            fresh: list[Mapping[int, Mapping[str, np.ndarray]]] = [
                {} for _ in range(new_instances)
            ]
        else:
            fresh = list(new_instances)
            if not fresh:
                raise ValueError("must add at least one instance")
        combined = [self.instance_params(i) for i in range(self.batch_size)]
        combined.extend(fresh)
        return replicate_graph(self.template, len(combined), combined)

    def remove_instances(self, drop: Sequence[int]) -> "GraphBatch":
        """Shrink the fleet: a new batch without the dropped instances.

        Survivors keep their relative order (instance ``i`` moves to
        position ``sum(j not in drop for j < i)``) and their exact
        parameters.  Dropping every instance is an error — a batch is never
        empty.  Use :func:`repro.core.batched.carry_state` (or the elastic
        methods on :class:`repro.core.batched.BatchedSolver`) to carry the
        survivors' iterates and duals into the new layout.
        """
        dropset = {int(i) for i in drop}
        for i in dropset:
            self._check_instance(i)
        keep = [i for i in range(self.batch_size) if i not in dropset]
        if not keep:
            raise ValueError("cannot remove every instance from a batch")
        return self.select_instances(keep)

    # ------------------------------------------------------------------ #
    def instance_solution(self, z_flat: np.ndarray, i: int) -> list[np.ndarray]:
        """Per-variable solution vectors of instance ``i`` (template order)."""
        zi = np.asarray(z_flat)[self.z_slice(i)]
        return self.template.read_solution(zi)

    def _check_instance(self, i: int) -> None:
        if not 0 <= i < self.batch_size:
            raise IndexError(
                f"instance {i} out of range for batch of {self.batch_size}"
            )

    def summary(self) -> str:
        t, g = self.template, self.graph
        return (
            f"GraphBatch: B={self.batch_size} x template(|F|={t.num_factors} "
            f"|V|={t.num_vars} |E|={t.num_edges}) -> "
            f"batched(|F|={g.num_factors} |V|={g.num_vars} |E|={g.num_edges}, "
            f"groups={len(g.groups)}, all_contiguous="
            f"{all(grp.contiguous for grp in g.groups)})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"GraphBatch(B={self.batch_size}, template_elements="
            f"{self.template.num_elements})"
        )


def replicate_graph(
    template: FactorGraph,
    batch_size: int,
    params_per_instance: Sequence[Mapping[int, Mapping[str, np.ndarray]]]
    | None = None,
) -> GraphBatch:
    """Replicate ``template`` into a block-diagonal batch of ``batch_size``.

    ``params_per_instance``, when given, is one mapping per instance from
    *template factor id* to parameter overrides for that factor in that
    instance (merged over the template factor's params).  Override keys must
    already exist on the template factor — adding new keys would split the
    factor group and break the coalesced layout; shapes must match the
    template's so the group's stacked parameter matrices stay rectangular.

    Prox operator objects are shared across all instances (grouping is by
    operator identity), so per-instance variation must flow through params.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if template.num_factors == 0:
        raise ValueError("cannot replicate an empty template graph")
    if params_per_instance is not None and len(params_per_instance) != batch_size:
        raise ValueError(
            f"params_per_instance has {len(params_per_instance)} entries "
            f"for batch_size={batch_size}"
        )

    B = batch_size
    V = template.num_vars
    builder = GraphBuilder()

    # Variables: instance-major (instance i's variable b -> i*V + b).
    for i in range(B):
        for b in range(V):
            name = (
                f"{template.var_names[b]}@{i}"
                if template.var_names is not None
                else None
            )
            builder.add_variable(int(template.var_dims[b]), name=name)

    # Factors: group-major, so every batched group is one contiguous slot
    # run (the coalesced prox_batch fast path).  Within a group: instance 0's
    # factors first, then instance 1's, ... — each instance owns a contiguous
    # row block of the group's (B·n, L) matrix.
    order: list[tuple[int, int]] = []  # (instance, template factor id)
    for group in template.groups:
        for i in range(B):
            for a in group.factor_ids:
                order.append((i, int(a)))

    for i, a in order:
        spec = template.factors[a]
        params = dict(spec.params)
        if params_per_instance is not None:
            overrides = params_per_instance[i].get(a, {})
            for key, value in overrides.items():
                if key not in params:
                    raise ValueError(
                        f"instance {i} overrides unknown parameter {key!r} of "
                        f"factor {a}; overrides may only replace existing "
                        f"template parameters (new keys would split the "
                        f"factor group)"
                    )
                value = np.asarray(value, dtype=np.float64)
                if value.shape != params[key].shape:
                    raise ValueError(
                        f"instance {i} override of factor {a} parameter "
                        f"{key!r} has shape {value.shape}; template has "
                        f"{params[key].shape}"
                    )
                params[key] = value
        scope = [i * V + b for b in spec.variables]
        builder.add_factor(spec.prox, scope, params)

    graph = builder.build()

    # Index maps: batch factor k (creation order) is (instance, template id)
    # order[k]; its edge/slot ranges in both layouts come from the indptrs.
    factor_index = np.empty((B, template.num_factors), dtype=np.int64)
    edge_index = np.empty((B, template.num_edges), dtype=np.int64)
    slot_index = np.empty((B, template.edge_size), dtype=np.int64)
    for k, (i, a) in enumerate(order):
        factor_index[i, a] = k
        t0, t1 = template.factor_indptr[a], template.factor_indptr[a + 1]
        g0, g1 = graph.factor_indptr[k], graph.factor_indptr[k + 1]
        edge_index[i, t0:t1] = np.arange(g0, g1)
        ts0, ts1 = template.factor_slot_indptr[a], template.factor_slot_indptr[a + 1]
        gs0, gs1 = graph.factor_slot_indptr[k], graph.factor_slot_indptr[k + 1]
        slot_index[i, ts0:ts1] = np.arange(gs0, gs1)

    batch = GraphBatch(
        graph=graph,
        template=template,
        factor_index=factor_index,
        edge_index=edge_index,
        slot_index=slot_index,
    )
    # The whole point of the group-major order: every group must coalesce.
    assert all(g.contiguous for g in graph.groups), (
        "replicate_graph produced a non-contiguous group; this is a bug"
    )
    return batch
