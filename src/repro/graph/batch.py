"""Batched multi-instance graphs: many independent problems, one sweep.

The paper parallelizes *within* one factor graph; the production-scale
extension is parallelism *across* problem instances.  Stacking ``B``
independent copies of a template graph into one block-diagonal
:class:`FactorGraph` lets a single vectorized Algorithm-2 sweep advance the
whole fleet: the x-update sees one ``(B·n, L)`` matrix per operator, the
z-update one sparse matvec over all instances.

Layout guarantees (load-bearing for performance):

* **Variables** are instance-major: instance ``i``'s variable ``b`` becomes
  batch variable ``i·V + b``, so each instance owns one contiguous z slice
  (``z.reshape(B, z_size)`` splits the fleet for free).
* **Factors** are group-major: all ``B`` copies of a template factor group
  are created consecutively, so every batched group stays *contiguous* —
  ``prox_batch`` runs on a zero-copy reshape of the flat edge array (the
  paper's memory-coalesced fast path), never the gathered path.

Per-instance parameters (``params_per_instance``) flow into the stacked
group parameter matrices, which is how a fleet of MPC instances with
different initial states or cost weights shares one graph.

:class:`GraphBatch` carries the index maps connecting template and batch
layouts; :class:`repro.core.batched.BatchedSolver` consumes them for
per-instance residuals, stopping masks, and warm starts.

Batches are **elastic**: because every instance records its exact factor
parameters inside the batched graph, :meth:`GraphBatch.add_instances`,
:meth:`GraphBatch.remove_instances`, and :meth:`GraphBatch.select_instances`
rebuild any subset without the application layer re-deriving anything —
the substrate for fleet growth/shrink between solves and for splitting a
fleet into contiguous shards (:class:`repro.core.sharded.ShardedBatchedSolver`).

Elastic resizes are **incremental**: the batched layout is a pure function
of ``(template, B)`` — parameters aside, every index array is arithmetic —
so :meth:`GraphBatch.append_instances` materializes only the ``k`` new
instance blocks (factor specs, stacked group-parameter rows) and splices
them into the canonical layout, and :meth:`GraphBatch.remove_instances`
compacts the maps with row gathers.  Neither path re-replicates surviving
instances through :class:`~repro.graph.builder.GraphBuilder`; the module
counter :data:`REBUILD_COUNTER` records how many instance blocks each
operation structurally built, which is what the O(k)-append tests assert
(wall-clock is too noisy to gate on).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping, Sequence

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.graph.factor_graph import FactorGraph, FactorGroup, FactorSpec


class StructuralRebuildCounter:
    """Operation counters witnessing the cost class of batch restructures.

    ``instances_built`` counts instance blocks whose factor specs were
    materialized (parameter merge + spec creation) — the unit the
    "append is O(k), not O(B)" acceptance tests assert on, because on
    shared 1-core runners wall-clock cannot gate anything.
    """

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.instances_built = 0
        self.full_replications = 0
        self.incremental_appends = 0
        self.compactions = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "instances_built": self.instances_built,
            "full_replications": self.full_replications,
            "incremental_appends": self.incremental_appends,
            "compactions": self.compactions,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"StructuralRebuildCounter({self.snapshot()})"


#: Process-wide counter of structural batch rebuild work (see class docs).
REBUILD_COUNTER = StructuralRebuildCounter()


def _merge_factor_params(
    params: Mapping[str, np.ndarray],
    overrides: Mapping[str, np.ndarray],
    i: int,
    a: int,
) -> dict[str, np.ndarray]:
    """Merge per-instance overrides over a template factor's parameters.

    Shared by :func:`replicate_graph` and the incremental append so both
    paths validate identically (same error messages, same float64
    freezing).
    """
    merged = dict(params)
    for key, value in overrides.items():
        if key not in merged:
            raise ValueError(
                f"instance {i} overrides unknown parameter {key!r} of "
                f"factor {a}; overrides may only replace existing "
                f"template parameters (new keys would split the "
                f"factor group)"
            )
        value = np.asarray(value, dtype=np.float64)
        if value.shape != merged[key].shape:
            raise ValueError(
                f"instance {i} override of factor {a} parameter "
                f"{key!r} has shape {value.shape}; template has "
                f"{merged[key].shape}"
            )
        merged[key] = value
    return merged


class _BatchLayout:
    """Canonical constants of the group-major batched layout of a template.

    Every structural array of ``replicate_graph(template, B)`` — edge
    lists, indptrs, group gather matrices, and the batch index maps — is a
    pure arithmetic function of the template and ``B``; parameters are the
    only per-instance content.  This class computes those arrays with
    vectorized NumPy (no per-factor Python loop), which is what makes
    :meth:`GraphBatch.append_instances` and map compaction incremental:
    surviving instances contribute pointer copies and row gathers, never a
    rebuild through :class:`GraphBuilder`.
    """

    def __init__(self, template: FactorGraph) -> None:
        t = template
        self.template = t
        self.n = np.array([g.size for g in t.groups], dtype=np.int64)
        self.e = np.array([g.edge_count for g in t.groups], dtype=np.int64)
        self.L = np.array([g.slot_count for g in t.groups], dtype=np.int64)

        def exclusive(a: np.ndarray) -> np.ndarray:
            out = np.zeros(a.size, dtype=np.int64)
            np.cumsum(a[:-1], out=out[1:])
            return out

        self.prefix_f = exclusive(self.n)
        self.prefix_e = exclusive(self.n * self.e)
        self.prefix_s = exclusive(self.n * self.L)
        self.f_group = np.empty(t.num_factors, dtype=np.int64)
        self.f_pos = np.empty(t.num_factors, dtype=np.int64)
        for gi, grp in enumerate(t.groups):
            self.f_group[grp.factor_ids] = gi
            self.f_pos[grp.factor_ids] = np.arange(grp.size)
        # Template variable ids of each group's edges, one instance's worth,
        # in batched creation order (factor by factor within the group).
        self.edge_pattern = [
            t.edge_var[grp.gather_edges.reshape(-1)] for grp in t.groups
        ]

    # ------------------------------------------------------------------ #
    def maps(self, Bn: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The ``(Bn, ·)`` factor/edge/slot index maps of a ``Bn``-batch."""
        t = self.template
        rows = np.arange(Bn, dtype=np.int64)[:, None]
        g = self.f_group
        base_f = Bn * self.prefix_f[g] + self.f_pos
        factor_index = base_f[None, :] + rows * self.n[g][None, :]

        a = t.edge_factor
        ge = self.f_group[a]
        within = np.arange(t.num_edges, dtype=np.int64) - t.factor_indptr[a]
        base_e = Bn * self.prefix_e[ge] + self.f_pos[a] * self.e[ge] + within
        edge_index = base_e[None, :] + rows * (self.n[ge] * self.e[ge])[None, :]

        ae = t.edge_factor[t.slot_edge]
        gs = self.f_group[ae]
        ws = np.arange(t.edge_size, dtype=np.int64) - t.factor_slot_indptr[ae]
        base_s = Bn * self.prefix_s[gs] + self.f_pos[ae] * self.L[gs] + ws
        slot_index = base_s[None, :] + rows * (self.n[gs] * self.L[gs])[None, :]
        return factor_index, edge_index, slot_index

    def skeleton(
        self, Bn: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``var_dims, edge_var, edge_factor, factor_indptr`` of a ``Bn``-batch."""
        t = self.template
        V = t.num_vars
        var_dims = np.tile(t.var_dims, Bn)
        offs = np.arange(Bn, dtype=np.int64)[:, None] * V
        ev, ef, deg = [], [], []
        for gi in range(len(t.groups)):
            ev.append((offs + self.edge_pattern[gi][None, :]).reshape(-1))
            first = Bn * self.prefix_f[gi]
            count = Bn * self.n[gi]
            ef.append(
                np.repeat(np.arange(first, first + count, dtype=np.int64), self.e[gi])
            )
            deg.append(np.full(count, self.e[gi], dtype=np.int64))
        edge_var = np.concatenate(ev) if ev else np.zeros(0, dtype=np.int64)
        edge_factor = np.concatenate(ef) if ef else np.zeros(0, dtype=np.int64)
        degrees = np.concatenate(deg) if deg else np.zeros(0, dtype=np.int64)
        factor_indptr = np.zeros(degrees.size + 1, dtype=np.int64)
        np.cumsum(degrees, out=factor_indptr[1:])
        return var_dims, edge_var, edge_factor, factor_indptr

    def var_names(self, positions) -> list[str]:
        """Canonical batched variable names for the given instance positions.

        Matches :func:`replicate_graph` exactly: template names get an
        ``@position`` suffix; an unnamed template takes the builder default
        ``v{batched id}``.
        """
        t = self.template
        V = t.num_vars
        if t.var_names is not None:
            return [f"{t.var_names[b]}@{p}" for p in positions for b in range(V)]
        return [f"v{p * V + b}" for p in positions for b in range(V)]

    def build_groups(
        self, Bn: int, params_per_group: Sequence[Mapping[str, np.ndarray]]
    ) -> tuple[FactorGroup, ...]:
        """Canonical contiguous factor groups with the given stacked params."""
        t = self.template
        out = []
        for gi, grp in enumerate(t.groups):
            count = Bn * int(self.n[gi])
            f0 = Bn * int(self.prefix_f[gi])
            e0 = Bn * int(self.prefix_e[gi])
            s0 = Bn * int(self.prefix_s[gi])
            Lg, eg = int(self.L[gi]), int(self.e[gi])
            out.append(
                FactorGroup(
                    prox=grp.prox,
                    factor_ids=np.arange(f0, f0 + count, dtype=np.int64),
                    var_dims=grp.var_dims,
                    gather_slots=np.arange(
                        s0, s0 + count * Lg, dtype=np.int64
                    ).reshape(count, Lg),
                    gather_edges=np.arange(
                        e0, e0 + count * eg, dtype=np.int64
                    ).reshape(count, eg),
                    params=dict(params_per_group[gi]),
                )
            )
        return tuple(out)

    def assemble(
        self,
        Bn: int,
        factors: Sequence[FactorSpec],
        names: Sequence[str] | None,
        params_per_group: Sequence[Mapping[str, np.ndarray]],
        maps: tuple[np.ndarray, np.ndarray, np.ndarray],
    ) -> "GraphBatch":
        """Build the batch from spliced parts (no builder, no re-validation)."""
        var_dims, edge_var, edge_factor, factor_indptr = self.skeleton(Bn)
        graph = FactorGraph.from_parts(
            var_dims,
            factors,
            names,
            edge_var,
            edge_factor,
            factor_indptr,
            groups_fn=lambda g: self.build_groups(Bn, params_per_group),
        )
        batch = GraphBatch(
            graph=graph,
            template=self.template,
            factor_index=maps[0],
            edge_index=maps[1],
            slot_index=maps[2],
        )
        assert all(g.contiguous for g in graph.groups), (
            "incremental batch assembly produced a non-contiguous group; "
            "this is a bug"
        )
        return batch


class GraphBatch:
    """A block-diagonal graph of ``B`` template copies plus its index maps.

    Attributes
    ----------
    graph:
        The batched :class:`FactorGraph` (``B`` disconnected copies).
    template:
        The single-instance graph the batch was replicated from.
    batch_size:
        Number of instances ``B``.
    factor_index, edge_index, slot_index:
        Integer maps of shapes ``(B, F_t)``, ``(B, E_t)``, ``(B, S_t)``
        taking a template factor/edge/flat-slot id to the corresponding id
        in the batched graph (``_t`` = template counts).
    """

    def __init__(
        self,
        graph: FactorGraph,
        template: FactorGraph,
        factor_index: np.ndarray,
        edge_index: np.ndarray,
        slot_index: np.ndarray,
    ) -> None:
        self.graph = graph
        self.template = template
        self.batch_size = int(factor_index.shape[0])
        self.factor_index = factor_index
        self.edge_index = edge_index
        self.slot_index = slot_index

    # ------------------------------------------------------------------ #
    # z (variable) views — instance-major, so these are cheap reshapes.    #
    # ------------------------------------------------------------------ #
    def z_slice(self, i: int) -> slice:
        """Flat z range of instance ``i`` in the batched layout."""
        self._check_instance(i)
        zt = self.template.z_size
        return slice(i * zt, (i + 1) * zt)

    def split_z(self, z_flat: np.ndarray) -> np.ndarray:
        """View a batched z array as one ``(B, z_size)`` row per instance."""
        z_flat = np.asarray(z_flat)
        if z_flat.shape != (self.graph.z_size,):
            raise ValueError(
                f"z must have shape ({self.graph.z_size},), got {z_flat.shape}"
            )
        return z_flat.reshape(self.batch_size, self.template.z_size)

    def pack_z(self, per_instance: np.ndarray | Sequence[np.ndarray]) -> np.ndarray:
        """Stack per-instance z vectors into one batched flat array.

        Accepts a ``(B, z_size)`` matrix, a length-``B`` sequence of
        ``(z_size,)`` vectors, or a single ``(z_size,)`` vector broadcast to
        every instance (warm-starting a fleet from one solution).
        """
        zt = self.template.z_size
        arr = np.asarray(
            per_instance if not isinstance(per_instance, (list, tuple))
            else np.stack([np.asarray(v, dtype=np.float64) for v in per_instance]),
            dtype=np.float64,
        )
        if arr.shape == (zt,):
            arr = np.broadcast_to(arr, (self.batch_size, zt))
        if arr.shape != (self.batch_size, zt):
            raise ValueError(
                f"expected ({self.batch_size}, {zt}), (B,)-sequence of ({zt},) "
                f"vectors, or a single ({zt},) vector; got shape {arr.shape}"
            )
        return arr.reshape(-1).copy()

    # ------------------------------------------------------------------ #
    # Edge/slot views — factor order is group-major, so these gather.      #
    # ------------------------------------------------------------------ #
    def split_slots(self, flat: np.ndarray) -> np.ndarray:
        """Gather a batched flat edge array as ``(B, S_t)`` instance rows."""
        flat = np.asarray(flat)
        if flat.shape != (self.graph.edge_size,):
            raise ValueError(
                f"expected shape ({self.graph.edge_size},), got {flat.shape}"
            )
        return flat[self.slot_index]

    def split_edges(self, per_edge: np.ndarray) -> np.ndarray:
        """Gather a batched per-edge array as ``(B, E_t)`` instance rows."""
        per_edge = np.asarray(per_edge)
        if per_edge.shape != (self.graph.num_edges,):
            raise ValueError(
                f"expected shape ({self.graph.num_edges},), got {per_edge.shape}"
            )
        return per_edge[self.edge_index]

    def instance_rho(self, rho_per_instance) -> np.ndarray:
        """Expand per-instance ρ to a per-edge array of the batched graph.

        ``rho_per_instance`` is ``(B,)`` scalars (uniform within each
        instance) or ``(B, E_t)`` per-edge values in template edge order.
        """
        rho = np.asarray(rho_per_instance, dtype=np.float64)
        out = np.empty(self.graph.num_edges)
        if rho.shape == (self.batch_size,):
            out[self.edge_index] = rho[:, None]
        elif rho.shape == (self.batch_size, self.template.num_edges):
            out[self.edge_index] = rho
        else:
            raise ValueError(
                f"expected shape ({self.batch_size},) or "
                f"({self.batch_size}, {self.template.num_edges}), got {rho.shape}"
            )
        return out

    # ------------------------------------------------------------------ #
    # Elastic batches: grow/shrink the fleet between solves.               #
    # ------------------------------------------------------------------ #
    def instance_params(self, i: int) -> dict[int, dict[str, np.ndarray]]:
        """Recover instance ``i``'s full per-factor parameters.

        Returns one mapping from *template factor id* to that factor's
        parameter dict as realized in the batched graph — exactly the
        override form :func:`replicate_graph` accepts, so an instance can be
        re-replicated (sharding, elastic resize) without the application
        layer re-deriving anything.
        """
        self._check_instance(i)
        out: dict[int, dict[str, np.ndarray]] = {}
        for a in range(self.template.num_factors):
            spec = self.graph.factors[int(self.factor_index[i, a])]
            out[a] = {k: np.array(v, copy=True) for k, v in spec.params.items()}
        return out

    def select_instances(self, keep: Sequence[int]) -> "GraphBatch":
        """A new batch of the given instances, in the given order.

        Each kept instance carries its exact parameters, so the new batch's
        per-instance math is bit-identical to the old one's.  This is the
        primitive behind sharding (contiguous ``keep`` ranges) and the
        elastic :meth:`add_instances` / :meth:`remove_instances`.

        An order-preserving (strictly ascending) ``keep`` goes through map
        compaction — vectorized gathers over the existing layout, no
        re-replication; arbitrary orderings (reorderings, duplicates) fall
        back to :func:`replicate_graph` from recorded parameters.
        """
        keep = [int(i) for i in keep]
        if not keep:
            raise ValueError("select_instances needs at least one instance")
        for i in keep:
            self._check_instance(i)
        if all(b > a for a, b in zip(keep, keep[1:])):
            return self._compact(keep)
        return replicate_graph(
            self.template, len(keep), [self.instance_params(i) for i in keep]
        )

    def _compact(self, keep: Sequence[int]) -> "GraphBatch":
        """Order-preserving subset via map compaction (no re-replication).

        Surviving instances' factor specs are reused (scopes rebased by a
        pointer-level :func:`dataclasses.replace` when their position
        shifts), group parameter matrices are row-gathered, and all index
        arrays come from the canonical layout — zero instance blocks are
        structurally rebuilt (``REBUILD_COUNTER.instances_built`` is
        untouched).
        """
        t = self.template
        lay = _BatchLayout(t)
        Bn = len(keep)
        F_t, V = t.num_factors, t.num_vars
        REBUILD_COUNTER.compactions += 1

        maps = lay.maps(Bn)
        fi = maps[0]
        old_specs = np.empty(self.graph.num_factors, dtype=object)
        old_specs[:] = self.graph.factors
        spec_arr = np.empty(Bn * F_t, dtype=object)
        for p, i in enumerate(keep):
            src = old_specs[self.factor_index[i]]
            if p != i:
                shift = (p - i) * V
                rebased = np.empty(F_t, dtype=object)
                rebased[:] = [
                    replace(s, variables=tuple(b + shift for b in s.variables))
                    for s in src
                ]
                src = rebased
            spec_arr[fi[p]] = src

        keep_arr = np.asarray(keep, dtype=np.int64)
        params_per_group = []
        for gi, old_grp in enumerate(self.graph.groups):
            n_g = int(lay.n[gi])
            merged: dict[str, np.ndarray] = {}
            for key, stack in old_grp.params.items():
                rows = stack.reshape(self.batch_size, n_g, *stack.shape[1:])
                merged[key] = rows[keep_arr].reshape(Bn * n_g, *stack.shape[1:]).copy()
            params_per_group.append(merged)

        return lay.assemble(
            Bn, spec_arr.tolist(), lay.var_names(range(Bn)), params_per_group, maps
        )

    def append_instances(
        self,
        new_instances: int | Sequence[Mapping[int, Mapping[str, np.ndarray]]],
    ) -> "GraphBatch":
        """Incrementally grow the fleet: splice ``k`` new instance blocks in.

        ``new_instances`` is either a count (template-parameter clones) or a
        sequence of per-factor override mappings, one per new instance (the
        :func:`replicate_graph` override form).  Existing instances keep
        their exact parameters and their positions ``0..B-1``; new instances
        take positions ``B..B+k-1``.

        Only the ``k`` new instances are structurally built (factor specs
        materialized, group-parameter rows stacked); everything existing is
        spliced by pointer copies and whole-array concatenation into the
        canonical group-major layout — O(k) instance builds, not the O(B)
        re-replication :func:`replicate_graph` performs, witnessed by
        :data:`REBUILD_COUNTER`.  The result is field-by-field identical to
        a full re-replication of the grown fleet.
        """
        if isinstance(new_instances, int):
            if new_instances < 1:
                raise ValueError(
                    f"must add at least one instance, got {new_instances}"
                )
            fresh: list[Mapping[int, Mapping[str, np.ndarray]]] = [
                {} for _ in range(new_instances)
            ]
        else:
            fresh = list(new_instances)
            if not fresh:
                raise ValueError("must add at least one instance")
        k = len(fresh)
        B = self.batch_size
        Bk = B + k
        t = self.template
        F_t, V = t.num_factors, t.num_vars
        lay = _BatchLayout(t)
        maps = lay.maps(Bk)
        fi = maps[0]
        # Existing specs keep their scopes (positions are unchanged); they
        # move to their spliced slots by pointer copy.
        old_specs = np.empty(self.graph.num_factors, dtype=object)
        old_specs[:] = self.graph.factors
        spec_arr = np.empty(Bk * F_t, dtype=object)
        spec_arr[fi[:B].reshape(-1)] = old_specs[self.factor_index.reshape(-1)]
        for j, overrides in enumerate(fresh):
            i = B + j
            for a in range(F_t):
                spec = t.factors[a]
                spec_arr[fi[i, a]] = FactorSpec(
                    prox=spec.prox,
                    variables=tuple(i * V + b for b in spec.variables),
                    params=_merge_factor_params(
                        spec.params, overrides.get(a, {}), i, a
                    ),
                )
        # Count only once the k new blocks actually materialized — a
        # rejected override must not skew the O(k) witness.
        REBUILD_COUNTER.incremental_appends += 1
        REBUILD_COUNTER.instances_built += k

        params_per_group = []
        for gi, old_grp in enumerate(self.graph.groups):
            tgrp = t.groups[gi]
            merged: dict[str, np.ndarray] = {}
            for key, stack in old_grp.params.items():
                new_rows = np.stack(
                    [
                        spec_arr[fi[B + j, a]].params[key]
                        for j in range(k)
                        for a in tgrp.factor_ids
                    ],
                    axis=0,
                )
                merged[key] = np.concatenate([stack, new_rows], axis=0)
            params_per_group.append(merged)

        old_names = self.graph.var_names
        if old_names is None:  # pragma: no cover - batches always carry names
            names = lay.var_names(range(Bk))
        else:
            names = list(old_names) + lay.var_names(range(B, Bk))
        return lay.assemble(Bk, spec_arr.tolist(), names, params_per_group, maps)

    def add_instances(
        self,
        new_instances: int | Sequence[Mapping[int, Mapping[str, np.ndarray]]],
    ) -> "GraphBatch":
        """Grow the fleet (alias of the incremental :meth:`append_instances`).

        Kept as the historical elastic entry point; since the incremental
        structural append landed, growing a fleet costs O(k) instance
        builds instead of the old full O(B) re-replication.
        """
        return self.append_instances(new_instances)

    def remove_instances(self, drop: Sequence[int]) -> "GraphBatch":
        """Shrink the fleet: a new batch without the dropped instances.

        Survivors keep their relative order (instance ``i`` moves to
        position ``sum(j not in drop for j < i)``) and their exact
        parameters.  The shrink **compacts** the existing layout (map
        gathers + pointer-level scope rebasing — see :meth:`_compact`)
        instead of re-replicating the survivors.  Dropping every instance
        is an error — a batch is never empty.  Use
        :func:`repro.core.batched.carry_state` (or the elastic methods on
        :class:`repro.core.batched.BatchedSolver`) to carry the survivors'
        iterates and duals into the new layout.
        """
        dropset = {int(i) for i in drop}
        for i in dropset:
            self._check_instance(i)
        keep = [i for i in range(self.batch_size) if i not in dropset]
        if not keep:
            raise ValueError("cannot remove every instance from a batch")
        return self._compact(keep)

    # ------------------------------------------------------------------ #
    def instance_solution(self, z_flat: np.ndarray, i: int) -> list[np.ndarray]:
        """Per-variable solution vectors of instance ``i`` (template order)."""
        zi = np.asarray(z_flat)[self.z_slice(i)]
        return self.template.read_solution(zi)

    def _check_instance(self, i: int) -> None:
        if not 0 <= i < self.batch_size:
            raise IndexError(
                f"instance {i} out of range for batch of {self.batch_size}"
            )

    def summary(self) -> str:
        t, g = self.template, self.graph
        return (
            f"GraphBatch: B={self.batch_size} x template(|F|={t.num_factors} "
            f"|V|={t.num_vars} |E|={t.num_edges}) -> "
            f"batched(|F|={g.num_factors} |V|={g.num_vars} |E|={g.num_edges}, "
            f"groups={len(g.groups)}, all_contiguous="
            f"{all(grp.contiguous for grp in g.groups)})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"GraphBatch(B={self.batch_size}, template_elements="
            f"{self.template.num_elements})"
        )


def replicate_graph(
    template: FactorGraph,
    batch_size: int,
    params_per_instance: Sequence[Mapping[int, Mapping[str, np.ndarray]]]
    | None = None,
) -> GraphBatch:
    """Replicate ``template`` into a block-diagonal batch of ``batch_size``.

    ``params_per_instance``, when given, is one mapping per instance from
    *template factor id* to parameter overrides for that factor in that
    instance (merged over the template factor's params).  Override keys must
    already exist on the template factor — adding new keys would split the
    factor group and break the coalesced layout; shapes must match the
    template's so the group's stacked parameter matrices stay rectangular.

    Prox operator objects are shared across all instances (grouping is by
    operator identity), so per-instance variation must flow through params.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if template.num_factors == 0:
        raise ValueError("cannot replicate an empty template graph")
    if params_per_instance is not None and len(params_per_instance) != batch_size:
        raise ValueError(
            f"params_per_instance has {len(params_per_instance)} entries "
            f"for batch_size={batch_size}"
        )
    REBUILD_COUNTER.full_replications += 1
    REBUILD_COUNTER.instances_built += batch_size

    B = batch_size
    V = template.num_vars
    builder = GraphBuilder()

    # Variables: instance-major (instance i's variable b -> i*V + b).
    for i in range(B):
        for b in range(V):
            name = (
                f"{template.var_names[b]}@{i}"
                if template.var_names is not None
                else None
            )
            builder.add_variable(int(template.var_dims[b]), name=name)

    # Factors: group-major, so every batched group is one contiguous slot
    # run (the coalesced prox_batch fast path).  Within a group: instance 0's
    # factors first, then instance 1's, ... — each instance owns a contiguous
    # row block of the group's (B·n, L) matrix.
    order: list[tuple[int, int]] = []  # (instance, template factor id)
    for group in template.groups:
        for i in range(B):
            for a in group.factor_ids:
                order.append((i, int(a)))

    for i, a in order:
        spec = template.factors[a]
        if params_per_instance is not None:
            params = _merge_factor_params(
                spec.params, params_per_instance[i].get(a, {}), i, a
            )
        else:
            params = dict(spec.params)
        scope = [i * V + b for b in spec.variables]
        builder.add_factor(spec.prox, scope, params)

    graph = builder.build()

    # Index maps: batch factor k (creation order) is (instance, template id)
    # order[k]; its edge/slot ranges in both layouts come from the indptrs.
    factor_index = np.empty((B, template.num_factors), dtype=np.int64)
    edge_index = np.empty((B, template.num_edges), dtype=np.int64)
    slot_index = np.empty((B, template.edge_size), dtype=np.int64)
    for k, (i, a) in enumerate(order):
        factor_index[i, a] = k
        t0, t1 = template.factor_indptr[a], template.factor_indptr[a + 1]
        g0, g1 = graph.factor_indptr[k], graph.factor_indptr[k + 1]
        edge_index[i, t0:t1] = np.arange(g0, g1)
        ts0, ts1 = template.factor_slot_indptr[a], template.factor_slot_indptr[a + 1]
        gs0, gs1 = graph.factor_slot_indptr[k], graph.factor_slot_indptr[k + 1]
        slot_index[i, ts0:ts1] = np.arange(gs0, gs1)

    batch = GraphBatch(
        graph=graph,
        template=template,
        factor_index=factor_index,
        edge_index=edge_index,
        slot_index=slot_index,
    )
    # The whole point of the group-major order: every group must coalesce.
    assert all(g.contiguous for g in graph.groups), (
        "replicate_graph produced a non-contiguous group; this is a bug"
    )
    return batch
