"""Batched multi-instance graphs: many independent problems, one sweep.

The paper parallelizes *within* one factor graph; the production-scale
extension is parallelism *across* problem instances.  Stacking ``B``
independent copies of a template graph into one block-diagonal
:class:`FactorGraph` lets a single vectorized Algorithm-2 sweep advance the
whole fleet: the x-update sees one ``(B·n, L)`` matrix per operator, the
z-update one sparse matvec over all instances.

Layout guarantees (load-bearing for performance):

* **Variables** are instance-major: instance ``i``'s variable ``b`` becomes
  batch variable ``i·V + b``, so each instance owns one contiguous z slice
  (``z.reshape(B, z_size)`` splits the fleet for free).
* **Factors** are group-major: all ``B`` copies of a template factor group
  are created consecutively, so every batched group stays *contiguous* —
  ``prox_batch`` runs on a zero-copy reshape of the flat edge array (the
  paper's memory-coalesced fast path), never the gathered path.

Per-instance parameters (``params_per_instance``) flow into the stacked
group parameter matrices, which is how a fleet of MPC instances with
different initial states or cost weights shares one graph.

:class:`GraphBatch` carries the index maps connecting template and batch
layouts; :class:`repro.core.batched.BatchedSolver` consumes them for
per-instance residuals, stopping masks, and warm starts.

Batches are **elastic**: because every instance records its exact factor
parameters inside the batched graph, :meth:`GraphBatch.add_instances`,
:meth:`GraphBatch.remove_instances`, and :meth:`GraphBatch.select_instances`
rebuild any subset without the application layer re-deriving anything —
the substrate for fleet growth/shrink between solves and for splitting a
fleet into contiguous shards (:class:`repro.core.sharded.ShardedBatchedSolver`).

Elastic resizes are **incremental**: the batched layout is a pure function
of ``(template, B)`` — parameters aside, every index array is arithmetic —
so :meth:`GraphBatch.append_instances` materializes only the ``k`` new
instance blocks (factor specs, stacked group-parameter rows) and splices
them into the canonical layout, and :meth:`GraphBatch.remove_instances`
compacts the maps with row gathers.  Neither path re-replicates surviving
instances through :class:`~repro.graph.builder.GraphBuilder`; the module
counter :data:`REBUILD_COUNTER` records how many instance blocks each
operation structurally built, which is what the O(k)-append tests assert
(wall-clock is too noisy to gate on).

Heterogeneous (multi-template) packings
---------------------------------------
:func:`pack_graphs` generalizes replication from "``B`` copies of one
template" to "a packing of ``N`` instances drawn from *different*
templates" — one fleet mixing MPC, SVM, lasso, and packing instances.
The paper's key insight carries over unchanged: the sweep only cares
about *prox operator identity*, not which instance a factor came from, so
factor groups are bucketed **across instances** by the same
``(operator identity, scope dims, parameter keys)`` key the single-graph
grouping uses.  Groups of different instances that share a key (e.g. all
instances replicated from the same template object) merge into one
contiguous batched group and take the coalesced ``prox_batch`` fast path
together; groups with different keys (different operator objects —
e.g. different app families, or templates whose matching operators carry
different parameter shapes) stay separate buckets, each still contiguous.

Multi-template layout guarantees:

* **Variables** stay instance-major; because ``z_size`` now varies per
  instance, instance ``i``'s z slice is ``z_offsets[i]:z_offsets[i+1]``
  (prefix sums) instead of ``i*z_size`` — :meth:`GraphBatch.z_slice`
  abstracts both.
* **Factors** are merged-group-major: within one merged bucket, instance
  order; within one instance, the template's group order — replication is
  the exact special case ``pack_graphs([t], [B])``, which *delegates* to
  :func:`replicate_graph` so homogeneous batches stay bit-identical to
  the single-template layout.
* **Index maps stay exact per instance**: ``factor_index[i]`` /
  ``edge_index[i]`` / ``slot_index[i]`` are 1-D maps in that instance's
  *own* template order (rows of the rectangular 2-D maps in the uniform
  case, per-instance arrays inside object arrays in the mixed case), so
  per-instance residuals, warm starts, and elastic state migration work
  identically in both modes.

``GraphBatch.uniform`` distinguishes the modes; ``batch.template`` keeps
its historical meaning for uniform batches and raises for mixed ones
(use ``batch.templates[i]``).  Mixed batches trade the O(k) incremental
resize paths for correctness-first full repacks through
:func:`pack_graphs` (witnessed by :data:`REBUILD_COUNTER` like every
other rebuild).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping, Sequence

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.graph.factor_graph import FactorGraph, FactorGroup, FactorSpec


class StructuralRebuildCounter:
    """Operation counters witnessing the cost class of batch restructures.

    ``instances_built`` counts instance blocks whose factor specs were
    materialized (parameter merge + spec creation) — the unit the
    "append is O(k), not O(B)" acceptance tests assert on, because on
    shared 1-core runners wall-clock cannot gate anything.
    """

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.instances_built = 0
        self.full_replications = 0
        self.incremental_appends = 0
        self.compactions = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "instances_built": self.instances_built,
            "full_replications": self.full_replications,
            "incremental_appends": self.incremental_appends,
            "compactions": self.compactions,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"StructuralRebuildCounter({self.snapshot()})"


#: Process-wide counter of structural batch rebuild work (see class docs).
REBUILD_COUNTER = StructuralRebuildCounter()


def _merge_factor_params(
    params: Mapping[str, np.ndarray],
    overrides: Mapping[str, np.ndarray],
    i: int,
    a: int,
) -> dict[str, np.ndarray]:
    """Merge per-instance overrides over a template factor's parameters.

    Shared by :func:`replicate_graph`, :func:`pack_graphs`, and the
    incremental append so all paths validate identically (same error
    messages, same float64 freezing).  Every value — overridden or not —
    is **copied**, never aliased: an instance's realized params must not
    share storage with the template (or with sibling instances), so that
    mutating a template parameter after replication, or feeding one
    instance's ``instance_params`` back through an elastic resize, cannot
    bleed across the fleet.
    """
    merged = {
        key: np.array(value, dtype=np.float64, copy=True)
        for key, value in params.items()
    }
    for key, value in overrides.items():
        if key not in merged:
            raise ValueError(
                f"instance {i} overrides unknown parameter {key!r} of "
                f"factor {a}; overrides may only replace existing "
                f"template parameters (new keys would split the "
                f"factor group)"
            )
        value = np.array(value, dtype=np.float64, copy=True)
        if value.shape != merged[key].shape:
            raise ValueError(
                f"instance {i} override of factor {a} parameter "
                f"{key!r} has shape {value.shape}; template has "
                f"{merged[key].shape}"
            )
        merged[key] = value
    return merged


class _BatchLayout:
    """Canonical constants of the group-major batched layout of a template.

    Every structural array of ``replicate_graph(template, B)`` — edge
    lists, indptrs, group gather matrices, and the batch index maps — is a
    pure arithmetic function of the template and ``B``; parameters are the
    only per-instance content.  This class computes those arrays with
    vectorized NumPy (no per-factor Python loop), which is what makes
    :meth:`GraphBatch.append_instances` and map compaction incremental:
    surviving instances contribute pointer copies and row gathers, never a
    rebuild through :class:`GraphBuilder`.
    """

    def __init__(self, template: FactorGraph) -> None:
        t = template
        self.template = t
        self.n = np.array([g.size for g in t.groups], dtype=np.int64)
        self.e = np.array([g.edge_count for g in t.groups], dtype=np.int64)
        self.L = np.array([g.slot_count for g in t.groups], dtype=np.int64)

        def exclusive(a: np.ndarray) -> np.ndarray:
            out = np.zeros(a.size, dtype=np.int64)
            np.cumsum(a[:-1], out=out[1:])
            return out

        self.prefix_f = exclusive(self.n)
        self.prefix_e = exclusive(self.n * self.e)
        self.prefix_s = exclusive(self.n * self.L)
        self.f_group = np.empty(t.num_factors, dtype=np.int64)
        self.f_pos = np.empty(t.num_factors, dtype=np.int64)
        for gi, grp in enumerate(t.groups):
            self.f_group[grp.factor_ids] = gi
            self.f_pos[grp.factor_ids] = np.arange(grp.size)
        # Template variable ids of each group's edges, one instance's worth,
        # in batched creation order (factor by factor within the group).
        self.edge_pattern = [
            t.edge_var[grp.gather_edges.reshape(-1)] for grp in t.groups
        ]

    # ------------------------------------------------------------------ #
    def maps(self, Bn: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The ``(Bn, ·)`` factor/edge/slot index maps of a ``Bn``-batch."""
        t = self.template
        rows = np.arange(Bn, dtype=np.int64)[:, None]
        g = self.f_group
        base_f = Bn * self.prefix_f[g] + self.f_pos
        factor_index = base_f[None, :] + rows * self.n[g][None, :]

        a = t.edge_factor
        ge = self.f_group[a]
        within = np.arange(t.num_edges, dtype=np.int64) - t.factor_indptr[a]
        base_e = Bn * self.prefix_e[ge] + self.f_pos[a] * self.e[ge] + within
        edge_index = base_e[None, :] + rows * (self.n[ge] * self.e[ge])[None, :]

        ae = t.edge_factor[t.slot_edge]
        gs = self.f_group[ae]
        ws = np.arange(t.edge_size, dtype=np.int64) - t.factor_slot_indptr[ae]
        base_s = Bn * self.prefix_s[gs] + self.f_pos[ae] * self.L[gs] + ws
        slot_index = base_s[None, :] + rows * (self.n[gs] * self.L[gs])[None, :]
        return factor_index, edge_index, slot_index

    def skeleton(
        self, Bn: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``var_dims, edge_var, edge_factor, factor_indptr`` of a ``Bn``-batch."""
        t = self.template
        V = t.num_vars
        var_dims = np.tile(t.var_dims, Bn)
        offs = np.arange(Bn, dtype=np.int64)[:, None] * V
        ev, ef, deg = [], [], []
        for gi in range(len(t.groups)):
            ev.append((offs + self.edge_pattern[gi][None, :]).reshape(-1))
            first = Bn * self.prefix_f[gi]
            count = Bn * self.n[gi]
            ef.append(
                np.repeat(np.arange(first, first + count, dtype=np.int64), self.e[gi])
            )
            deg.append(np.full(count, self.e[gi], dtype=np.int64))
        edge_var = np.concatenate(ev) if ev else np.zeros(0, dtype=np.int64)
        edge_factor = np.concatenate(ef) if ef else np.zeros(0, dtype=np.int64)
        degrees = np.concatenate(deg) if deg else np.zeros(0, dtype=np.int64)
        factor_indptr = np.zeros(degrees.size + 1, dtype=np.int64)
        np.cumsum(degrees, out=factor_indptr[1:])
        return var_dims, edge_var, edge_factor, factor_indptr

    def var_names(self, positions) -> list[str]:
        """Canonical batched variable names for the given instance positions.

        Matches :func:`replicate_graph` exactly: template names get an
        ``@position`` suffix; an unnamed template takes the builder default
        ``v{batched id}``.
        """
        t = self.template
        V = t.num_vars
        if t.var_names is not None:
            return [f"{t.var_names[b]}@{p}" for p in positions for b in range(V)]
        return [f"v{p * V + b}" for p in positions for b in range(V)]

    def build_groups(
        self, Bn: int, params_per_group: Sequence[Mapping[str, np.ndarray]]
    ) -> tuple[FactorGroup, ...]:
        """Canonical contiguous factor groups with the given stacked params."""
        t = self.template
        out = []
        for gi, grp in enumerate(t.groups):
            count = Bn * int(self.n[gi])
            f0 = Bn * int(self.prefix_f[gi])
            e0 = Bn * int(self.prefix_e[gi])
            s0 = Bn * int(self.prefix_s[gi])
            Lg, eg = int(self.L[gi]), int(self.e[gi])
            out.append(
                FactorGroup(
                    prox=grp.prox,
                    factor_ids=np.arange(f0, f0 + count, dtype=np.int64),
                    var_dims=grp.var_dims,
                    gather_slots=np.arange(
                        s0, s0 + count * Lg, dtype=np.int64
                    ).reshape(count, Lg),
                    gather_edges=np.arange(
                        e0, e0 + count * eg, dtype=np.int64
                    ).reshape(count, eg),
                    params=dict(params_per_group[gi]),
                )
            )
        return tuple(out)

    def assemble(
        self,
        Bn: int,
        factors: Sequence[FactorSpec],
        names: Sequence[str] | None,
        params_per_group: Sequence[Mapping[str, np.ndarray]],
        maps: tuple[np.ndarray, np.ndarray, np.ndarray],
    ) -> "GraphBatch":
        """Build the batch from spliced parts (no builder, no re-validation)."""
        var_dims, edge_var, edge_factor, factor_indptr = self.skeleton(Bn)
        graph = FactorGraph.from_parts(
            var_dims,
            factors,
            names,
            edge_var,
            edge_factor,
            factor_indptr,
            groups_fn=lambda g: self.build_groups(Bn, params_per_group),
        )
        batch = GraphBatch(
            graph=graph,
            template=self.template,
            factor_index=maps[0],
            edge_index=maps[1],
            slot_index=maps[2],
        )
        assert all(g.contiguous for g in graph.groups), (
            "incremental batch assembly produced a non-contiguous group; "
            "this is a bug"
        )
        return batch


class GraphBatch:
    """A block-diagonal graph of ``B`` packed instances plus its index maps.

    Attributes
    ----------
    graph:
        The batched :class:`FactorGraph` (``B`` disconnected instances).
    templates:
        Length-``B`` tuple of per-instance template graphs (the same
        object repeated ``B`` times for a homogeneous batch).
    template:
        The single shared template of a **uniform** batch; raises
        ``ValueError`` on a mixed batch (use ``templates[i]``).
    uniform:
        True when every instance shares one template object — the
        homogeneous fast path (rectangular maps, reshape-based views).
    batch_size:
        Number of instances ``B``.
    factor_index, edge_index, slot_index:
        Per-instance integer maps taking a template factor/edge/flat-slot
        id to the corresponding id in the batched graph.  Uniform batches
        store rectangular ``(B, F_t)`` / ``(B, E_t)`` / ``(B, S_t)``
        arrays; mixed batches store length-``B`` object arrays of 1-D
        per-instance maps.  ``factor_index[i]`` is a 1-D map in instance
        ``i``'s own template order in both modes.
    z_offsets, var_offsets:
        ``(B+1,)`` prefix sums of per-instance ``z_size`` / ``num_vars``
        (for a uniform batch simply ``i * template.z_size`` etc.).
    """

    def __init__(
        self,
        graph: FactorGraph,
        template: FactorGraph | None,
        factor_index: np.ndarray,
        edge_index: np.ndarray,
        slot_index: np.ndarray,
        templates: Sequence[FactorGraph] | None = None,
    ) -> None:
        self.graph = graph
        if templates is None:
            if template is None:
                raise ValueError("GraphBatch needs a template or templates")
            templates = (template,) * int(factor_index.shape[0])
        self.templates = tuple(templates)
        self.batch_size = len(self.templates)
        first = self.templates[0]
        self.uniform = all(t is first for t in self.templates)
        self._template = first if self.uniform else template
        self.factor_index = factor_index
        self.edge_index = edge_index
        self.slot_index = slot_index
        self.z_offsets = np.zeros(self.batch_size + 1, dtype=np.int64)
        np.cumsum([t.z_size for t in self.templates], out=self.z_offsets[1:])
        self.var_offsets = np.zeros(self.batch_size + 1, dtype=np.int64)
        np.cumsum([t.num_vars for t in self.templates], out=self.var_offsets[1:])

    @property
    def template(self) -> FactorGraph:
        if self._template is None:
            raise ValueError(
                "mixed-template batch has no single template; use "
                "batch.templates[i] for per-instance templates"
            )
        return self._template

    # ------------------------------------------------------------------ #
    # z (variable) views — instance-major, so these are cheap slices.      #
    # ------------------------------------------------------------------ #
    def z_slice(self, i: int) -> slice:
        """Flat z range of instance ``i`` in the batched layout."""
        self._check_instance(i)
        return slice(int(self.z_offsets[i]), int(self.z_offsets[i + 1]))

    def z_size_of(self, i: int) -> int:
        """z length of instance ``i`` (its template's ``z_size``)."""
        self._check_instance(i)
        return int(self.templates[i].z_size)

    def split_z(self, z_flat: np.ndarray) -> np.ndarray:
        """Per-instance rows of a batched z array.

        Uniform batches return a zero-copy ``(B, z_size)`` reshape; mixed
        batches return a length-``B`` object array of per-instance views
        (indexable by scalars or id sequences in both modes).
        """
        z_flat = np.asarray(z_flat)
        if z_flat.shape != (self.graph.z_size,):
            raise ValueError(
                f"z must have shape ({self.graph.z_size},), got {z_flat.shape}"
            )
        if self.uniform:
            return z_flat.reshape(self.batch_size, self.templates[0].z_size)
        rows = np.empty(self.batch_size, dtype=object)
        for i in range(self.batch_size):
            rows[i] = z_flat[self.z_offsets[i] : self.z_offsets[i + 1]]
        return rows

    def pack_z(self, per_instance) -> np.ndarray:
        """Stack per-instance z vectors into one batched flat array.

        Uniform batches accept a ``(B, z_size)`` matrix, a length-``B``
        sequence of ``(z_size,)`` vectors, or a single ``(z_size,)`` vector
        broadcast to every instance (warm-starting a fleet from one
        solution).  Mixed batches accept a length-``B`` sequence whose
        ``i``-th entry has that instance's own z length.  Any non-ndarray
        iterable (generators included) is materialized first.
        """
        if not isinstance(per_instance, (np.ndarray, list, tuple)):
            per_instance = list(per_instance)
        if isinstance(per_instance, np.ndarray) and per_instance.dtype == object:
            per_instance = list(per_instance)
        if not self.uniform:
            if isinstance(per_instance, np.ndarray) and per_instance.dtype == object:
                per_instance = list(per_instance)
            if not isinstance(per_instance, (list, tuple)) or len(
                per_instance
            ) != self.batch_size:
                raise ValueError(
                    f"mixed-template batch expects a length-{self.batch_size} "
                    f"sequence of per-instance z vectors"
                )
            out = np.empty(self.graph.z_size)
            for i, vec in enumerate(per_instance):
                vec = np.asarray(vec, dtype=np.float64)
                zi = self.z_size_of(i)
                if vec.shape != (zi,):
                    raise ValueError(
                        f"instance {i} z vector has shape {vec.shape}; its "
                        f"template expects ({zi},)"
                    )
                out[self.z_offsets[i] : self.z_offsets[i + 1]] = vec
            return out
        zt = self.templates[0].z_size
        if isinstance(per_instance, (list, tuple)):
            try:
                arr = np.stack(
                    [np.asarray(v, dtype=np.float64) for v in per_instance]
                ).astype(np.float64, copy=False)
            except ValueError as exc:
                raise ValueError(
                    f"expected ({self.batch_size}, {zt}), (B,)-sequence of "
                    f"({zt},) vectors, or a single ({zt},) vector; got a "
                    f"sequence with mismatched per-instance shapes"
                ) from exc
        else:
            arr = np.asarray(per_instance, dtype=np.float64)
        if arr.shape == (zt,):
            arr = np.broadcast_to(arr, (self.batch_size, zt))
        if arr.shape != (self.batch_size, zt):
            raise ValueError(
                f"expected ({self.batch_size}, {zt}), (B,)-sequence of ({zt},) "
                f"vectors, or a single ({zt},) vector; got shape {arr.shape}"
            )
        return arr.reshape(-1).copy()

    # ------------------------------------------------------------------ #
    # Edge/slot views — factor order is group-major, so these gather.      #
    # ------------------------------------------------------------------ #
    def split_slots(self, flat: np.ndarray) -> np.ndarray:
        """Gather a batched flat edge array into per-instance rows.

        ``(B, S_t)`` for uniform batches; a length-``B`` object array of
        per-instance vectors for mixed ones.
        """
        flat = np.asarray(flat)
        if flat.shape != (self.graph.edge_size,):
            raise ValueError(
                f"expected shape ({self.graph.edge_size},), got {flat.shape}"
            )
        if self.uniform:
            return flat[self.slot_index]
        rows = np.empty(self.batch_size, dtype=object)
        for i in range(self.batch_size):
            rows[i] = flat[self.slot_index[i]]
        return rows

    def split_edges(self, per_edge: np.ndarray) -> np.ndarray:
        """Gather a batched per-edge array into per-instance rows.

        ``(B, E_t)`` for uniform batches; a length-``B`` object array of
        per-instance vectors for mixed ones.
        """
        per_edge = np.asarray(per_edge)
        if per_edge.shape != (self.graph.num_edges,):
            raise ValueError(
                f"expected shape ({self.graph.num_edges},), got {per_edge.shape}"
            )
        if self.uniform:
            return per_edge[self.edge_index]
        rows = np.empty(self.batch_size, dtype=object)
        for i in range(self.batch_size):
            rows[i] = per_edge[self.edge_index[i]]
        return rows

    def instance_rho(self, rho_per_instance) -> np.ndarray:
        """Expand per-instance ρ to a per-edge array of the batched graph.

        ``rho_per_instance`` is ``(B,)`` scalars (uniform within each
        instance), ``(B, E_t)`` per-edge values in template edge order
        (uniform batches), or — for mixed batches — a length-``B`` sequence
        whose entries are scalars or per-edge vectors in each instance's
        own template edge order.
        """
        out = np.empty(self.graph.num_edges)
        if self.uniform:
            if (
                isinstance(rho_per_instance, np.ndarray)
                and rho_per_instance.dtype == object
            ):
                # Per-instance rows sliced from a mixed fleet's object array
                # land on a uniform sub-batch here; stack them densely.
                rho_per_instance = [
                    np.asarray(v, dtype=np.float64) for v in rho_per_instance
                ]
            rho = np.asarray(rho_per_instance, dtype=np.float64)
            if rho.shape == (self.batch_size,):
                out[self.edge_index] = rho[:, None]
            elif rho.shape == (self.batch_size, self.templates[0].num_edges):
                out[self.edge_index] = rho
            else:
                raise ValueError(
                    f"expected shape ({self.batch_size},) or "
                    f"({self.batch_size}, {self.templates[0].num_edges}), "
                    f"got {rho.shape}"
                )
            return out
        try:
            rho = np.asarray(rho_per_instance, dtype=np.float64)
        except (ValueError, TypeError):
            rho = None
        if rho is not None and rho.shape == (self.batch_size,):
            for i in range(self.batch_size):
                out[self.edge_index[i]] = rho[i]
            return out
        rows = list(rho_per_instance)
        if len(rows) != self.batch_size:
            raise ValueError(
                f"expected ({self.batch_size},) scalars or a "
                f"length-{self.batch_size} sequence of per-edge vectors; "
                f"got {len(rows)} entries"
            )
        for i, row in enumerate(rows):
            row = np.asarray(row, dtype=np.float64)
            e_i = self.templates[i].num_edges
            if row.ndim == 0:
                out[self.edge_index[i]] = float(row)
            elif row.shape == (e_i,):
                out[self.edge_index[i]] = row
            else:
                raise ValueError(
                    f"instance {i} penalty has shape {row.shape}; its "
                    f"template expects a scalar or ({e_i},)"
                )
        return out

    # ------------------------------------------------------------------ #
    # Elastic batches: grow/shrink the fleet between solves.               #
    # ------------------------------------------------------------------ #
    def instance_params(self, i: int) -> dict[int, dict[str, np.ndarray]]:
        """Recover instance ``i``'s full per-factor parameters.

        Returns one mapping from *template factor id* to that factor's
        parameter dict as realized in the batched graph — exactly the
        override form :func:`replicate_graph` accepts, so an instance can be
        re-replicated (sharding, elastic resize) without the application
        layer re-deriving anything.
        """
        self._check_instance(i)
        out: dict[int, dict[str, np.ndarray]] = {}
        fi = self.factor_index[i]
        for a in range(self.templates[i].num_factors):
            spec = self.graph.factors[int(fi[a])]
            out[a] = {k: np.array(v, copy=True) for k, v in spec.params.items()}
        return out

    def select_instances(self, keep: Sequence[int]) -> "GraphBatch":
        """A new batch of the given instances, in the given order.

        Each kept instance carries its exact parameters, so the new batch's
        per-instance math is bit-identical to the old one's.  This is the
        primitive behind sharding (contiguous ``keep`` ranges) and the
        elastic :meth:`add_instances` / :meth:`remove_instances`.

        An order-preserving (strictly ascending) ``keep`` on a uniform
        batch goes through map compaction — vectorized gathers over the
        existing layout, no re-replication; arbitrary orderings
        (reorderings, duplicates) fall back to :func:`replicate_graph`
        from recorded parameters.  Mixed batches always repack through
        :func:`pack_graphs` (correctness-first; each kept instance carries
        its template and exact parameters).
        """
        keep = [int(i) for i in keep]
        if not keep:
            raise ValueError("select_instances needs at least one instance")
        for i in keep:
            self._check_instance(i)
        if not self.uniform:
            return pack_graphs(
                [self.templates[i] for i in keep],
                params_per_instance=[self.instance_params(i) for i in keep],
            )
        if all(b > a for a, b in zip(keep, keep[1:])):
            return self._compact(keep)
        return replicate_graph(
            self.template, len(keep), [self.instance_params(i) for i in keep]
        )

    def _compact(self, keep: Sequence[int]) -> "GraphBatch":
        """Order-preserving subset via map compaction (no re-replication).

        Surviving instances' factor specs are reused (scopes rebased by a
        pointer-level :func:`dataclasses.replace` when their position
        shifts), group parameter matrices are row-gathered, and all index
        arrays come from the canonical layout — zero instance blocks are
        structurally rebuilt (``REBUILD_COUNTER.instances_built`` is
        untouched).
        """
        t = self.template
        lay = _BatchLayout(t)
        Bn = len(keep)
        F_t, V = t.num_factors, t.num_vars
        REBUILD_COUNTER.compactions += 1

        maps = lay.maps(Bn)
        fi = maps[0]
        old_specs = np.empty(self.graph.num_factors, dtype=object)
        old_specs[:] = self.graph.factors
        spec_arr = np.empty(Bn * F_t, dtype=object)
        for p, i in enumerate(keep):
            src = old_specs[self.factor_index[i]]
            if p != i:
                shift = (p - i) * V
                rebased = np.empty(F_t, dtype=object)
                rebased[:] = [
                    replace(s, variables=tuple(b + shift for b in s.variables))
                    for s in src
                ]
                src = rebased
            spec_arr[fi[p]] = src

        keep_arr = np.asarray(keep, dtype=np.int64)
        params_per_group = []
        for gi, old_grp in enumerate(self.graph.groups):
            n_g = int(lay.n[gi])
            merged: dict[str, np.ndarray] = {}
            for key, stack in old_grp.params.items():
                rows = stack.reshape(self.batch_size, n_g, *stack.shape[1:])
                merged[key] = rows[keep_arr].reshape(Bn * n_g, *stack.shape[1:]).copy()
            params_per_group.append(merged)

        return lay.assemble(
            Bn, spec_arr.tolist(), lay.var_names(range(Bn)), params_per_group, maps
        )

    def append_instances(
        self,
        new_instances: int | Sequence[Mapping[int, Mapping[str, np.ndarray]]],
        templates: Sequence[FactorGraph] | None = None,
    ) -> "GraphBatch":
        """Incrementally grow the fleet: splice ``k`` new instance blocks in.

        ``new_instances`` is either a count (template-parameter clones) or a
        sequence of per-factor override mappings, one per new instance (the
        :func:`replicate_graph` override form).  Existing instances keep
        their exact parameters and their positions ``0..B-1``; new instances
        take positions ``B..B+k-1``.

        ``templates``, when given, names each new instance's template (one
        per new instance); omitted, new instances clone the batch template
        (uniform batches only — growing a mixed batch needs explicit
        templates).  Appending instances of the batch's own single template
        takes the incremental path below; anything heterogeneous — a mixed
        base, or new templates differing from the base — repacks the whole
        fleet through :func:`pack_graphs` (every instance still carries its
        exact parameters, so per-instance math is unchanged).

        On the homogeneous path, only the ``k`` new instances are
        structurally built (factor specs materialized, group-parameter rows
        stacked); everything existing is spliced by pointer copies and
        whole-array concatenation into the canonical group-major layout —
        O(k) instance builds, not the O(B) re-replication
        :func:`replicate_graph` performs, witnessed by
        :data:`REBUILD_COUNTER`.  The result is field-by-field identical to
        a full re-replication of the grown fleet.
        """
        if isinstance(new_instances, int):
            if new_instances < 1:
                raise ValueError(
                    f"must add at least one instance, got {new_instances}"
                )
            fresh: list[Mapping[int, Mapping[str, np.ndarray]]] = [
                {} for _ in range(new_instances)
            ]
        else:
            fresh = list(new_instances)
            if not fresh:
                raise ValueError("must add at least one instance")
        k = len(fresh)
        if templates is not None:
            new_templates = list(templates)
            if len(new_templates) != k:
                raise ValueError(
                    f"templates has {len(new_templates)} entries for "
                    f"{k} new instances"
                )
        elif self.uniform:
            new_templates = [self.templates[0]] * k
        else:
            raise ValueError(
                "growing a mixed-template batch needs explicit templates "
                "(one per new instance)"
            )
        if not self.uniform or any(
            t is not self.templates[0] for t in new_templates
        ):
            return pack_graphs(
                list(self.templates) + new_templates,
                params_per_instance=[
                    self.instance_params(i) for i in range(self.batch_size)
                ]
                + fresh,
            )
        B = self.batch_size
        Bk = B + k
        t = self.template
        F_t, V = t.num_factors, t.num_vars
        lay = _BatchLayout(t)
        maps = lay.maps(Bk)
        fi = maps[0]
        # Existing specs keep their scopes (positions are unchanged); they
        # move to their spliced slots by pointer copy.
        old_specs = np.empty(self.graph.num_factors, dtype=object)
        old_specs[:] = self.graph.factors
        spec_arr = np.empty(Bk * F_t, dtype=object)
        spec_arr[fi[:B].reshape(-1)] = old_specs[self.factor_index.reshape(-1)]
        for j, overrides in enumerate(fresh):
            i = B + j
            for a in range(F_t):
                spec = t.factors[a]
                spec_arr[fi[i, a]] = FactorSpec(
                    prox=spec.prox,
                    variables=tuple(i * V + b for b in spec.variables),
                    params=_merge_factor_params(
                        spec.params, overrides.get(a, {}), i, a
                    ),
                )
        # Count only once the k new blocks actually materialized — a
        # rejected override must not skew the O(k) witness.
        REBUILD_COUNTER.incremental_appends += 1
        REBUILD_COUNTER.instances_built += k

        params_per_group = []
        for gi, old_grp in enumerate(self.graph.groups):
            tgrp = t.groups[gi]
            merged: dict[str, np.ndarray] = {}
            for key, stack in old_grp.params.items():
                new_rows = np.stack(
                    [
                        spec_arr[fi[B + j, a]].params[key]
                        for j in range(k)
                        for a in tgrp.factor_ids
                    ],
                    axis=0,
                )
                merged[key] = np.concatenate([stack, new_rows], axis=0)
            params_per_group.append(merged)

        old_names = self.graph.var_names
        if old_names is None:  # pragma: no cover - batches always carry names
            names = lay.var_names(range(Bk))
        else:
            names = list(old_names) + lay.var_names(range(B, Bk))
        return lay.assemble(Bk, spec_arr.tolist(), names, params_per_group, maps)

    def add_instances(
        self,
        new_instances: int | Sequence[Mapping[int, Mapping[str, np.ndarray]]],
        templates: Sequence[FactorGraph] | None = None,
    ) -> "GraphBatch":
        """Grow the fleet (alias of the incremental :meth:`append_instances`).

        Kept as the historical elastic entry point; since the incremental
        structural append landed, growing a fleet costs O(k) instance
        builds instead of the old full O(B) re-replication (heterogeneous
        appends repack — see :meth:`append_instances`).
        """
        return self.append_instances(new_instances, templates=templates)

    def remove_instances(self, drop: Sequence[int]) -> "GraphBatch":
        """Shrink the fleet: a new batch without the dropped instances.

        Survivors keep their relative order (instance ``i`` moves to
        position ``sum(j not in drop for j < i)``) and their exact
        parameters.  The shrink **compacts** the existing layout (map
        gathers + pointer-level scope rebasing — see :meth:`_compact`)
        instead of re-replicating the survivors.  Dropping every instance
        is an error — a batch is never empty.  Use
        :func:`repro.core.batched.carry_state` (or the elastic methods on
        :class:`repro.core.batched.BatchedSolver`) to carry the survivors'
        iterates and duals into the new layout.
        """
        dropset = {int(i) for i in drop}
        for i in dropset:
            self._check_instance(i)
        keep = [i for i in range(self.batch_size) if i not in dropset]
        if not keep:
            raise ValueError("cannot remove every instance from a batch")
        if not self.uniform:
            return self.select_instances(keep)
        return self._compact(keep)

    # ------------------------------------------------------------------ #
    def instance_solution(self, z_flat: np.ndarray, i: int) -> list[np.ndarray]:
        """Per-variable solution vectors of instance ``i`` (template order)."""
        zi = np.asarray(z_flat)[self.z_slice(i)]
        return self.templates[i].read_solution(zi)

    def _check_instance(self, i: int) -> None:
        if not 0 <= i < self.batch_size:
            raise IndexError(
                f"instance {i} out of range for batch of {self.batch_size}"
            )

    def summary(self) -> str:
        g = self.graph
        if self.uniform:
            t = self.templates[0]
            head = (
                f"GraphBatch: B={self.batch_size} x template(|F|="
                f"{t.num_factors} |V|={t.num_vars} |E|={t.num_edges})"
            )
        else:
            n_templates = len({id(t) for t in self.templates})
            head = (
                f"GraphBatch: B={self.batch_size} mixed instances from "
                f"{n_templates} templates"
            )
        return (
            f"{head} -> "
            f"batched(|F|={g.num_factors} |V|={g.num_vars} |E|={g.num_edges}, "
            f"groups={len(g.groups)}, all_contiguous="
            f"{all(grp.contiguous for grp in g.groups)})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        if self.uniform:
            return (
                f"GraphBatch(B={self.batch_size}, template_elements="
                f"{self.templates[0].num_elements})"
            )
        return f"GraphBatch(B={self.batch_size}, mixed templates)"


def replicate_graph(
    template: FactorGraph,
    batch_size: int,
    params_per_instance: Sequence[Mapping[int, Mapping[str, np.ndarray]]]
    | None = None,
) -> GraphBatch:
    """Replicate ``template`` into a block-diagonal batch of ``batch_size``.

    ``params_per_instance``, when given, is one mapping per instance from
    *template factor id* to parameter overrides for that factor in that
    instance (merged over the template factor's params).  Override keys must
    already exist on the template factor — adding new keys would split the
    factor group and break the coalesced layout; shapes must match the
    template's so the group's stacked parameter matrices stay rectangular.

    Prox operator objects are shared across all instances (grouping is by
    operator identity), so per-instance variation must flow through params.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if template.num_factors == 0:
        raise ValueError("cannot replicate an empty template graph")
    if params_per_instance is not None and len(params_per_instance) != batch_size:
        raise ValueError(
            f"params_per_instance has {len(params_per_instance)} entries "
            f"for batch_size={batch_size}"
        )
    REBUILD_COUNTER.full_replications += 1
    REBUILD_COUNTER.instances_built += batch_size

    B = batch_size
    V = template.num_vars
    builder = GraphBuilder()

    # Variables: instance-major (instance i's variable b -> i*V + b).
    for i in range(B):
        for b in range(V):
            name = (
                f"{template.var_names[b]}@{i}"
                if template.var_names is not None
                else None
            )
            builder.add_variable(int(template.var_dims[b]), name=name)

    # Factors: group-major, so every batched group is one contiguous slot
    # run (the coalesced prox_batch fast path).  Within a group: instance 0's
    # factors first, then instance 1's, ... — each instance owns a contiguous
    # row block of the group's (B·n, L) matrix.
    order: list[tuple[int, int]] = []  # (instance, template factor id)
    for group in template.groups:
        for i in range(B):
            for a in group.factor_ids:
                order.append((i, int(a)))

    for i, a in order:
        spec = template.factors[a]
        overrides = (
            params_per_instance[i].get(a, {})
            if params_per_instance is not None
            else {}
        )
        # _merge_factor_params copies every value even with no overrides,
        # so instance params never alias the template (or each other).
        params = _merge_factor_params(spec.params, overrides, i, a)
        scope = [i * V + b for b in spec.variables]
        builder.add_factor(spec.prox, scope, params)

    graph = builder.build()

    # Index maps: batch factor k (creation order) is (instance, template id)
    # order[k]; its edge/slot ranges in both layouts come from the indptrs.
    factor_index = np.empty((B, template.num_factors), dtype=np.int64)
    edge_index = np.empty((B, template.num_edges), dtype=np.int64)
    slot_index = np.empty((B, template.edge_size), dtype=np.int64)
    for k, (i, a) in enumerate(order):
        factor_index[i, a] = k
        t0, t1 = template.factor_indptr[a], template.factor_indptr[a + 1]
        g0, g1 = graph.factor_indptr[k], graph.factor_indptr[k + 1]
        edge_index[i, t0:t1] = np.arange(g0, g1)
        ts0, ts1 = template.factor_slot_indptr[a], template.factor_slot_indptr[a + 1]
        gs0, gs1 = graph.factor_slot_indptr[k], graph.factor_slot_indptr[k + 1]
        slot_index[i, ts0:ts1] = np.arange(gs0, gs1)

    batch = GraphBatch(
        graph=graph,
        template=template,
        factor_index=factor_index,
        edge_index=edge_index,
        slot_index=slot_index,
    )
    # The whole point of the group-major order: every group must coalesce.
    assert all(g.contiguous for g in graph.groups), (
        "replicate_graph produced a non-contiguous group; this is a bug"
    )
    return batch


def pack_graphs(
    templates: Sequence[FactorGraph],
    counts: Sequence[int] | None = None,
    params_per_instance: Sequence[Mapping[int, Mapping[str, np.ndarray]]]
    | None = None,
) -> GraphBatch:
    """Pack instances of several templates into one block-diagonal batch.

    ``templates[j]`` is packed ``counts[j]`` times (every count defaults to
    one), in order: the fleet's instances are ``counts[0]`` instances of
    ``templates[0]``, then ``counts[1]`` of ``templates[1]``, and so on.
    ``params_per_instance``, when given, is one override mapping per
    *instance* (the :func:`replicate_graph` form, totaled over all counts),
    keyed by each instance's own template factor ids.

    Factor groups are bucketed **across instances** by the same key the
    single-graph grouping uses — ``(prox operator identity, scope dims,
    parameter keys)`` — so groups of instances packed from the same
    template object merge into one contiguous batched group and share the
    coalesced ``prox_batch`` fast path, while different operator objects
    (different app families, or independently built templates) stay in
    separate contiguous buckets.  Templates that *share* a prox operator
    object must also agree on that group's parameter shapes (grouped
    factors stack parameters rectangularly); independently built templates
    never collide because grouping is by operator identity.

    ``pack_graphs([t], [B])`` *is* :func:`replicate_graph`: packing
    instances of one template object delegates to it, so homogeneous
    batches keep the exact historical layout bit-for-bit.
    """
    templates = list(templates)
    if not templates:
        raise ValueError("pack_graphs needs at least one template")
    if counts is None:
        counts = [1] * len(templates)
    else:
        counts = [int(c) for c in counts]
    if len(counts) != len(templates):
        raise ValueError(
            f"counts has {len(counts)} entries for {len(templates)} templates"
        )
    inst_templates: list[FactorGraph] = []
    for j, (t, c) in enumerate(zip(templates, counts)):
        if c < 1:
            raise ValueError(f"counts[{j}] must be >= 1, got {c}")
        if t.num_factors == 0:
            raise ValueError(f"cannot pack empty template graph (templates[{j}])")
        inst_templates.extend([t] * c)
    B = len(inst_templates)
    if params_per_instance is not None:
        params_per_instance = [
            p if p is not None else {} for p in params_per_instance
        ]
        if len(params_per_instance) != B:
            raise ValueError(
                f"params_per_instance has {len(params_per_instance)} entries "
                f"for {B} packed instances"
            )
    first = inst_templates[0]
    if all(t is first for t in inst_templates):
        # Homogeneous packing IS replication — delegating keeps the
        # single-template layout (and its incremental resize paths)
        # bit-identical.
        return replicate_graph(first, B, params_per_instance)
    return _pack_mixed(inst_templates, params_per_instance)


def pack_batches(batches: Sequence[GraphBatch]) -> GraphBatch:
    """Concatenate existing batches into one (possibly mixed) fleet.

    The app layer's mixed-family entry point: build each family's fleet
    with its own ``build_batch`` (which validates family-specific
    invariants), then pack the results into one group-major batch —
    ``pack_batches([mpc_fleet, svm_fleet, lasso_fleet])``.  Instances keep
    their order (batch 0's instances first) and their exact per-factor
    parameters (recovered through :meth:`GraphBatch.instance_params`).  A
    single homogeneous batch round-trips bit-identically through
    :func:`replicate_graph`'s layout.
    """
    batches = list(batches)
    if not batches:
        raise ValueError("pack_batches needs at least one GraphBatch")
    templates: list[FactorGraph] = []
    params: list[Mapping[int, Mapping[str, np.ndarray]]] = []
    for b in batches:
        templates.extend(b.templates)
        params.extend(b.instance_params(i) for i in range(b.batch_size))
    return pack_graphs(templates, params_per_instance=params)


def _pack_mixed(
    inst_templates: Sequence[FactorGraph],
    params_per_instance: Sequence[Mapping[int, Mapping[str, np.ndarray]]]
    | None,
) -> GraphBatch:
    """Build a mixed-template batch (merged-group-major factor order)."""
    B = len(inst_templates)
    REBUILD_COUNTER.full_replications += 1
    REBUILD_COUNTER.instances_built += B

    builder = GraphBuilder()
    var_offsets = np.zeros(B + 1, dtype=np.int64)
    for i, t in enumerate(inst_templates):
        for b in range(t.num_vars):
            name = (
                f"{t.var_names[b]}@{i}" if t.var_names is not None else None
            )
            builder.add_variable(int(t.var_dims[b]), name=name)
        var_offsets[i + 1] = var_offsets[i] + t.num_vars

    # Factors in merged-group-major order.  A merged bucket is keyed
    # exactly like FactorGraph._group_key — (prox identity, scope dims,
    # sorted param keys) — taken in first-appearance order over the
    # (instance, template-group) scan; within a bucket, instance order;
    # within an instance, the template's own group factor order.  The
    # built graph's _build_groups then reproduces these buckets as
    # contiguous groups (asserted below).
    #
    # id()-keying is lifetime-safe here: the keys live only for this
    # call, and every keyed prox is kept alive throughout by the
    # caller-owned templates (``inst_templates``) — unlike a table that
    # outlives its templates, no id can be recycled while the dict is
    # in use.
    bucket_order: list[tuple] = []
    buckets: dict[tuple, list[tuple[int, np.ndarray]]] = {}
    for i, t in enumerate(inst_templates):
        for grp in t.groups:
            spec = t.factors[int(grp.factor_ids[0])]
            key = (
                id(spec.prox),
                tuple(int(d) for d in grp.var_dims),
                tuple(sorted(spec.params.keys())),
            )
            if key not in buckets:
                bucket_order.append(key)
                buckets[key] = []
            buckets[key].append((i, grp.factor_ids))
    order: list[tuple[int, int]] = []  # (instance, template factor id)
    for key in bucket_order:
        for i, factor_ids in buckets[key]:
            for a in factor_ids:
                order.append((i, int(a)))

    for i, a in order:
        t = inst_templates[i]
        spec = t.factors[a]
        overrides = (
            params_per_instance[i].get(a, {})
            if params_per_instance is not None
            else {}
        )
        params = _merge_factor_params(spec.params, overrides, i, a)
        scope = [int(var_offsets[i]) + b for b in spec.variables]
        builder.add_factor(spec.prox, scope, params)

    graph = builder.build()

    # Per-instance index maps from creation order, exactly as in
    # replicate_graph — ragged across instances, so object arrays of 1-D
    # per-instance maps.
    factor_index = np.empty(B, dtype=object)
    edge_index = np.empty(B, dtype=object)
    slot_index = np.empty(B, dtype=object)
    for i, t in enumerate(inst_templates):
        factor_index[i] = np.empty(t.num_factors, dtype=np.int64)
        edge_index[i] = np.empty(t.num_edges, dtype=np.int64)
        slot_index[i] = np.empty(t.edge_size, dtype=np.int64)
    for k, (i, a) in enumerate(order):
        t = inst_templates[i]
        factor_index[i][a] = k
        t0, t1 = t.factor_indptr[a], t.factor_indptr[a + 1]
        g0, g1 = graph.factor_indptr[k], graph.factor_indptr[k + 1]
        edge_index[i][t0:t1] = np.arange(g0, g1)
        ts0, ts1 = t.factor_slot_indptr[a], t.factor_slot_indptr[a + 1]
        gs0, gs1 = graph.factor_slot_indptr[k], graph.factor_slot_indptr[k + 1]
        slot_index[i][ts0:ts1] = np.arange(gs0, gs1)

    batch = GraphBatch(
        graph=graph,
        template=None,
        factor_index=factor_index,
        edge_index=edge_index,
        slot_index=slot_index,
        templates=inst_templates,
    )
    assert len(graph.groups) == len(bucket_order) and all(
        g.contiguous for g in graph.groups
    ), "pack_graphs produced a non-contiguous or split group; this is a bug"
    return batch
