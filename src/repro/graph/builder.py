"""Incremental construction of :class:`FactorGraph` instances.

Mirrors the paper's C API (Figure 2): ``startG`` creates an empty graph and
``addNode`` appends one function node, naming the variables it touches.  Here
variables are declared explicitly (with per-variable dimensions), factors may
carry named parameter arrays, and ``build()`` freezes everything into the
immutable, index-mapped :class:`FactorGraph`.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.graph.factor_graph import FactorGraph, FactorSpec


class GraphBuilder:
    """Mutable factor-graph under construction.

    Example
    -------
    The Figure-1 graph of the paper (four factors over five variables)::

        b = GraphBuilder()
        w = [b.add_variable(dim=1, name=f"w{i+1}") for i in range(5)]
        b.add_factor(f1, [w[0], w[1], w[2]])
        b.add_factor(f2, [w[0], w[3], w[4]])
        b.add_factor(f3, [w[1], w[4]])
        b.add_factor(f4, [w[4]])
        graph = b.build()
    """

    def __init__(self) -> None:
        self._var_dims: list[int] = []
        self._var_names: list[str] = []
        self._factors: list[FactorSpec] = []
        self._built = False

    # ------------------------------------------------------------------ #
    def add_variable(self, dim: int = 1, name: str | None = None) -> int:
        """Declare one variable node of dimension ``dim``; returns its id."""
        dim = int(dim)
        if dim < 1:
            raise ValueError(f"variable dimension must be >= 1, got {dim}")
        vid = len(self._var_dims)
        self._var_dims.append(dim)
        self._var_names.append(name if name is not None else f"v{vid}")
        return vid

    def add_variables(self, count: int, dim: int = 1, prefix: str = "v") -> list[int]:
        """Declare ``count`` variable nodes of equal dimension."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.add_variable(dim, name=f"{prefix}{i}") for i in range(count)]

    def add_factor(
        self,
        prox: Any,
        variables: Sequence[int],
        params: Mapping[str, np.ndarray] | None = None,
    ) -> int:
        """Append one function node; returns its factor id.

        ``prox`` is the proximal-operator object evaluated in the x-update
        (the paper's ``proximal_operator_i`` function pointer); ``variables``
        is the factor's scope ``∂a`` (edge creation order == this order);
        ``params`` are per-factor constants handed to the operator each call.
        """
        fid = len(self._factors)
        frozen = {k: np.asarray(v, dtype=np.float64) for k, v in (params or {}).items()}
        self._factors.append(FactorSpec(prox=prox, variables=tuple(int(v) for v in variables), params=frozen))
        return fid

    # Paper-flavored alias (Figure 2's ``addNode``).
    add_node = add_factor

    # ------------------------------------------------------------------ #
    @property
    def num_vars(self) -> int:
        return len(self._var_dims)

    @property
    def num_factors(self) -> int:
        return len(self._factors)

    def build(self) -> FactorGraph:
        """Freeze into an immutable :class:`FactorGraph` (validates scopes)."""
        graph = FactorGraph(
            var_dims=self._var_dims,
            factors=self._factors,
            var_names=self._var_names,
        )
        self._built = True
        return graph


def start_graph() -> GraphBuilder:
    """Paper-flavored constructor (``startG`` in Figure 2)."""
    return GraphBuilder()


def graph_from_edges(
    prox_by_factor: Sequence[Any],
    scopes: Sequence[Sequence[int]],
    var_dims: Sequence[int] | int = 1,
    params_by_factor: Sequence[Mapping[str, np.ndarray] | None] | None = None,
) -> FactorGraph:
    """One-shot construction from parallel sequences.

    Convenience for tests and programmatic workload generators: ``scopes[a]``
    lists the variables of factor ``a``; ``var_dims`` is either a per-variable
    sequence or a single dimension applied to ``max(scope)+1`` variables.
    """
    if len(prox_by_factor) != len(scopes):
        raise ValueError(
            f"prox_by_factor has {len(prox_by_factor)} entries, scopes has {len(scopes)}"
        )
    if params_by_factor is not None and len(params_by_factor) != len(scopes):
        raise ValueError("params_by_factor length must match scopes")
    b = GraphBuilder()
    if isinstance(var_dims, (int, np.integer)):
        n_vars = 1 + max((max(s) for s in scopes if len(s)), default=-1)
        b.add_variables(n_vars, dim=int(var_dims))
    else:
        for d in var_dims:
            b.add_variable(int(d))
    for i, (prox, scope) in enumerate(zip(prox_by_factor, scopes)):
        params = params_by_factor[i] if params_by_factor is not None else None
        b.add_factor(prox, scope, params)
    return b.build()
