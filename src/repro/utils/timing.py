"""Timing utilities used by the solver diagnostics and the bench harness.

The paper reports per-update-kind time fractions ("the x and z updates take
31% + 40% of the time"); :class:`KernelTimers` collects exactly those numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


def format_seconds(seconds: float) -> str:
    """Human-readable duration (``1.23s``, ``45.6ms``, ``789us``)."""
    if seconds != seconds:  # NaN
        return "nan"
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds * 1e6:.1f}us"


@dataclass
class Timer:
    """Accumulating wall-clock timer usable as a context manager."""

    elapsed: float = 0.0
    calls: int = 0
    _start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None, "Timer.__exit__ without __enter__"
        self.elapsed += time.perf_counter() - self._start
        self.calls += 1
        self._start = None

    def reset(self) -> None:
        self.elapsed = 0.0
        self.calls = 0
        self._start = None

    @property
    def mean(self) -> float:
        """Mean seconds per timed call (0.0 if never called)."""
        return self.elapsed / self.calls if self.calls else 0.0


#: The five update kinds of Algorithm 2, in execution order.
UPDATE_KINDS = ("x", "m", "z", "u", "n")


class _NullTimer:
    """No-op context manager standing in for a :class:`Timer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_TIMER = _NullTimer()


class _NullTimers:
    """``timers[kind]``-compatible object that times nothing.

    Lets a kernel loop be written once with ``with timers[kind]:`` blocks
    and run untimed by substituting this singleton (``NULL_TIMERS``).
    """

    __slots__ = ()

    def __getitem__(self, kind: str) -> _NullTimer:
        return _NULL_TIMER


NULL_TIMERS = _NullTimers()


@dataclass
class KernelTimers:
    """One :class:`Timer` per Algorithm-2 kernel (x, m, z, u, n)."""

    timers: dict[str, Timer] = field(
        default_factory=lambda: {k: Timer() for k in UPDATE_KINDS}
    )

    def __getitem__(self, kind: str) -> Timer:
        return self.timers[kind]

    def reset(self) -> None:
        for t in self.timers.values():
            t.reset()

    @property
    def total(self) -> float:
        return sum(t.elapsed for t in self.timers.values())

    def elapsed_by_kind(self) -> dict[str, float]:
        """Plain ``{kind: seconds}`` snapshot (picklable, queue-friendly)."""
        return {k: t.elapsed for k, t in self.timers.items()}

    def add_elapsed(self, seconds_by_kind: dict[str, float], calls: int = 0) -> None:
        """Fold externally measured per-kernel seconds into these timers.

        This is how the fleet solvers aggregate the per-kernel times their
        shard workers measured and shipped back: summing across workers
        keeps :meth:`fractions` faithful to where the compute time went
        (``total`` then reads as aggregate worker seconds, not wall-clock).
        """
        for kind, seconds in seconds_by_kind.items():
            timer = self.timers[kind]
            timer.elapsed += float(seconds)
            timer.calls += calls

    def merge(self, other: "KernelTimers") -> None:
        """Accumulate another :class:`KernelTimers` into this one."""
        for kind, timer in other.timers.items():
            mine = self.timers[kind]
            mine.elapsed += timer.elapsed
            mine.calls += timer.calls

    def fractions(self) -> dict[str, float]:
        """Fraction of total iteration time spent in each kernel.

        This regenerates the paper's "x+z take 71% of the time" style numbers.
        Returns all-zeros if nothing has been timed.
        """
        total = self.total
        if total == 0.0:
            return {k: 0.0 for k in UPDATE_KINDS}
        return {k: self.timers[k].elapsed / total for k in UPDATE_KINDS}

    def summary(self) -> str:
        fr = self.fractions()
        parts = [
            f"{k}:{format_seconds(self.timers[k].elapsed)}({fr[k]:.0%})"
            for k in UPDATE_KINDS
        ]
        return " ".join(parts)
