"""Timing utilities used by the solver diagnostics and the bench harness.

The paper reports per-update-kind time fractions ("the x and z updates take
31% + 40% of the time"); :class:`KernelTimers` collects exactly those numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


def format_seconds(seconds: float) -> str:
    """Human-readable duration (``1.23s``, ``45.6ms``, ``789us``)."""
    if seconds != seconds:  # NaN
        return "nan"
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds * 1e6:.1f}us"


@dataclass
class Timer:
    """Accumulating wall-clock timer usable as a context manager."""

    elapsed: float = 0.0
    calls: int = 0
    _start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None, "Timer.__exit__ without __enter__"
        self.elapsed += time.perf_counter() - self._start
        self.calls += 1
        self._start = None

    def reset(self) -> None:
        self.elapsed = 0.0
        self.calls = 0
        self._start = None

    @property
    def mean(self) -> float:
        """Mean seconds per timed call (0.0 if never called)."""
        return self.elapsed / self.calls if self.calls else 0.0


#: The five update kinds of Algorithm 2, in execution order.
UPDATE_KINDS = ("x", "m", "z", "u", "n")


@dataclass
class KernelTimers:
    """One :class:`Timer` per Algorithm-2 kernel (x, m, z, u, n)."""

    timers: dict[str, Timer] = field(
        default_factory=lambda: {k: Timer() for k in UPDATE_KINDS}
    )

    def __getitem__(self, kind: str) -> Timer:
        return self.timers[kind]

    def reset(self) -> None:
        for t in self.timers.values():
            t.reset()

    @property
    def total(self) -> float:
        return sum(t.elapsed for t in self.timers.values())

    def fractions(self) -> dict[str, float]:
        """Fraction of total iteration time spent in each kernel.

        This regenerates the paper's "x+z take 71% of the time" style numbers.
        Returns all-zeros if nothing has been timed.
        """
        total = self.total
        if total == 0.0:
            return {k: 0.0 for k in UPDATE_KINDS}
        return {k: self.timers[k].elapsed / total for k in UPDATE_KINDS}

    def summary(self) -> str:
        fr = self.fractions()
        parts = [
            f"{k}:{format_seconds(self.timers[k].elapsed)}({fr[k]:.0%})"
            for k in UPDATE_KINDS
        ]
        return " ".join(parts)
