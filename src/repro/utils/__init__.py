"""Shared utilities: timing, deterministic RNG, validation helpers."""

from repro.utils.rng import default_rng, spawn_rngs
from repro.utils.timing import Timer, KernelTimers, format_seconds
from repro.utils.validation import (
    check_array,
    check_finite,
    check_positive,
    check_shape,
)

__all__ = [
    "default_rng",
    "spawn_rngs",
    "Timer",
    "KernelTimers",
    "format_seconds",
    "check_array",
    "check_finite",
    "check_positive",
    "check_shape",
]
