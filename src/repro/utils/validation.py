"""Input-validation helpers shared across the public API.

Errors raised here are the library's user-facing diagnostics, so messages name
the offending argument and the expectation, not internal state.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def check_array(
    value,
    name: str,
    *,
    dtype=np.float64,
    ndim: int | None = None,
    allow_empty: bool = True,
) -> np.ndarray:
    """Coerce ``value`` to an ndarray and validate its rank."""
    arr = np.asarray(value, dtype=dtype)
    if ndim is not None and arr.ndim != ndim:
        raise ValueError(f"{name} must have ndim={ndim}, got ndim={arr.ndim}")
    if not allow_empty and arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    return arr


def check_finite(arr: np.ndarray, name: str) -> np.ndarray:
    """Raise if ``arr`` contains NaN or infinity."""
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite (contains NaN or inf)")
    return arr


def check_positive(value: float, name: str) -> float:
    """Raise unless ``value`` is a strictly positive finite scalar."""
    value = float(value)
    if not (value > 0.0) or value != value or value == float("inf"):
        raise ValueError(f"{name} must be a positive finite number, got {value}")
    return value


def check_shape(arr: np.ndarray, shape: Sequence[int], name: str) -> np.ndarray:
    """Raise unless ``arr.shape`` equals ``shape`` (use -1 for "any")."""
    expected = tuple(shape)
    actual = arr.shape
    ok = len(actual) == len(expected) and all(
        e in (-1, a) for e, a in zip(expected, actual)
    )
    if not ok:
        raise ValueError(f"{name} must have shape {expected}, got {actual}")
    return arr
