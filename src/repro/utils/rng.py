"""Deterministic random-number helpers.

All randomness in the library flows through :func:`default_rng` so that every
experiment, test, and benchmark is reproducible from a single integer seed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: Seed used across the repository when the caller does not supply one.  Kept
#: module-level so benches and tests agree on the default workloads.
DEFAULT_SEED = 1603_02526  # arXiv id of the paper, for flavor.


def default_rng(seed: int | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` seeded deterministically.

    Parameters
    ----------
    seed:
        Integer seed.  ``None`` selects :data:`DEFAULT_SEED` (*not* OS
        entropy) — reproducibility is the default in this library.
    """
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rngs(n: int, seed: int | None = None) -> list[np.random.Generator]:
    """Return ``n`` statistically independent child generators.

    Used by the process/thread backends so each worker draws from its own
    stream, matching the "independent streams per core" idiom of parallel
    numerical codes.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    ss = np.random.SeedSequence(DEFAULT_SEED if seed is None else seed)
    return [np.random.default_rng(s) for s in ss.spawn(n)]


def shuffled(seq: Sequence, seed: int | None = None) -> list:
    """Return a deterministically shuffled copy of ``seq``."""
    rng = default_rng(seed)
    out = list(seq)
    rng.shuffle(out)
    return out
