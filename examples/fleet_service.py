"""Fleet as a service: stream MPC solve requests through a live fleet.

Spins up a :class:`FleetService` bound to an inverted-pendulum MPC
template, then replays a seeded open-loop Poisson arrival process against
it: requests (randomized initial states, one warm-started from a previous
solution) are admission-batched into the running fleet between sweep
segments, evicted the moment they converge or hit their cap, and audited
against dedicated single-instance solves — every returned iterate is
bit-identical, no matter how the fleet was churning around it.  Ends with
the service's SLO view: p50/p95/p99 per-request latency and sustained
instances/sec.

Run:  python examples/fleet_service.py [requests] [horizon] [check_every]
"""

import sys

import numpy as np

from repro import BatchedSolver, FleetService, replicate_graph
from repro.apps.mpc import MPCProblem, build_batch, inverted_pendulum
from repro.testing.traffic import poisson_trace, replay


def main():
    requests = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    horizon = int(sys.argv[2]) if len(sys.argv) > 2 else 6
    check_every = int(sys.argv[3]) if len(sys.argv) > 3 else 10
    rho, cap, seed = 10.0, 200, 0

    A, B = inverted_pendulum()
    template = build_batch(
        [MPCProblem(A=A, B=B, q0=np.zeros(4), horizon=horizon)]
    ).template
    anchor = 2 * horizon + 1  # the q0-anchor factor (see repro.apps.mpc)

    def make_params(rng, i):
        return {anchor: {"c": rng.uniform(-0.2, 0.2, 4)}}

    print(f"--- replaying {requests} Poisson requests through the service ---")
    trace = poisson_trace(requests, rate=2.0, seed=seed, make_params=make_params)
    service = FleetService(
        template,
        rho=rho,
        num_shards=2,
        check_every=check_every,
        max_iterations=cap,
    )
    with service:
        results = replay(service, trace)
        print(service.summary())

        # One more request, warm-started from a finished neighbour — the
        # real-time MPC pattern: re-solve from the last plan as the state
        # drifts.  It joins the (now idle) fleet like any other request.
        z_prev = results[0].result.z
        rid = service.submit(
            params=dict(trace[0].params), warm_start=z_prev
        )
        warm = {r.request_id: r for r in service.drain()}[rid]
        print(
            f"warm-started request {rid}: converged={warm.result.converged} "
            f"after {warm.sweeps} sweeps "
            f"(cold run took {results[0].sweeps})"
        )
        stats = service.stats()

    print("\n--- audit: every result vs a dedicated solo solve ---")
    worst = 0.0
    for rid in sorted(results):
        solo_batch = replicate_graph(template, 1, [dict(trace[rid].params)])
        with BatchedSolver(solo_batch, rho=rho) as solo:
            ref = solo.solve_batch(
                max_iterations=cap, check_every=check_every, init="zeros"
            )[0]
        worst = max(worst, float(np.max(np.abs(ref.z - results[rid].result.z))))
    print(f"max |dz| vs solo over {len(results)} requests: {worst} (0 = bit-identical)")

    print("\n--- service-level objectives ---")
    print(stats.summary())
    print(
        f"segments={stats.segments}, "
        f"mean sweeps/request={stats.sweeps_per_request_mean:.1f}"
    )


if __name__ == "__main__":
    main()
