"""Soft-margin SVM training via message-passing ADMM (paper §V-C).

Draws the paper's workload — two Gaussian clouds a fixed distance apart —
builds the Figure-12 factor graph (per-point plane copies chained equal),
trains, and compares the separating plane against an exact QP solve.

Run:  python examples/svm_classification.py [n_points] [dim]
"""

import sys

import numpy as np

from repro.apps.svm import SVMProblem, make_blobs, solve_svm, solve_svm_reference


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    dim = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    X, y = make_blobs(n, dim=dim, separation=3.0, seed=42)
    problem = SVMProblem(X, y, lam=1.0)
    print(f"soft-margin SVM: N={n} points in R^{dim}")
    print(problem.build_graph().summary())
    print()

    out = solve_svm(problem, iterations=6000, rho=1.0)
    w, b = out["w"], out["b"]
    print(f"ADMM plane:  w={np.round(w, 4)} b={b:+.4f}")
    print(f"  objective: {out['objective']:.5f}")
    print(f"  accuracy:  {out['accuracy']:.3f}")

    if n <= 80:
        w_ref, b_ref, obj_ref = solve_svm_reference(problem)
        print(f"exact QP:    w={np.round(w_ref, 4)} b={b_ref:+.4f}")
        print(f"  objective: {obj_ref:.5f}")
        gap = out["objective"] - obj_ref
        print(f"  ADMM optimality gap: {gap:+.2e}")

    margins = y * (X @ w + b)
    sv = int(np.sum(margins < 1.0 + 1e-6))
    print(f"\n{sv}/{n} points on or inside the margin (support-vector-like)")


if __name__ == "__main__":
    main()
