"""Quickstart: the paper's Figure-1 graph, solved on every backend.

Builds the bipartite factor graph

    f1(w1, w2, w3) + f2(w1, w4, w5) + f3(w2, w5) + f4(w5)

with simple quadratic factors, runs the message-passing ADMM, and shows
that the serial / vectorized / threaded engines produce identical iterates
while only the vectorized one is fast — the paper's whole premise in ~60
lines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ADMMSolver,
    GraphBuilder,
    SerialBackend,
    ThreadedBackend,
    VectorizedBackend,
)
from repro.prox import DiagQuadProx


def build_figure1_graph():
    b = GraphBuilder()
    w = [b.add_variable(dim=1, name=f"w{i+1}") for i in range(5)]

    def quad(dims, targets):
        # f(s) = 0.5 ||s - t||^2, encoded as q=1, c=-t.
        return DiagQuadProx(dims=dims), {
            "q": np.ones(len(targets)),
            "c": -np.asarray(targets, dtype=float),
        }

    p1, c1 = quad((1, 1, 1), [1.0, 2.0, 3.0])
    p2, c2 = quad((1, 1, 1), [1.5, 4.0, 5.0])
    p3, c3 = quad((1, 1), [2.5, 5.5])
    p4, c4 = quad((1,), [4.5])
    b.add_factor(p1, [w[0], w[1], w[2]], c1)  # f1(w1,w2,w3)
    b.add_factor(p2, [w[0], w[3], w[4]], c2)  # f2(w1,w4,w5)
    b.add_factor(p3, [w[1], w[4]], c3)  # f3(w2,w5)
    b.add_factor(p4, [w[4]], c4)  # f4(w5)
    return b.build()


def main():
    graph = build_figure1_graph()
    print(graph.summary())
    print()

    results = {}
    for backend in (SerialBackend(), VectorizedBackend(), ThreadedBackend(2)):
        solver = ADMMSolver(graph, backend=backend, rho=1.0)
        res = solver.solve(max_iterations=2000, eps_abs=1e-10, eps_rel=1e-9)
        solver.close()
        results[backend.name] = res
        sol = np.concatenate(res.solution)
        print(
            f"{backend.name:>11}: {res.iterations:4d} iters "
            f"({res.wall_time:.3f}s)  w* = {np.round(sol, 4)}"
        )

    ref = results["serial"].z
    for name, res in results.items():
        assert np.allclose(res.z, ref, atol=1e-8), name
    print("\nall backends agree bit-for-bit — same math, different scheduling")


if __name__ == "__main__":
    main()
