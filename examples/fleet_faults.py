"""Fault-tolerant fleet solving: crash a worker mid-solve, lose nothing.

Builds an uneven inverted-pendulum MPC fleet and solves it on process-mode
shards while a scripted fault plan SIGKILLs one worker and severs
another's result queue.  The supervision layer detects each fault within
one poll, restarts the worker on fresh queues, and replays the lost sweep
segment from the parent-held state — so the recovered solve is
bit-identical to the crash-free ``BatchedSolver`` run.  A second solve
exhausts the restart budget instead: the dead shard's roster migrates to a
survivor through the work-stealing path (an involuntary steal) and the
fleet finishes with one shard fewer, still bit-identical.

Run:  python examples/fleet_faults.py [batch_size] [horizon] [shards]
"""

import sys

import numpy as np

from repro import BatchedSolver, RebalancingShardedSolver
from repro.apps.mpc import MPCProblem, build_batch, inverted_pendulum
from repro.core.supervision import WorkerPolicy
from repro.testing.faults import FaultInjector, FaultPlan


def make_problems(batch_size, horizon):
    A, B = inverted_pendulum()
    problems = []
    for i in range(batch_size):
        q0 = np.zeros(4) if i < batch_size // 2 else np.full(4, 0.35)
        problems.append(MPCProblem(A=A, B=B, q0=q0, horizon=horizon))
    return problems


def show_log(solver):
    for e in solver.fault_log:
        print(f"  {e.kind} @ iter {e.iteration}, shard {e.shard}: {e.detail}")


def main():
    batch_size = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    horizon = int(sys.argv[2]) if len(sys.argv) > 2 else 6
    shards = int(sys.argv[3]) if len(sys.argv) > 3 else 3

    problems = make_problems(batch_size, horizon)
    kwargs = dict(max_iterations=120, check_every=5, init="zeros")
    plain = BatchedSolver(build_batch(problems), rho=10.0)
    ref = plain.solve_batch(**kwargs)
    plain.close()
    print(f"uneven fleet of {batch_size} pendulum MPC instances, "
          f"horizon K={horizon}, {shards} process shards")

    # --- restart-and-replay: kill + severed queue, both recovered ------- #
    plan = FaultPlan.parse("kill:0@2,drop:1@4")
    policy = WorkerPolicy(heartbeat_interval=0.1, wait_timeout=3.0,
                          poll_interval=0.1, max_restarts=2, backoff=0.05)
    print(f"\nsolving under fault plan '{plan.spec()}' "
          f"(restart budget {policy.max_restarts}):")
    with RebalancingShardedSolver(
        build_batch(problems), num_shards=shards, mode="process", rho=10.0,
        policy=policy, injector=FaultInjector(plan),
    ) as solver:
        got = solver.solve_batch(**kwargs)
        show_log(solver)
        dev = max(float(np.max(np.abs(a.z - b.z))) for a, b in zip(got, ref))
        print(f"{solver.fault_log.summary()}   "
              f"max |dz| vs crash-free: {dev:.1e} (0 = bit-identical)")

    # --- failover: no restart budget -> roster migrates to a survivor --- #
    print("\nsame crash with max_restarts=0 (failover + involuntary steal):")
    with RebalancingShardedSolver(
        build_batch(problems), num_shards=shards, mode="process", rho=10.0,
        policy=WorkerPolicy(heartbeat_interval=0.1, wait_timeout=3.0,
                            poll_interval=0.1, max_restarts=0),
        injector=FaultInjector("kill:0@2"),
    ) as solver:
        got = solver.solve_batch(**kwargs)
        show_log(solver)
        dev = max(float(np.max(np.abs(a.z - b.z))) for a, b in zip(got, ref))
        print(f"fleet finished on {solver.num_shards} shard(s), rosters "
              f"{solver.shard_rosters()}")
        print(f"{solver.fault_log.summary()}   "
              f"max |dz| vs crash-free: {dev:.1e} (0 = bit-identical)")


if __name__ == "__main__":
    main()
