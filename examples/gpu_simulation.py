"""Explore the SIMT performance model: ntb sweeps and device what-ifs.

Regenerates (a) the paper's threads-per-block finding — ntb=32 is the sweet
spot for the packing x-update — and (b) the conclusion's future-work
question "how hardware-dependent are the speedups?" by swapping in a
TITAN-X-like device, plus the degree-imbalance pathology on a star graph.

Run:  python examples/gpu_simulation.py
"""

import numpy as np

from repro.bench.workloads import star_graph
from repro.gpusim import (
    OPTERON_6300,
    TESLA_K40,
    TITAN_X,
    admm_workloads,
    best_ntb,
    packing_workloads,
    serial_time,
    simulate_admm_gpu,
    simulate_kernel,
)


def ntb_sweep():
    print("=== packing N=5000, x-update speedup vs threads-per-block ===")
    wl = packing_workloads(5000)[0]["x"]
    base = serial_time(wl, OPTERON_6300)
    best, timings = best_ntb(TESLA_K40, wl)
    print("paper:  5.6 5.6 5.8 5.8 5.8 | 7.4 | 5.5 3.5 2.0 2.0 3.6  (peak at 32)")
    row = " ".join(
        f"{base / timings[ntb].time_s:5.1f}" for ntb in sorted(timings)
    )
    print(f"model:  {row}")
    print(f"model optimum: ntb={best}\n")


def device_whatif():
    print("=== hardware what-if: K40 vs TITAN-X-class device ===")
    wl, _ = packing_workloads(2000)
    for device in (TESLA_K40, TITAN_X):
        res = simulate_admm_gpu(device, None, OPTERON_6300, ntb=32, workloads=wl)
        print(
            f"  {device.name:>22}: combined {res.combined_speedup:5.1f}x  "
            f"per-kernel { {k: round(v, 1) for k, v in res.speedups().items()} }"
        )
    print()


def imbalance_demo():
    print("=== the z-update bottleneck: one high-degree variable ===")
    for leaves in (100, 1000, 5000):
        g = star_graph(leaves)
        wl = admm_workloads(g)["z"]
        k = simulate_kernel(TESLA_K40, wl, 32)
        hub_s = wl.cycles[0] / TESLA_K40.clock_hz
        print(
            f"  hub degree {leaves:5d}: kernel {k.time_s * 1e6:9.1f}us, "
            f"hub thread alone {hub_s * 1e6:9.1f}us "
            f"({hub_s / k.time_s:5.1%} of the kernel)"
        )
    print("  -> the kernel can never finish before its busiest thread (paper")
    print("     conclusion); see repro.graph.partition for the rebalancer.")


def main():
    ntb_sweep()
    device_whatif()
    imbalance_demo()


if __name__ == "__main__":
    main()
