"""Circle packing in a triangle (paper §V-A) — combinatorial optimization.

Packs N disks into the unit equilateral triangle by running the
message-passing ADMM over the Figure-6 factor graph (pairwise no-collision,
wall, and radius-reward operators, all closed form), then validates the
result and prints an ASCII rendering.

Run:  python examples/circle_packing.py [N]
"""

import sys

import numpy as np

from repro.apps.packing import PackingProblem, solve_packing, triangle_region


def ascii_render(problem, centers, radii, width=58, height=26):
    """Coarse character rendering of the packed triangle."""
    region = problem.region
    lo = region.points.min(axis=0) - 0.05
    hi = region.points.max(axis=0) + 0.05
    rows = []
    for iy in range(height, -1, -1):
        y = lo[1] + (hi[1] - lo[1]) * iy / height
        row = []
        for ix in range(width + 1):
            x = lo[0] + (hi[0] - lo[0]) * ix / width
            p = np.array([x, y])
            ch = " "
            if region.contains(p):
                ch = "."
            d = np.linalg.norm(centers - p, axis=1)
            hit = np.nonzero(d <= radii)[0]
            if hit.size:
                ch = chr(ord("A") + int(hit[0]) % 26)
            row.append(ch)
        rows.append("".join(row))
    return "\n".join(rows)


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    print(f"packing {n} disks into the unit triangle ...")
    out = solve_packing(n, iterations=4000, rho=3.0, seed=7)
    problem: PackingProblem = out["problem"]
    centers, radii = out["centers"], out["radii"]

    print(out["graph"].summary())
    print()
    print(f"coverage:          {out['coverage']:.3f} of the triangle area")
    print(f"overlap violation: {out['overlap_violation']:.2e}")
    print(f"wall violation:    {out['wall_violation']:.2e}")
    print(f"feasible:          {out['feasible']}")
    print()
    for i, (c, r) in enumerate(zip(centers, radii)):
        print(f"  disk {chr(ord('A') + i % 26)}: center=({c[0]:.3f}, {c[1]:.3f}) r={r:.3f}")
    print()
    print(ascii_render(problem, centers, radii))


if __name__ == "__main__":
    main()
