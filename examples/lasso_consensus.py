"""Consensus Lasso over data blocks (the paper's §I motivating example).

Boyd et al. split a Lasso across row blocks, each handled by one machine;
on the factor graph this is just a star: every data-fidelity factor and the
ℓ1 factor touch the shared weight node, and the z-update performs the
consensus averaging.  We solve it, compare with FISTA, and show the
recovered support.

Run:  python examples/lasso_consensus.py [n_samples] [dim] [blocks]
"""

import sys

import numpy as np

from repro.apps.lasso import (
    LassoProblem,
    make_lasso_data,
    solve_lasso,
    solve_lasso_fista,
)


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    dim = int(sys.argv[2]) if len(sys.argv) > 2 else 40
    blocks = int(sys.argv[3]) if len(sys.argv) > 3 else 6
    A, y, w_true = make_lasso_data(n, dim, sparsity=6, noise=0.01, seed=1)
    lam = 0.05
    problem = LassoProblem(A, y, lam=lam, n_blocks=blocks)
    print(f"consensus Lasso: {n} samples, {dim} features, {blocks} blocks, λ={lam}")
    print(problem.build_graph().summary())
    print()

    out = solve_lasso(problem, iterations=6000)
    w_admm = out["w"]
    w_fista = solve_lasso_fista(A, y, lam)
    print(f"ADMM objective:  {problem.objective(w_admm):.6f} "
          f"({out['result'].iterations} iterations)")
    print(f"FISTA objective: {problem.objective(w_fista):.6f}")
    print(f"max |w_admm - w_fista| = {np.max(np.abs(w_admm - w_fista)):.2e}")

    support_true = {int(i) for i in np.flatnonzero(np.abs(w_true) > 1e-9)}
    support_admm = {int(i) for i in np.flatnonzero(np.abs(w_admm) > 1e-3)}
    print(f"\ntrue support:      {sorted(support_true)}")
    print(f"recovered support: {sorted(support_admm)}")
    print(f"recovered {len(support_true & support_admm)}/{len(support_true)} "
          "true coefficients")


if __name__ == "__main__":
    main()
