"""Model Predictive Control of an inverted pendulum (paper §V-B).

Solves the finite-horizon MPC QP for the linearized cart-pole on the
factor-graph ADMM, checks the trajectory against the exact sparse-KKT
solution, and demonstrates the paper's real-time pattern: keep the graph,
warm-start each control cycle from the previous solution.

Run:  python examples/mpc_pendulum.py [horizon]
"""

import sys

import numpy as np

from repro import ADMMSolver
from repro.apps.mpc import default_problem, solve_mpc, solve_mpc_exact


def main():
    horizon = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    q0 = np.array([0.2, 0.0, 0.1, 0.0])  # cart offset + pole tilt
    problem = default_problem(horizon, q0=q0)
    print(f"inverted-pendulum MPC, horizon K={horizon}")
    print(problem.build_graph().summary())
    print()

    out = solve_mpc(problem, iterations=10_000, rho=10.0)
    states_ex, inputs_ex, obj_ex = solve_mpc_exact(problem)
    print(f"ADMM objective:  {out['objective']:.6f}")
    print(f"exact objective: {obj_ex:.6f}")
    print(f"dynamics violation: {out['dynamics_violation']:.2e}")
    print(f"max |state - exact|: {np.max(np.abs(out['states'] - states_ex)):.2e}")
    print()
    print(" t   angle(ADMM)  angle(exact)   input(ADMM)")
    for t in range(0, horizon + 1, max(1, horizon // 10)):
        print(
            f"{t:3d}   {out['states'][t, 2]:+.5f}     "
            f"{states_ex[t, 2]:+.5f}     {out['inputs'][t, 0]:+.5f}"
        )

    # --- the paper's real-time trick: reuse graph + warm start ---------- #
    print("\nreceding-horizon reuse (graph built once, warm-started):")
    graph = problem.build_graph()
    solver = ADMMSolver(graph, rho=10.0)
    first = solver.solve(max_iterations=10_000, check_every=200)
    solver.warm_start(first.z)
    second = solver.solve(max_iterations=1_000, init="keep", check_every=100)
    states2, inputs2 = problem.extract(second.z)
    print(
        f"  warm resolve: {second.iterations} iterations, "
        f"dynamics violation {problem.dynamics_violation(states2, inputs2):.2e}"
    )
    solver.close()


if __name__ == "__main__":
    main()
