"""Live fleet rebalancing: work-stealing shards on an uneven MPC fleet.

Builds a fleet of inverted-pendulum MPC instances where half start at the
origin (they converge almost immediately) and half start far out (they
grind), then solves it with a :class:`RebalancingShardedSolver`: as easy
instances freeze, their shard's active count drops below the steal
threshold and the shard steals work from the heaviest one — every steal
is logged, and the results stay bit-identical to the plain batched solve.
Then the live fleet is re-sharded in place and grown with appended
instances (the O(k) incremental structural append), state carried
bit-for-bit throughout.  Finally the same fleet is solved on process-mode
shards over the zero-copy shared-memory transport with the predictive
steal policy: ``transport_stats()`` witnesses that no iterate bytes
crossed the command queues, and each predictive steal reports the
projected load it moved.

Run:  python examples/fleet_rebalance.py [batch_size] [horizon] [shards]
"""

import sys

import numpy as np

from repro import BatchedSolver, RebalancingShardedSolver
from repro.apps.mpc import MPCProblem, build_batch, inverted_pendulum
from repro.graph.batch import REBUILD_COUNTER


def make_problems(batch_size, horizon):
    A, B = inverted_pendulum()
    problems = []
    for i in range(batch_size):
        if i < batch_size // 2:
            q0 = np.zeros(4)  # already at the target: converges instantly
        else:
            q0 = np.full(4, 0.35) * (1 + i / batch_size)  # far out: grinds
        problems.append(MPCProblem(A=A, B=B, q0=q0, horizon=horizon))
    return problems


def main():
    batch_size = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    horizon = int(sys.argv[2]) if len(sys.argv) > 2 else 6
    shards = int(sys.argv[3]) if len(sys.argv) > 3 else 2

    problems = make_problems(batch_size, horizon)
    batch = build_batch(problems)
    print(f"uneven fleet of {batch_size} pendulum MPC instances, "
          f"horizon K={horizon}")

    kwargs = dict(max_iterations=150, check_every=5, init="zeros")
    plain = BatchedSolver(build_batch(problems), rho=10.0)
    ref = plain.solve_batch(**kwargs)

    # --- work-stealing solve: idle shards take load from the heaviest --- #
    solver = RebalancingShardedSolver(
        batch, num_shards=shards, mode="thread", rho=10.0, steal_threshold=2
    )
    print(solver.summary())
    got = solver.solve_batch(**kwargs)
    for ev in solver.steal_log:
        print(f"  steal @ iter {ev.iteration}: shard {ev.thief} took "
              f"instances {list(ev.instances)} from shard {ev.donor}")
    dev = max(float(np.max(np.abs(a.z - b.z))) for a, b in zip(got, ref))
    print(f"steals: {len(solver.steal_log)}   "
          f"max |dz| vs plain batched: {dev:.1e} (0 = bit-identical)")

    # --- live re-shard: repartition in place, state carried ------------- #
    solver.reshard(max(1, shards - 1))
    solver.initialize("zeros")
    plain.initialize("zeros")
    solver.iterate(40)
    plain.iterate(40)
    dev = float(np.max(np.abs(solver.fleet_z() - plain.state.z)))
    print(f"resharded live to {solver.num_shards} shard(s); after 40 more "
          f"sweeps max |dz| = {dev:.1e}")

    # --- incremental append: only the new blocks are built -------------- #
    before = REBUILD_COUNTER.snapshot()
    solver.add_instances(2)
    delta = REBUILD_COUNTER.instances_built - before["instances_built"]
    print(f"appended 2 cold instances -> B={solver.batch_size}; structural "
          f"builds: {delta} (O(k), not O(B)); rosters {solver.shard_rosters()}")

    solver.close()

    # --- zero-copy process shards + predictive stealing ----------------- #
    zc = RebalancingShardedSolver(
        build_batch(problems), num_shards=shards, mode="process",
        transport="shared", steal_policy="predictive", rho=10.0,
        steal_threshold=2,
    )
    got = zc.solve_batch(**kwargs)
    plain.initialize("zeros")
    ref = plain.solve_batch(**kwargs)
    dev = max(float(np.max(np.abs(a.z - b.z))) for a, b in zip(got, ref))
    stats = zc.transport_stats()
    print(f"process shards, shared transport, predictive steals: "
          f"max |dz| = {dev:.1e}")
    print(f"  queue iterate bytes: {stats['queue_state_bytes']} state / "
          f"{stats['queue_reply_bytes']} reply (zero-copy), shared-memory "
          f"push {stats['shared_push_bytes']} B over {stats['segments']} "
          f"segments, {stats['buffer_rebuilds']} buffer rebuilds")
    for ev in zc.steal_log:
        load = f", projected load {ev.moved_load:.1f}" if ev.moved_load else ""
        print(f"  steal @ iter {ev.iteration}: shard {ev.thief} took "
              f"{list(ev.instances)} from shard {ev.donor}{load}")
    zc.close()
    plain.close()


if __name__ == "__main__":
    main()
