"""The three-weight algorithm on circle packing (paper refs [9], [24]).

parADMM "can also implement" improved message-weight schemes: in the
three-weight algorithm each factor→variable message carries a certainty
weight — ∞ (certain), ρ (standard) or 0 (no opinion).  For packing, an
*inactive* collision or wall constraint abstains (weight 0), so the
z-average is driven by the constraints that actually bind plus the radius
reward — the scheme behind the record packings of [9]/[24].

Run:  python examples/three_weight_packing.py [N]
"""

import sys

import numpy as np

from repro.apps.packing import PackingProblem
from repro.backends.vectorized import ThreeWeightBackend, VectorizedBackend


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    p = PackingProblem(n)
    g = p.build_graph()
    print(f"packing {n} disks: standard ADMM weights vs three-weight ([9])\n")
    print(f"{'seed':>4} {'standard':>10} {'three-weight':>13}")
    wins = 0
    for seed in range(1, 7):
        coverages = {}
        for backend in (VectorizedBackend(), ThreeWeightBackend()):
            state = p.initial_state(g, rho=3.0, seed=seed)
            backend.run(g, state, 3000)
            centers, radii = p.extract(g, state.z)
            rep = p.validate(centers, radii)
            assert rep["feasible"], f"{backend.name} produced infeasible packing"
            coverages[backend.name] = rep["coverage"]
        std = coverages["vectorized"]
        twa = coverages["three_weight"]
        wins += twa >= std - 1e-9
        print(f"{seed:>4} {std:>10.4f} {twa:>13.4f}")
    print(f"\nthree-weight matched or beat standard weights on {wins}/6 seeds")
    print("(inactive constraints abstain from the z-average: weight 0)")


if __name__ == "__main__":
    main()
