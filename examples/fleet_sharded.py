"""Sharded + elastic fleet MPC: instance-block shards on parallel workers.

Builds a fleet of inverted-pendulum MPC instances, splits it into
contiguous instance-block shards (one forked vectorized worker per shard),
and verifies the sharded solve is numerically identical to the
single-process batched solve and to solo solves.  Then demonstrates the
elastic fleet pattern: devices leave and join between solves while the
survivors' iterates and duals are preserved bit-for-bit, and a warm-start
pool smaller than the fleet is cycled over the instances.

Run:  python examples/fleet_sharded.py [batch_size] [horizon] [shards]
"""

import sys
import time

import numpy as np

from repro import BatchedSolver, ShardedBatchedSolver
from repro.apps.mpc import MPCProblem, build_batch, inverted_pendulum
from repro.utils.rng import default_rng


def make_problems(batch_size, horizon, rng):
    A, B = inverted_pendulum()
    return [
        MPCProblem(A=A, B=B, q0=rng.uniform(-0.2, 0.2, size=4), horizon=horizon)
        for _ in range(batch_size)
    ]


def main():
    batch_size = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    horizon = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    shards = int(sys.argv[3]) if len(sys.argv) > 3 else 2
    iterations = 300

    rng = default_rng(7)
    problems = make_problems(batch_size, horizon, rng)
    batch = build_batch(problems)
    print(f"fleet of {batch_size} pendulum MPC instances, horizon K={horizon}")

    # --- single-process batched reference -------------------------------- #
    plain = BatchedSolver(build_batch(problems), rho=10.0)
    plain.initialize("zeros")
    t0 = time.perf_counter()
    plain.iterate(iterations)
    plain_s = time.perf_counter() - t0

    # --- sharded: one vectorized worker per instance block ---------------- #
    sharded = ShardedBatchedSolver(batch, num_shards=shards, mode="process", rho=10.0)
    print(sharded.summary())
    sharded.initialize("zeros")
    t0 = time.perf_counter()
    sharded.iterate(iterations)
    sharded_s = time.perf_counter() - t0

    dev = float(np.max(np.abs(sharded.fleet_z() - plain.state.z)))
    print(f"batched: {plain_s:.3f}s   sharded({shards}): {sharded_s:.3f}s   "
          f"shard speedup: {plain_s / sharded_s:.2f}x (needs >= 2 cores)")
    print(f"max |sharded - batched| over the fleet: {dev:.2e}")

    # --- elastic fleet: devices leave and join between solves ------------- #
    drop = list(range(0, batch_size, 4))
    survivors = [i for i in range(batch_size) if i not in drop]
    plain.remove_instances(drop)
    plain.iterate(iterations)
    plain.add_instances(len(drop))
    print(f"elastic: removed {len(drop)}, solved, re-added {len(drop)} cold "
          f"-> B={plain.batch_size}, fleet iteration {plain.state.iteration}")

    untouched = BatchedSolver(build_batch(problems), rho=10.0)
    untouched.initialize("zeros")
    untouched.iterate(2 * iterations)
    rows = plain.batch.split_z(plain.state.z)
    ref_rows = untouched.batch.split_z(untouched.state.z)
    surv_dev = max(
        float(np.max(np.abs(rows[j] - ref_rows[i])))
        for j, i in enumerate(survivors)
    )
    print(f"max |survivor - untouched fleet|: {surv_dev:.2e} (0 = bit-identical)")

    # --- warm-start pool smaller than the fleet is cycled ----------------- #
    pool = plain.batch.split_z(plain.state.z)[: max(2, batch_size // 4)]
    sharded.warm_start_pool(pool)
    print(f"warm-started {sharded.batch_size} instances from a pool of "
          f"{len(pool)} solutions (cycled)")

    sharded.close()
    plain.close()
    untouched.close()


if __name__ == "__main__":
    main()
