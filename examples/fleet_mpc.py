"""Fleet MPC: one batched ADMM sweep controlling many devices at once.

Builds B inverted-pendulum MPC instances that share the plant model but
start from different initial states, stacks them into one block-diagonal
factor graph, and solves the whole fleet with a single vectorized sweep —
the production-scale extension of the paper's fine-grained parallelism.
Verifies every instance against its individual solve and against the exact
sparse-KKT solution, then demonstrates the fleet-sized warm-start pattern.

Run:  python examples/fleet_mpc.py [batch_size] [horizon]
"""

import sys
import time

import numpy as np

from repro import ADMMSolver, BatchedSolver
from repro.apps.mpc import MPCProblem, build_batch, inverted_pendulum, solve_mpc_exact
from repro.utils.rng import default_rng


def main():
    batch_size = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    horizon = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    iterations = 3000

    rng = default_rng(7)
    A, B = inverted_pendulum()
    problems = [
        MPCProblem(A=A, B=B, q0=rng.uniform(-0.2, 0.2, size=4), horizon=horizon)
        for _ in range(batch_size)
    ]
    batch = build_batch(problems)
    print(f"fleet of {batch_size} pendulum MPC instances, horizon K={horizon}")
    print(batch.summary())
    print()

    # --- one sweep advances the whole fleet ----------------------------- #
    solver = BatchedSolver(batch, rho=10.0)
    t0 = time.perf_counter()
    results = solver.solve_batch(
        max_iterations=iterations, check_every=40, init="zeros"
    )
    batched_s = time.perf_counter() - t0

    # --- per-instance loop, for reference ------------------------------- #
    t0 = time.perf_counter()
    loop_z = []
    for problem in problems:
        single = ADMMSolver(problem.build_graph(), rho=10.0)
        loop_z.append(
            single.solve(
                max_iterations=iterations, check_every=40, init="zeros"
            ).z
        )
        single.close()
    loop_s = time.perf_counter() - t0

    max_dev = max(
        float(np.max(np.abs(r.z - z))) for r, z in zip(results, loop_z)
    )
    print(f"batched solve: {batched_s:.3f}s   per-instance loop: {loop_s:.3f}s")
    print(f"speedup: {loop_s / batched_s:.1f}x")
    print(f"max |batched - individual| over the fleet: {max_dev:.2e}")

    worst_exact = 0.0
    for problem, result in zip(problems, results):
        states, inputs = problem.extract(result.z)
        states_ex, _, _ = solve_mpc_exact(problem)
        worst_exact = max(worst_exact, float(np.max(np.abs(states - states_ex))))
    print(f"worst |state - exact KKT| over the fleet: {worst_exact:.2e}")

    # --- fleet warm start: re-solve from the previous solutions ---------- #
    solver.warm_start_pool(np.stack([r.z for r in results]))
    warm = solver.solve_batch(max_iterations=iterations, check_every=40, init="keep")
    print(
        f"warm-started re-solve: max {max(r.iterations for r in warm)} "
        f"iterations per instance (cold: {max(r.iterations for r in results)}); "
        f"all converged: {all(r.converged for r in warm)}"
    )
    solver.close()


if __name__ == "__main__":
    main()
