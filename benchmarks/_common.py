"""Shared machinery for the figure benchmarks.

Every figure bench combines two layers, as documented in DESIGN.md §2:

* **measured** — real wall-clock on this machine: the pure-Python serial
  backend (the paper's serial-C role) versus the vectorized NumPy engine
  (the GPU-analog role) and the threaded engine (the OpenMP role), at
  reduced problem sizes;
* **modeled** — the calibratable SIMT / multicore performance models at the
  paper's problem sizes (Tesla K40 vs. one Opteron core; 1–32 Opteron
  cores).

Tables are printed and appended to ``results/<bench>.txt``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.backends.serial import SerialBackend
from repro.backends.threaded import ThreadedBackend
from repro.backends.vectorized import VectorizedBackend
from repro.bench.harness import compare_backends
from repro.bench.reporting import SeriesTable
from repro.graph.factor_graph import FactorGraph
from repro.gpusim.cpumodel import simulate_admm_cpu, speedup_vs_cores
from repro.gpusim.device import OPTERON_6300, TESLA_K40
from repro.gpusim.workloads import admm_workloads, simulate_admm_gpu
from repro.utils.timing import UPDATE_KINDS

#: Iterations for measured runs (serial Python is the bottleneck).
SERIAL_ITERS = 2
FAST_ITERS = 10
#: Min-of-N repeats per timed region — a co-located load spike can slow a
#: repeat but never speed one up, so the min rejects outlier rows.
REPEATS = 3


def measured_gpu_table(
    title: str,
    graph_fn: Callable[[int], FactorGraph],
    sizes: Sequence[int],
    rho: float = 2.0,
) -> tuple[SeriesTable, list[dict]]:
    """Serial vs vectorized wall-clock sweep (Fig 7/10/13-left, measured)."""
    table = SeriesTable(
        title=title,
        columns=(
            "size",
            "elements",
            "serial s/iter",
            "vector s/iter",
            "speedup",
            "x",
            "m",
            "z",
            "u",
            "n",
        ),
    )
    rows = []
    for size in sizes:
        g = graph_fn(size)
        cmp = compare_backends(
            g,
            SerialBackend(),
            VectorizedBackend(),
            SERIAL_ITERS,
            FAST_ITERS,
            rho=rho,
            repeats=REPEATS,
        )
        ks = cmp.kernel_speedups()
        table.add_row(
            size,
            g.num_elements,
            cmp.baseline.seconds_per_iteration,
            cmp.accelerated.seconds_per_iteration,
            cmp.combined_speedup,
            *[ks[k] for k in UPDATE_KINDS],
        )
        rows.append(
            {
                "size": size,
                "elements": g.num_elements,
                "serial": cmp.baseline.seconds_per_iteration,
                "vector": cmp.accelerated.seconds_per_iteration,
                "speedup": cmp.combined_speedup,
                "kernels": ks,
                "serial_fractions": cmp.baseline.kernel_fractions(),
            }
        )
    table.add_note(
        "measured on this machine: pure-Python serial baseline vs vectorized "
        "NumPy engine (the GPU-analog), same iteration count"
    )
    return table, rows


def modeled_gpu_table(
    title: str,
    workloads_fn: Callable[[int], tuple[dict, int]],
    sizes: Sequence[int],
    ntb: int = 32,
) -> tuple[SeriesTable, list[dict]]:
    """K40-model sweep at paper scale (Fig 7/10/13, modeled).

    ``workloads_fn(size)`` returns ``(kernel workloads, element count)`` —
    usually one of the :mod:`repro.gpusim.synthetic` builders, so no graph
    is materialized at paper scale.
    """
    table = SeriesTable(
        title=title,
        columns=(
            "size",
            "elements",
            "1-core s/iter",
            "K40 s/iter",
            "speedup",
            "x",
            "m",
            "z",
            "u",
            "n",
            "x+z frac",
        ),
    )
    rows = []
    for size in sizes:
        wl, elements = workloads_fn(size)
        res = simulate_admm_gpu(TESLA_K40, None, OPTERON_6300, ntb=ntb, workloads=wl)
        sp = res.speedups()
        fr = res.fractions("gpu")
        table.add_row(
            size,
            elements,
            res.serial_iteration_s,
            res.gpu_iteration_s,
            res.combined_speedup,
            *[sp[k] for k in UPDATE_KINDS],
            fr["x"] + fr["z"],
        )
        rows.append(
            {"size": size, "speedup": res.combined_speedup, "kernels": sp, "result": res}
        )
    table.add_note(
        "SIMT performance model: Tesla K40 (ntb=32) vs one 2.8GHz Opteron core"
    )
    return table, rows


def measured_multicore_table(
    title: str,
    graph_fn: Callable[[int], FactorGraph],
    sizes: Sequence[int],
    workers: int = 2,
    rho: float = 2.0,
) -> tuple[SeriesTable, list[dict]]:
    """Serial vs threaded wall-clock sweep (Fig 8/11/14-left, measured)."""
    table = SeriesTable(
        title=title,
        columns=("size", "elements", "serial s/iter", "threads s/iter", "speedup"),
    )
    rows = []
    for size in sizes:
        g = graph_fn(size)
        backend = ThreadedBackend(num_workers=workers)
        try:
            cmp = compare_backends(
                g,
                VectorizedBackend(),
                backend,
                FAST_ITERS,
                FAST_ITERS,
                rho=rho,
                repeats=REPEATS,
            )
        finally:
            backend.close()
        table.add_row(
            size,
            g.num_elements,
            cmp.baseline.seconds_per_iteration,
            cmp.accelerated.seconds_per_iteration,
            cmp.combined_speedup,
        )
        rows.append({"size": size, "speedup": cmp.combined_speedup})
    table.add_note(
        f"measured: vectorized 1-thread baseline vs {workers}-thread chunked "
        "engine (OpenMP approach-1 analog; this container has 2 cores)"
    )
    return table, rows


def modeled_cores_table(
    title: str,
    workloads: dict,
    core_counts: Sequence[int] = (1, 2, 4, 8, 12, 16, 20, 24, 25, 28, 32),
) -> tuple[SeriesTable, dict[int, float]]:
    """Speedup-vs-cores curve (Fig 8/11/14-right, modeled Opteron)."""
    curve = speedup_vs_cores(OPTERON_6300, workloads, list(core_counts))
    table = SeriesTable(title=title, columns=("cores", "speedup"))
    for c, s in curve.items():
        table.add_row(c, s)
    table.add_note("multicore model: 32-core Opteron 6300, shared 51.2 GB/s bus")
    return table, curve


def one_iteration(backend, graph, state):
    """Callable for pytest-benchmark: one full ADMM sweep."""
    def run():
        backend.run(graph, state, 1)

    return run
