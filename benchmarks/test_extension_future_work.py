"""Extensions — the paper's future-work items, quantified.

Conclusion items 3 and 5: "extend the code to allow the use of multiple
GPUs" and "in many applications floating-point precision might be enough".
The multi-device model shards the flat layout over K40s with a PCIe-class
interconnect; the precision profile rescales compute/traffic for FP32.
Also: the randomized (asynchronous-style) ADMM of item 1, measured for
solution quality at equal work.
"""

import numpy as np
import pytest

from repro.backends.randomized import RandomizedBackend
from repro.backends.vectorized import VectorizedBackend
from repro.bench.reporting import SeriesTable, results_path
from repro.core.solver import ADMMSolver
from repro.apps.lasso import LassoProblem, make_lasso_data, solve_lasso_fista
from repro.gpusim.device import OPTERON_6300, TESLA_K40
from repro.gpusim.multidevice import scaling_curve
from repro.gpusim.precision import K40_FP32, with_precision
from repro.gpusim.synthetic import packing_workloads
from repro.gpusim.workloads import simulate_admm_gpu

PACK_N = 5000


@pytest.fixture(scope="module")
def extension_tables():
    out = results_path("extension_future_work.txt")
    wl, _ = packing_workloads(PACK_N)

    # --- multi-GPU scaling (future work #3) -------------------------- #
    curve = scaling_curve(
        TESLA_K40, OPTERON_6300, wl, device_counts=(1, 2, 4, 8)
    )
    t = SeriesTable(
        f"Extension (modeled) — packing N={PACK_N} sharded over K40s",
        ("gpus", "compute_s", "comm_s", "iter_s", "speedup vs 1 core"),
    )
    for d, r in curve.items():
        t.add_row(d, r.compute_s, r.comm_s, r.iteration_s, r.combined_speedup)
    t.emit(out)

    # --- FP32 what-if (future work #5) ---------------------------------- #
    fp64 = simulate_admm_gpu(TESLA_K40, None, OPTERON_6300, workloads=wl)
    fp32 = simulate_admm_gpu(
        TESLA_K40, None, OPTERON_6300, workloads=with_precision(wl, K40_FP32)
    )
    t2 = SeriesTable(
        "Extension (modeled) — FP64 vs FP32 on the K40 model",
        ("precision", "iter_s", "speedup vs fp64 1-core"),
    )
    # Both rows compare against the same fp64 serial baseline (the paper's
    # C code stays double precision).
    t2.add_row("fp64", fp64.gpu_iteration_s, fp64.combined_speedup)
    t2.add_row(
        "fp32",
        fp32.gpu_iteration_s,
        fp64.serial_iteration_s / fp32.gpu_iteration_s,
    )
    t2.emit(out)

    # --- randomized ADMM solution quality (future work #1) ------------- #
    A, y, _ = make_lasso_data(60, 20, seed=3)
    problem = LassoProblem(A, y, lam=0.05, n_blocks=4)
    graph = problem.build_graph()
    w_ref = solve_lasso_fista(A, y, 0.05)
    obj_ref = problem.objective(w_ref)
    t3 = SeriesTable(
        "Extension (measured) — randomized ADMM at equal expected work",
        ("fraction", "sweeps", "objective", "vs FISTA"),
    )
    quality = {}
    for fraction, sweeps in ((1.0, 2000), (0.5, 4000), (0.25, 8000)):
        solver = ADMMSolver(
            graph, backend=RandomizedBackend(fraction=fraction, seed=0)
        )
        res = solver.solve(
            max_iterations=sweeps, eps_abs=1e-12, eps_rel=1e-11, check_every=500
        )
        obj = problem.objective(res.variable(0))
        quality[fraction] = obj
        t3.add_row(fraction, sweeps, obj, obj - obj_ref)
    t3.emit(out)
    return curve, fp64, fp32, quality, obj_ref


def test_multi_gpu_scaling_monotone_until_comm(extension_tables):
    curve, *_ = extension_tables
    assert curve[2].combined_speedup > curve[1].combined_speedup
    # Communication grows with device count but stays sublinear here.
    assert curve[8].comm_s >= curve[2].comm_s


def test_fp32_faster_than_fp64(extension_tables):
    _, fp64, fp32, _, _ = extension_tables
    assert fp32.gpu_iteration_s < fp64.gpu_iteration_s
    # Against the common fp64 serial baseline, fp32 raises the speedup —
    # the paper's "TITAN X might bring additional GPU speedups" hypothesis.
    assert fp64.serial_iteration_s / fp32.gpu_iteration_s > fp64.combined_speedup


def test_randomized_matches_synchronous_quality(extension_tables):
    *_, quality, obj_ref = extension_tables
    for fraction, obj in quality.items():
        assert obj <= obj_ref * 1.05 + 1e-6, f"fraction={fraction}"


def test_benchmark_multi_gpu_model(benchmark, extension_tables):
    wl, _ = packing_workloads(500)

    def run():
        return scaling_curve(TESLA_K40, OPTERON_6300, wl, (1, 2, 4))

    curve = benchmark(run)
    assert curve[4].combined_speedup > 0


def test_benchmark_randomized_sweep(benchmark, extension_tables):
    from repro.bench.workloads import packing_graph
    from repro.core.state import ADMMState

    g = packing_graph(30)
    state = ADMMState(g, rho=3.0).init_random(0.1, 0.9, seed=0)
    backend = RandomizedBackend(fraction=0.5, seed=1)
    backend.prepare(g)
    benchmark.pedantic(
        lambda: backend.run(g, state, 1), rounds=10, iterations=3, warmup_rounds=1
    )
