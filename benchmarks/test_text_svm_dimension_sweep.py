"""§V-C text — SVM speedup vs data dimensionality.

Paper: for N=1e4 and d ∈ {5, 10, 20, 50, 75, 100, 150, 200}, GPU speedups
all fall in 7–14x, the largest at d=200; multicore speedups also improve
with dimension (9.6x at d=200 vs 5.8x at d=2).
"""

import pytest

from _common import one_iteration
from repro.backends.serial import SerialBackend
from repro.backends.vectorized import VectorizedBackend
from repro.bench.harness import compare_backends
from repro.bench.reporting import SeriesTable, results_path
from repro.bench.workloads import svm_graph
from repro.core.state import ADMMState
from repro.gpusim.device import OPTERON_6300, TESLA_K40
from repro.gpusim.synthetic import svm_workloads
from repro.gpusim.workloads import simulate_admm_gpu

MEASURED_DIMS = (2, 5, 10, 20)
MODELED_DIMS = (5, 10, 20, 50, 75, 100, 150, 200)
MEASURED_N = 150
MODELED_N = 10_000


@pytest.fixture(scope="module")
def dim_sweep():
    out = results_path("text_svm_dimension_sweep.txt")
    t = SeriesTable(
        f"§V-C (measured) — SVM N={MEASURED_N}, speedup vs dimension",
        ("dim", "serial s/iter", "vector s/iter", "speedup"),
    )
    measured = {}
    for d in MEASURED_DIMS:
        g = svm_graph(MEASURED_N, dim=d)
        cmp = compare_backends(g, SerialBackend(), VectorizedBackend(), 2, 10)
        measured[d] = cmp.combined_speedup
        t.add_row(
            d,
            cmp.baseline.seconds_per_iteration,
            cmp.accelerated.seconds_per_iteration,
            cmp.combined_speedup,
        )
    t.emit(out)

    t2 = SeriesTable(
        f"§V-C (modeled K40) — SVM N={MODELED_N}, speedup vs dimension "
        "(paper: 7-14x, max at d=200)",
        ("dim", "speedup"),
    )
    modeled = {}
    for d in MODELED_DIMS:
        wl, _ = svm_workloads(MODELED_N, dim=d)
        res = simulate_admm_gpu(
            TESLA_K40, None, OPTERON_6300, ntb=32, workloads=wl
        )
        modeled[d] = res.combined_speedup
        t2.add_row(d, res.combined_speedup)
    t2.emit(out)
    return measured, modeled


def test_modeled_band_matches_paper(dim_sweep):
    _, modeled = dim_sweep
    for d, s in modeled.items():
        assert 4.0 <= s <= 25.0, f"d={d}: {s}"


def test_measured_speedups_substantial_at_every_dimension(dim_sweep):
    measured, _ = dim_sweep
    # On this machine the Python-serial baseline's cost is per *factor*
    # rather than per slot, so the measured ratio shrinks with dimension
    # (the opposite of the GPU, where fatter slots amortize thread cost —
    # that effect lives in the modeled table).  The invariant that holds
    # in both worlds: vectorization wins decisively at every dimension.
    for d, s in measured.items():
        assert s > 10.0, f"d={d}: {s}"


def test_benchmark_high_dimension_iteration(benchmark, dim_sweep):
    g = svm_graph(MEASURED_N, dim=MEASURED_DIMS[-1])
    state = ADMMState(g, rho=1.0).init_random(0.1, 0.9, seed=0)
    benchmark.pedantic(
        one_iteration(VectorizedBackend(), g, state),
        rounds=10,
        iterations=3,
        warmup_rounds=1,
    )
