"""Fault-tolerant fleet — crash-recovery overhead and detection latency.

Acceptance bench for the supervision subsystem (ISSUE 6).  The gating
assertions are *equality and event counts*, never wall-clock (shared
runners can be 1-core): a solve that loses a worker to SIGKILL must end
bit-identical to the crash-free run, with the crash and restart in the
fault log; detection must come from liveness polling, bounded by one
``wait_timeout``.  Wall-clock for the clean vs faulted solve and the
measured detection latency are reported to ``results/fleet_faults.txt``
as advisory context.
"""

import time

import numpy as np

from repro.bench.reporting import SeriesTable, results_path
from repro.bench.workloads import mpc_fleet
from repro.core.batched import BatchedSolver
from repro.core.rebalance import RebalancingShardedSolver
from repro.core.supervision import WorkerPolicy
from repro.testing.faults import FaultInjector

FLEET_B = 8
FLEET_HORIZON = 6
POLICY = WorkerPolicy(
    heartbeat_interval=0.1,
    wait_timeout=10.0,
    poll_interval=0.1,
    max_restarts=2,
    backoff=0.02,
)


def test_crash_recovery_is_bit_identical_with_bounded_overhead():
    """Equality-gated: a SIGKILLed worker costs a replay, never accuracy."""
    kwargs = dict(max_iterations=80, check_every=5, init="zeros")
    with BatchedSolver(mpc_fleet(FLEET_B, horizon=FLEET_HORIZON), rho=10.0) as plain:
        t0 = time.perf_counter()
        ref = plain.solve_batch(**kwargs)
        clean_s = time.perf_counter() - t0

    injector = FaultInjector("kill:0@2")
    with RebalancingShardedSolver(
        mpc_fleet(FLEET_B, horizon=FLEET_HORIZON),
        num_shards=2,
        mode="process",
        rho=10.0,
        policy=POLICY,
        injector=injector,
    ) as solver:
        t0 = time.perf_counter()
        got = solver.solve_batch(**kwargs)
        faulted_s = time.perf_counter() - t0
        crashes = len(solver.fault_log.crashes)
        restarts = len(solver.fault_log.restarts)

    assert crashes == 1 and restarts == 1, "the scripted kill never struck"
    dev = max(float(np.max(np.abs(a.z - b.z))) for a, b in zip(got, ref))
    assert dev == 0.0, f"recovered solve diverged from crash-free: {dev}"

    table = SeriesTable(
        f"Crash recovery overhead — B={FLEET_B} MPC fleet "
        f"(K={FLEET_HORIZON}), one worker SIGKILLed mid-solve",
        ("path", "seconds", "crashes", "restarts"),
    )
    table.add_row("crash-free batched", clean_s, 0, 0)
    table.add_row("faulted + recovered (2 shards)", faulted_s, crashes, restarts)
    table.add_note(
        "gating assertions are bit-identity and the fault-log counts; "
        "seconds are advisory (recovery pays one fork + segment replay)"
    )
    table.emit(results_path("fleet_faults.txt"))


def test_detection_latency_is_polling_not_timeout():
    """A dead worker surfaces via is_alive() polls — well inside one
    wait_timeout even when that timeout is generous."""
    with RebalancingShardedSolver(
        mpc_fleet(4, horizon=FLEET_HORIZON),
        num_shards=2,
        mode="process",
        rho=10.0,
        policy=WorkerPolicy(
            heartbeat_interval=0.1, wait_timeout=60.0, poll_interval=0.1,
            max_restarts=1, backoff=0.0,
        ),
        injector=FaultInjector("kill:0@0"),
    ) as solver:
        solver.initialize("zeros")
        t0 = time.perf_counter()
        solver.iterate(1)
        recovered_s = time.perf_counter() - t0
        assert len(solver.fault_log.crashes) == 1

    # The hard bar is one wait_timeout (60 s here); polling should land
    # detection + restart + replay orders of magnitude sooner.
    assert recovered_s < 60.0, f"detection by timeout, not polling: {recovered_s:.1f}s"

    table = SeriesTable(
        "Dead-worker detection latency (wait_timeout=60s, poll=0.1s)",
        ("event", "seconds"),
    )
    table.add_row("SIGKILL -> detected + restarted + replayed", recovered_s)
    table.add_note("gated at < wait_timeout; the margin is advisory")
    table.emit(results_path("fleet_faults.txt"))
