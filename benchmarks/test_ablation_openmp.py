"""Ablation — the paper's two OpenMP schemes (Figure 4).

"We found the first approach [five parallel for-loops per iteration] to be
substantially faster" than the second [one persistent parallel region with
explicit barriers].  Both are implemented; this bench measures the ordering
on every application workload.
"""

import pytest

from _common import one_iteration
from repro.backends.persistent import PersistentWorkerBackend
from repro.backends.threaded import ThreadedBackend
from repro.bench.harness import measure_backend
from repro.bench.reporting import SeriesTable, results_path
from repro.bench.workloads import mpc_graph, packing_graph, svm_graph
from repro.core.state import ADMMState

CASES = [
    ("packing N=40", lambda: packing_graph(40)),
    ("mpc K=300", lambda: mpc_graph(300)),
    ("svm N=300", lambda: svm_graph(300)),
]
ITERS = 10


@pytest.fixture(scope="module")
def openmp_table():
    out = results_path("ablation_openmp.txt")
    t = SeriesTable(
        "Ablation (measured) — OpenMP approach 1 (parallel-for) vs "
        "approach 2 (persistent workers + barriers), s/iter",
        ("workload", "approach1", "approach2", "a2/a1"),
    )
    ratios = {}
    for name, gf in CASES:
        g = gf()
        b1 = ThreadedBackend(num_workers=2)
        try:
            m1 = measure_backend(g, b1, ITERS, repeats=3)
        finally:
            b1.close()
        m2 = measure_backend(g, PersistentWorkerBackend(num_workers=2), ITERS, repeats=3)
        r = m2.seconds_per_iteration / m1.seconds_per_iteration
        ratios[name] = r
        t.add_row(name, m1.seconds_per_iteration, m2.seconds_per_iteration, r)
    t.add_note("paper: approach 1 faster in all three problems")
    t.emit(out)
    return ratios


def test_results_recorded_for_all_workloads(openmp_table):
    assert len(openmp_table) == 3
    for name, r in openmp_table.items():
        assert r > 0


def test_persistent_not_dramatically_faster(openmp_table):
    # The paper found approach 1 faster everywhere; in Python the
    # per-iteration thread-spawn cost of approach 1 legitimately flips the
    # ordering, and on a loaded runner the measured ratio swings between
    # ~0.25 and ~0.75.  Assert only the order-of-magnitude sanity bound.
    for name, r in openmp_table.items():
        assert r > 0.1, f"{name}: persistent unexpectedly 10x faster"


def test_benchmark_approach1(benchmark, openmp_table):
    g = packing_graph(40)
    state = ADMMState(g, rho=3.0).init_random(0.1, 0.9, seed=0)
    backend = ThreadedBackend(num_workers=2)
    backend.prepare(g)
    try:
        benchmark.pedantic(
            one_iteration(backend, g, state), rounds=8, iterations=2, warmup_rounds=1
        )
    finally:
        backend.close()


def test_benchmark_approach2(benchmark, openmp_table):
    g = packing_graph(40)
    state = ADMMState(g, rho=3.0).init_random(0.1, 0.9, seed=0)
    backend = PersistentWorkerBackend(num_workers=2)
    benchmark.pedantic(
        lambda: backend.run(g, state, 2), rounds=5, iterations=1, warmup_rounds=1
    )
