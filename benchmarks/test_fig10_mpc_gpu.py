"""Figure 10 — MPC: GPU vs one CPU core.

Paper: up to 10x on the K40 for horizons up to K=1e5; time per 100
iterations linear in K; x/z are the slowest updates (59%+21% = 80% of
iteration time at K=1e5).
"""

import numpy as np
import pytest

from _common import measured_gpu_table, modeled_gpu_table, one_iteration
from repro.backends.serial import SerialBackend
from repro.backends.vectorized import VectorizedBackend
from repro.bench.reporting import results_path
from repro.bench.workloads import MPC_MEASURED_K, MPC_MODELED_K, mpc_graph
from repro.core.state import ADMMState
from repro.gpusim.synthetic import mpc_workloads

BENCH_K = MPC_MEASURED_K[-1]


@pytest.fixture(scope="module")
def fig10_sweep():
    out = results_path("fig10_mpc_gpu.txt")
    measured, mrows = measured_gpu_table(
        "Fig 10 (measured) — MPC, serial vs vectorized, time/iter vs K",
        mpc_graph,
        MPC_MEASURED_K,
        rho=10.0,
    )
    measured.emit(out)
    modeled, grows = modeled_gpu_table(
        "Fig 10 (modeled) — MPC on Tesla K40 model, paper scale",
        mpc_workloads,
        MPC_MODELED_K,
    )
    modeled.emit(out)
    return mrows, grows


def test_fig10_speedup_band(fig10_sweep):
    mrows, grows = fig10_sweep
    assert mrows[-1]["speedup"] > 2.0
    # Paper: up to 10x; model should land in that neighborhood at K=1e5.
    assert 5.0 <= grows[-1]["speedup"] <= 16.0


def test_fig10_time_linear_in_k(fig10_sweep):
    mrows, _ = fig10_sweep
    sizes = np.array([r["size"] for r in mrows], dtype=float)
    serial = np.array([r["serial"] for r in mrows])
    corr = np.corrcoef(sizes, serial)[0, 1]
    # Strong linearity; min-of-repeats timing still jitters a little on a
    # loaded 2-core container, hence 0.95 rather than a razor-thin 0.98.
    assert corr > 0.95


def test_fig10_xz_slowest_updates_modeled(fig10_sweep):
    _, grows = fig10_sweep
    res = grows[-1]["result"]
    fr = res.fractions("gpu")
    # Paper: x and z take 80% of GPU iteration time at K=1e5.
    assert fr["x"] + fr["z"] > 0.35
    sp = grows[-1]["kernels"]
    assert min(sp["x"], sp["z"]) <= min(sp["m"], sp["u"], sp["n"])


def test_benchmark_serial_iteration(benchmark, fig10_sweep):
    g = mpc_graph(BENCH_K)
    state = ADMMState(g, rho=10.0).init_random(0.1, 0.9, seed=0)
    benchmark.pedantic(
        one_iteration(SerialBackend(), g, state), rounds=3, iterations=1, warmup_rounds=1
    )


def test_benchmark_vectorized_iteration(benchmark, fig10_sweep):
    g = mpc_graph(BENCH_K)
    state = ADMMState(g, rho=10.0).init_random(0.1, 0.9, seed=0)
    benchmark.pedantic(
        one_iteration(VectorizedBackend(), g, state),
        rounds=10,
        iterations=3,
        warmup_rounds=1,
    )
