"""Ablation — memory layout: contiguous (coalesced) vs scattered groups.

Paper §III: "in an ideal scenario all threads in a thread-block are applying
the same PO map to blocks of variables in sequence.  In a less ideal
scenario, threads apply totally different POs to non-consecutive memory
positions."  We build the same packing problem twice — factor families added
contiguously vs round-robin interleaved — and compare the measured x-update
time (the interleaved build forces the gather path) plus the modeled
coalescing penalty.
"""

import numpy as np
import pytest

from repro.apps.packing import PackingProblem, triangle_region
from repro.backends.vectorized import VectorizedBackend
from repro.bench.reporting import SeriesTable, results_path
from repro.core.state import ADMMState
from repro.graph.builder import GraphBuilder
from repro.gpusim.device import TESLA_K40
from repro.gpusim.kernel import COALESCING, KernelWorkload
from repro.gpusim.simt import simulate_kernel
from repro.prox.packing import PairNoCollisionProx, RadiusRewardProx, WallProx
from repro.utils.timing import KernelTimers

N_DISKS = 30


def interleaved_packing_graph(n):
    """Same problem as PackingProblem.build_graph but families interleaved."""
    region = triangle_region()
    b = GraphBuilder()
    centers = [b.add_variable(2) for _ in range(n)]
    radii = [b.add_variable(1) for _ in range(n)]
    pair, wall, reward = PairNoCollisionProx(), WallProx(), RadiusRewardProx()
    pair_scopes = [
        (centers[i], radii[i], centers[j], radii[j])
        for i in range(n)
        for j in range(i + 1, n)
    ]
    wall_scopes = [
        ((centers[i], radii[i]), s)
        for i in range(n)
        for s in range(region.num_walls)
    ]
    reward_scopes = [(radii[i],) for i in range(n)]
    # Round-robin interleave the three families.
    k = max(len(pair_scopes), len(wall_scopes), len(reward_scopes))
    for idx in range(k):
        if idx < len(pair_scopes):
            b.add_factor(pair, pair_scopes[idx])
        if idx < len(wall_scopes):
            scope, s = wall_scopes[idx]
            b.add_factor(
                wall, scope, params={"Q": region.normals[s], "V": region.points[s]}
            )
        if idx < len(reward_scopes):
            b.add_factor(reward, reward_scopes[idx])
    return b.build()


@pytest.fixture(scope="module")
def layout_results():
    out = results_path("ablation_layout.txt")
    g_cont = PackingProblem(N_DISKS).build_graph()
    g_int = interleaved_packing_graph(N_DISKS)
    assert g_cont.num_edges == g_int.num_edges

    def x_seconds(g):
        state = ADMMState(g, rho=3.0).init_random(0.1, 0.9, seed=0)
        timers = KernelTimers()
        VectorizedBackend().run(g, state, 20, timers)
        return timers["x"].elapsed / 20

    cont_s = x_seconds(g_cont)
    int_s = x_seconds(g_int)
    t = SeriesTable(
        f"Ablation (measured) — packing N={N_DISKS} x-update, layout effect",
        ("layout", "contiguous groups", "x s/iter"),
    )
    t.add_row("family-major", all(gr.contiguous for gr in g_cont.groups), cont_s)
    t.add_row("interleaved", all(gr.contiguous for gr in g_int.groups), int_s)
    t.emit(out)

    # Modeled coalescing penalty on an identical compute workload.
    cycles = np.full(20000, 300.0)
    bpi = np.full(20000, 128.0)
    coal = simulate_kernel(
        TESLA_K40, KernelWorkload("x", cycles, bpi, access="contiguous"), 32
    )
    gath = simulate_kernel(
        TESLA_K40, KernelWorkload("x", cycles, bpi, access="gathered"), 32
    )
    t2 = SeriesTable(
        "Ablation (modeled K40) — identical kernel, coalesced vs gathered",
        ("access", "time_s", "memory_s"),
    )
    t2.add_row("contiguous", coal.time_s, coal.memory_s)
    t2.add_row("gathered", gath.time_s, gath.memory_s)
    t2.emit(out)
    return g_cont, g_int, cont_s, int_s, coal, gath


def test_contiguous_build_detected(layout_results):
    g_cont, g_int, *_ = layout_results
    assert all(gr.contiguous for gr in g_cont.groups)
    assert not all(gr.contiguous for gr in g_int.groups)


def test_layouts_compute_identical_iterates(layout_results):
    g_cont, g_int, *_ = layout_results
    # Same math, different memory order: z must match after reordering.
    s1 = ADMMState(g_cont, rho=3.0).init_from_z(np.linspace(0, 1, g_cont.z_size))
    s2 = ADMMState(g_int, rho=3.0).init_from_z(np.linspace(0, 1, g_int.z_size))
    VectorizedBackend().run(g_cont, s1, 5)
    VectorizedBackend().run(g_int, s2, 5)
    np.testing.assert_allclose(s1.z, s2.z, atol=1e-10)


def test_modeled_gather_penalty(layout_results):
    *_, coal, gath = layout_results
    assert gath.memory_s > coal.memory_s
    ratio = COALESCING["contiguous"] / COALESCING["gathered"]
    assert gath.memory_s == pytest.approx(coal.memory_s * ratio, rel=1e-6)


def test_benchmark_contiguous_x_update(benchmark, layout_results):
    g_cont, *_ = layout_results
    state = ADMMState(g_cont, rho=3.0).init_random(0.1, 0.9, seed=1)
    from repro.core import updates

    benchmark.pedantic(
        lambda: updates.x_update(g_cont, state), rounds=10, iterations=3
    )


def test_benchmark_interleaved_x_update(benchmark, layout_results):
    _, g_int, *_ = layout_results
    state = ADMMState(g_int, rho=3.0).init_random(0.1, 0.9, seed=1)
    from repro.core import updates

    benchmark.pedantic(
        lambda: updates.x_update(g_int, state), rounds=10, iterations=3
    )
