"""Fleet batching — batched multi-instance solving vs a per-instance loop.

Acceptance bench for the batching subsystem: at B=64 MPC instances the
single block-diagonal sweep must beat looping the vectorized engine over
the instances by >= 3x wall clock (measured here at ~20-30x: the loop pays
Python/NumPy dispatch per tiny instance, the batch pays it once per
kernel), while producing numerically identical per-instance iterates.
"""

import numpy as np
import pytest

from _common import one_iteration
from repro.bench.harness import time_fleet_batched, time_fleet_loop
from repro.bench.reporting import SeriesTable, results_path
from repro.bench.workloads import mpc_fleet, mpc_fleet_problems
from repro.core.batched import BatchedSolver
from repro.core.solver import ADMMSolver

FLEET_B = 64
FLEET_HORIZON = 8
FLEET_ITERS = 30


@pytest.fixture(scope="module")
def fleet_sweep():
    out = results_path("fleet_batch.txt")
    table = SeriesTable(
        f"Fleet batching — B x MPC(K={FLEET_HORIZON}), batched sweep vs "
        f"per-instance loop, {FLEET_ITERS} iterations",
        ("B", "elements", "loop s", "batched s", "speedup"),
    )
    rows = {}
    for B in (4, 16, FLEET_B):
        batch = mpc_fleet(B, horizon=FLEET_HORIZON)
        loop_s = time_fleet_loop(batch.template, B, FLEET_ITERS)
        batched_s = time_fleet_batched(batch, FLEET_ITERS)
        speedup = loop_s / batched_s if batched_s > 0 else float("inf")
        table.add_row(B, batch.graph.num_elements, loop_s, batched_s, speedup)
        rows[B] = speedup
    table.add_note(
        "loop: one vectorized ADMMSolver re-initialized per instance; "
        "batched: one BatchedSolver sweep over the block-diagonal graph"
    )
    table.emit(out)
    return rows


def test_fleet_speedup_at_b64(fleet_sweep):
    """Acceptance: batched >= 3x over the per-instance loop at B=64."""
    assert fleet_sweep[FLEET_B] >= 3.0, (
        f"batched fleet speedup {fleet_sweep[FLEET_B]:.2f}x < 3x at B={FLEET_B}"
    )


def test_fleet_speedup_grows_with_batch(fleet_sweep):
    assert fleet_sweep[FLEET_B] > fleet_sweep[4]


def test_fleet_solutions_match_individual():
    """The speedup is free: batched iterates == per-instance iterates."""
    batch = mpc_fleet(FLEET_B, horizon=FLEET_HORIZON)
    problems = mpc_fleet_problems(FLEET_B, horizon=FLEET_HORIZON)
    solver = BatchedSolver(batch, rho=10.0)
    solver.initialize("zeros")
    solver.iterate(FLEET_ITERS)
    z_rows = batch.split_z(solver.state.z)
    # Spot-check a handful of instances against solo solves (all 64 solo
    # graphs would dominate the bench's runtime without adding coverage).
    for i in (0, 17, FLEET_B - 1):
        solo = ADMMSolver(problems[i].build_graph(), rho=10.0)
        solo.initialize("zeros")
        solo.iterate(FLEET_ITERS)
        np.testing.assert_allclose(z_rows[i], solo.state.z, atol=1e-8)


def test_benchmark_batched_fleet_iteration(benchmark):
    batch = mpc_fleet(FLEET_B, horizon=FLEET_HORIZON)
    solver = BatchedSolver(batch, rho=10.0)
    solver.initialize("zeros")
    state = solver.state
    from repro.backends.vectorized import VectorizedBackend

    backend = VectorizedBackend()
    backend.prepare(batch.graph)
    benchmark.pedantic(
        one_iteration(backend, batch.graph, state),
        rounds=10,
        iterations=3,
        warmup_rounds=1,
    )
