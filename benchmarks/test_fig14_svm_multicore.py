"""Figure 14 — SVM: multiple CPU cores.

Paper: up to 5.8x with 32 cores at N=7.5e4; z relatively easy to speed up
(6.2x), m hard (2.6x); higher dimensions parallelize better (9.6x at d=200).
"""

import pytest

from _common import (
    measured_multicore_table,
    modeled_cores_table,
    one_iteration,
)
from repro.backends.threaded import ThreadedBackend
from repro.bench.reporting import results_path
from repro.bench.workloads import SVM_MULTICORE_N, svm_graph
from repro.core.state import ADMMState
from repro.gpusim.cpumodel import speedup_vs_cores
from repro.gpusim.device import OPTERON_6300
from repro.gpusim.synthetic import svm_workloads

BENCH_N = SVM_MULTICORE_N[-1]
MODEL_N = 75_000  # the paper's Fig 14-right size


@pytest.fixture(scope="module")
def fig14_sweep():
    out = results_path("fig14_svm_multicore.txt")
    measured, mrows = measured_multicore_table(
        "Fig 14-left (measured) — SVM, 1 vs 2 threads",
        svm_graph,
        SVM_MULTICORE_N,
        workers=2,
        rho=1.0,
    )
    measured.emit(out)
    modeled, curve = modeled_cores_table(
        f"Fig 14-right (modeled) — SVM N={MODEL_N}, speedup vs cores",
        svm_workloads(MODEL_N)[0],
    )
    modeled.emit(out)
    return mrows, curve


def test_fig14_modeled_band(fig14_sweep):
    _, curve = fig14_sweep
    peak = max(curve.values())
    # Paper: up to 5.8x with 32 cores.
    assert 3.0 < peak < 10.0


def test_fig14_higher_dimension_parallelizes_better():
    """Paper: d=200 gives 9.6x vs 5.8x at d=2 (more compute per byte)."""
    lo = speedup_vs_cores(OPTERON_6300, svm_workloads(10_000, dim=2)[0], [32])[32]
    hi = speedup_vs_cores(OPTERON_6300, svm_workloads(10_000, dim=200)[0], [32])[32]
    assert hi > lo


def test_benchmark_threaded_iteration(benchmark, fig14_sweep):
    g = svm_graph(BENCH_N)
    state = ADMMState(g, rho=1.0).init_random(0.1, 0.9, seed=0)
    backend = ThreadedBackend(num_workers=2)
    backend.prepare(g)
    try:
        benchmark.pedantic(
            one_iteration(backend, g, state), rounds=10, iterations=3, warmup_rounds=1
        )
    finally:
        backend.close()
