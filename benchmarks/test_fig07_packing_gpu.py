"""Figure 7 — packing: GPU vs one CPU core.

Paper: combined speedup grows with N to >16x on a Tesla K40 (left panel);
per-update speedups with x/z hardest (right panel); time per 10 iterations
linear in the element count.  Reproduced as (a) a measured sweep — pure-
Python serial baseline vs the vectorized engine — and (b) the K40 SIMT model
at paper scale; benchmark cases time one iteration of each engine at the
largest measured size.
"""

import numpy as np
import pytest

from _common import (
    measured_gpu_table,
    modeled_gpu_table,
    one_iteration,
)
from repro.backends.serial import SerialBackend
from repro.backends.vectorized import VectorizedBackend
from repro.bench.reporting import results_path
from repro.bench.workloads import (
    PACKING_MEASURED_N,
    PACKING_MODELED_N,
    packing_graph,
)
from repro.core.state import ADMMState
from repro.gpusim.synthetic import packing_workloads

BENCH_N = PACKING_MEASURED_N[-1]


@pytest.fixture(scope="module")
def fig7_sweep():
    out = results_path("fig07_packing_gpu.txt")
    measured, mrows = measured_gpu_table(
        "Fig 7 (measured) — packing, serial vs vectorized, time/iter vs N",
        packing_graph,
        PACKING_MEASURED_N,
        rho=3.0,
    )
    measured.emit(out)
    modeled, grows = modeled_gpu_table(
        "Fig 7 (modeled) — packing on Tesla K40 model, paper scale",
        packing_workloads,
        PACKING_MODELED_N,
    )
    modeled.emit(out)
    return mrows, grows


def test_fig07_shape_speedup_grows_with_n(fig7_sweep):
    mrows, grows = fig7_sweep
    speeds = [r["speedup"] for r in mrows]
    # Larger graphs amortize per-call overhead: the largest size must beat
    # the smallest clearly (paper: monotone growth then saturation).
    assert speeds[-1] > speeds[0]
    assert speeds[-1] > 3.0
    # Modeled curve saturates in the paper's band (16x at N=5000, ±).
    assert 8.0 <= grows[-1]["speedup"] <= 25.0


def test_fig07_time_linear_in_elements(fig7_sweep):
    mrows, _ = fig7_sweep
    elements = np.array([r["elements"] for r in mrows], dtype=float)
    serial = np.array([r["serial"] for r in mrows])
    # Time per iteration ~ linear in element count: correlation near 1.
    corr = np.corrcoef(elements, serial)[0, 1]
    assert corr > 0.98


def test_fig07_xz_dominate_serial_time(fig7_sweep):
    mrows, _ = fig7_sweep
    fr = mrows[-1]["serial_fractions"]
    # Paper: x+z = 71% of the per-iteration time for large packing.
    assert fr["x"] + fr["z"] > 0.5


def test_benchmark_serial_iteration(benchmark, fig7_sweep):
    g = packing_graph(BENCH_N)
    state = ADMMState(g, rho=3.0).init_random(0.1, 0.9, seed=0)
    benchmark.pedantic(
        one_iteration(SerialBackend(), g, state), rounds=3, iterations=1, warmup_rounds=1
    )


def test_benchmark_vectorized_iteration(benchmark, fig7_sweep):
    g = packing_graph(BENCH_N)
    state = ADMMState(g, rho=3.0).init_random(0.1, 0.9, seed=0)
    backend = VectorizedBackend()
    benchmark.pedantic(
        one_iteration(backend, g, state), rounds=10, iterations=3, warmup_rounds=1
    )
