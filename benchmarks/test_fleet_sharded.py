"""Sharded fleet — instance-block shards on parallel workers vs one process.

Acceptance bench for the sharding subsystem: at B=64 MPC instances the
process-mode :class:`ShardedBatchedSolver` must beat the single-process
``BatchedSolver`` sweep by >= 1.5x wall clock on a multicore host (each
shard runs the same vectorized block-diagonal sweep on 1/S of the fleet,
concurrently on its own core), while producing bit-identical per-instance
iterates.  The speedup assertion is skipped on single-core hosts — there
is no parallel hardware to win on — and runs non-blocking in CI (shared
runners gate nothing on wall clock).
"""

import os

import numpy as np
import pytest

from repro.bench.harness import time_fleet_batched, time_fleet_sharded
from repro.bench.reporting import SeriesTable, results_path
from repro.bench.workloads import mpc_fleet
from repro.core.batched import BatchedSolver
from repro.core.sharded import ShardedBatchedSolver

FLEET_B = 64
FLEET_HORIZON = 8
FLEET_ITERS = 30
SHARD_COUNTS = (2, 4)


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def sharded_sweep():
    out = results_path("fleet_sharded.txt")
    table = SeriesTable(
        f"Sharded fleet — B={FLEET_B} x MPC(K={FLEET_HORIZON}), process-mode "
        f"shards vs single-process batched sweep, {FLEET_ITERS} iterations "
        f"({usable_cores()} usable cores)",
        ("shards", "batched s", "sharded s", "speedup"),
    )
    batch = mpc_fleet(FLEET_B, horizon=FLEET_HORIZON)
    batched_s = time_fleet_batched(batch, FLEET_ITERS)
    speedups = {}
    for shards in SHARD_COUNTS:
        sharded_s = time_fleet_sharded(batch, FLEET_ITERS, shards, mode="process")
        speedup = batched_s / sharded_s if sharded_s > 0 else float("inf")
        table.add_row(shards, batched_s, sharded_s, speedup)
        speedups[shards] = speedup
    table.add_note(
        "sharded: one forked worker per shard running the vectorized sweep "
        "on its contiguous instance block; speedup needs >= 2 cores"
    )
    table.emit(out)
    return speedups


def test_sharded_iterates_match_batched():
    """Sharding is free: shard iterates == single-process batched iterates."""
    batch = mpc_fleet(FLEET_B, horizon=FLEET_HORIZON)
    plain = BatchedSolver(batch, rho=10.0)
    plain.initialize("zeros")
    plain.iterate(5)
    sharded = ShardedBatchedSolver(
        mpc_fleet(FLEET_B, horizon=FLEET_HORIZON),
        num_shards=4,
        mode="process",
        rho=10.0,
    )
    sharded.initialize("zeros")
    sharded.iterate(5)
    np.testing.assert_allclose(sharded.fleet_z(), plain.state.z, atol=1e-10)
    sharded.close()
    plain.close()


def test_sharded_sweep_recorded(sharded_sweep):
    """The sweep always runs and lands in results/ (the CI artifact)."""
    assert all(s > 0 for s in sharded_sweep.values())
    assert os.path.exists(results_path("fleet_sharded.txt"))


@pytest.mark.skipif(
    usable_cores() < 2,
    reason="sharded speedup needs parallel hardware; host has one usable core",
)
def test_sharded_speedup_at_b64(sharded_sweep):
    """Acceptance: sharded fleet >= 1.5x over single-process batched at B=64."""
    best = max(sharded_sweep.values())
    assert best >= 1.5, (
        f"sharded fleet speedup {best:.2f}x < 1.5x at B={FLEET_B} "
        f"(per-shard: {sharded_sweep})"
    )
