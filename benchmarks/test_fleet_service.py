"""Fleet service — streaming SLOs with bit-identical per-request results.

Acceptance bench for the service layer (ISSUE 7).  The gating assertions
are **equality and accounting**, not wall-clock (shared runners can be
1-core): every request of a seeded 64-request open-loop Poisson trace
must come back bit-identical (1e-10) to a dedicated ``BatchedSolver``
solve of that request, and the latency percentiles must be internally
consistent.  p50/p95/p99 latency and sustained instances/sec are checked
against the tolerance-banded per-host baseline
(:mod:`repro.bench.baseline` — loose "default" bands gate only on
order-of-magnitude collapse) and reported to
``results/fleet_service.txt`` as the artifact CI uploads.
"""

import numpy as np

from repro.apps.mpc import MPCProblem, build_batch, inverted_pendulum
from repro.bench.baseline import check_performance, reference_for
from repro.bench.reporting import SeriesTable, results_path
from repro.core.batched import BatchedSolver
from repro.core.service import FleetService
from repro.graph.batch import replicate_graph
from repro.testing.traffic import poisson_trace, replay

REQUESTS = 64
HORIZON = 8
ANCHOR = 2 * HORIZON + 1
RHO = 10.0
CHECK = 10
CAP = 200
RATE = 2.0
SEED = 0


def _template():
    A, B = inverted_pendulum()
    return build_batch(
        [MPCProblem(A=A, B=B, q0=np.zeros(4), horizon=HORIZON)]
    ).template


def _make_params(rng, i):
    return {ANCHOR: {"c": rng.uniform(-0.2, 0.2, 4)}}


def test_service_trace_bit_identical_with_slo_report():
    template = _template()
    trace = poisson_trace(REQUESTS, rate=RATE, seed=SEED, make_params=_make_params)
    with FleetService(
        template,
        rho=RHO,
        num_shards=2,
        mode="thread",
        check_every=CHECK,
        max_iterations=CAP,
    ) as service:
        results = replay(service, trace)
        stats = service.stats()

    assert stats.completed == REQUESTS
    assert 0 <= stats.p50_latency <= stats.p95_latency <= stats.p99_latency

    worst = 0.0
    for rid in range(REQUESTS):
        solo_batch = replicate_graph(template, 1, [dict(trace[rid].params)])
        with BatchedSolver(solo_batch, rho=RHO) as solo:
            ref = solo.solve_batch(
                max_iterations=CAP, check_every=CHECK, init="zeros"
            )[0]
        worst = max(worst, float(np.max(np.abs(ref.z - results[rid].result.z))))
    assert worst <= 1e-10, (
        f"service results deviate from solo solves (max |dz| = {worst:.3e})"
    )

    host, reference = reference_for()
    checks = check_performance(
        {
            "instances_per_sec": stats.instances_per_sec,
            "p50_latency": stats.p50_latency,
            "p99_latency": stats.p99_latency,
        },
        reference,
    )

    table = SeriesTable(
        f"Fleet service bench — {REQUESTS} Poisson requests (rate {RATE}"
        f"/segment, seed {SEED}), horizon {HORIZON}, check_every {CHECK}",
        ("metric", "value", "unit"),
    )
    table.add_row("completed", stats.completed, "requests")
    table.add_row("p50 latency", stats.p50_latency, "s")
    table.add_row("p95 latency", stats.p95_latency, "s")
    table.add_row("p99 latency", stats.p99_latency, "s")
    table.add_row("throughput", stats.instances_per_sec, "inst/s")
    table.add_row("segments", stats.segments, "")
    table.add_row("max |dz| vs solo", worst, "")
    table.add_note(f"baseline host: {host}")
    for c in checks:
        table.add_note(f"  {c.summary()}")
    table.emit(results_path("fleet_service.txt"))

    # Baseline bands are the perf gate; the loose default entry only
    # fails on order-of-magnitude collapse, curated hosts get tight bands.
    bad = [c.summary() for c in checks if not c.ok]
    assert not bad, f"baseline band violations: {bad}"
