"""Figure 11 — MPC: multiple CPU cores.

Paper: best ~5x using 25 cores; beyond that "the performance actually gets
hurt"; m/u/n dominate the multicore iteration (60% combined at K=1e5).
"""

import pytest

from _common import (
    measured_multicore_table,
    modeled_cores_table,
    one_iteration,
)
from repro.backends.threaded import ThreadedBackend
from repro.bench.reporting import results_path
from repro.bench.workloads import MPC_MULTICORE_K, mpc_graph
from repro.core.state import ADMMState
from repro.gpusim.cpumodel import simulate_admm_cpu
from repro.gpusim.device import OPTERON_6300
from repro.gpusim.synthetic import mpc_workloads

BENCH_K = MPC_MULTICORE_K[-1]
MODEL_K = 100_000  # the paper's Fig 11-right size


@pytest.fixture(scope="module")
def fig11_sweep():
    out = results_path("fig11_mpc_multicore.txt")
    measured, mrows = measured_multicore_table(
        "Fig 11-left (measured) — MPC, 1 vs 2 threads",
        mpc_graph,
        MPC_MULTICORE_K,
        workers=2,
        rho=10.0,
    )
    measured.emit(out)
    modeled, curve = modeled_cores_table(
        f"Fig 11-right (modeled) — MPC K={MODEL_K}, speedup vs cores",
        mpc_workloads(MODEL_K)[0],
    )
    modeled.emit(out)
    return mrows, curve


def test_fig11_modeled_peak_then_decline(fig11_sweep):
    _, curve = fig11_sweep
    peak_cores = max(curve, key=curve.get)
    # Paper: peak before the full 32 cores, decline after.
    assert peak_cores < 32
    assert curve[32] < curve[peak_cores]
    assert 3.0 < curve[peak_cores] < 10.0


def test_fig11_modeled_mun_dominate_multicore(fig11_sweep):
    res = simulate_admm_cpu(OPTERON_6300, mpc_workloads(MODEL_K)[0], 25)
    fr = res.fractions()
    # Paper: m+u+n = 60% of multicore iteration time.
    assert fr["m"] + fr["u"] + fr["n"] > 0.4


def test_benchmark_threaded_iteration(benchmark, fig11_sweep):
    g = mpc_graph(BENCH_K)
    state = ADMMState(g, rho=10.0).init_random(0.1, 0.9, seed=0)
    backend = ThreadedBackend(num_workers=2)
    backend.prepare(g)
    try:
        benchmark.pedantic(
            one_iteration(backend, g, state), rounds=10, iterations=3, warmup_rounds=1
        )
    finally:
        backend.close()
