"""Figure 8 — packing: multiple CPU cores vs a single core.

Paper: up to 9x with 32 Opteron cores, peaking near N=2500 and dropping to
~6x for larger problems (left); speedup vs core count saturates (right).
Reproduced as (a) a measured 2-worker threaded sweep on this container and
(b) the multicore model's speedup-vs-cores curve at N=5000 workload shape.
"""

import pytest

from _common import (
    measured_multicore_table,
    modeled_cores_table,
    one_iteration,
)
from repro.backends.threaded import ThreadedBackend
from repro.bench.reporting import results_path
from repro.bench.workloads import PACKING_MULTICORE_N, packing_graph
from repro.core.state import ADMMState
from repro.gpusim.synthetic import packing_workloads

BENCH_N = PACKING_MULTICORE_N[-1]
MODEL_N = 5000  # the paper's Fig 8-right size


@pytest.fixture(scope="module")
def fig8_sweep():
    out = results_path("fig08_packing_multicore.txt")
    measured, mrows = measured_multicore_table(
        "Fig 8-left (measured) — packing, 1 vs 2 threads",
        packing_graph,
        PACKING_MULTICORE_N,
        workers=2,
        rho=3.0,
    )
    measured.emit(out)
    modeled, curve = modeled_cores_table(
        f"Fig 8-right (modeled) — packing N={MODEL_N}, speedup vs cores",
        packing_workloads(MODEL_N)[0],
    )
    modeled.emit(out)
    return mrows, curve


def test_fig08_modeled_curve_shape(fig8_sweep):
    _, curve = fig8_sweep
    assert curve[1] == pytest.approx(1.0, abs=1e-9)
    assert curve[2] > 1.5
    # Paper band: multicore peaks in 5-9x and saturates.
    peak = max(curve.values())
    assert 4.0 < peak < 12.0
    # Saturation: going 16 -> 32 cores gains little or hurts.
    assert curve[32] < curve[16] * 1.15


def test_fig08_measured_threads_win_on_large_graphs(fig8_sweep):
    mrows, _ = fig8_sweep
    # Past the dispatch-overhead crossover (~1e5 slots), two threads reach
    # parity and beyond (1.4-1.7x on an idle container, ~0.95x under heavy
    # co-located load — the threshold tolerates the latter).
    assert mrows[-1]["speedup"] > 0.8
    # The robust claim is directional: speedup improves with size.  (An
    # idle container shows 2-7x improvement end to end, but co-located
    # load inflates the small-graph ratio, so assert only the ordering.)
    assert mrows[-1]["speedup"] > mrows[0]["speedup"]


def test_benchmark_threaded_iteration(benchmark, fig8_sweep):
    g = packing_graph(BENCH_N)
    state = ADMMState(g, rho=3.0).init_random(0.1, 0.9, seed=0)
    backend = ThreadedBackend(num_workers=2)
    backend.prepare(g)
    try:
        benchmark.pedantic(
            one_iteration(backend, g, state), rounds=10, iterations=3, warmup_rounds=1
        )
    finally:
        backend.close()
