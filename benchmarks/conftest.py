"""Benchmark-session configuration.

Each figure bench writes its paper-style series to ``results/<name>.txt``
(pytest captures stdout; the files survive).  This conftest clears the
results directory once per session so reruns don't append duplicates.
"""

from __future__ import annotations

import os
import shutil

import pytest

from repro.bench.reporting import results_path


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_dir():
    root = os.path.dirname(results_path("x"))
    os.makedirs(root, exist_ok=True)
    for name in os.listdir(root):
        if name.endswith(".txt"):
            os.unlink(os.path.join(root, name))
    yield
