"""Benchmark-session configuration.

Each figure bench writes its paper-style series to ``results/<name>.txt``
(pytest captures stdout; the files survive).  ``SeriesTable.emit``
truncates each report on its first write per process, so reruns replace
their own files without this conftest having to clear the directory —
a partial run (``pytest -x`` stopping early, or a single bench module)
must never delete committed artifacts it does not regenerate.

``benchmarks/`` is a package (see ``__init__.py``) so its modules don't
collide with same-basename files under ``tests/`` when one pytest run
collects both directories; the path insert below keeps the historical
``from _common import ...`` spelling working inside the package.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import pytest

from repro.bench.reporting import results_path


@pytest.fixture(scope="session", autouse=True)
def _results_dir_exists():
    os.makedirs(os.path.dirname(results_path("x")), exist_ok=True)
    yield
