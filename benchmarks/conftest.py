"""Benchmark-session configuration.

Each figure bench writes its paper-style series to ``results/<name>.txt``
(pytest captures stdout; the files survive).  This conftest clears the
results directory once per session so reruns don't append duplicates.

``benchmarks/`` is a package (see ``__init__.py``) so its modules don't
collide with same-basename files under ``tests/`` when one pytest run
collects both directories; the path insert below keeps the historical
``from _common import ...`` spelling working inside the package.
"""

from __future__ import annotations

import os
import shutil
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import pytest

from repro.bench.reporting import results_path


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_dir():
    root = os.path.dirname(results_path("x"))
    os.makedirs(root, exist_ok=True)
    for name in os.listdir(root):
        if name.endswith(".txt"):
            os.unlink(os.path.join(root, name))
    yield
