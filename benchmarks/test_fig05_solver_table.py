"""Figure 5 — the solver-landscape capability table.

Static data, regenerated and re-asserted: no open-source solver in the
paper's survey exploits parallelism, which motivates parADMM's existence.
The benchmark case times table construction (trivially fast — it exists so
this experiment appears in the ``--benchmark-only`` run like every other).
"""

import pytest

from repro.bench.reporting import results_path
from repro.bench.solver_table import build_table, open_source_parallel_count


@pytest.fixture(scope="module")
def emitted_table():
    table = build_table(include_paradmm=True)
    table.emit(results_path("fig05_solver_table.txt"))
    return table


def test_fig05_solver_table(benchmark, emitted_table):
    table = benchmark(lambda: build_table(include_paradmm=True).render())
    assert "parADMM" in table
    assert open_source_parallel_count() == 0
