"""Figure 13 — SVM: GPU vs one CPU core.

Paper: >18x for large N (time per 1000 iterations linear in N); per-update
speedup ordering ranks like packing and MPC (x/z hardest).
"""

import numpy as np
import pytest

from _common import measured_gpu_table, modeled_gpu_table, one_iteration
from repro.backends.serial import SerialBackend
from repro.backends.vectorized import VectorizedBackend
from repro.bench.reporting import results_path
from repro.bench.workloads import SVM_MEASURED_N, SVM_MODELED_N, svm_graph
from repro.core.state import ADMMState
from repro.gpusim.synthetic import svm_workloads

BENCH_N = SVM_MEASURED_N[-1]


@pytest.fixture(scope="module")
def fig13_sweep():
    out = results_path("fig13_svm_gpu.txt")
    measured, mrows = measured_gpu_table(
        "Fig 13 (measured) — SVM, serial vs vectorized, time/iter vs N",
        svm_graph,
        SVM_MEASURED_N,
        rho=1.0,
    )
    measured.emit(out)
    modeled, grows = modeled_gpu_table(
        "Fig 13 (modeled) — SVM on Tesla K40 model, paper scale",
        svm_workloads,
        SVM_MODELED_N,
    )
    modeled.emit(out)
    return mrows, grows


def test_fig13_speedup_band(fig13_sweep):
    mrows, grows = fig13_sweep
    assert mrows[-1]["speedup"] > 3.0
    assert 5.0 <= grows[-1]["speedup"] <= 25.0


def test_fig13_time_linear_in_n(fig13_sweep):
    mrows, _ = fig13_sweep
    sizes = np.array([r["size"] for r in mrows], dtype=float)
    serial = np.array([r["serial"] for r in mrows])
    # Strong positive correlation; threshold leaves room for scheduler
    # noise on a busy 2-core container (few-iteration serial samples).
    assert np.corrcoef(sizes, serial)[0, 1] > 0.9
    assert serial[-1] > serial[0]


def test_fig13_update_ranking_matches_other_apps(fig13_sweep):
    _, grows = fig13_sweep
    sp = grows[-1]["kernels"]
    # x and z are the hardest to speed up (paper's cross-app observation).
    assert min(sp["x"], sp["z"]) <= min(sp["m"], sp["u"], sp["n"])


def test_benchmark_serial_iteration(benchmark, fig13_sweep):
    g = svm_graph(BENCH_N)
    state = ADMMState(g, rho=1.0).init_random(0.1, 0.9, seed=0)
    benchmark.pedantic(
        one_iteration(SerialBackend(), g, state), rounds=3, iterations=1, warmup_rounds=1
    )


def test_benchmark_vectorized_iteration(benchmark, fig13_sweep):
    g = svm_graph(BENCH_N)
    state = ADMMState(g, rho=1.0).init_random(0.1, 0.9, seed=0)
    benchmark.pedantic(
        one_iteration(VectorizedBackend(), g, state),
        rounds=10,
        iterations=3,
        warmup_rounds=1,
    )
