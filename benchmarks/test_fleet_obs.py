"""Observability overhead — traced solves are bit-identical and cheap.

Acceptance bench for the tracing subsystem (ISSUE 8).  The gating
assertions are **equality and structure**, not wall-clock (shared runners
can be 1-core): a solve with a live :class:`~repro.obs.Tracer` attached
must produce bit-identical iterates to the untraced solve, the disabled
path must not allocate a tracer at all, and the traced timeline must
export to a valid Chrome trace.  Wall-clock for traced vs untraced runs
is reported to ``results/fleet_obs.txt`` as advisory context, with only a
very generous overhead ceiling gated (tracing buffers dataclasses — it
must never be a multiple of the solve itself).
"""

import time

import numpy as np

from repro.bench.reporting import SeriesTable, results_path
from repro.bench.workloads import mpc_fleet
from repro.core.batched import BatchedSolver
from repro.core.rebalance import RebalancingShardedSolver
from repro.obs import Tracer, chrome_trace, fleet_metrics, validate_chrome_trace

B = 16
HORIZON = 8
ITERS = 40
RHO = 10.0
#: Advisory ceiling: traced median must stay under this multiple of the
#: untraced median.  Real overhead is a few percent; the slack absorbs
#: noisy shared runners without letting a pathological regression through.
OVERHEAD_CEILING = 5.0


def _solve(tracer=None):
    t0 = time.perf_counter()
    with BatchedSolver(mpc_fleet(B, horizon=HORIZON), rho=RHO, tracer=tracer) as s:
        res = s.solve_batch(max_iterations=ITERS, check_every=5, init="zeros")
    return res, time.perf_counter() - t0


def test_traced_solve_bit_identical_with_bounded_overhead():
    """Equality-gated: tracing on vs off never changes a single bit."""
    # Interleave repetitions so drift on shared runners hits both arms.
    plain_s, traced_s = [], []
    ref = None
    tracer = Tracer()
    for _ in range(3):
        res, dt = _solve()
        plain_s.append(dt)
        if ref is None:
            ref = res
        traced, dt = _solve(tracer)
        traced_s.append(dt)
        for a, b in zip(traced, ref):
            np.testing.assert_array_equal(a.z, b.z)
            assert a.iterations == b.iterations
            assert a.history.primal == b.history.primal

    # The disabled path is one None-check per segment: no tracer object
    # exists unless REPRO_TRACE is set or one is passed in.
    with BatchedSolver(mpc_fleet(4, horizon=4), rho=RHO) as s:
        assert s.tracer is None

    # The traced timeline is complete and exports cleanly.
    events = tracer.timeline()
    kinds = {ev.kind for ev in events}
    assert {"solve", "segment", "kernel"} <= kinds
    assert validate_chrome_trace(chrome_trace(events)) == []
    assert tracer.dropped == 0
    text = fleet_metrics(events).render()
    assert "repro_segments_total" in text

    plain_med = sorted(plain_s)[1]
    traced_med = sorted(traced_s)[1]
    assert traced_med < plain_med * OVERHEAD_CEILING + 0.05, (
        f"tracing overhead blew the ceiling: {traced_med:.4f}s traced vs "
        f"{plain_med:.4f}s untraced"
    )

    table = SeriesTable(
        f"Tracing overhead — B={B} MPC fleet (K={HORIZON}), {ITERS} "
        "iterations, median of 3 interleaved runs",
        ("path", "seconds", "events"),
    )
    table.add_row("untraced", plain_med, 0)
    table.add_row("traced", traced_med, len(events))
    table.add_note(
        "gating assertions are bit-identity + valid Chrome export; "
        f"wall-clock gated only at a {OVERHEAD_CEILING:.0f}x ceiling"
    )
    table.emit(results_path("fleet_obs.txt"))


def test_traced_fleet_solver_bit_identical():
    """The rebalancing fleet under tracing matches the batched reference."""
    with BatchedSolver(mpc_fleet(B, horizon=HORIZON), rho=RHO) as plain:
        ref = plain.solve_batch(max_iterations=ITERS, check_every=5, init="zeros")
    tracer = Tracer()
    with RebalancingShardedSolver(
        mpc_fleet(B, horizon=HORIZON),
        num_shards=2,
        mode="thread",
        rho=RHO,
        tracer=tracer,
    ) as solver:
        got = solver.solve_batch(max_iterations=ITERS, check_every=5, init="zeros")
    for a, b in zip(got, ref):
        np.testing.assert_array_equal(a.z, b.z)
    # Per-worker kernel attribution: every worker lane carries kernel spans.
    lanes = {ev.worker for ev in tracer.events() if ev.kind == "kernel"}
    assert lanes == {0, 1}
    assert validate_chrome_trace(chrome_trace(tracer.timeline())) == []
