"""§V text — per-update time fractions.

Paper, on the GPU: packing x+z = 31%+40% = 71% (N=5000); MPC x+z = 59%+21%
= 80% (K=1e5); SVM x+z = 28%+23% = 51%.  Regenerated twice: measured on the
vectorized engine (this machine) and on the K40 model at paper scale.
"""

import pytest

from repro.backends.vectorized import VectorizedBackend
from repro.bench.reporting import SeriesTable, results_path
from repro.bench.workloads import mpc_graph, packing_graph, svm_graph
from repro.gpusim.calibrate import measure_kernel_seconds, measured_fractions
from repro.gpusim.device import OPTERON_6300, TESLA_K40
from repro.gpusim.synthetic import mpc_workloads, packing_workloads, svm_workloads
from repro.gpusim.workloads import simulate_admm_gpu
from repro.utils.timing import UPDATE_KINDS

CASES = [
    ("packing N=60/5000", packing_graph(60), packing_workloads(5000)[0], 0.71),
    ("mpc K=400/1e5", mpc_graph(400), mpc_workloads(100_000)[0], 0.80),
    ("svm N=400/1e5", svm_graph(400), svm_workloads(100_000)[0], 0.51),
]


@pytest.fixture(scope="module")
def fraction_tables():
    out = results_path("text_time_fractions.txt")
    measured = {}
    modeled = {}
    t = SeriesTable(
        "§V (measured) — per-update fractions of one vectorized iteration",
        ("workload", *UPDATE_KINDS, "x+z"),
    )
    t2 = SeriesTable(
        "§V (modeled K40) — per-update fractions at paper scale",
        ("workload", *UPDATE_KINDS, "x+z", "paper x+z"),
    )
    for name, g_small, wl_big, paper_xz in CASES:
        meas = measure_kernel_seconds(g_small, VectorizedBackend(), iterations=5)
        fr = measured_fractions(meas)
        measured[name] = fr
        t.add_row(name, *[fr[k] for k in UPDATE_KINDS], fr["x"] + fr["z"])
        res = simulate_admm_gpu(
            TESLA_K40, None, OPTERON_6300, ntb=32, workloads=wl_big
        )
        gfr = res.fractions("gpu")
        modeled[name] = gfr
        t2.add_row(
            name, *[gfr[k] for k in UPDATE_KINDS], gfr["x"] + gfr["z"], paper_xz
        )
    t.emit(out)
    t2.emit(out)
    return measured, modeled


def test_xz_are_majority_on_gpu_model(fraction_tables):
    _, modeled = fraction_tables
    for name, fr in modeled.items():
        assert fr["x"] + fr["z"] > 0.33, name


def test_fractions_sum_to_one(fraction_tables):
    measured, modeled = fraction_tables
    for group in (measured, modeled):
        for fr in group.values():
            assert abs(sum(fr[k] for k in UPDATE_KINDS) - 1.0) < 1e-9


def test_benchmark_fraction_measurement(benchmark, fraction_tables):
    g = packing_graph(20)

    def measure():
        return measure_kernel_seconds(g, VectorizedBackend(), iterations=2)

    meas = benchmark(measure)
    assert set(meas) == set(UPDATE_KINDS)
