"""§V text — threads-per-block sweeps.

Paper §V-A quotes the packing x-update speedups for ntb = 1..1024 at N=5000
(5.6, 5.6, 5.8, 5.8, 5.8, **7.4** at 32, 5.5, 3.5, 2.0, 2.0, 3.6): a ramp to
ntb=32 and a collapse beyond.  §V-B reports the MPC z-update preferring even
smaller blocks (optimal ntb 2–16).  Both sweeps are regenerated on the SIMT
model.
"""

import pytest

from repro.bench.reporting import SeriesTable, results_path
from repro.bench.workloads import packing_graph
from repro.gpusim.device import OPTERON_6300, TESLA_K40
from repro.gpusim.simt import best_ntb, serial_time
from repro.gpusim.synthetic import mpc_workloads, packing_workloads
from repro.gpusim.workloads import admm_workloads

PACK_N = 5000  # the paper's quoted sweep size
MPC_K = 100_000
CANDIDATES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


@pytest.fixture(scope="module")
def ntb_tables():
    out = results_path("text_ntb_sweep.txt")
    wl_pack = packing_workloads(PACK_N)[0]
    best_x, timings_x = best_ntb(TESLA_K40, wl_pack["x"], CANDIDATES)
    base_x = serial_time(wl_pack["x"], OPTERON_6300)
    t = SeriesTable(
        f"§V-A (modeled) — packing N={PACK_N} x-update speedup vs ntb "
        "(paper: peak 7.4 at ntb=32)",
        ("ntb", "speedup", "bound"),
    )
    for ntb in CANDIDATES:
        t.add_row(ntb, base_x / timings_x[ntb].time_s, timings_x[ntb].bound)
    t.emit(out)

    wl_mpc = mpc_workloads(MPC_K)[0]
    best_z, timings_z = best_ntb(TESLA_K40, wl_mpc["z"], CANDIDATES)
    base_z = serial_time(wl_mpc["z"], OPTERON_6300)
    t2 = SeriesTable(
        f"§V-B (modeled) — MPC K={MPC_K} z-update speedup vs ntb "
        "(paper: optimal ntb 2-16)",
        ("ntb", "speedup", "bound"),
    )
    for ntb in CANDIDATES:
        t2.add_row(ntb, base_z / timings_z[ntb].time_s, timings_z[ntb].bound)
    t2.emit(out)
    return best_x, timings_x, best_z, timings_z


def test_packing_x_update_peaks_at_32(ntb_tables):
    best_x, timings_x, _, _ = ntb_tables
    assert best_x == 32
    # Ramp below the peak, collapse above — the paper's shape.
    assert timings_x[1].time_s > timings_x[16].time_s > timings_x[32].time_s
    assert timings_x[256].time_s > timings_x[32].time_s


def test_mpc_z_update_prefers_small_blocks(ntb_tables):
    _, _, best_z, timings_z = ntb_tables
    # Paper: optimal z-update ntb in 2..16 — i.e. no larger than 32 here.
    assert best_z <= 32
    assert timings_z[1024].time_s >= timings_z[best_z].time_s


def test_benchmark_ntb_sweep(benchmark, ntb_tables):
    wl = admm_workloads(packing_graph(200))

    def sweep():
        return best_ntb(TESLA_K40, wl["x"], CANDIDATES)

    best, _ = benchmark(sweep)
    assert best in CANDIDATES
