"""Rebalancing fleet — incremental append cost + roster-shard overhead.

Acceptance bench for the rebalance subsystem (ISSUE 5).  The gating
assertions are **operation counters**, not wall-clock (shared runners can
be 1-core): growing a B-instance fleet by k must structurally build
exactly k instance blocks (``REBUILD_COUNTER``), and shrinking must build
zero — i.e. ``append_instances`` is O(k) where ``replicate_graph`` is
O(B).  Wall-clock for both paths and for the work-stealing sweep is
reported to ``results/fleet_rebalance.txt`` as advisory context.
"""

import time

import numpy as np

from repro.bench.harness import time_fleet_batched, time_fleet_rebalanced
from repro.bench.reporting import SeriesTable, results_path
from repro.bench.workloads import mpc_fleet
from repro.core.rebalance import RebalancingShardedSolver
from repro.graph.batch import REBUILD_COUNTER, replicate_graph

FLEET_B = 64
FLEET_HORIZON = 8
APPEND_K = 2


def test_append_is_o_of_k_not_o_of_b():
    """Counter-gated: appending k builds k instance blocks, never B."""
    batch = mpc_fleet(FLEET_B, horizon=FLEET_HORIZON)
    before = REBUILD_COUNTER.snapshot()
    t0 = time.perf_counter()
    grown = batch.append_instances(APPEND_K)
    append_s = time.perf_counter() - t0
    delta = REBUILD_COUNTER.snapshot()
    assert delta["instances_built"] - before["instances_built"] == APPEND_K
    assert delta["full_replications"] == before["full_replications"], (
        "append_instances performed a full re-replication"
    )
    assert delta["incremental_appends"] - before["incremental_appends"] == 1
    assert grown.batch_size == FLEET_B + APPEND_K

    # Advisory wall-clock context: the same growth via full re-replication.
    params = [batch.instance_params(i) for i in range(batch.batch_size)]
    t0 = time.perf_counter()
    replicate_graph(batch.template, FLEET_B + APPEND_K, params + [{}] * APPEND_K)
    replicate_s = time.perf_counter() - t0

    before_remove = REBUILD_COUNTER.snapshot()
    t0 = time.perf_counter()
    batch.remove_instances([0, FLEET_B // 2])
    remove_s = time.perf_counter() - t0
    after_remove = REBUILD_COUNTER.snapshot()
    assert after_remove["instances_built"] == before_remove["instances_built"], (
        "remove_instances structurally rebuilt survivors"
    )

    table = SeriesTable(
        f"Incremental structural append — B={FLEET_B} MPC fleet "
        f"(K={FLEET_HORIZON}), k={APPEND_K} appended",
        ("path", "instance builds", "seconds"),
    )
    table.add_row("append_instances (splice)", APPEND_K, append_s)
    table.add_row("replicate_graph (full)", FLEET_B + APPEND_K, replicate_s)
    table.add_row("remove_instances (compact)", 0, remove_s)
    table.add_note(
        "gating assertion is the instance-build counter (O(k) vs O(B)); "
        "seconds are advisory on shared runners"
    )
    table.emit(results_path("fleet_rebalance.txt"))


def test_rebalanced_sweep_matches_batched_with_low_overhead():
    """Roster shards sweep bit-identically to the batched fleet; wall-clock
    overhead is reported, not gated (1-core runners)."""
    from repro.core.batched import BatchedSolver

    B, iters = 16, 20
    batch = mpc_fleet(B, horizon=FLEET_HORIZON)
    batched_s = time_fleet_batched(batch, iters)
    rebalanced_s = time_fleet_rebalanced(batch, iters, num_shards=2, mode="thread")

    plain = BatchedSolver(mpc_fleet(B, horizon=FLEET_HORIZON), rho=10.0)
    plain.initialize("zeros")
    plain.iterate(iters)
    with RebalancingShardedSolver(
        mpc_fleet(B, horizon=FLEET_HORIZON), num_shards=2, mode="thread", rho=10.0
    ) as solver:
        solver.initialize("zeros")
        solver.iterate(iters // 2)
        solver.reshard(4)  # live re-shard mid-run, state carried
        solver.iterate(iters - iters // 2)
        dev = float(np.max(np.abs(solver.fleet_z() - plain.state.z)))
    plain.close()
    assert dev == 0.0, f"rebalanced sweep diverged from batched: {dev}"

    table = SeriesTable(
        f"Rebalancing sweep overhead — B={B} MPC fleet, {iters} iterations, "
        "thread-mode roster shards (with one live reshard)",
        ("path", "seconds"),
    )
    table.add_row("batched (single process)", batched_s)
    table.add_row("rebalancing shards (2)", rebalanced_s)
    table.add_note(
        "bit-identical iterates asserted; timing advisory (needs >= 2 cores "
        "for the sharded path to win)"
    )
    table.emit(results_path("fleet_rebalance.txt"))


def test_shared_transport_keeps_queue_dry_and_matches_queue():
    """Counter-gated: the shared transport moves zero iterate bytes over
    the command queues across a sweep with a live steal; the queue
    transport's byte counts quantify what was avoided.  Wall-clock of the
    two transports is advisory (shared runners)."""
    B, iters = 16, 20
    times, z_runs, stats_runs = {}, {}, {}
    for transport in ("shared", "queue"):
        with RebalancingShardedSolver(
            mpc_fleet(B, horizon=FLEET_HORIZON),
            num_shards=2,
            mode="process",
            transport=transport,
            rho=10.0,
        ) as solver:
            solver.initialize("zeros")
            t0 = time.perf_counter()
            solver.iterate(iters // 2)
            solver.steal_once()
            solver.iterate(iters - iters // 2)
            times[transport] = time.perf_counter() - t0
            z_runs[transport] = solver.fleet_z()
            stats_runs[transport] = solver.transport_stats()

    np.testing.assert_array_equal(z_runs["shared"], z_runs["queue"])
    shared = stats_runs["shared"]
    assert shared["queue_state_bytes"] == 0, shared
    assert shared["queue_reply_bytes"] == 0, shared
    assert shared["buffer_rebuilds"] == 0, shared
    assert shared["shared_push_bytes"] > 0
    avoided = (
        stats_runs["queue"]["queue_state_bytes"]
        + stats_runs["queue"]["queue_reply_bytes"]
    )
    assert avoided > 0

    table = SeriesTable(
        f"Zero-copy transport — B={B} MPC fleet, {iters} iterations, "
        "process-mode shards with one live steal",
        ("transport", "queue bytes", "shared bytes", "rebuilds", "seconds"),
    )
    for transport in ("shared", "queue"):
        s = stats_runs[transport]
        table.add_row(
            transport,
            s["queue_state_bytes"] + s["queue_reply_bytes"],
            s["shared_push_bytes"] + s["shared_pull_bytes"],
            s["buffer_rebuilds"],
            times[transport],
        )
    table.add_note(
        f"gating assertions are the byte counters (shared queue bytes == 0, "
        f"{avoided} B avoided vs queue transport); seconds are advisory"
    )
    table.emit(results_path("fleet_rebalance.txt"))
