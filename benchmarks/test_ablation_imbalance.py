"""Ablation — degree imbalance and the conclusion's rebalancing scheduler.

Paper conclusion: "when one GPU-core needs to perform much more work than
most of the other GPU-cores, the speedup can get substantially reduced …
the z-update kernel only finishes once the highest-degree variable node is
updated".  The proposed fix groups variable nodes so edges-per-group are
uniform.  Reproduced on star graphs with both the SIMT model (warp
divergence) and the multicore model (LPT vs contiguous chunking).
"""

import pytest

from repro.bench.reporting import SeriesTable, results_path
from repro.bench.workloads import star_graph
from repro.graph.partition import balanced_variable_groups, chunk_loads
from repro.gpusim.cpumodel import simulate_parallel_loop
from repro.gpusim.device import OPTERON_6300, TESLA_K40
from repro.gpusim.simt import simulate_kernel
from repro.gpusim.workloads import admm_workloads

HUB_EDGES = 2000


@pytest.fixture(scope="module")
def imbalance_tables():
    out = results_path("ablation_imbalance.txt")
    g = star_graph(HUB_EDGES)
    wl_z = admm_workloads(g)["z"]

    # SIMT: the hub variable's lane stalls its whole warp.
    t = SeriesTable(
        f"Ablation (modeled K40) — z-update on star graph ({HUB_EDGES} leaves)",
        ("ntb", "time_s", "sm_imbalance"),
    )
    simt = {}
    for ntb in (32, 256):
        k = simulate_kernel(TESLA_K40, wl_z, ntb)
        simt[ntb] = k
        t.add_row(ntb, k.time_s, k.sm_imbalance)
    t.emit(out)

    # Multicore: contiguous chunks vs the LPT rebalancer.
    t2 = SeriesTable(
        "Ablation (modeled CPU) — z-loop chunking on star graph, 8 cores",
        ("schedule", "compute_s", "imbalance"),
    )
    naive = simulate_parallel_loop(OPTERON_6300, wl_z, 8, balance="contiguous")
    lpt = simulate_parallel_loop(OPTERON_6300, wl_z, 8, balance="lpt")
    t2.add_row("contiguous", naive.compute_s, naive.load_imbalance)
    t2.add_row("lpt-rebalanced", lpt.compute_s, lpt.load_imbalance)
    t2.add_note("conclusion's proposed scheduler = lpt row")
    t2.emit(out)
    return simt, naive, lpt


def test_hub_dominates_kernel_critical_path(imbalance_tables):
    simt, _, _ = imbalance_tables
    g = star_graph(HUB_EDGES)
    wl_z = admm_workloads(g)["z"]
    hub_cycles = wl_z.cycles[0]
    # Kernel can never finish before the hub's thread does.
    assert simt[32].compute_s >= hub_cycles / TESLA_K40.clock_hz * 0.99


def test_rebalancer_reduces_makespan(imbalance_tables):
    _, naive, lpt = imbalance_tables
    assert lpt.compute_s <= naive.compute_s
    assert lpt.load_imbalance <= naive.load_imbalance


def test_partition_quality_on_star():
    g = star_graph(HUB_EDGES)
    w = g.var_degree.astype(float)
    naive = chunk_loads(w, 8)
    lpt = balanced_variable_groups(g, 8)
    assert lpt.makespan <= naive.makespan


def test_benchmark_lpt_partition(benchmark, imbalance_tables):
    g = star_graph(HUB_EDGES)

    def part():
        return balanced_variable_groups(g, 8)

    p = benchmark(part)
    assert p.makespan >= g.var_degree.max()
