"""Legacy setup shim so `pip install -e .` works offline without `wheel`."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "paradmm: fine-grained parallel ADMM on a factor-graph "
        "(reproduction of Hao et al., IPPS 2016)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    entry_points={
        "console_scripts": ["repro-bench = repro.bench.cli:main"],
    },
)
