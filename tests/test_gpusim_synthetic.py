"""Faithfulness tests: synthetic paper-scale workloads vs real graphs.

The performance models run at paper scale on analytically synthesized
element populations; these tests pin the synthesis to the materialized
graphs exactly (same arrays, element-for-element) at small sizes, and check
the closed-form growth identities at large ones.
"""

import numpy as np
import pytest

from repro.bench.workloads import mpc_graph, packing_graph, svm_graph
from repro.gpusim.synthetic import (
    FactorFamily,
    VariableFamily,
    mpc_workloads,
    packing_workloads,
    svm_workloads,
    synthetic_workloads,
)
from repro.gpusim.workloads import CostModel, admm_workloads

CASES = [
    ("packing", lambda s: packing_workloads(s), packing_graph, (3, 8, 15)),
    ("mpc", lambda s: mpc_workloads(s), mpc_graph, (1, 5, 30)),
    ("svm", lambda s: svm_workloads(s), svm_graph, (2, 7, 25)),
]


@pytest.mark.parametrize("name,syn,real,sizes", CASES)
class TestFaithfulness:
    def test_workloads_identical_to_real_graph(self, name, syn, real, sizes):
        for size in sizes:
            wl_syn, elements = syn(size)
            g = real(size)
            wl_real = admm_workloads(g)
            assert elements == g.num_elements
            for k in ("x", "m", "z", "u", "n"):
                np.testing.assert_array_equal(
                    wl_syn[k].cycles, wl_real[k].cycles, err_msg=f"{name}/{k}"
                )
                np.testing.assert_array_equal(
                    wl_syn[k].bytes_per_item,
                    wl_real[k].bytes_per_item,
                    err_msg=f"{name}/{k}",
                )
                assert wl_syn[k].access == wl_real[k].access


class TestGrowthIdentities:
    def test_packing_edge_formula_at_paper_scale(self):
        n, s = 5000, 3
        wl, elements = packing_workloads(n, s)
        assert wl["m"].n_items == 2 * n * n - n + 2 * n * s
        assert wl["x"].n_items == n * (n - 1) // 2 + n + n * s
        assert wl["z"].n_items == 2 * n

    def test_mpc_linear_growth(self):
        wl1, e1 = mpc_workloads(1000)
        wl2, e2 = mpc_workloads(2000)
        assert wl1["m"].n_items == 3 * 1000 + 2  # |E| = 3K + 2
        assert wl2["m"].n_items == 3 * 2000 + 2
        assert e2 > e1

    def test_svm_linear_growth(self):
        wl, _ = svm_workloads(100_000)
        assert wl["m"].n_items == 6 * 100_000 - 2


class TestValidation:
    def test_handshake_mismatch_rejected(self):
        with pytest.raises(ValueError, match="handshake"):
            synthetic_workloads(
                [FactorFamily(2, (1,))], [VariableFamily(1, 1, 3)]
            )

    def test_size_validation(self):
        with pytest.raises(ValueError):
            packing_workloads(0)
        with pytest.raises(ValueError):
            mpc_workloads(0)
        with pytest.raises(ValueError):
            svm_workloads(1)

    def test_cost_model_propagates(self):
        base, _ = packing_workloads(10)
        bumped, _ = packing_workloads(
            10, cost=CostModel(x_per_slot_by_prox={"packing_pair": 500.0})
        )
        assert bumped["x"].total_cycles > base["x"].total_cycles

    def test_empty_families(self):
        wl, elements = synthetic_workloads([], [])
        assert elements == 0
        assert wl["x"].n_items == 0
