"""Property-based tests (hypothesis) on proximal-operator invariants.

Two classic theorems drive these checks:

* a proximal map of a **convex** function is firmly nonexpansive, hence
  1-Lipschitz: ``||prox(a) − prox(b)|| ≤ ||a − b||``;
* the prox output must beat every candidate point on the prox objective
  ``h(s) + ρ/2 ||s − n||²`` (checked against random perturbations, using
  each operator's ``evaluate``).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.prox.base import expand_rho
from repro.prox.packing import PairNoCollisionProx, WallProx
from repro.prox.standard import (
    AffineConstraintProx,
    ConsensusEqualProx,
    DiagQuadProx,
    L1Prox,
    L2BallProx,
    NonNegativeProx,
    ZeroProx,
)
from repro.prox.svm import SVMMarginProx, SVMNormProx, SVMSlackProx

finite = st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False)


def vec(size):
    return hnp.arrays(np.float64, (size,), elements=finite)


# Convex operators with fixed scope dims and parameter factories.
CONVEX_CASES = [
    ("zero", ZeroProx(), (2,), lambda: {}),
    (
        "diag_quad",
        DiagQuadProx(dims=(2,)),
        (2,),
        lambda: {"q": np.array([1.0, 2.0]), "c": np.array([0.3, -0.4])},
    ),
    ("l1", L1Prox(lam=0.7), (2,), lambda: {}),
    ("nonneg", NonNegativeProx(), (3,), lambda: {}),
    ("ball", L2BallProx(radius=1.5), (2,), lambda: {}),
    ("consensus", ConsensusEqualProx(k=2, dim=2), (2, 2), lambda: {}),
    (
        "affine",
        AffineConstraintProx(np.array([[1.0, -1.0, 0.5]]), dims=(3,)),
        (3,),
        lambda: {"c": np.array([0.25])},
    ),
    ("svm_norm", SVMNormProx(dim=2, kappa=0.5), (3,), lambda: {}),
    ("svm_slack", SVMSlackProx(lam=1.0), (1,), lambda: {}),
    (
        "svm_margin",
        SVMMarginProx(dim=2),
        (3, 1),
        lambda: {"x": np.array([0.7, -0.2]), "y": np.array(1.0)},
    ),
]


@pytest.mark.parametrize("name,op,dims,make_params", CONVEX_CASES)
class TestNonexpansiveness:
    @given(data=st.data(), rho=st.floats(0.2, 5.0))
    @settings(max_examples=40, deadline=None)
    def test_prox_is_nonexpansive(self, name, op, dims, make_params, data, rho):
        L = sum(dims)
        a = data.draw(vec(L))
        b = data.draw(vec(L))
        params = make_params()
        rho_vec = np.full(len(dims), rho)
        xa = op.prox(a, rho_vec, params)
        xb = op.prox(b, rho_vec, params)
        lhs = np.linalg.norm(xa - xb)
        rhs = np.linalg.norm(a - b)
        assert lhs <= rhs + 1e-9


@pytest.mark.parametrize("name,op,dims,make_params", CONVEX_CASES)
class TestProxOptimality:
    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_output_beats_perturbations(self, name, op, dims, make_params, data):
        L = sum(dims)
        n = data.draw(vec(L))
        params = make_params()
        rho = 1.3
        rho_vec = np.full(len(dims), rho)
        x = op.prox(n, rho_vec, params)
        fx = op.evaluate(x, params)
        if fx != fx:  # evaluate not implemented
            pytest.skip("operator has no evaluate")
        assert fx < float("inf"), f"{name} produced an infeasible prox output"
        rho_slots = expand_rho(rho_vec, tuple(dims))
        obj_x = fx + 0.5 * float(rho_slots @ ((x - n) ** 2))
        rng = np.random.default_rng(abs(hash((name, n.tobytes()))) % 2**32)
        for scale in (1e-3, 0.1, 1.0):
            y = x + rng.normal(scale=scale, size=L)
            fy = op.evaluate(y, params)
            if fy == float("inf"):
                continue
            obj_y = fy + 0.5 * float(rho_slots @ ((y - n) ** 2))
            assert obj_x <= obj_y + 1e-7


class TestNonConvexProjections:
    """Non-convex sets are not nonexpansive, but outputs stay feasible."""

    @given(data=st.data(), rho=st.floats(0.3, 4.0))
    @settings(max_examples=40, deadline=None)
    def test_pair_output_feasible(self, data, rho):
        op = PairNoCollisionProx()
        n = data.draw(vec(6))
        n[2] = abs(n[2])
        n[5] = abs(n[5])
        out = op.prox(n, np.full(4, rho), {})
        gap = np.linalg.norm(out[0:2] - out[3:5]) - (out[2] + out[5])
        assert gap >= -1e-8

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_wall_output_feasible(self, data):
        op = WallProx()
        n = data.draw(vec(3))
        theta = data.draw(st.floats(0.0, 2 * np.pi))
        Q = np.array([np.cos(theta), np.sin(theta)])
        V = data.draw(vec(2))
        out = op.prox(n, np.ones(2), {"Q": Q, "V": V})
        assert float(Q @ (out[0:2] - V) - out[2]) >= -1e-9

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_pair_idempotent(self, data):
        op = PairNoCollisionProx()
        n = data.draw(vec(6))
        n[2] = abs(n[2]) + 0.1
        n[5] = abs(n[5]) + 0.1
        once = op.prox(n, np.ones(4), {})
        twice = op.prox(once, np.ones(4), {})
        np.testing.assert_allclose(once, twice, atol=1e-8)


class TestBatchScalarAgreement:
    """prox_batch must equal row-by-row prox for every operator."""

    @pytest.mark.parametrize("name,op,dims,make_params", CONVEX_CASES)
    def test_agreement(self, name, op, dims, make_params):
        rng = np.random.default_rng(5)
        L = sum(dims)
        B = 7
        n = rng.normal(size=(B, L))
        rho = rng.uniform(0.5, 3.0, size=(B, len(dims)))
        params_single = make_params()
        params_batch = {
            k: np.stack([np.asarray(v, dtype=float)] * B) for k, v in params_single.items()
        }
        batch = op.prox_batch(n, rho, params_batch)
        for i in range(B):
            single = op.prox(n[i], rho[i], params_single)
            np.testing.assert_allclose(batch[i], single, atol=1e-10, err_msg=name)
