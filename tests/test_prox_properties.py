"""Property-based tests (hypothesis) on proximal-operator invariants.

Coverage is *registry-driven*: :data:`REGISTRY_CASES` instantiates every
registered convex operator (a completeness test fails when a new operator
is registered without a case here).  Three classic theorems drive the
checks:

* a proximal map of a **convex** function is firmly nonexpansive, hence
  1-Lipschitz: ``||prox(a) − prox(b)|| ≤ ||a − b||``;
* a minimizer of ``h`` is a **fixed point** of ``prox_{h,ρ}`` for every
  ``ρ > 0`` (and conversely) — minimizers are obtained as the ``ρ → 0``
  limit of the prox itself, so the test needs no per-operator analysis;
* the prox output must beat every candidate point on the prox objective
  ``h(s) + ρ/2 ||s − n||²`` (checked against random perturbations, using
  each operator's ``evaluate``).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.prox.base import expand_rho
from repro.prox.extras import EntropyProx, HuberProx, LogisticProx, SimplexProx
from repro.prox.lasso import DataFidelityProx
from repro.prox.mpc import MPCCostProx
from repro.prox.packing import PairNoCollisionProx, WallProx
from repro.prox.registry import iter_registered
from repro.prox.standard import (
    AffineConstraintProx,
    BoxProx,
    ConsensusEqualProx,
    DiagQuadProx,
    FixedValueProx,
    HalfspaceProx,
    L1Prox,
    L2BallProx,
    LinearProx,
    NonNegativeProx,
    QuadraticProx,
    ZeroProx,
)
from repro.prox.svm import SVMMarginProx, SVMNormProx, SVMSlackProx

finite = st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False)


def vec(size):
    return hnp.arrays(np.float64, (size,), elements=finite)


#: Registry name -> (operator, scope dims, params factory) for every
#: registered *convex* operator.  ``no_minimizer`` marks functions that are
#: unbounded below (no fixed point to test).
REGISTRY_CASES = {
    "zero": (ZeroProx(), (2,), lambda: {}),
    "linear": (LinearProx(dims=(2,)), (2,), lambda: {"c": np.array([0.5, -1.0])}),
    "diag_quad": (
        DiagQuadProx(dims=(2,)),
        (2,),
        lambda: {"q": np.array([1.0, 2.0]), "c": np.array([0.3, -0.4])},
    ),
    "quadratic": (
        QuadraticProx(dims=(2,)),
        (2,),
        lambda: {
            "P": np.array([[2.0, 0.5], [0.5, 1.0]]),
            "c": np.array([0.2, -0.7]),
        },
    ),
    "box": (
        BoxProx(),
        (2,),
        lambda: {"lo": np.array([-1.0, -2.0]), "hi": np.array([1.0, 0.5])},
    ),
    "nonnegative": (NonNegativeProx(), (3,), lambda: {}),
    "l1": (L1Prox(lam=0.7), (2,), lambda: {}),
    "l2_ball": (L2BallProx(radius=1.5), (2,), lambda: {}),
    "affine": (
        AffineConstraintProx(np.array([[1.0, -1.0, 0.5]]), dims=(3,)),
        (3,),
        lambda: {"c": np.array([0.25])},
    ),
    "consensus_equal": (ConsensusEqualProx(k=2, dim=2), (2, 2), lambda: {}),
    "fixed_value": (
        FixedValueProx(),
        (2,),
        lambda: {"value": np.array([0.5, -0.5])},
    ),
    "halfspace": (
        HalfspaceProx(dims=(2,)),
        (2,),
        lambda: {"g": np.array([1.0, 2.0]), "h": np.array([0.5])},
    ),
    "huber": (HuberProx(delta=0.8), (2,), lambda: {}),
    "simplex": (SimplexProx(), (3,), lambda: {}),
    "entropy": (EntropyProx(), (2,), lambda: {}),
    "logistic": (LogisticProx(), (2,), lambda: {}),
    "mpc_cost": (
        MPCCostProx(2, 1),
        (3,),
        lambda: {"qdiag": np.array([1.0, 2.0]), "rdiag": np.array([0.5])},
    ),
    "svm_norm": (SVMNormProx(dim=2, kappa=0.5), (3,), lambda: {}),
    "svm_slack": (SVMSlackProx(lam=1.0), (1,), lambda: {}),
    "svm_margin": (
        SVMMarginProx(dim=2),
        (3, 1),
        lambda: {"x": np.array([0.7, -0.2]), "y": np.array(1.0)},
    ),
    "data_fidelity": (
        DataFidelityProx(dim=2),
        (2,),
        lambda: {
            "A": np.array([[1.0, 0.3], [0.2, 1.5], [-0.4, 0.8]]),
            "y": np.array([0.5, -1.0, 0.25]),
        },
    ),
    "packing_wall": (
        WallProx(),
        (2, 1),
        lambda: {"Q": np.array([0.6, 0.8]), "V": np.array([0.1, -0.2])},
    ),
}

#: Convex but unbounded below — no minimizer, hence no fixed point exists.
NO_MINIMIZER = {"linear", "logistic"}

CONVEX_CASES = [
    (name, op, dims, make_params)
    for name, (op, dims, make_params) in sorted(REGISTRY_CASES.items())
]

FIXED_POINT_CASES = [c for c in CONVEX_CASES if c[0] not in NO_MINIMIZER]


def test_every_registered_convex_operator_is_covered():
    """A newly registered convex operator must get a property-test case.

    Only library-shipped operators count (test modules register throwaway
    operators into the same global registry).
    """
    convex_names = {
        name
        for name, cls in iter_registered()
        if cls.convex and cls.__module__.startswith("repro.")
    }
    missing = convex_names - set(REGISTRY_CASES)
    assert not missing, (
        f"registered convex operators without a REGISTRY_CASES entry: "
        f"{sorted(missing)} — add (instance, dims, params) so the "
        f"nonexpansiveness/fixed-point properties cover them"
    )
    nonconvex = set(REGISTRY_CASES) - convex_names
    assert not nonconvex, (
        f"REGISTRY_CASES lists non-convex or unregistered names: {nonconvex}"
    )


@pytest.mark.parametrize("name,op,dims,make_params", CONVEX_CASES)
class TestNonexpansiveness:
    @given(data=st.data(), rho=st.floats(0.2, 5.0))
    @settings(max_examples=25, deadline=None)
    def test_prox_is_nonexpansive(self, name, op, dims, make_params, data, rho):
        L = sum(dims)
        a = data.draw(vec(L))
        b = data.draw(vec(L))
        params = make_params()
        rho_vec = np.full(len(dims), rho)
        xa = op.prox(a, rho_vec, params)
        xb = op.prox(b, rho_vec, params)
        lhs = np.linalg.norm(xa - xb)
        rhs = np.linalg.norm(a - b)
        assert lhs <= rhs + 1e-9


@pytest.mark.parametrize("name,op,dims,make_params", FIXED_POINT_CASES)
class TestFixedPointAtMinimizer:
    """``prox_{h,ρ}(x*) = x*`` at a minimizer x*, for every ρ.

    The minimizer is computed by the operator itself: ``prox_{h,ρ}(n) →
    argmin h`` as ``ρ → 0`` (for indicators, any projection output is a
    minimizer).  Seeded random starting points exercise different faces of
    constraint sets.
    """

    @given(data=st.data(), rho=st.floats(0.2, 5.0))
    @settings(max_examples=20, deadline=None)
    def test_minimizer_is_fixed_point(self, name, op, dims, make_params, data, rho):
        L = sum(dims)
        n0 = data.draw(vec(L))
        params = make_params()
        tiny = np.full(len(dims), 1e-8)
        x_star = np.asarray(op.prox(n0, tiny, params), dtype=np.float64)
        # Sanity: the limit point must itself be (almost) stationary under
        # the tiny-rho prox, else it is not a minimizer estimate at all.
        x_again = np.asarray(op.prox(x_star, tiny, params), dtype=np.float64)
        np.testing.assert_allclose(x_again, x_star, atol=1e-5)
        rho_vec = np.full(len(dims), rho)
        fixed = np.asarray(op.prox(x_star, rho_vec, params), dtype=np.float64)
        np.testing.assert_allclose(
            fixed,
            x_star,
            atol=1e-5,
            err_msg=f"{name}: minimizer is not a prox fixed point at rho={rho}",
        )

    def test_fixed_point_seeded_rho_sweep(self, name, op, dims, make_params):
        """Deterministic sweep over ρ values (the satellite's seeded form)."""
        rng = np.random.default_rng(20260728)
        L = sum(dims)
        params = make_params()
        for trial in range(3):
            n0 = rng.uniform(-4.0, 4.0, size=L)
            x_star = np.asarray(
                op.prox(n0, np.full(len(dims), 1e-8), params), dtype=np.float64
            )
            for rho in (0.3, 1.0, 4.0):
                fixed = op.prox(x_star, np.full(len(dims), rho), params)
                np.testing.assert_allclose(fixed, x_star, atol=1e-5, err_msg=name)


@pytest.mark.parametrize("name,op,dims,make_params", CONVEX_CASES)
class TestProxOptimality:
    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_output_beats_perturbations(self, name, op, dims, make_params, data):
        L = sum(dims)
        n = data.draw(vec(L))
        params = make_params()
        rho = 1.3
        rho_vec = np.full(len(dims), rho)
        x = op.prox(n, rho_vec, params)
        fx = op.evaluate(x, params)
        if fx != fx:  # evaluate not implemented
            pytest.skip("operator has no evaluate")
        assert fx < float("inf"), f"{name} produced an infeasible prox output"
        rho_slots = expand_rho(rho_vec, tuple(dims))
        obj_x = fx + 0.5 * float(rho_slots @ ((x - n) ** 2))
        rng = np.random.default_rng(abs(hash((name, n.tobytes()))) % 2**32)
        for scale in (1e-3, 0.1, 1.0):
            y = x + rng.normal(scale=scale, size=L)
            fy = op.evaluate(y, params)
            if fy == float("inf"):
                continue
            obj_y = fy + 0.5 * float(rho_slots @ ((y - n) ** 2))
            assert obj_x <= obj_y + 1e-7


class TestNonConvexProjections:
    """Non-convex sets are not nonexpansive, but outputs stay feasible."""

    @given(data=st.data(), rho=st.floats(0.3, 4.0))
    @settings(max_examples=40, deadline=None)
    def test_pair_output_feasible(self, data, rho):
        op = PairNoCollisionProx()
        n = data.draw(vec(6))
        n[2] = abs(n[2])
        n[5] = abs(n[5])
        out = op.prox(n, np.full(4, rho), {})
        gap = np.linalg.norm(out[0:2] - out[3:5]) - (out[2] + out[5])
        assert gap >= -1e-8

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_wall_output_feasible(self, data):
        op = WallProx()
        n = data.draw(vec(3))
        theta = data.draw(st.floats(0.0, 2 * np.pi))
        Q = np.array([np.cos(theta), np.sin(theta)])
        V = data.draw(vec(2))
        out = op.prox(n, np.ones(2), {"Q": Q, "V": V})
        assert float(Q @ (out[0:2] - V) - out[2]) >= -1e-9

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_pair_idempotent(self, data):
        op = PairNoCollisionProx()
        n = data.draw(vec(6))
        n[2] = abs(n[2]) + 0.1
        n[5] = abs(n[5]) + 0.1
        once = op.prox(n, np.ones(4), {})
        twice = op.prox(once, np.ones(4), {})
        np.testing.assert_allclose(once, twice, atol=1e-8)


class TestBatchScalarAgreement:
    """prox_batch must equal row-by-row prox for every operator."""

    @pytest.mark.parametrize("name,op,dims,make_params", CONVEX_CASES)
    def test_agreement(self, name, op, dims, make_params):
        rng = np.random.default_rng(5)
        L = sum(dims)
        B = 7
        n = rng.normal(size=(B, L))
        rho = rng.uniform(0.5, 3.0, size=(B, len(dims)))
        params_single = make_params()
        params_batch = {
            k: np.stack([np.asarray(v, dtype=float)] * B)
            for k, v in params_single.items()
        }
        batch = op.prox_batch(n, rho, params_batch)
        for i in range(B):
            single = op.prox(n[i], rho[i], params_single)
            np.testing.assert_allclose(batch[i], single, atol=1e-10, err_msg=name)
