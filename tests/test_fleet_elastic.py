"""Elastic fleet property tests (ISSUE 4 satellite).

Instances of a block-diagonal fleet are mathematically independent, so
growing or shrinking the batch between solves must be invisible to the
survivors: their iterates, duals, penalties, and residual histories are
**bit-identical** to an untouched fleet advanced the same sweeps — the
per-edge ρ-scaling and per-instance index maps guarantee not even float
reassociation changes.  A randomized (seeded) add/remove sequence pins
this, along with the removed-then-re-added convergence property.
"""

import numpy as np
import pytest

from repro.core.batched import BatchedSolver, carry_state
from repro.core.parameters import ResidualBalancing, apply_rho_scale
from repro.core.state import ADMMState
from repro.graph.batch import replicate_graph
from repro.graph.builder import GraphBuilder
from repro.prox.standard import DiagQuadProx


def quad_template():
    b = GraphBuilder()
    w = b.add_variable(2)
    b.add_factor(
        DiagQuadProx(dims=(2,)),
        [w],
        params={"q": np.ones(2), "c": np.zeros(2)},
    )
    return b.build()


def overrides_for(targets):
    return [{0: {"c": -np.asarray(t, dtype=float)}} for t in targets]


def quad_fleet(targets):
    return replicate_graph(quad_template(), len(targets), overrides_for(targets))


# --------------------------------------------------------------------- #
# GraphBatch elastic primitives                                          #
# --------------------------------------------------------------------- #


class TestGraphBatchElastic:
    def test_instance_params_roundtrip(self):
        targets = np.arange(6.0).reshape(3, 2)
        batch = quad_fleet(targets)
        for i in range(3):
            params = batch.instance_params(i)
            np.testing.assert_array_equal(params[0]["c"], -targets[i])

    def test_select_preserves_order_and_params(self):
        targets = np.arange(8.0).reshape(4, 2)
        batch = quad_fleet(targets)
        sub = batch.select_instances([3, 1])
        assert sub.batch_size == 2
        np.testing.assert_array_equal(sub.instance_params(0)[0]["c"], -targets[3])
        np.testing.assert_array_equal(sub.instance_params(1)[0]["c"], -targets[1])

    def test_add_count_clones_template(self):
        batch = quad_fleet(np.ones((2, 2)))
        grown = batch.add_instances(2)
        assert grown.batch_size == 4
        # Template params (c = 0), not instance 0's override.
        np.testing.assert_array_equal(grown.instance_params(2)[0]["c"], np.zeros(2))

    def test_add_with_overrides_appends(self):
        batch = quad_fleet(np.ones((2, 2)))
        grown = batch.add_instances([{0: {"c": np.array([5.0, 6.0])}}])
        assert grown.batch_size == 3
        np.testing.assert_array_equal(
            grown.instance_params(2)[0]["c"], [5.0, 6.0]
        )
        np.testing.assert_array_equal(grown.instance_params(0)[0]["c"], -np.ones(2))

    def test_remove_keeps_survivor_order(self):
        targets = np.arange(10.0).reshape(5, 2)
        shrunk = quad_fleet(targets).remove_instances([0, 3])
        assert shrunk.batch_size == 3
        for j, i in enumerate([1, 2, 4]):
            np.testing.assert_array_equal(
                shrunk.instance_params(j)[0]["c"], -targets[i]
            )

    def test_validation_errors(self):
        batch = quad_fleet(np.ones((2, 2)))
        with pytest.raises(ValueError):
            batch.remove_instances([0, 1])
        with pytest.raises(IndexError):
            batch.remove_instances([5])
        with pytest.raises(ValueError):
            batch.add_instances(0)
        with pytest.raises(ValueError):
            batch.add_instances([])
        with pytest.raises(ValueError):
            batch.select_instances([])


class TestCarryState:
    def test_validation(self):
        batch = quad_fleet(np.ones((3, 2)))
        state = ADMMState(batch.graph)
        smaller = batch.remove_instances([2])
        with pytest.raises(ValueError):
            carry_state(batch, state, smaller, [0])  # wrong length
        with pytest.raises(ValueError):
            carry_state(batch, state, smaller, [0, 7])  # out of range
        with pytest.raises(ValueError):
            carry_state(batch, state, smaller, [0, -2])  # only -1 is cold
        with pytest.raises(ValueError):
            carry_state(batch, state, smaller, [0, 1], fresh_rho=np.ones(99))

    def test_fresh_instances_get_default_penalties(self):
        targets = np.ones((2, 2))
        batch = quad_fleet(targets)
        state = ADMMState(batch.graph, rho=3.0)
        state.init_random(seed=4)
        grown = batch.add_instances(1)
        carried = carry_state(batch, state, grown, [0, 1, -1], fresh_rho=7.0)
        rows = grown.split_edges(carried.rho)
        assert np.all(rows[:2] == 3.0)
        assert np.all(rows[2] == 7.0)
        # Cold instance starts from zeros.
        assert np.all(carried.z[grown.z_slice(2)] == 0.0)
        assert np.all(carried.x[grown.slot_index[2]] == 0.0)


# --------------------------------------------------------------------- #
# Solver-level elasticity                                                #
# --------------------------------------------------------------------- #


class TestElasticSolver:
    def test_survivors_bit_identical_to_untouched_fleet(self):
        rng = np.random.default_rng(7)
        targets = rng.normal(size=(6, 2))
        elastic = BatchedSolver(quad_fleet(targets), rho=1.3)
        untouched = BatchedSolver(quad_fleet(targets), rho=1.3)
        for s in (elastic, untouched):
            s.initialize("zeros")
        elastic.iterate(9)
        untouched.iterate(9)
        elastic.remove_instances([1, 4])
        elastic.iterate(11)
        untouched.iterate(11)
        elastic.add_instances(1)
        elastic.iterate(5)
        untouched.iterate(5)
        survivors = [0, 2, 3, 5]
        for j, i in enumerate(survivors):
            np.testing.assert_array_equal(
                elastic.state.z[elastic.batch.z_slice(j)],
                untouched.state.z[untouched.batch.z_slice(i)],
            )
            for family in ("x", "m", "u", "n"):
                np.testing.assert_array_equal(
                    getattr(elastic.state, family)[elastic.batch.slot_index[j]],
                    getattr(untouched.state, family)[untouched.batch.slot_index[i]],
                )
        elastic.close()
        untouched.close()

    def test_randomized_add_remove_sequence(self):
        """Seeded add/remove between solve segments; survivors' residual
        histories, iterates, and duals stay bit-identical to the untouched
        fleet (ε = 0 keeps every instance active so both fleets sweep in
        lockstep; ResidualBalancing exercises the per-instance ρ path)."""
        rng = np.random.default_rng(1234)
        targets = rng.normal(size=(8, 2)) + 1.0
        schedule = ResidualBalancing(mu=1.5, tau=2.0, max_updates=10)
        untouched = BatchedSolver(quad_fleet(targets), rho=1.3, schedule=schedule)
        elastic = BatchedSolver(quad_fleet(targets), rho=1.3, schedule=schedule)

        # alive: (original id, continuously-alive-since-start)
        alive = [(i, True) for i in range(8)]
        cap = 0
        for segment in range(3):
            cap += 9
            init = "zeros" if segment == 0 else "keep"
            res_u = untouched.solve_batch(
                max_iterations=cap, eps_abs=0.0, eps_rel=0.0,
                check_every=3, init=init,
            )
            res_e = elastic.solve_batch(
                max_iterations=cap, eps_abs=0.0, eps_rel=0.0,
                check_every=3, init=init,
            )
            for pos, (orig, continuous) in enumerate(alive):
                if not continuous:
                    continue
                assert res_e[pos].history.primal == res_u[orig].history.primal
                assert res_e[pos].history.dual == res_u[orig].history.dual
                assert res_e[pos].history.rho == res_u[orig].history.rho
                np.testing.assert_array_equal(res_e[pos].z, res_u[orig].z)
                np.testing.assert_array_equal(
                    elastic.state.u[elastic.batch.slot_index[pos]],
                    untouched.state.u[untouched.batch.slot_index[orig]],
                )
            # Randomized elastic op between segments.
            if segment == 2:
                break
            removable = list(range(len(alive)))
            n_drop = int(rng.integers(1, len(alive) - 2))
            drop_pos = sorted(
                rng.choice(removable, size=n_drop, replace=False).tolist()
            )
            dropped = [alive[p][0] for p in drop_pos]
            elastic.remove_instances(drop_pos)
            alive = [a for p, a in enumerate(alive) if p not in drop_pos]
            if rng.random() < 0.8:
                # Re-add one dropped template as a cold instance.
                back = dropped[int(rng.integers(len(dropped)))]
                elastic.add_instances(overrides_for([targets[back]]))
                alive.append((back, False))
        untouched.close()
        elastic.close()

    def test_removed_then_readded_converges_to_same_solution(self):
        targets = np.array([[1.0, -2.0], [0.5, 3.0], [2.0, 2.0]])
        solver = BatchedSolver(quad_fleet(targets), rho=1.0)
        solver.solve_batch(max_iterations=50, check_every=5, init="zeros")
        solver.remove_instances([1])
        solver.solve_batch(max_iterations=100, check_every=5, init="keep")
        solver.add_instances(overrides_for([targets[1]]))
        results = solver.solve_batch(max_iterations=600, check_every=5, init="keep")
        readded = results[-1]
        solo = BatchedSolver(quad_fleet(targets[1:2]), rho=1.0)
        (ref,) = solo.solve_batch(max_iterations=600, check_every=5, init="zeros")
        np.testing.assert_allclose(readded.z, ref.z, atol=1e-6)
        assert readded.converged
        solver.close()
        solo.close()

    def test_elastic_resize_rebinds_fleet_randomized_backend(self):
        """Elastic resize composes with the batch-bound async backend: the
        backend re-binds to the new batch (streams restart for the new
        layout) and a fresh solve still matches solo randomized solves."""
        from repro.backends.randomized import (
            FleetRandomizedBackend,
            RandomizedBackend,
        )
        from repro.core.solver import ADMMSolver

        targets = np.array([[1.0, -1.0], [2.0, 0.5], [0.0, 3.0]])
        batch = quad_fleet(targets)
        solver = BatchedSolver(
            batch,
            backend=FleetRandomizedBackend(batch, fraction=0.7, seed=31),
            rho=1.2,
        )
        solver.initialize("zeros")
        solver.iterate(6)
        solver.add_instances(overrides_for([[4.0, 4.0]]))
        solver.remove_instances([0])
        assert solver.batch_size == 3
        solver.initialize("zeros")
        solver.iterate(10)
        rows = solver.batch.split_z(solver.state.z)
        new_targets = [targets[1], targets[2], np.array([4.0, 4.0])]
        for i, t in enumerate(new_targets):
            solo = ADMMSolver(
                quad_fleet([t]).graph,
                backend=RandomizedBackend(0.7, seed=31 + i),
                rho=1.2,
            )
            solo.initialize("zeros")
            solo.iterate(10)
            np.testing.assert_allclose(rows[i], solo.state.z, atol=1e-10)
            solo.close()
        solver.close()

    def test_fresh_instances_ignore_schedule_drift(self):
        """Newcomers get construction-time penalties, not drifted ones."""
        targets = np.ones((2, 2))
        solver = BatchedSolver(quad_fleet(targets), rho=5.0)
        solver.initialize("zeros")
        apply_rho_scale(solver.state, np.full(solver.graph.num_edges, 3.0))
        solver.add_instances(1)
        rows = solver.batch.split_edges(solver.state.rho)
        assert np.all(rows[:2] == 15.0), "existing instances keep drifted rho"
        assert np.all(rows[2] == 5.0), "newcomer gets construction-time rho"
        solver.close()
