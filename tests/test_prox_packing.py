"""Unit tests for the packing proximal operators (Appendix A).

The pair operator implements the sign-corrected KKT solution (the paper's
printed formula grows radii and is infeasible — see the module docstring of
``repro.prox.packing``); these tests verify feasibility and optimality.
"""

import numpy as np
import pytest

from repro.prox.packing import PairNoCollisionProx, RadiusRewardProx, WallProx

RNG = np.random.default_rng(7)


def pair_input(c1, r1, c2, r2):
    return np.array([*c1, r1, *c2, r2], dtype=float)


def split_pair(x):
    return x[0:2], float(x[2]), x[3:5], float(x[5])


class TestPairNoCollision:
    def test_feasible_input_unchanged(self):
        op = PairNoCollisionProx()
        n = pair_input([0.0, 0.0], 1.0, [5.0, 0.0], 1.0)
        out = op.prox(n, np.ones(4), {})
        np.testing.assert_allclose(out, n)

    def test_output_satisfies_constraint(self):
        op = PairNoCollisionProx()
        for _ in range(50):
            c1 = RNG.normal(size=2)
            c2 = c1 + RNG.normal(scale=0.5, size=2)
            n = pair_input(c1, RNG.uniform(0.1, 2.0), c2, RNG.uniform(0.1, 2.0))
            out = op.prox(n, np.ones(4) * RNG.uniform(0.5, 3.0), {})
            o1, s1, o2, s2 = split_pair(out)
            gap = np.linalg.norm(o1 - o2) - (s1 + s2)
            assert gap >= -1e-9

    def test_active_constraint_when_violated(self):
        op = PairNoCollisionProx()
        n = pair_input([0.0, 0.0], 1.0, [1.0, 0.0], 1.0)  # overlap D=1
        out = op.prox(n, np.ones(4), {})
        o1, s1, o2, s2 = split_pair(out)
        # Projection lands exactly on the boundary.
        assert abs(np.linalg.norm(o1 - o2) - (s1 + s2)) < 1e-9

    def test_symmetric_split_equal_rho(self):
        op = PairNoCollisionProx()
        n = pair_input([0.0, 0.0], 1.0, [1.0, 0.0], 1.0)
        out = op.prox(n, np.ones(4), {})
        o1, s1, o2, s2 = split_pair(out)
        # Equal weights: both disks shrink and move by the same amount.
        assert abs(s1 - s2) < 1e-12
        np.testing.assert_allclose(o1, [-0.25, 0.0])
        np.testing.assert_allclose(o2, [1.25, 0.0])
        assert abs(s1 - 0.75) < 1e-12

    def test_weighted_split_favors_heavy_disk(self):
        op = PairNoCollisionProx()
        n = pair_input([0.0, 0.0], 1.0, [1.0, 0.0], 1.0)
        rho = np.array([10.0, 10.0, 1.0, 1.0])  # disk 1 heavy -> moves less
        out = op.prox(n, rho, {})
        o1, s1, o2, s2 = split_pair(out)
        move1 = np.linalg.norm(o1 - [0.0, 0.0])
        move2 = np.linalg.norm(o2 - [1.0, 0.0])
        assert move1 < move2
        assert (1.0 - s1) < (1.0 - s2)

    def test_coincident_centers_deterministic(self):
        op = PairNoCollisionProx()
        n = pair_input([0.5, 0.5], 1.0, [0.5, 0.5], 1.0)
        out1 = op.prox(n, np.ones(4), {})
        out2 = op.prox(n, np.ones(4), {})
        np.testing.assert_array_equal(out1, out2)
        o1, s1, o2, s2 = split_pair(out1)
        assert np.linalg.norm(o1 - o2) - (s1 + s2) >= -1e-9

    def test_projection_is_closest_feasible_point_1d(self):
        # Brute force on the line: equal rho, 1-D geometry.
        op = PairNoCollisionProx()
        n = pair_input([0.0, 0.0], 1.0, [1.0, 0.0], 1.0)
        out = op.prox(n, np.ones(4), {})
        cost_opt = np.sum((out - n) ** 2)
        # Random feasible candidates must not beat it.
        for _ in range(200):
            d = RNG.uniform(0.0, 3.0)
            r1 = RNG.uniform(0.0, 1.5)
            r2 = RNG.uniform(0.0, max(d - r1, 0.0)) if d > r1 else 0.0
            cand = pair_input([-(d - 1.0) / 2.0, 0.0], r1, [1.0 + (d - 1.0) / 2.0, 0.0], r2)
            if np.linalg.norm(cand[0:2] - cand[3:5]) < r1 + r2 - 1e-12:
                continue
            assert np.sum((cand - n) ** 2) >= cost_opt - 1e-9

    def test_evaluate(self):
        op = PairNoCollisionProx()
        ok = pair_input([0.0, 0.0], 1.0, [3.0, 0.0], 1.0)
        bad = pair_input([0.0, 0.0], 1.0, [1.0, 0.0], 1.0)
        assert op.evaluate(ok, {}) == 0.0
        assert op.evaluate(bad, {}) == float("inf")


class TestWall:
    Q = np.array([0.0, 1.0])  # inward normal: inside is y >= r
    V = np.array([0.0, 0.0])

    def test_inside_unchanged(self):
        op = WallProx()
        n = np.array([0.0, 2.0, 1.0])  # center (0,2), r=1: 2 >= 1 ok
        out = op.prox(n, np.ones(2), {"Q": self.Q, "V": self.V})
        np.testing.assert_allclose(out, n)

    def test_violation_projected_to_boundary(self):
        op = WallProx()
        n = np.array([0.0, 0.5, 1.0])  # 0.5 < 1: violated by 0.5
        out = op.prox(n, np.ones(2), {"Q": self.Q, "V": self.V})
        c, r = out[0:2], out[2]
        assert abs(float(self.Q @ (c - self.V)) - r) < 1e-9
        # Paper's closed form: E = min(0, (g)/2) with g = -0.5.
        np.testing.assert_allclose(out, [0.0, 0.75, 0.75])

    def test_matches_paper_equal_rho_formula(self):
        op = WallProx()
        for _ in range(25):
            n = np.concatenate([RNG.normal(size=2), [RNG.uniform(0.1, 2.0)]])
            Q = RNG.normal(size=2)
            Q = Q / np.linalg.norm(Q)
            V = RNG.normal(size=2)
            out = op.prox(n, np.ones(2), {"Q": Q, "V": V})
            E = min(0.0, 0.5 * (Q @ (n[0:2] - V) - n[2]))
            expected = n + E * np.array([-Q[0], -Q[1], 1.0])
            # Paper formula: (c, r) = (nc, nr) + E(−Q, 1).
            np.testing.assert_allclose(out, expected, atol=1e-9)

    def test_weighted_shifts_burden(self):
        op = WallProx()
        n = np.array([0.0, 0.0, 1.0])  # g = -1
        heavy_center = op.prox(n, np.array([100.0, 1.0]), {"Q": self.Q, "V": self.V})
        # Center nearly fixed; radius absorbs the correction.
        assert abs(heavy_center[1]) < 0.05
        assert heavy_center[2] < 0.05

    def test_evaluate(self):
        op = WallProx()
        assert op.evaluate(np.array([0.0, 2.0, 1.0]), {"Q": self.Q, "V": self.V}) == 0.0
        assert op.evaluate(np.array([0.0, 0.0, 1.0]), {"Q": self.Q, "V": self.V}) == float("inf")


class TestRadiusReward:
    def test_closed_form(self):
        op = RadiusRewardProx(kappa=1.0)
        out = op.prox(np.array([1.0]), np.array([3.0]), {})
        np.testing.assert_allclose(out, [1.5])  # rho n/(rho-1) = 3/2

    def test_requires_rho_above_kappa(self):
        op = RadiusRewardProx(kappa=1.0)
        with pytest.raises(ValueError, match="unbounded"):
            op.prox(np.array([1.0]), np.array([1.0]), {})

    def test_kappa_validation(self):
        with pytest.raises(ValueError):
            RadiusRewardProx(kappa=0.0)

    def test_stationarity(self):
        # d/dr [-kappa/2 r^2 + rho/2 (r-n)^2] = 0 at the output.
        op = RadiusRewardProx(kappa=0.7)
        n, rho = 0.9, 2.5
        r = float(op.prox(np.array([n]), np.array([rho]), {})[0])
        grad = -0.7 * r + rho * (r - n)
        assert abs(grad) < 1e-12

    def test_evaluate(self):
        op = RadiusRewardProx(kappa=2.0)
        assert abs(op.evaluate(np.array([3.0]), {}) + 9.0) < 1e-12
