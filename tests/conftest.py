"""Shared fixtures: canonical small graphs, plus a hang guard.

The fleet/chaos suites (``test_fleet_*``) drive forked worker processes;
a supervision regression there manifests as a *hang*, not a failure.  CI
installs ``pytest-timeout`` for a per-test ceiling; when it is absent
(local runs — it is not a package dependency) a SIGALRM fallback guard
arms the same ceiling for the fleet suites only.  ``REPRO_TEST_TIMEOUT``
overrides the ceiling in seconds; ``0`` disables the fallback (e.g. when
debugging under a debugger that owns SIGALRM).
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.bench.workloads import chain_graph as make_chain_graph
from repro.bench.workloads import figure1_graph as make_figure1_graph
from repro.graph.builder import GraphBuilder
from repro.prox.standard import DiagQuadProx

try:
    import pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False

_GUARDED_PREFIXES = ("test_fleet_",)


def _fallback_timeout() -> float:
    return float(os.environ.get("REPRO_TEST_TIMEOUT", "120"))


@pytest.fixture(autouse=True)
def _hang_guard(request):
    """SIGALRM per-test ceiling for the fleet suites (pytest-timeout stand-in).

    Only armed when pytest-timeout is unavailable, only on the main
    thread's test runs, and only for fleet/chaos test files.  Forked
    workers inherit no alarm (POSIX clears pending alarms across fork),
    so worker processes are unaffected.
    """
    limit = _fallback_timeout()
    if (
        _HAVE_PYTEST_TIMEOUT
        or limit <= 0
        or not request.node.fspath.basename.startswith(_GUARDED_PREFIXES)
        or not hasattr(signal, "SIGALRM")
    ):
        yield
        return

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the {limit:.0f}s hang guard "
            f"(REPRO_TEST_TIMEOUT to adjust)"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.alarm(int(limit))
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture()
def figure1_graph():
    """The paper's Figure-1 graph (see ``repro.bench.workloads.figure1_graph``)."""
    return make_figure1_graph()


@pytest.fixture()
def chain_graph():
    """Chained consensus graph (see ``repro.bench.workloads.chain_graph``)."""
    return make_chain_graph()


@pytest.fixture()
def mixed_dims_graph():
    """Variables of dims 1/2/3 with factors spanning them (layout stressor)."""
    b = GraphBuilder()
    a = b.add_variable(3, name="a")
    c = b.add_variable(2, name="c")
    d = b.add_variable(1, name="d")
    dq3 = DiagQuadProx(dims=(3,))
    dq21 = DiagQuadProx(dims=(2, 1))
    dq123 = DiagQuadProx(dims=(1, 2, 3))
    b.add_factor(dq3, [a], params={"q": np.ones(3), "c": np.array([1.0, -1.0, 0.5])})
    b.add_factor(dq21, [c, d], params={"q": np.ones(3), "c": np.zeros(3)})
    b.add_factor(
        dq123, [d, c, a], params={"q": np.full(6, 2.0), "c": np.arange(6.0)}
    )
    return b.build()
