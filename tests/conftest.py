"""Shared fixtures: canonical small graphs used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.workloads import chain_graph as make_chain_graph
from repro.bench.workloads import figure1_graph as make_figure1_graph
from repro.graph.builder import GraphBuilder
from repro.prox.standard import DiagQuadProx


@pytest.fixture()
def figure1_graph():
    """The paper's Figure-1 graph (see ``repro.bench.workloads.figure1_graph``)."""
    return make_figure1_graph()


@pytest.fixture()
def chain_graph():
    """Chained consensus graph (see ``repro.bench.workloads.chain_graph``)."""
    return make_chain_graph()


@pytest.fixture()
def mixed_dims_graph():
    """Variables of dims 1/2/3 with factors spanning them (layout stressor)."""
    b = GraphBuilder()
    a = b.add_variable(3, name="a")
    c = b.add_variable(2, name="c")
    d = b.add_variable(1, name="d")
    dq3 = DiagQuadProx(dims=(3,))
    dq21 = DiagQuadProx(dims=(2, 1))
    dq123 = DiagQuadProx(dims=(1, 2, 3))
    b.add_factor(dq3, [a], params={"q": np.ones(3), "c": np.array([1.0, -1.0, 0.5])})
    b.add_factor(dq21, [c, d], params={"q": np.ones(3), "c": np.zeros(3)})
    b.add_factor(
        dq123, [d, c, a], params={"q": np.full(6, 2.0), "c": np.arange(6.0)}
    )
    return b.build()
