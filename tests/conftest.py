"""Shared fixtures: canonical small graphs used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder
from repro.prox.standard import ConsensusEqualProx, DiagQuadProx, L1Prox


@pytest.fixture()
def figure1_graph():
    """The paper's Figure-1 graph: f1(w1,w2,w3) f2(w1,w4,w5) f3(w2,w5) f4(w5).

    All functions are benign diagonal quadratics so the graph is solvable.
    """
    b = GraphBuilder()
    w = [b.add_variable(1, name=f"w{i + 1}") for i in range(5)]
    def quad(dims, target):
        return (
            DiagQuadProx(dims=dims),
            {"q": np.ones(sum(dims)), "c": -np.asarray(target, dtype=float)},
        )

    p1, par1 = quad((1, 1, 1), [1.0, 2.0, 3.0])
    p2, par2 = quad((1, 1, 1), [1.0, 4.0, 5.0])
    p3, par3 = quad((1, 1), [2.0, 5.0])
    p4, par4 = quad((1,), [5.0])
    b.add_factor(p1, [w[0], w[1], w[2]], par1)
    b.add_factor(p2, [w[0], w[3], w[4]], par2)
    b.add_factor(p3, [w[1], w[4]], par3)
    b.add_factor(p4, [w[4]], par4)
    return b.build()


@pytest.fixture()
def chain_graph():
    """Six 2-D variables chained with consensus factors + anchors.

    A well-conditioned convex problem exercising mixed groups, used by the
    backend-equivalence and solver tests.
    """
    b = GraphBuilder()
    vs = b.add_variables(6, dim=2)
    dq = DiagQuadProx(dims=(2,))
    ce = ConsensusEqualProx(k=2, dim=2)
    l1 = L1Prox(lam=0.3)
    for i, v in enumerate(vs):
        b.add_factor(dq, [v], params={"q": [1.0, 2.0], "c": [float(i), -1.0]})
    for i in range(5):
        b.add_factor(ce, [vs[i], vs[i + 1]])
    b.add_factor(l1, [vs[0]])
    return b.build()


@pytest.fixture()
def mixed_dims_graph():
    """Variables of dims 1/2/3 with factors spanning them (layout stressor)."""
    b = GraphBuilder()
    a = b.add_variable(3, name="a")
    c = b.add_variable(2, name="c")
    d = b.add_variable(1, name="d")
    dq3 = DiagQuadProx(dims=(3,))
    dq21 = DiagQuadProx(dims=(2, 1))
    dq123 = DiagQuadProx(dims=(1, 2, 3))
    b.add_factor(dq3, [a], params={"q": np.ones(3), "c": np.array([1.0, -1.0, 0.5])})
    b.add_factor(dq21, [c, d], params={"q": np.ones(3), "c": np.zeros(3)})
    b.add_factor(
        dq123, [d, c, a], params={"q": np.full(6, 2.0), "c": np.arange(6.0)}
    )
    return b.build()
