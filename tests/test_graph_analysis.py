"""Unit tests for graph structural analysis."""

import numpy as np
import pytest

from repro.bench.workloads import star_graph
from repro.graph.analysis import (
    degree_histogram,
    factor_degree_stats,
    graph_report,
    is_bipartite_consistent,
    memory_footprint_bytes,
    variable_degree_stats,
)


class TestDegreeStats:
    def test_figure1_variable_stats(self, figure1_graph):
        s = variable_degree_stats(figure1_graph)
        assert (s.min, s.max) == (1, 3)
        assert s.count == 5
        assert abs(s.mean - 9 / 5) < 1e-12

    def test_figure1_factor_stats(self, figure1_graph):
        s = factor_degree_stats(figure1_graph)
        assert (s.min, s.max) == (1, 3)
        assert abs(s.mean - 9 / 4) < 1e-12

    def test_imbalance_of_star(self):
        g = star_graph(30)
        s = variable_degree_stats(g)
        assert s.max == 30
        assert s.imbalance > 10.0

    def test_empty_graph_stats(self):
        from repro.graph.factor_graph import FactorGraph

        g = FactorGraph(var_dims=[], factors=[])
        s = variable_degree_stats(g)
        assert s.count == 0
        assert s.imbalance == 1.0


class TestHistogram:
    def test_var_histogram(self, figure1_graph):
        h = degree_histogram(figure1_graph, "var")
        assert h == {1: 2, 2: 2, 3: 1}

    def test_factor_histogram(self, figure1_graph):
        h = degree_histogram(figure1_graph, "factor")
        assert h == {1: 1, 2: 1, 3: 2}

    def test_bad_side_rejected(self, figure1_graph):
        with pytest.raises(ValueError, match="side"):
            degree_histogram(figure1_graph, "nope")


class TestMemoryFootprint:
    def test_edge_arrays_dominate(self, chain_graph):
        mem = memory_footprint_bytes(chain_graph)
        assert mem["edge_arrays"] == 4 * chain_graph.edge_size * 8
        assert mem["total"] >= mem["edge_arrays"] + mem["z_array"]

    def test_total_is_sum_of_parts(self, chain_graph):
        mem = memory_footprint_bytes(chain_graph)
        parts = sum(v for k, v in mem.items() if k != "total")
        assert mem["total"] == parts


class TestConsistencyAndReport:
    def test_consistency_on_fixtures(self, figure1_graph, chain_graph, mixed_dims_graph):
        for g in (figure1_graph, chain_graph, mixed_dims_graph):
            assert is_bipartite_consistent(g)

    def test_report_contains_key_lines(self, chain_graph):
        text = graph_report(chain_graph)
        assert "var degree" in text
        assert "memory" in text
        assert "imbalance" in text
