"""Backend tests: the correctness premise of the whole paper.

Every scheduling strategy must produce the *same iterates* — the paper's
parallelization claims correctness because the five loops are data-parallel
within each kernel.  These tests assert (near-)bitwise equality across all
five backends, on fixtures and on randomized graphs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.persistent import PersistentWorkerBackend
from repro.backends.process import ProcessBackend
from repro.backends.serial import SerialBackend
from repro.backends.threaded import ThreadedBackend, edge_balanced_boundaries
from repro.backends.vectorized import VectorizedBackend
from repro.core.state import ADMMState
from repro.graph.builder import GraphBuilder
from repro.prox.standard import ConsensusEqualProx, DiagQuadProx, L1Prox
from repro.utils.timing import KernelTimers

ALL_BACKENDS = [
    ("serial", lambda: SerialBackend()),
    ("vectorized", lambda: VectorizedBackend()),
    ("threaded-2", lambda: ThreadedBackend(num_workers=2)),
    ("threaded-3-edges", lambda: ThreadedBackend(num_workers=3, balance="edges")),
    ("persistent-2", lambda: PersistentWorkerBackend(num_workers=2)),
    ("process-2", lambda: ProcessBackend(num_workers=2)),
]


def run_backend(graph, factory, iterations=12, seed=13, rho=1.4, alpha=0.8):
    backend = factory()
    state = ADMMState(graph, rho=rho, alpha=alpha).init_random(0.05, 0.95, seed=seed)
    try:
        backend.prepare(graph)
        backend.run(graph, state, iterations)
    finally:
        backend.close()
    return state


class TestEquivalenceOnFixtures:
    @pytest.mark.parametrize("name,factory", ALL_BACKENDS[1:])
    def test_matches_serial_on_chain(self, name, factory, chain_graph):
        ref = run_backend(chain_graph, lambda: SerialBackend())
        got = run_backend(chain_graph, factory)
        np.testing.assert_allclose(got.z, ref.z, atol=1e-12, err_msg=name)
        np.testing.assert_allclose(got.u, ref.u, atol=1e-12, err_msg=name)
        np.testing.assert_allclose(got.x, ref.x, atol=1e-12, err_msg=name)

    @pytest.mark.parametrize("name,factory", ALL_BACKENDS[1:])
    def test_matches_serial_on_mixed_dims(self, name, factory, mixed_dims_graph):
        ref = run_backend(mixed_dims_graph, lambda: SerialBackend())
        got = run_backend(mixed_dims_graph, factory)
        np.testing.assert_allclose(got.z, ref.z, atol=1e-12, err_msg=name)

    @pytest.mark.parametrize("name,factory", ALL_BACKENDS)
    def test_iteration_counter(self, name, factory, figure1_graph):
        got = run_backend(figure1_graph, factory, iterations=7)
        assert got.iteration == 7

    @pytest.mark.parametrize("name,factory", ALL_BACKENDS)
    def test_zero_iterations_noop(self, name, factory, figure1_graph):
        backend = factory()
        s = ADMMState(figure1_graph).init_random(seed=3)
        before = s.z.copy()
        try:
            backend.prepare(figure1_graph)
            backend.run(figure1_graph, s, 0)
        finally:
            backend.close()
        np.testing.assert_array_equal(s.z, before)

    @pytest.mark.parametrize("name,factory", ALL_BACKENDS)
    def test_negative_iterations_rejected(self, name, factory, figure1_graph):
        backend = factory()
        s = ADMMState(figure1_graph)
        try:
            with pytest.raises(ValueError):
                backend.run(figure1_graph, s, -1)
        finally:
            backend.close()


class TestEquivalenceRandomized:
    @given(
        seed=st.integers(0, 10_000),
        n_vars=st.integers(2, 10),
        n_factors=st.integers(1, 12),
    )
    @settings(max_examples=15, deadline=None)
    def test_vectorized_matches_serial_on_random_graphs(
        self, seed, n_vars, n_factors
    ):
        rng = np.random.default_rng(seed)
        b = GraphBuilder()
        dims = [int(rng.integers(1, 4)) for _ in range(n_vars)]
        vs = [b.add_variable(d) for d in dims]
        prox_cache = {}
        for _ in range(n_factors):
            k = int(rng.integers(1, min(3, n_vars) + 1))
            scope = list(rng.choice(n_vars, size=k, replace=False))
            key = tuple(dims[v] for v in scope)
            if key not in prox_cache:
                prox_cache[key] = DiagQuadProx(dims=key)
            L = sum(key)
            b.add_factor(
                prox_cache[key],
                scope,
                params={"q": rng.uniform(0.1, 2.0, L), "c": rng.normal(size=L)},
            )
        # Ensure every variable is touched so the z-update is defined.
        for v in vs:
            key = (dims[v],)
            if key not in prox_cache:
                prox_cache[key] = DiagQuadProx(dims=key)
            b.add_factor(
                prox_cache[key], [v], params={"q": np.ones(dims[v]), "c": np.zeros(dims[v])}
            )
        g = b.build()
        ref = run_backend(g, lambda: SerialBackend(), iterations=6, seed=seed)
        got = run_backend(g, lambda: VectorizedBackend(), iterations=6, seed=seed)
        np.testing.assert_allclose(got.z, ref.z, atol=1e-11)
        np.testing.assert_allclose(got.n, ref.n, atol=1e-11)


class TestTimers:
    @pytest.mark.parametrize("name,factory", ALL_BACKENDS)
    def test_timers_populated(self, name, factory, chain_graph):
        backend = factory()
        s = ADMMState(chain_graph).init_random(seed=2)
        timers = KernelTimers()
        try:
            backend.prepare(chain_graph)
            backend.run(chain_graph, s, 3, timers)
        finally:
            backend.close()
        assert timers.total > 0.0
        for k in ("x", "m", "z", "u", "n"):
            assert timers[k].calls == 3, f"{name} kernel {k}"

    def test_fractions_from_timers(self, chain_graph):
        s = ADMMState(chain_graph).init_random(seed=2)
        timers = KernelTimers()
        VectorizedBackend().run(chain_graph, s, 5, timers)
        fr = timers.fractions()
        assert abs(sum(fr.values()) - 1.0) < 1e-9


class TestThreadedDetails:
    def test_edge_balanced_boundaries_cover(self, chain_graph):
        bounds = edge_balanced_boundaries(chain_graph, 3)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == chain_graph.z_size
        for (a, b_), (c, _) in zip(bounds, bounds[1:]):
            assert b_ == c

    def test_edge_balanced_boundaries_balance_star(self):
        from repro.bench.workloads import star_graph

        g = star_graph(200)
        bounds = edge_balanced_boundaries(g, 4)
        nnz = np.diff(g.scatter_matrix.indptr)
        loads = [nnz[a:b_].sum() for a, b_ in bounds]
        assert max(loads) <= nnz.sum() / 4 + nnz.max()

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ThreadedBackend(num_workers=0)
        with pytest.raises(ValueError):
            ThreadedBackend(balance="nope")

    def test_reprepare_on_new_graph(self, chain_graph, figure1_graph):
        backend = ThreadedBackend(num_workers=2)
        try:
            s1 = ADMMState(chain_graph).init_random(seed=1)
            backend.run(chain_graph, s1, 2)
            s2 = ADMMState(figure1_graph).init_random(seed=1)
            backend.run(figure1_graph, s2, 2)  # must re-prepare internally
            assert s2.iteration == 2
        finally:
            backend.close()


class TestProcessDetails:
    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ProcessBackend(num_workers=0)

    def test_reuse_across_runs(self, chain_graph):
        backend = ProcessBackend(num_workers=2)
        try:
            s = ADMMState(chain_graph).init_random(seed=6)
            ref = s.copy()
            backend.run(chain_graph, s, 4)
            SerialBackend().run(chain_graph, ref, 4)
            np.testing.assert_allclose(s.z, ref.z, atol=1e-12)
            # Second run on the same pool continues correctly.
            backend.run(chain_graph, s, 4)
            SerialBackend().run(chain_graph, ref, 4)
            np.testing.assert_allclose(s.z, ref.z, atol=1e-12)
        finally:
            backend.close()

    def test_close_is_idempotent(self, chain_graph):
        backend = ProcessBackend(num_workers=2)
        backend.prepare(chain_graph)
        backend.close()
        backend.close()
