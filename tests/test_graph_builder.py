"""Unit tests for GraphBuilder and construction helpers."""

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder, graph_from_edges, start_graph
from repro.prox.standard import ZeroProx


class TestGraphBuilder:
    def test_add_variable_returns_sequential_ids(self):
        b = GraphBuilder()
        assert b.add_variable(1) == 0
        assert b.add_variable(3) == 1
        assert b.num_vars == 2

    def test_add_variables_bulk(self):
        from repro.graph import DegenerateGraphWarning

        b = GraphBuilder()
        ids = b.add_variables(4, dim=2, prefix="x")
        assert ids == [0, 1, 2, 3]
        with pytest.warns(DegenerateGraphWarning):  # no factors yet: all isolated
            g = b.build()
        assert g.var_names == ("x0", "x1", "x2", "x3")

    def test_add_variables_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            GraphBuilder().add_variables(-1)

    def test_zero_dim_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            GraphBuilder().add_variable(0)

    def test_add_factor_returns_sequential_ids(self):
        b = GraphBuilder()
        b.add_variables(2)
        z = ZeroProx()
        assert b.add_factor(z, [0]) == 0
        assert b.add_factor(z, [1]) == 1
        assert b.num_factors == 2

    def test_add_node_alias(self):
        b = GraphBuilder()
        b.add_variable(1)
        assert b.add_node is b.add_factor or b.add_node.__func__ is b.add_factor.__func__

    def test_params_frozen_as_float_arrays(self):
        b = GraphBuilder()
        b.add_variable(1)
        b.add_factor(ZeroProx(), [0], params={"p": [1, 2, 3]})
        g = b.build()
        p = g.factors[0].params["p"]
        assert p.dtype == np.float64
        np.testing.assert_array_equal(p, [1.0, 2.0, 3.0])

    def test_start_graph_returns_builder(self):
        assert isinstance(start_graph(), GraphBuilder)

    def test_default_variable_names(self):
        b = GraphBuilder()
        b.add_variable(1)
        b.add_variable(1, name="named")
        b.add_factor(ZeroProx(), [0, 1])
        g = b.build()
        assert g.var_names == ("v0", "named")


class TestGraphFromEdges:
    def test_uniform_dims(self):
        z = ZeroProx()
        g = graph_from_edges([z, z], [[0, 1], [1, 2]], var_dims=2)
        assert g.num_vars == 3
        assert all(d == 2 for d in g.var_dims)
        assert g.num_edges == 4

    def test_explicit_dims(self):
        z = ZeroProx()
        g = graph_from_edges([z], [[0, 1]], var_dims=[3, 1])
        assert list(g.var_dims) == [3, 1]
        assert g.edge_size == 4

    def test_params_by_factor(self):
        z = ZeroProx()
        g = graph_from_edges(
            [z, z],
            [[0], [1]],
            var_dims=1,
            params_by_factor=[{"a": [1.0]}, {"a": [2.0]}],
        )
        assert float(g.factors[1].params["a"][0]) == 2.0

    def test_length_mismatch_rejected(self):
        z = ZeroProx()
        with pytest.raises(ValueError, match="entries"):
            graph_from_edges([z], [[0], [1]])
        with pytest.raises(ValueError, match="params_by_factor"):
            graph_from_edges([z], [[0]], params_by_factor=[None, None])

    def test_empty_scopes_allowed_when_no_factors(self):
        g = graph_from_edges([], [], var_dims=1)
        assert g.num_factors == 0
        assert g.num_vars == 0
