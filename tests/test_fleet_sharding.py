"""Unit tests for the sharded fleet solver (repro.core.sharded).

The central claim: splitting a fleet into contiguous instance-block shards
driven by parallel workers changes *where* sweeps execute, never their
math — iterates, residuals, stopping decisions, and ρ-schedules match the
single-process :class:`BatchedSolver` exactly.  (The fleet equivalence
matrix in ``tests/test_fleet_equivalence.py`` covers backend x variant
cells; this module covers the solver's own contracts.)
"""

import numpy as np
import pytest

from repro.core.batched import BatchedSolver
from repro.core.parameters import ResidualBalancing
from repro.core.sharded import ShardedBatchedSolver
from repro.graph.batch import replicate_graph
from repro.graph.builder import GraphBuilder
from repro.prox.standard import DiagQuadProx


def quad_template():
    b = GraphBuilder()
    w = b.add_variable(2)
    b.add_factor(
        DiagQuadProx(dims=(2,)),
        [w],
        params={"q": np.ones(2), "c": np.zeros(2)},
    )
    return b.build()


def quad_batch(targets):
    overrides = [{0: {"c": -np.asarray(t, dtype=float)}} for t in targets]
    return replicate_graph(quad_template(), len(targets), overrides)


TARGETS = np.random.default_rng(21).normal(size=(5, 2)) * 3.0


class TestConstruction:
    def test_validation(self):
        batch = quad_batch(TARGETS)
        with pytest.raises(ValueError):
            ShardedBatchedSolver(batch, num_shards=0)
        with pytest.raises(ValueError):
            ShardedBatchedSolver(batch, num_shards=6)
        with pytest.raises(ValueError):
            ShardedBatchedSolver(batch, mode="gpu")
        with pytest.raises(ValueError):
            ShardedBatchedSolver(batch, variant="quantum")

    def test_shard_bounds_cover_fleet(self):
        with ShardedBatchedSolver(
            quad_batch(TARGETS), num_shards=3, mode="thread"
        ) as solver:
            bounds = solver.shard_bounds()
            assert bounds[0][0] == 0 and bounds[-1][1] == 5
            assert all(b0 == a1 for (_, a1), (b0, _) in zip(bounds, bounds[1:]))
            assert solver.batch_size == 5
            assert "shards" in solver.summary()

    def test_per_instance_rho_forms(self):
        rho_b = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        with ShardedBatchedSolver(
            quad_batch(TARGETS), num_shards=2, mode="thread", rho=rho_b
        ) as solver:
            np.testing.assert_allclose(solver.rho_rows()[:, 0], rho_b)
        Et = quad_template().num_edges
        rho_be = np.tile(rho_b[:, None], (1, Et)) * 2.0
        with ShardedBatchedSolver(
            quad_batch(TARGETS), num_shards=2, mode="thread", rho=rho_be
        ) as solver:
            np.testing.assert_allclose(solver.rho_rows(), rho_be)
        with pytest.raises(ValueError):
            ShardedBatchedSolver(
                quad_batch(TARGETS), num_shards=2, mode="thread", rho=np.ones(3)
            )


@pytest.mark.parametrize("mode", ["thread", "process"])
class TestMatchesBatched:
    def test_iterate_bitwise_equal(self, mode):
        plain = BatchedSolver(quad_batch(TARGETS), rho=1.4)
        plain.initialize("zeros")
        plain.iterate(17)
        with ShardedBatchedSolver(
            quad_batch(TARGETS), num_shards=2, mode=mode, rho=1.4
        ) as solver:
            solver.initialize("zeros")
            solver.iterate(17)
            np.testing.assert_array_equal(solver.fleet_z(), plain.state.z)
            assert solver.iteration == plain.state.iteration == 17
        plain.close()

    def test_solve_batch_full_parity(self, mode):
        plain = BatchedSolver(quad_batch(TARGETS), rho=0.9)
        ref = plain.solve_batch(max_iterations=200, check_every=5, init="zeros")
        with ShardedBatchedSolver(
            quad_batch(TARGETS), num_shards=3, mode=mode, rho=0.9
        ) as solver:
            got = solver.solve_batch(max_iterations=200, check_every=5, init="zeros")
        for a, b in zip(got, ref):
            np.testing.assert_array_equal(a.z, b.z)
            assert a.converged == b.converged
            assert a.iterations == b.iterations
            assert a.history.primal == b.history.primal
            assert a.history.dual == b.history.dual
            assert a.residuals.primal == b.residuals.primal
        plain.close()

    def test_schedule_parity_and_frozen_rho(self, mode):
        # Instance 0 starts at its optimum and freezes early; the schedule
        # must adapt the straggler's rho only, in both solvers.
        targets = np.array([[0.0, 0.0], [40.0, -40.0]])
        schedule = ResidualBalancing(mu=1.0001, tau=2.0)
        plain = BatchedSolver(quad_batch(targets), rho=100.0, schedule=schedule)
        ref = plain.solve_batch(max_iterations=300, check_every=5, init="zeros")
        with ShardedBatchedSolver(
            quad_batch(targets),
            num_shards=2,
            mode=mode,
            rho=100.0,
            schedule=schedule,
        ) as solver:
            got = solver.solve_batch(max_iterations=300, check_every=5, init="zeros")
            rows = solver.rho_rows()
            assert np.allclose(rows[0], 100.0), "frozen instance's rho moved"
            assert not np.allclose(rows[1], 100.0), "schedule never fired"
        for a, b in zip(got, ref):
            assert a.iterations == b.iterations
            np.testing.assert_array_equal(a.z, b.z)
        plain.close()


class TestContracts:
    def test_zero_iterations_contract(self):
        with ShardedBatchedSolver(
            quad_batch(TARGETS), num_shards=2, mode="thread"
        ) as solver:
            results = solver.solve_batch(max_iterations=0, init="zeros")
            for r in results:
                assert r.iterations == 0
                assert not r.converged
                assert r.residuals is not None
                assert len(r.history) == 1

    def test_invalid_solve_args(self):
        with ShardedBatchedSolver(
            quad_batch(TARGETS), num_shards=2, mode="thread"
        ) as solver:
            with pytest.raises(ValueError):
                solver.solve_batch(max_iterations=-1)
            with pytest.raises(ValueError):
                solver.solve_batch(check_every=0)
            with pytest.raises(ValueError):
                solver.iterate(-1)
            with pytest.raises(ValueError):
                solver.initialize("magic")

    def test_warm_start_pool_cycles_across_shards(self):
        with ShardedBatchedSolver(
            quad_batch(TARGETS), num_shards=2, mode="thread"
        ) as solver:
            zt = solver.batch.template.z_size
            pool = np.arange(2 * zt, dtype=float).reshape(2, zt)
            solver.warm_start_pool(pool)
            np.testing.assert_array_equal(
                solver.split_z(), pool[[0, 1, 0, 1, 0]]
            )

    def test_worker_error_propagates_instead_of_hanging(self):
        """A sweep exception inside a forked worker fails the solve with a
        shard-labelled RuntimeError; the solver then shuts down (the fleet
        iterate is no longer consistent) instead of reusing stale queues."""
        from repro.core.parameters import apply_rho_scale

        b = GraphBuilder()
        w = b.add_variable(2)
        # Non-convex curvature: the diag-quad prox is defined only while
        # q + rho > 0, so shrinking rho below |q| raises inside the sweep.
        b.add_factor(
            DiagQuadProx(dims=(2,)),
            [w],
            params={"q": np.full(2, -0.5), "c": np.zeros(2)},
        )
        batch = replicate_graph(b.build(), 2)
        solver = ShardedBatchedSolver(batch, num_shards=2, mode="process", rho=1.0)
        solver.iterate(2)
        for shard in solver.shards:
            apply_rho_scale(shard.state, 0.2)  # rho -> 0.2 < |q|
        with pytest.raises(RuntimeError, match="sweep failed"):
            solver.iterate(1)
        with pytest.raises(RuntimeError, match="closed"):
            solver.iterate(1)
        solver.close()

    def test_thread_mode_error_also_closes_solver(self):
        """Thread mode mirrors process mode: a sweep exception shuts the
        solver down instead of leaving shards desynchronized."""
        from repro.core.parameters import apply_rho_scale

        b = GraphBuilder()
        w = b.add_variable(2)
        b.add_factor(
            DiagQuadProx(dims=(2,)),
            [w],
            params={"q": np.full(2, -0.5), "c": np.zeros(2)},
        )
        batch = replicate_graph(b.build(), 2)
        solver = ShardedBatchedSolver(batch, num_shards=2, mode="thread", rho=1.0)
        solver.iterate(2)
        for shard in solver.shards:
            apply_rho_scale(shard.state, 0.2)
        with pytest.raises(ValueError, match="diag_quad prox undefined"):
            solver.iterate(1)
        with pytest.raises(RuntimeError, match="closed"):
            solver.iterate(1)
        solver.close()

    def test_kept_iterate_past_cap_still_reports_residuals(self):
        """solve_batch(init="keep") on an iterate already past the cap
        follows the max_iterations=0 contract: one residual check, no
        sweeps, converged=False."""
        with ShardedBatchedSolver(
            quad_batch(TARGETS), num_shards=2, mode="thread"
        ) as solver:
            solver.initialize("zeros")
            solver.iterate(10)
            results = solver.solve_batch(max_iterations=5, init="keep")
            for r in results:
                assert r.iterations == 10
                assert not r.converged
                assert r.residuals is not None
                assert len(r.history) == 1

    def test_close_is_idempotent_and_blocks_runs(self):
        solver = ShardedBatchedSolver(
            quad_batch(TARGETS), num_shards=2, mode="process"
        )
        solver.iterate(2)
        solver.close()
        solver.close()
        with pytest.raises(RuntimeError):
            solver.iterate(1)

    def test_single_shard_degenerates_to_batched(self):
        plain = BatchedSolver(quad_batch(TARGETS), rho=1.1)
        plain.initialize("zeros")
        plain.iterate(10)
        with ShardedBatchedSolver(
            quad_batch(TARGETS), num_shards=1, mode="thread", rho=1.1
        ) as solver:
            solver.initialize("zeros")
            solver.iterate(10)
            np.testing.assert_array_equal(solver.fleet_z(), plain.state.z)
        plain.close()


class TestInterruptAndShutdownSafety:
    """ISSUE 6 satellites: interrupts and crashes never leak worker
    processes, and ``close()`` is hardened against both."""

    @staticmethod
    def _assert_no_orphans():
        import multiprocessing as mp
        import time

        deadline = time.monotonic() + 10.0
        while mp.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not mp.active_children(), (
            f"orphaned worker processes: {mp.active_children()}"
        )

    def test_keyboard_interrupt_mid_sweep_leaves_no_orphans(self, monkeypatch):
        """Ctrl-C while the parent waits on workers must tear the fleet
        down on the way out — no zombie shard processes."""
        solver = ShardedBatchedSolver(
            quad_batch(TARGETS), num_shards=2, mode="process"
        )
        solver.iterate(1)

        def interrupt(shard):
            raise KeyboardInterrupt

        monkeypatch.setattr(solver, "_collect", interrupt)
        with pytest.raises(KeyboardInterrupt):
            solver.iterate(3)
        monkeypatch.undo()
        with pytest.raises(RuntimeError, match="closed"):
            solver.iterate(1)
        solver.close()  # still idempotent after the interrupt path
        self._assert_no_orphans()

    def test_rebalancing_interrupt_mid_sweep_leaves_no_orphans(self, monkeypatch):
        from repro.core.rebalance import RebalancingShardedSolver

        solver = RebalancingShardedSolver(
            quad_batch(TARGETS), num_shards=2, mode="process"
        )
        solver.iterate(1)

        def interrupt(idx, what):
            raise KeyboardInterrupt

        monkeypatch.setattr(solver, "_collect", interrupt)
        with pytest.raises(KeyboardInterrupt):
            solver.iterate(3)
        monkeypatch.undo()
        with pytest.raises(RuntimeError, match="closed"):
            solver.iterate(1)
        solver.close()
        self._assert_no_orphans()

    def test_close_after_worker_crash_neither_hangs_nor_leaks(self):
        """close() on a fleet whose worker was SIGKILLed mid-life: the
        polite stop is skipped for the corpse, queues are torn down, and
        repeated close stays a no-op."""
        import os
        import signal

        for make in (
            lambda: ShardedBatchedSolver(
                quad_batch(TARGETS), num_shards=2, mode="process"
            ),
            lambda: __import__(
                "repro.core.rebalance", fromlist=["RebalancingShardedSolver"]
            ).RebalancingShardedSolver(
                quad_batch(TARGETS), num_shards=2, mode="process"
            ),
        ):
            solver = make()
            solver.iterate(1)
            procs = [
                slot.proc
                for slot in getattr(solver, "_workers", None) or solver.shards
            ]
            os.kill(procs[0].pid, signal.SIGKILL)
            procs[0].join(timeout=10)
            solver.close()
            solver.close()
            self._assert_no_orphans()
