"""Unit tests for the five Algorithm-2 kernels (all scheduling forms)."""

import numpy as np
import pytest

from repro.core import updates
from repro.core.state import ADMMState


def random_state(graph, seed=0, rho=1.7, alpha=0.9):
    s = ADMMState(graph, rho=rho, alpha=alpha)
    s.init_random(0.05, 0.95, seed=seed)
    return s


class TestVectorizedKernels:
    def test_m_update(self, chain_graph):
        s = random_state(chain_graph)
        expected = s.x + s.u
        updates.m_update(chain_graph, s)
        np.testing.assert_array_equal(s.m, expected)

    def test_z_update_is_weighted_average(self, chain_graph):
        g = chain_graph
        s = random_state(g)
        updates.z_update(g, s)
        # Every z slot must lie within [min, max] of its incoming m slots.
        for b in range(g.num_vars):
            edges = g.edges_of_var(b)
            msgs = np.stack([s.m[g.edge_slots(e)] for e in edges])
            lo, hi = msgs.min(axis=0), msgs.max(axis=0)
            zb = s.z[g.var_slots(b)]
            assert np.all(zb >= lo - 1e-12) and np.all(zb <= hi + 1e-12)

    def test_z_update_uniform_rho_is_plain_mean(self, figure1_graph):
        g = figure1_graph
        s = random_state(g, rho=2.0)
        updates.z_update(g, s)
        for b in range(g.num_vars):
            edges = g.edges_of_var(b)
            mean = np.mean([s.m[g.edge_slots(e)] for e in edges], axis=0)
            np.testing.assert_allclose(s.z[g.var_slots(b)], mean, atol=1e-12)

    def test_z_update_respects_rho_weights(self, figure1_graph):
        g = figure1_graph
        s = random_state(g)
        rho = np.ones(g.num_edges)
        rho[0] = 100.0  # edge (f1, w1) dominates w1's average
        s.set_rho(rho)
        updates.z_update(g, s)
        heavy_msg = s.m[g.edge_slots(0)]
        np.testing.assert_allclose(s.z[g.var_slots(0)], heavy_msg, atol=0.05)

    def test_u_update(self, chain_graph):
        g = chain_graph
        s = random_state(g)
        u_before = s.u.copy()
        updates.z_update(g, s)
        updates.u_update(g, s)
        expected = u_before + s.alpha_slots * (s.x - s.z[g.flat_edge_to_z])
        np.testing.assert_allclose(s.u, expected, atol=1e-15)

    def test_n_update(self, chain_graph):
        g = chain_graph
        s = random_state(g)
        updates.n_update(g, s)
        np.testing.assert_array_equal(s.n, s.z[g.flat_edge_to_z] - s.u)

    def test_x_update_writes_all_slots(self, chain_graph):
        g = chain_graph
        s = random_state(g)
        s.x.fill(np.nan)
        updates.x_update(g, s)
        assert np.all(np.isfinite(s.x))

    def test_run_iteration_increments_counter(self, chain_graph):
        s = random_state(chain_graph)
        updates.run_iteration(chain_graph, s)
        assert s.iteration == 1

    def test_isolated_variable_keeps_z(self):
        import pytest

        from repro.graph import DegenerateGraphWarning
        from repro.graph.builder import GraphBuilder
        from repro.prox.standard import ZeroProx

        b = GraphBuilder()
        b.add_variables(2, dim=1)
        b.add_factor(ZeroProx(), [0])
        with pytest.warns(DegenerateGraphWarning):
            g = b.build()
        s = ADMMState(g)
        s.z[:] = [5.0, 7.0]
        s.m[:] = 1.0
        updates.z_update(g, s)
        assert s.z[1] == 7.0  # isolated: untouched
        assert s.z[0] == 1.0

    def test_bad_prox_shape_raises(self, chain_graph):
        class Broken:
            name = "broken"

            def prox_batch(self, n, rho, params):
                return np.zeros((1, 1))

        grp = chain_graph.groups[0]
        orig = grp.prox
        try:
            grp.prox = Broken()
            s = random_state(chain_graph)
            with pytest.raises(ValueError, match="returned"):
                updates.x_update_group(chain_graph, s, grp)
        finally:
            grp.prox = orig


class TestSerialMatchesVectorized:
    @pytest.mark.parametrize("fixture", ["figure1_graph", "chain_graph", "mixed_dims_graph"])
    def test_one_iteration_identical(self, fixture, request):
        g = request.getfixturevalue(fixture)
        sv = random_state(g, seed=9)
        ss = sv.copy()
        updates.run_iteration(g, sv)
        updates.run_iteration_serial(g, ss)
        np.testing.assert_allclose(sv.x, ss.x, atol=1e-13)
        np.testing.assert_allclose(sv.z, ss.z, atol=1e-13)
        np.testing.assert_allclose(sv.u, ss.u, atol=1e-13)
        np.testing.assert_allclose(sv.n, ss.n, atol=1e-13)

    def test_ten_iterations_identical(self, chain_graph):
        sv = random_state(chain_graph, seed=4)
        ss = sv.copy()
        for _ in range(10):
            updates.run_iteration(chain_graph, sv)
            updates.run_iteration_serial(chain_graph, ss)
        np.testing.assert_allclose(sv.z, ss.z, atol=1e-12)


class TestRangeKernels:
    def test_m_range_composition(self, chain_graph):
        g = chain_graph
        full = random_state(g, seed=2)
        chunked = full.copy()
        updates.m_update(g, full)
        mid = g.edge_size // 2
        updates.m_update_range(g, chunked, 0, mid)
        updates.m_update_range(g, chunked, mid, g.edge_size)
        np.testing.assert_array_equal(full.m, chunked.m)

    def test_z_range_composition(self, chain_graph):
        g = chain_graph
        full = random_state(g, seed=3)
        chunked = full.copy()
        updates.z_update(g, full)
        weighted = chunked.rho_slots * chunked.m
        mid = g.z_size // 2
        updates.z_update_range(g, chunked, weighted, 0, mid)
        updates.z_update_range(g, chunked, weighted, mid, g.z_size)
        np.testing.assert_allclose(full.z, chunked.z, atol=1e-15)

    def test_u_n_range_composition(self, chain_graph):
        g = chain_graph
        full = random_state(g, seed=5)
        chunked = full.copy()
        updates.u_update(g, full)
        updates.n_update(g, full)
        for s0, s1 in [(0, 7), (7, g.edge_size)]:
            updates.u_update_range(g, chunked, s0, s1)
            updates.n_update_range(g, chunked, s0, s1)
        np.testing.assert_allclose(full.u, chunked.u, atol=1e-15)
        np.testing.assert_allclose(full.n, chunked.n, atol=1e-15)

    def test_x_group_range_composition(self, chain_graph):
        g = chain_graph
        full = random_state(g, seed=6)
        chunked = full.copy()
        updates.x_update(g, full)
        for grp in g.groups:
            mid = grp.size // 2
            updates.x_update_group_range(g, chunked, grp, 0, mid)
            updates.x_update_group_range(g, chunked, grp, mid, grp.size)
        np.testing.assert_allclose(full.x, chunked.x, atol=1e-15)

    def test_empty_ranges_are_noops(self, chain_graph):
        g = chain_graph
        s = random_state(g, seed=7)
        before = s.m.copy()
        updates.m_update_range(g, s, 3, 3)
        np.testing.assert_array_equal(s.m, before)
        updates.z_update_range(g, s, s.m, 2, 2)
        updates.x_update_group_range(g, s, g.groups[0], 1, 1)
