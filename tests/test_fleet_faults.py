"""Chaos suite: worker crashes, hangs, and corrupt queues under solving.

Seeded fault plans (:mod:`repro.testing.faults`) SIGKILL workers, sever or
delay result queues, and corrupt replies while the process-mode fleet
solvers run.  The acceptance bar is the same as the churn suite's
(``tests/test_fleet_churn.py``): a faulted solve must match its fault-free
twin **bit-identically** — supervision recovers the machinery, never the
math — and every crash/restart/failover/migration must land in the
solver's :attr:`fault_log`.  A dead worker must be *detected* within one
``wait_timeout``, never by hanging (the suite itself is the regression
test: a hang here fails the CI timeout ceiling).

The seed list is a matrix: CI gates on the defaults and runs extra seeds
via ``REPRO_FAULT_SEEDS`` (comma-separated ints, replacing the defaults).
Fork-heavy tests keep fleets small — one template factor, 4-8 instances.
"""

import multiprocessing as mp
import os
import time

import numpy as np
import pytest

from repro.core.batched import BatchedSolver
from repro.core.parameters import ResidualBalancing
from repro.core.rebalance import RebalancingShardedSolver
from repro.core.sharded import ShardedBatchedSolver
from repro.core.supervision import FaultLog, WorkerPolicy
from repro.graph.batch import replicate_graph
from repro.graph.builder import GraphBuilder
from repro.prox.standard import DiagQuadProx
from repro.testing.faults import FaultAction, FaultInjector, FaultPlan, kill_worker

DEFAULT_SEEDS = (0, 1)

#: Fast supervision for tests: failures surface in tenths of a second.
FAST = WorkerPolicy(
    heartbeat_interval=0.05,
    wait_timeout=2.0,
    poll_interval=0.05,
    max_restarts=2,
    backoff=0.01,
)


def fault_seeds():
    override = [
        int(tok)
        for tok in os.environ.get("REPRO_FAULT_SEEDS", "").split(",")
        if tok.strip()
    ]
    return override if override else list(DEFAULT_SEEDS)


def quad_template():
    b = GraphBuilder()
    w = b.add_variable(2)
    b.add_factor(
        DiagQuadProx(dims=(2,)),
        [w],
        params={"q": np.ones(2), "c": np.zeros(2)},
    )
    return b.build()


def overrides_for(targets):
    return [{0: {"c": -np.asarray(t, dtype=float)}} for t in targets]


def quad_fleet(targets):
    return replicate_graph(quad_template(), len(targets), overrides_for(targets))


def assert_no_orphans():
    deadline = time.monotonic() + 10.0
    while mp.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert not mp.active_children(), (
        f"orphaned worker processes: {mp.active_children()}"
    )


def assert_results_equal(got, ref, atol=0.0):
    """Trajectory equality: bit-exact by default, 1e-10 for references
    whose compute path legitimately differs (three-weight/async solvers)."""
    for a, b in zip(got, ref):
        assert a.iterations == b.iterations
        assert a.converged == b.converged
        if atol == 0.0:
            np.testing.assert_array_equal(a.z, b.z)
            assert a.history.primal == b.history.primal
            assert a.history.dual == b.history.dual
            assert a.history.rho == b.history.rho
        else:
            np.testing.assert_allclose(a.z, b.z, atol=atol)
            np.testing.assert_allclose(a.history.primal, b.history.primal, atol=atol)
            np.testing.assert_allclose(a.history.dual, b.history.dual, atol=atol)


# --------------------------------------------------------------------- #
# Plumbing units: policy, log, plan.                                     #
# --------------------------------------------------------------------- #
def test_worker_policy_validation():
    WorkerPolicy(wait_timeout=None)  # None waits forever: allowed
    with pytest.raises(ValueError, match="wait_timeout"):
        WorkerPolicy(wait_timeout=0.0)
    with pytest.raises(ValueError, match="poll_interval"):
        WorkerPolicy(poll_interval=-1.0)
    with pytest.raises(ValueError, match="poll_interval"):
        WorkerPolicy(wait_timeout=1.0, poll_interval=2.0)
    with pytest.raises(ValueError, match="max_restarts"):
        WorkerPolicy(max_restarts=-1)
    with pytest.raises(ValueError, match="backoff_factor"):
        WorkerPolicy(backoff_factor=0.5)
    p = WorkerPolicy(backoff=0.1, backoff_factor=3.0)
    assert p.restart_delay(0) == pytest.approx(0.1)
    assert p.restart_delay(2) == pytest.approx(0.9)


def test_fault_log_records_and_filters():
    log = FaultLog()
    assert not log and len(log) == 0
    log.record("crash", 3, 1, "boom")
    log.record("restart", 3, 1, "respawn")
    log.record("migration", 3, 1, "moved", instances=(4, 5))
    assert [e.kind for e in log] == ["crash", "restart", "migration"]
    assert len(log.crashes) == len(log.restarts) == len(log.migrations) == 1
    assert log.migrations[0].instances == (4, 5)
    assert "crash=1" in log.summary()
    with pytest.raises(ValueError, match="kind"):
        log.record("explode", 0, 0, "nope")


def test_fault_plan_parse_roundtrip_and_random():
    plan = FaultPlan.parse(" kill:0@2, corrupt:1@3 ,delay:0@1:0.5 ")
    assert [a.kind for a in plan] == ["delay", "kill", "corrupt"]  # by segment
    assert plan.for_segment(2) == [FaultAction("kill", 0, 2)]
    assert FaultPlan.parse(plan.spec()).spec() == plan.spec()
    with pytest.raises(ValueError, match="bad fault spec"):
        FaultPlan.parse("kill@0:2")
    with pytest.raises(ValueError, match="kind"):
        FaultPlan.parse("explode:0@1")
    r1 = FaultPlan.random(4, 3, 5, seed=9, kinds=("kill", "drop"))
    r2 = FaultPlan.random(4, 3, 5, seed=9, kinds=("kill", "drop"))
    assert r1.spec() == r2.spec() and len(r1) == 4
    assert all(a.shard < 3 and a.segment < 5 for a in r1)


def test_injector_requires_process_mode():
    fleet = quad_fleet(np.ones((4, 2)))
    inj = FaultInjector("kill:0@0")
    with pytest.raises(ValueError, match="process"):
        RebalancingShardedSolver(fleet, num_shards=2, mode="thread", injector=inj)
    with pytest.raises(ValueError, match="process"):
        ShardedBatchedSolver(fleet, num_shards=2, mode="thread", injector=inj)


# --------------------------------------------------------------------- #
# Rebalancing solver: crash recovery is bit-identical.                   #
# --------------------------------------------------------------------- #
def crash_free_reference(variant, targets, seed, **solve):
    """The unfaulted trajectory for a variant (churn-suite convention)."""
    batch = quad_fleet(targets)
    if variant == "classic":
        with BatchedSolver(batch, rho=1.3) as s:
            return s.solve_batch(**solve)
    if variant == "three_weight":
        from repro.core.three_weight import solve_batch_twa

        return solve_batch_twa(batch, rho=1.3, **solve)
    from repro.core.async_admm import solve_batch_async

    return solve_batch_async(batch, fraction=0.7, seed=seed, rho=1.3, **solve)


@pytest.mark.parametrize("seed", fault_seeds())
@pytest.mark.parametrize("transport", ["shared", "queue"])
@pytest.mark.parametrize("variant", ["classic", "three_weight", "async"])
def test_kill_recovery_matches_crash_free_solve(variant, transport, seed):
    """SIGKILL mid-solve: restart-and-replay keeps the full trajectory
    (iterates, histories, iteration counts) bit-identical to the
    crash-free solve of the same variant — on both state transports
    (shared-mirror replay and queue-payload replay)."""
    rng = np.random.default_rng(seed)
    targets = rng.normal(size=(6, 2)) + 1.0
    plan = FaultPlan.random(2, 3, 4, seed=seed, kinds=("kill",))
    solve = dict(max_iterations=40, check_every=5, init="zeros")
    ref = crash_free_reference(variant, targets, seed, **solve)
    live = RebalancingShardedSolver(
        quad_fleet(targets),
        num_shards=3,
        mode="process",
        transport=transport,
        variant=variant,
        rho=1.3,
        fraction=0.7,
        seed=seed,
        policy=FAST,
        injector=FaultInjector(plan),
    )
    try:
        got = live.solve_batch(**solve)
        assert_results_equal(got, ref, atol=0.0 if variant == "classic" else 1e-10)
        assert live.fault_log.crashes, f"plan {plan.spec()} never struck"
        assert live.fault_log.restarts
    finally:
        live.close()
    assert_no_orphans()


@pytest.mark.parametrize("seed", fault_seeds()[:1])
def test_kill_without_restart_budget_fails_over_and_migrates(seed):
    """max_restarts=0: the segment runs in the parent and the dead shard's
    roster migrates to a survivor — recorded as an involuntary steal."""
    rng = np.random.default_rng(seed)
    targets = rng.normal(size=(6, 2)) + 1.0
    policy = WorkerPolicy(
        heartbeat_interval=0.05, wait_timeout=2.0, poll_interval=0.05,
        max_restarts=0,
    )
    plain = BatchedSolver(quad_fleet(targets), rho=1.3)
    live = RebalancingShardedSolver(
        quad_fleet(targets),
        num_shards=3,
        mode="process",
        rho=1.3,
        policy=policy,
        injector=FaultInjector("kill:1@1"),
    )
    try:
        steals_before = len(live.steal_log)
        ref = plain.solve_batch(max_iterations=30, check_every=5, init="zeros")
        got = live.solve_batch(max_iterations=30, check_every=5, init="zeros")
        assert_results_equal(got, ref)
        assert live.num_shards == 2  # dead shard dissolved
        assert live.fault_log.crashes and live.fault_log.failovers
        migs = live.fault_log.migrations
        assert len(migs) == 1 and migs[0].instances
        steal = live.steal_log[steals_before:]
        assert len(steal) == 1 and steal[0].instances == migs[0].instances
        # The shrunken fleet keeps solving correctly.
        ref2 = plain.solve_batch(max_iterations=60, check_every=5, init="keep")
        got2 = live.solve_batch(max_iterations=60, check_every=5, init="keep")
        assert_results_equal(got2, ref2)
    finally:
        plain.close()
        live.close()
    assert_no_orphans()


@pytest.mark.parametrize(
    "spec, expect_fault",
    [("drop:0@1", True), ("corrupt:1@1", True), ("delay:0@1:0.3", False)],
)
def test_queue_faults_recover_or_pass(spec, expect_fault):
    """A severed queue or corrupt reply is recovered like a crash; a delay
    under wait_timeout is a straggler, not a fault (no false positives)."""
    targets = np.random.default_rng(3).normal(size=(4, 2))
    policy = WorkerPolicy(
        heartbeat_interval=0.05, wait_timeout=0.6, poll_interval=0.05,
        max_restarts=2, backoff=0.01,
    )
    plain = BatchedSolver(quad_fleet(targets), rho=1.2)
    live = RebalancingShardedSolver(
        quad_fleet(targets), num_shards=2, mode="process", rho=1.2,
        policy=policy, injector=FaultInjector(spec),
    )
    try:
        plain.initialize("zeros")
        live.initialize("zeros")
        for _ in range(2):
            plain.iterate(2)
            live.iterate(2)
        np.testing.assert_array_equal(live.fleet_z(), plain.state.z)
        if expect_fault:
            assert live.fault_log.crashes and live.fault_log.restarts
        else:
            assert not live.fault_log, live.fault_log.summary()
    finally:
        plain.close()
        live.close()
    assert_no_orphans()


@pytest.mark.parametrize("seed", fault_seeds()[:1])
def test_crash_composed_with_churn_keeps_survivors_identical(seed):
    """Kill a worker *between* churn ops (append/reshard/steal) and keep
    solving: continuously-alive instances still match the untouched fleet."""
    rng = np.random.default_rng(100 + seed)
    B = 6
    targets = rng.normal(size=(B, 2)) + 1.0
    schedule = ResidualBalancing(mu=1.5, tau=2.0, max_updates=10)
    untouched = BatchedSolver(quad_fleet(targets), rho=1.3, schedule=schedule)
    live = RebalancingShardedSolver(
        quad_fleet(targets),
        num_shards=3,
        mode="process",
        rho=1.3,
        schedule=schedule,
        steal_threshold=0,
        steal_seed=seed,
        policy=FAST,
    )
    try:
        cap = 6
        ref = untouched.solve_batch(
            max_iterations=cap, eps_abs=0.0, eps_rel=0.0, check_every=3,
            init="zeros",
        )
        got = live.solve_batch(
            max_iterations=cap, eps_abs=0.0, eps_rel=0.0, check_every=3,
            init="zeros",
        )
        # Churn with a freshly-killed worker in the middle: the next run
        # must detect the crash and replay — even though the shard layout
        # changed under the dead worker.
        kill_worker(live, int(rng.integers(live.num_shards)))
        live.add_instances(overrides_for([targets[0]]))
        live.reshard(2)
        live.steal_once()
        kill_worker(live, int(rng.integers(live.num_shards)))
        cap += 6
        ref = untouched.solve_batch(
            max_iterations=cap, eps_abs=0.0, eps_rel=0.0, check_every=3,
            init="keep",
        )
        got = live.solve_batch(
            max_iterations=cap, eps_abs=0.0, eps_rel=0.0, check_every=3,
            init="keep",
        )
        assert live.fault_log.crashes and live.fault_log.restarts
        # Original instances (0..B-1) lived through everything: bit-equal.
        z_rows = live.split_z()
        u_rows = live.family_rows("u")
        ref_z = untouched.batch.split_z(untouched.state.z)
        for g in range(B):
            assert got[g].history.primal == ref[g].history.primal
            assert got[g].history.rho == ref[g].history.rho
            np.testing.assert_array_equal(z_rows[g], ref_z[g])
            slot = untouched.batch.slot_index[g]
            np.testing.assert_array_equal(u_rows[g], untouched.state.u[slot])
    finally:
        untouched.close()
        live.close()
    assert_no_orphans()


def test_dead_worker_detected_within_wait_timeout():
    """Detection latency: a SIGKILLed worker surfaces via liveness polling
    in ~poll_interval — far inside one wait_timeout, and never a hang."""
    targets = np.zeros((4, 2))
    policy = WorkerPolicy(
        heartbeat_interval=0.05, wait_timeout=30.0, poll_interval=0.1,
        max_restarts=1, backoff=0.0,
    )
    live = RebalancingShardedSolver(
        quad_fleet(targets), num_shards=2, mode="process", rho=1.0,
        policy=policy, injector=FaultInjector("kill:0@0"),
    )
    try:
        live.initialize("zeros")
        t0 = time.monotonic()
        live.iterate(1)
        elapsed = time.monotonic() - t0
        assert live.fault_log.crashes
        # One wait_timeout is the hard bar; polling makes it much faster.
        assert elapsed < policy.wait_timeout, f"detection took {elapsed:.1f}s"
    finally:
        live.close()
    assert_no_orphans()


# --------------------------------------------------------------------- #
# Sharded (static) solver: restart-and-replay.                           #
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("variant", ["classic", "async"])
def test_sharded_solver_restart_and_replay(variant):
    fleet = quad_fleet(np.random.default_rng(5).normal(size=(6, 2)))
    inj = FaultInjector("kill:1@1")
    faulted = ShardedBatchedSolver(
        fleet, num_shards=2, mode="process", variant=variant, rho=1.2,
        seed=7, fraction=0.7, policy=FAST, injector=inj,
    )
    clean = ShardedBatchedSolver(
        fleet, num_shards=2, mode="process", variant=variant, rho=1.2,
        seed=7, fraction=0.7,
    )
    try:
        faulted.initialize("zeros")
        clean.initialize("zeros")
        faulted.iterate(2)
        clean.iterate(2)
        faulted.iterate(3)  # segment 1: shard 1's worker is killed
        clean.iterate(3)
        np.testing.assert_array_equal(faulted.fleet_z(), clean.fleet_z())
        assert faulted.fault_log.crashes and faulted.fault_log.restarts
        assert inj.applied
    finally:
        faulted.close()
        clean.close()
    assert_no_orphans()


def test_sharded_solver_exhausted_restart_budget_raises_and_closes():
    """The static solver has no migration path: a shard that keeps dying
    exhausts max_restarts, raises, and the solver shuts down cleanly."""
    fleet = quad_fleet(np.zeros((4, 2)))
    policy = WorkerPolicy(
        heartbeat_interval=0.05, wait_timeout=2.0, poll_interval=0.05,
        max_restarts=0,
    )
    solver = ShardedBatchedSolver(
        fleet, num_shards=2, mode="process", rho=1.0,
        policy=policy, injector=FaultInjector("kill:0@0"),
    )
    try:
        solver.initialize("zeros")
        with pytest.raises(RuntimeError, match="kept failing"):
            solver.iterate(1)
        assert solver.fault_log.crashes
        with pytest.raises(RuntimeError, match="closed"):
            solver.iterate(1)
    finally:
        solver.close()
    assert_no_orphans()
