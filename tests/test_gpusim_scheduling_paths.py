"""Tests for simulator scheduling edge paths (round-robin fallback, waves)."""

import numpy as np
import pytest

import repro.gpusim.simt as simt
from repro.gpusim.device import TESLA_K40
from repro.gpusim.kernel import KernelWorkload
from repro.gpusim.simt import assign_blocks, simulate_kernel


class TestRoundRobinFallback:
    def test_paths_agree_on_uniform_work(self, monkeypatch):
        work = np.full(5000, 3.0)
        exact, _ = assign_blocks(work, 15)
        monkeypatch.setattr(simt, "LIST_SCHEDULING_MAX_BLOCKS", 10)
        rr, _ = assign_blocks(work, 15)
        # Uniform blocks: both schedules balance to the same loads (±1 block).
        assert abs(exact.max() - rr.max()) <= 3.0 + 1e-12

    def test_round_robin_conserves_work(self, monkeypatch):
        monkeypatch.setattr(simt, "LIST_SCHEDULING_MAX_BLOCKS", 10)
        work = np.random.default_rng(0).uniform(1, 5, size=997)
        loads, _ = assign_blocks(work, 15)
        assert loads.sum() == pytest.approx(work.sum())

    def test_large_kernel_uses_fallback_fast(self):
        # 500k items at ntb=1 → 500k blocks > threshold → vectorized path.
        wl = KernelWorkload("big", np.ones(500_000), np.ones(500_000))
        t = simulate_kernel(TESLA_K40, wl, 1)
        assert t.time_s > 0


class TestWaveQuantization:
    def test_single_wave_tail(self):
        # 16 equal blocks on 15 SMs: one SM gets two blocks -> ~2x time of
        # a 15-block launch.
        def launch(n_blocks):
            wl = KernelWorkload(
                "t", np.full(n_blocks * 32, 1000.0), np.full(n_blocks * 32, 0.001)
            )
            return simulate_kernel(TESLA_K40, wl, 32).compute_s

        t15 = launch(15)
        t16 = launch(16)
        assert t16 > 1.7 * t15

    def test_many_waves_amortize_tail(self):
        def launch(n_blocks):
            wl = KernelWorkload(
                "t", np.full(n_blocks * 32, 1000.0), np.full(n_blocks * 32, 0.001)
            )
            return simulate_kernel(TESLA_K40, wl, 32).compute_s

        # 150 vs 151 blocks: tail is only ~1/10 extra.
        assert launch(151) < 1.2 * launch(150)


class TestDivergenceScenarios:
    def test_sorted_vs_shuffled_heterogeneous_costs(self):
        # Sorting items by cost reduces intra-warp divergence loss.
        rng = np.random.default_rng(1)
        costs = rng.choice([10.0, 1000.0], size=32 * 256, p=[0.9, 0.1])
        bpi = np.full(costs.size, 0.001)
        shuffled = simulate_kernel(
            TESLA_K40, KernelWorkload("s", costs, bpi), 32
        )
        sorted_ = simulate_kernel(
            TESLA_K40, KernelWorkload("o", np.sort(costs), bpi), 32
        )
        assert sorted_.compute_s < shuffled.compute_s

    def test_uniform_costs_no_divergence_penalty(self):
        costs = np.full(32 * 64, 100.0)
        bpi = np.full(costs.size, 0.001)
        t = simulate_kernel(TESLA_K40, KernelWorkload("u", costs, bpi), 32)
        # Total warp-cycles = blocks × 100 (+overhead); check the throughput
        # identity: compute_s ≈ (blocks × (100 + overhead)) / slots / clock.
        blocks = 64
        expected = (
            blocks * (100.0 + TESLA_K40.block_overhead_cycles)
            / TESLA_K40.num_sms
            / TESLA_K40.warp_slots_per_sm
        ) / TESLA_K40.clock_hz
        # 64 blocks on 15 SMs don't divide evenly; allow wave slack.
        assert t.compute_s >= expected * 0.9
        assert t.compute_s <= expected * 1.6
