"""Structural equivalence of the incremental batch editors (ISSUE 5).

``GraphBatch.append_instances`` splices k new instance blocks into the
existing block-diagonal layout and ``remove_instances`` compacts the index
maps — neither re-replicates surviving instances through the builder.  The
contract pinned here: the spliced/compacted batch is **field-by-field
identical** to a full :func:`replicate_graph` re-replication of the same
fleet (index maps, edge arrays, z layout, factor groups, specs, instance
parameters), for synthetic multi-group templates and for every app
family's ``build_batch``; and the structural work is O(k), witnessed by
:data:`repro.graph.batch.REBUILD_COUNTER` (operation counters, not
wall-clock — shared runners can be 1-core).
"""

import numpy as np
import pytest

from repro.graph.batch import REBUILD_COUNTER, replicate_graph
from repro.graph.builder import GraphBuilder
from repro.prox.standard import DiagQuadProx

GRAPH_ARRAYS = (
    "var_dims",
    "z_indptr",
    "edge_var",
    "edge_factor",
    "factor_indptr",
    "edge_dims",
    "edge_indptr",
    "factor_slot_indptr",
    "flat_edge_to_z",
    "slot_edge",
    "var_edge_ids",
    "var_edge_indptr",
    "var_degree",
    "factor_degree",
    "isolated_vars",
)


def assert_batches_equal(got, ref, ctx=""):
    """Field-by-field equality of two GraphBatch objects (maps + graph)."""
    assert got.batch_size == ref.batch_size, ctx
    assert got.template is ref.template or (
        got.template.num_factors == ref.template.num_factors
    ), ctx
    for name in ("factor_index", "edge_index", "slot_index"):
        np.testing.assert_array_equal(
            getattr(got, name), getattr(ref, name), err_msg=f"{ctx} {name}"
        )
    g, r = got.graph, ref.graph
    assert (g.num_factors, g.num_vars, g.num_edges, g.edge_size, g.z_size) == (
        r.num_factors,
        r.num_vars,
        r.num_edges,
        r.edge_size,
        r.z_size,
    ), ctx
    for name in GRAPH_ARRAYS:
        np.testing.assert_array_equal(
            getattr(g, name), getattr(r, name), err_msg=f"{ctx} {name}"
        )
    assert g.var_names == r.var_names, ctx
    assert (g.scatter_matrix != r.scatter_matrix).nnz == 0, f"{ctx} scatter"
    assert len(g.groups) == len(r.groups), ctx
    for a, b in zip(g.groups, r.groups):
        assert a.prox is b.prox, ctx
        assert a.var_dims == b.var_dims, ctx
        assert a.contiguous and b.contiguous, ctx
        np.testing.assert_array_equal(a.factor_ids, b.factor_ids, err_msg=ctx)
        np.testing.assert_array_equal(a.gather_slots, b.gather_slots, err_msg=ctx)
        np.testing.assert_array_equal(a.gather_edges, b.gather_edges, err_msg=ctx)
        assert sorted(a.params) == sorted(b.params), ctx
        for key in a.params:
            np.testing.assert_array_equal(
                a.params[key], b.params[key], err_msg=f"{ctx} group param {key}"
            )
    for fa, fb in zip(g.factors, r.factors):
        assert fa.prox is fb.prox, ctx
        assert fa.variables == fb.variables, ctx
        assert sorted(fa.params) == sorted(fb.params), ctx
        for key in fa.params:
            np.testing.assert_array_equal(
                fa.params[key], fb.params[key], err_msg=f"{ctx} spec param {key}"
            )
    for i in range(got.batch_size):
        pa, pb = got.instance_params(i), ref.instance_params(i)
        assert pa.keys() == pb.keys(), ctx
        for f in pa:
            assert pa[f].keys() == pb[f].keys(), ctx
            for key in pa[f]:
                np.testing.assert_array_equal(pa[f][key], pb[f][key], err_msg=ctx)


def all_params(batch):
    """The batch's recorded per-instance params, in replicate override form."""
    return [batch.instance_params(i) for i in range(batch.batch_size)]


# --------------------------------------------------------------------- #
# Synthetic multi-group template                                         #
# --------------------------------------------------------------------- #


def multi_template():
    """Two variables, three factor groups with mixed dims and params."""
    b = GraphBuilder()
    w = b.add_variable(2, name="w")
    v = b.add_variable(1, name="v")
    b.add_factor(
        DiagQuadProx(dims=(2,)), [w], params={"q": np.ones(2), "c": np.zeros(2)}
    )
    b.add_factor(
        DiagQuadProx(dims=(2, 1)),
        [w, v],
        params={"q": np.ones(3), "c": np.zeros(3)},
    )
    b.add_factor(
        DiagQuadProx(dims=(1,)), [v], params={"q": np.ones(1), "c": np.ones(1)}
    )
    return b.build()


def override(i):
    return {
        0: {"c": np.array([float(i), -float(i)])},
        2: {"q": np.array([2.0 + i])},
    }


class TestAppendSynthetic:
    def test_append_matches_full_replication(self):
        t = multi_template()
        base = replicate_graph(t, 4, [override(i) for i in range(4)])
        grown = base.append_instances([override(10), {}])
        ref = replicate_graph(
            t, 6, [override(i) for i in range(4)] + [override(10), {}]
        )
        assert_batches_equal(grown, ref, "append-overrides")

    def test_append_count_clones_template(self):
        t = multi_template()
        base = replicate_graph(t, 3, [override(i) for i in range(3)])
        grown = base.append_instances(2)
        ref = replicate_graph(t, 5, [override(i) for i in range(3)] + [{}, {}])
        assert_batches_equal(grown, ref, "append-count")

    def test_chained_append_remove_select(self):
        t = multi_template()
        batch = replicate_graph(t, 3, [override(i) for i in range(3)])
        batch = batch.append_instances([override(7)])
        batch = batch.remove_instances([1])
        batch = batch.append_instances(1)
        ref = replicate_graph(
            t, 4, [override(0), override(2), override(7), {}]
        )
        assert_batches_equal(batch, ref, "chain")

    def test_remove_compacts_to_replication(self):
        t = multi_template()
        base = replicate_graph(t, 5, [override(i) for i in range(5)])
        shrunk = base.remove_instances([0, 3])
        ref = replicate_graph(t, 3, [override(1), override(2), override(4)])
        assert_batches_equal(shrunk, ref, "remove")

    def test_select_ascending_and_reordered(self):
        t = multi_template()
        base = replicate_graph(t, 5, [override(i) for i in range(5)])
        asc = base.select_instances([1, 3, 4])
        assert_batches_equal(
            asc,
            replicate_graph(t, 3, [override(1), override(3), override(4)]),
            "select-asc",
        )
        # Reorderings fall back to full replication and must still match.
        rev = base.select_instances([4, 1])
        assert_batches_equal(
            rev, replicate_graph(t, 2, [override(4), override(1)]), "select-rev"
        )

    def test_append_validation_matches_replicate(self):
        base = replicate_graph(multi_template(), 2)
        before = REBUILD_COUNTER.snapshot()
        with pytest.raises(ValueError, match="unknown parameter"):
            base.append_instances([{0: {"nope": np.zeros(2)}}])
        with pytest.raises(ValueError, match="has shape"):
            base.append_instances([{0: {"c": np.zeros(3)}}])
        with pytest.raises(ValueError, match="at least one"):
            base.append_instances(0)
        with pytest.raises(ValueError, match="at least one"):
            base.append_instances([])
        # Rejected appends must not skew the O(k) witness.
        assert REBUILD_COUNTER.snapshot() == before

    def test_solver_math_identical_on_spliced_batch(self):
        """A spliced batch is not just structurally equal — sweeps on it are
        bit-identical to sweeps on the re-replicated fleet."""
        from repro.core.batched import BatchedSolver

        t = multi_template()
        base = replicate_graph(t, 3, [override(i) for i in range(3)])
        grown = base.append_instances([override(9)])
        ref = replicate_graph(t, 4, [override(i) for i in range(3)] + [override(9)])
        a = BatchedSolver(grown, rho=1.2)
        b = BatchedSolver(ref, rho=1.2)
        for s in (a, b):
            s.initialize("zeros")
            s.iterate(25)
        np.testing.assert_array_equal(a.state.z, b.state.z)
        a.close()
        b.close()


# --------------------------------------------------------------------- #
# O(k) witness: the structural-rebuild counter                           #
# --------------------------------------------------------------------- #


class TestRebuildCounter:
    def test_append_builds_only_k_instances(self):
        base = replicate_graph(multi_template(), 6)
        before = REBUILD_COUNTER.snapshot()
        base.append_instances(2)
        delta = REBUILD_COUNTER.snapshot()
        assert delta["instances_built"] - before["instances_built"] == 2
        assert delta["full_replications"] == before["full_replications"]
        assert delta["incremental_appends"] - before["incremental_appends"] == 1

    def test_remove_builds_zero_instances(self):
        base = replicate_graph(multi_template(), 6)
        before = REBUILD_COUNTER.snapshot()
        base.remove_instances([1, 4])
        delta = REBUILD_COUNTER.snapshot()
        assert delta["instances_built"] == before["instances_built"]
        assert delta["full_replications"] == before["full_replications"]
        assert delta["compactions"] - before["compactions"] == 1

    def test_replicate_counts_full_batch(self):
        before = REBUILD_COUNTER.snapshot()
        replicate_graph(multi_template(), 5)
        delta = REBUILD_COUNTER.snapshot()
        assert delta["instances_built"] - before["instances_built"] == 5
        assert delta["full_replications"] - before["full_replications"] == 1

    def test_counter_reset_and_repr(self):
        c = type(REBUILD_COUNTER)()
        c.instances_built = 3
        c.reset()
        assert c.snapshot() == {
            "instances_built": 0,
            "full_replications": 0,
            "incremental_appends": 0,
            "compactions": 0,
        }


# --------------------------------------------------------------------- #
# Every app family's build_batch                                         #
# --------------------------------------------------------------------- #


def mpc_batch(B):
    from repro.apps.mpc import MPCProblem, build_batch, inverted_pendulum

    A, Bm = inverted_pendulum()
    rng = np.random.default_rng(5)
    return build_batch(
        [
            MPCProblem(A=A, B=Bm, q0=rng.uniform(-0.2, 0.2, size=4), horizon=4)
            for _ in range(B)
        ]
    )


def svm_batch(B):
    from repro.apps.svm import SVMProblem, build_batch

    rng = np.random.default_rng(9)
    problems = []
    for _ in range(B):
        X = rng.normal(size=(6, 2))
        y = np.sign(rng.normal(size=6))
        y[y == 0] = 1.0
        problems.append(SVMProblem(X, y))
    return build_batch(problems)


def packing_batch(B):
    from repro.apps.packing import PackingProblem

    return replicate_graph(PackingProblem(3).build_graph(), B)


def lasso_batch(B):
    from repro.apps.lasso import LassoProblem, make_lasso_data

    A, y, _ = make_lasso_data(n_samples=12, dim=4, sparsity=2, seed=3)
    return replicate_graph(LassoProblem(A, y, lam=0.1, n_blocks=2).build_graph(), B)


FAMILIES = {
    "mpc": mpc_batch,
    "svm": svm_batch,
    "packing": packing_batch,
    "lasso": lasso_batch,
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
class TestAppFamilies:
    def test_append_matches_replication(self, family):
        batch = FAMILIES[family](3)
        before = REBUILD_COUNTER.snapshot()
        grown = batch.append_instances(2)
        assert (
            REBUILD_COUNTER.instances_built - before["instances_built"] == 2
        ), "append re-replicated existing instances"
        ref = replicate_graph(
            batch.template, 5, all_params(batch) + [{}, {}]
        )
        assert_batches_equal(grown, ref, family)

    def test_remove_matches_replication(self, family):
        batch = FAMILIES[family](4)
        shrunk = batch.remove_instances([0, 2])
        ref = replicate_graph(
            batch.template, 2, [batch.instance_params(1), batch.instance_params(3)]
        )
        assert_batches_equal(shrunk, ref, family)
