"""Tests for the circle-packing application (paper §V-A)."""

import numpy as np
import pytest

from repro.apps.packing import (
    ConvexRegion,
    PackingProblem,
    solve_packing,
    square_region,
    triangle_region,
)


class TestRegions:
    def test_triangle_normals_unit_and_inward(self):
        r = triangle_region()
        norms = np.linalg.norm(r.normals, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-12)
        centroid = np.array([0.5, np.sqrt(3) / 6])
        assert r.contains(centroid)

    def test_triangle_area(self):
        r = triangle_region()
        assert r.area == pytest.approx(np.sqrt(3) / 4)

    def test_custom_triangle(self):
        verts = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 2.0]])
        r = triangle_region(verts)
        assert r.area == pytest.approx(2.0)
        assert r.contains(np.array([0.5, 0.5]))
        assert not r.contains(np.array([2.0, 2.0]))

    def test_triangle_shape_validation(self):
        with pytest.raises(ValueError):
            triangle_region(np.zeros((4, 2)))

    def test_square_region(self):
        r = square_region(2.0)
        assert r.area == 4.0
        assert r.num_walls == 4
        assert r.contains(np.array([1.0, 1.0]))
        assert not r.contains(np.array([3.0, 1.0]))

    def test_square_validation(self):
        with pytest.raises(ValueError):
            square_region(0.0)

    def test_contains_batch(self):
        r = square_region(1.0)
        pts = np.array([[0.5, 0.5], [2.0, 0.5]])
        np.testing.assert_array_equal(r.contains(pts), [True, False])

    def test_wall_violation(self):
        r = square_region(1.0)
        centers = np.array([[0.5, 0.5], [0.05, 0.5]])
        radii = np.array([0.1, 0.2])
        # Second disk pokes 0.15 out of the left wall.
        assert r.wall_violation(centers, radii) == pytest.approx(0.15)


class TestGraphConstruction:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 10])
    def test_paper_element_count_formulas(self, n):
        p = PackingProblem(n)
        g = p.build_graph()
        s = p.region.num_walls
        assert g.num_edges == 2 * n * n - n + 2 * n * s == p.expected_edges
        assert g.num_vars == 2 * n == p.expected_vars
        assert g.num_factors == n * (n - 1) // 2 + n + n * s == p.expected_factors

    def test_quadratic_growth(self):
        e10 = PackingProblem(10).build_graph().num_edges
        e20 = PackingProblem(20).build_graph().num_edges
        # 2N^2 dominates: doubling N roughly quadruples edges.
        assert 3.0 < e20 / e10 < 4.5

    def test_groups_are_three_families(self):
        g = PackingProblem(4).build_graph()
        names = sorted(grp.prox.name for grp in g.groups)
        assert names == ["packing_pair", "packing_radius", "packing_wall"]

    def test_all_groups_contiguous(self):
        g = PackingProblem(5).build_graph()
        assert all(grp.contiguous for grp in g.groups)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            PackingProblem(0)


class TestInitialState:
    def test_centers_inside_region(self):
        p = PackingProblem(12)
        g = p.build_graph()
        s = p.initial_state(g, seed=3)
        centers, radii = p.extract(g, s.z)
        assert np.all(p.region.contains(centers))
        assert np.all(radii > 0)

    def test_deterministic(self):
        p = PackingProblem(6)
        g = p.build_graph()
        a = p.initial_state(g, seed=9).z
        b = p.initial_state(g, seed=9).z
        np.testing.assert_array_equal(a, b)


class TestMetrics:
    def test_overlap_violation_zero_when_separated(self):
        p = PackingProblem(2)
        centers = np.array([[0.0, 0.0], [1.0, 0.0]])
        radii = np.array([0.3, 0.3])
        assert p.overlap_violation(centers, radii) == 0.0

    def test_overlap_violation_measures_gap(self):
        p = PackingProblem(2)
        centers = np.array([[0.0, 0.0], [1.0, 0.0]])
        radii = np.array([0.7, 0.7])
        assert p.overlap_violation(centers, radii) == pytest.approx(0.4)

    def test_single_disk_no_overlap(self):
        p = PackingProblem(1)
        assert p.overlap_violation(np.zeros((1, 2)), np.array([1.0])) == 0.0

    def test_coverage(self):
        p = PackingProblem(1, region=square_region(1.0))
        assert p.coverage(np.array([0.5])) == pytest.approx(np.pi * 0.25)


class TestSolve:
    def test_single_disk_in_square_reaches_incircle(self):
        # Optimal: radius 0.5 centered at (0.5, 0.5).
        out = solve_packing(
            1, iterations=800, rho=3.0, seed=0, region=square_region(1.0)
        )
        assert out["feasible"]
        np.testing.assert_allclose(out["centers"][0], [0.5, 0.5], atol=0.02)
        assert out["radii"][0] == pytest.approx(0.5, abs=0.02)

    def test_three_disks_triangle_feasible_and_covering(self):
        out = solve_packing(3, iterations=1500, rho=3.0, seed=1)
        assert out["overlap_violation"] < 1e-3
        assert out["wall_violation"] < 1e-3
        assert out["coverage"] > 0.5  # decent packing, not degenerate

    def test_validate_report_keys(self):
        out = solve_packing(2, iterations=300, seed=2)
        for key in ("coverage", "overlap_violation", "wall_violation", "feasible"):
            assert key in out
